// Multivalued consensus demo: seven processes propose seven DIFFERENT
// 16-bit values; the bit-by-bit reduction over embedded hybrid binary
// instances decides one of them — never a frankenstein bit pattern — and
// it still works when six of the seven processes crash (one-for-all).
//
// Run: ./build/examples/multivalued_demo [--seed=N]
#include <iostream>

#include "core/multivalued_runner.h"
#include "util/options.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 5));
  const auto layout = ClusterLayout::fig1_right();

  MultiRunConfig cfg(layout);
  cfg.width = 16;
  cfg.inputs = {1111, 2222, 3333, 4444, 5555, 6666, 7777};
  cfg.seed = seed;
  const auto r = run_multivalued(cfg);

  std::cout << "layout " << layout.to_string() << ", proposals:";
  for (const auto v : cfg.inputs) std::cout << ' ' << v;
  std::cout << "\ndecided: " << *r.decided_value
            << " (a proposed value: " << (r.validity_ok ? "yes" : "NO")
            << "), agreement " << (r.agreement_ok ? "ok" : "VIOLATED")
            << "\nconsensus objects used: " << r.consensus_objects
            << " across " << cfg.width << " bit instances, "
            << r.net.unicasts_sent << " messages\n\n";

  // Same, with 6 of 7 processes crashed (survivor in the majority cluster).
  MultiRunConfig crashy = cfg;
  crashy.crashes = CrashPlan::none(7);
  for (const ProcId p : {0, 1, 3, 4, 5, 6}) {
    crashy.crashes.specs[static_cast<std::size_t>(p)] =
        CrashSpec::at_time(10 * (p + 1));
  }
  const auto cr = run_multivalued(crashy);
  std::cout << "with 6/7 crashed: survivor p2 decided "
            << (cr.decisions[2] ? std::to_string(*cr.decisions[2]) : "nothing")
            << " — one-for-all carries over to multivalued consensus\n";
  return (r.success() && cr.decisions[2].has_value()) ? 0 : 1;
}
