// Quickstart: binary consensus among 7 processes arranged in the paper's
// Figure 1 (left) decomposition — three clusters of sizes {2, 3, 2} — using
// the local-coin Algorithm 2 on the deterministic simulator.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--seed=N]
#include <iostream>

#include "core/runner.h"
#include "util/options.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  // 1. Describe the system: n = 7 processes in m = 3 clusters. Processes
  //    within one cluster share a memory (with compare&swap); everyone can
  //    message everyone.
  const auto layout = ClusterLayout::fig1_left();
  std::cout << "layout: " << layout.to_string() << "  (n=" << layout.n()
            << ", m=" << layout.m() << ")\n";

  // 2. Configure a run: the local-coin algorithm, a contested input vector
  //    (even processes propose 0, odd propose 1), random message delays.
  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(layout.n());
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 2024));
  cfg.delays = DelayConfig::uniform(50, 150);

  // 3. Run it. The runner wires up the simulator, network, per-cluster
  //    memories and processes, and checks every paper invariant online.
  const RunResult result = run_consensus(cfg);

  // 4. Inspect the outcome.
  std::cout << "decided value : " << *result.decided_value << '\n'
            << "rounds needed : " << result.max_decision_round << '\n'
            << "messages sent : " << result.net.unicasts_sent << '\n'
            << "shm proposals : " << result.shm.consensus_proposals << '\n'
            << "sim time (ns) : " << result.last_decision_time << '\n'
            << "all correct processes decided: "
            << (result.all_correct_decided ? "yes" : "no") << '\n'
            << "safety (agreement/validity/WA1/WA2): "
            << (result.safe() ? "ok" : "VIOLATED") << '\n';

  for (ProcId p = 0; p < layout.n(); ++p) {
    const auto idx = static_cast<std::size_t>(p);
    std::cout << "  p" << p << " proposed " << cfg.inputs[idx] << ", decided "
              << *result.decisions[idx] << " in round "
              << result.decision_rounds[idx] << '\n';
  }
  return result.success() ? 0 : 1;
}
