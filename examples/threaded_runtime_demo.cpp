// Threaded-runtime demo: the blocking variants of Algorithms 2 and 3
// running on REAL threads — one std::thread per process, mailbox channels,
// and cluster consensus on std::atomic compare_exchange. Includes a crash
// of three processes mid-run.
//
// Run: ./build/examples/threaded_runtime_demo [--seed=N]
#include <iostream>

#include "runtime/threaded_runner.h"
#include "util/options.h"

using namespace hyco;

namespace {

void report(const char* title, const ThreadRunResult& r,
            const ClusterLayout& layout) {
  std::cout << title << '\n';
  std::cout << "  decided value: "
            << (r.decided_value ? to_cstring(*r.decided_value) : "none")
            << ", agreement " << (r.agreement_ok ? "ok" : "VIOLATED")
            << ", validity " << (r.validity_ok ? "ok" : "VIOLATED")
            << ", deadline hit: " << (r.deadline_hit ? "yes" : "no") << '\n';
  for (ProcId p = 0; p < layout.n(); ++p) {
    const auto& o = r.outcomes[static_cast<std::size_t>(p)];
    std::cout << "    p" << p << ": "
              << (o.decision ? ("decided " + std::string(to_cstring(*o.decision)))
                             : (o.crashed ? "crashed" : "undecided"))
              << " after " << o.rounds << " round(s)\n";
  }
  std::cout << "  messages sent: " << r.messages_sent << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 11));
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  std::cout << "layout " << layout.to_string() << ", real threads\n\n";

  {
    ThreadRunConfig cfg(layout);
    cfg.alg = ThreadAlgorithm::CommonCoin;
    cfg.seed = seed;
    report("Algorithm 3 (common coin), no crashes:", run_threaded(cfg),
           layout);
  }
  {
    ThreadRunConfig cfg(layout);
    cfg.alg = ThreadAlgorithm::LocalCoin;
    cfg.seed = seed + 1;
    report("Algorithm 2 (local coin), no crashes:", run_threaded(cfg),
           layout);
  }
  {
    // Crash one member of each small cluster and one of the middle cluster
    // mid-broadcast; the covering set {P0,P1,P2} keeps survivors, so the
    // rest must still decide.
    ThreadRunConfig cfg(layout);
    cfg.alg = ThreadAlgorithm::CommonCoin;
    cfg.seed = seed + 2;
    cfg.crashes.assign(7, {});
    cfg.crashes[0] = {1, 3};  // p0 dies in round 1, serving 3 peers
    cfg.crashes[3] = {2, 1};  // p3 dies in round 2, serving 1 peer
    cfg.crashes[5] = {1, 0};  // p5 dies in round 1, serving nobody
    report("Algorithm 3 with three mid-broadcast crashes:",
           run_threaded(cfg), layout);
  }
  return 0;
}
