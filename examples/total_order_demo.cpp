// Total-order broadcast demo: state machine replication on the hybrid
// model. Three clients submit commands concurrently; every process delivers
// the identical log — and the ordering service keeps running after a
// majority of processes crash (covering clusters survive).
//
// Run: ./build/examples/total_order_demo [--seed=N]
#include <iostream>

#include "core/total_order_runner.h"
#include "util/options.h"

using namespace hyco;

namespace {

void print_logs(const TobRunResult& r) {
  for (std::size_t p = 0; p < r.logs.size(); ++p) {
    std::cout << "  p" << p << " log:";
    for (const auto v : r.logs[p]) std::cout << ' ' << v;
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 9));
  const auto layout = ClusterLayout::fig1_right();

  std::cout << "layout " << layout.to_string()
            << " — commands 501, 502, 503 submitted concurrently\n\n";
  TobRunConfig cfg(layout);
  cfg.submissions = {{0, 0, 501}, {3, 0, 502}, {6, 0, 503}};
  cfg.seed = seed;
  const auto r = run_tob(cfg);
  std::cout << "prefix agreement: " << (r.prefix_agreement ? "ok" : "VIOLATED")
            << ", all delivered: " << (r.all_delivered ? "yes" : "no")
            << '\n';
  print_logs(r);

  std::cout << "\nnow with 5 of 7 processes crashed at t=100 (survivors p0,"
               " p2 — a covering set {P[0], P[1]}):\n";
  TobRunConfig crashy(layout);
  crashy.submissions = {{0, 0, 601}, {2, 50, 602}, {2, 4000, 603}};
  crashy.seed = seed + 1;
  crashy.crashes = CrashPlan::none(7);
  for (const ProcId p : {1, 3, 4, 5, 6}) {
    crashy.crashes.specs[static_cast<std::size_t>(p)] =
        CrashSpec::at_time(100);
  }
  const auto cr = run_tob(crashy);
  std::cout << "prefix agreement: "
            << (cr.prefix_agreement ? "ok" : "VIOLATED") << '\n';
  std::cout << "  p0 delivered " << cr.logs[0].size() << " commands, p2 "
            << cr.logs[2].size()
            << " — ordering continued past the majority crash\n";
  return (r.success() && cr.prefix_agreement) ? 0 : 1;
}
