// Common-coin demo (Algorithm 3): 32 processes in 4 clusters decide a
// contested value in an expected O(1) number of rounds — the round count
// does not grow with n. The demo sweeps n to make the claim visible and
// prints the round-count histogram for the largest system.
//
// Run: ./build/examples/common_coin_demo [--runs=N]
#include <iostream>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 500));

  std::cout << "Algorithm 3 (common coin), split inputs, " << runs
            << " runs per n:\n\n";
  std::cout << "   n   mean rounds   p95   max\n";
  for (const ProcId n : {8, 16, 32, 64}) {
    Summary rounds;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(ClusterLayout::even(n, 4));
      cfg.alg = Algorithm::HybridCommonCoin;
      cfg.inputs = split_inputs(n);
      cfg.seed = mix64(0xDE40, static_cast<std::uint64_t>(i));
      const auto r = run_consensus(cfg);
      if (!r.success()) {
        std::cerr << "unexpected failure at n=" << n << "\n";
        return 1;
      }
      rounds.add(static_cast<double>(r.max_decision_round));
    }
    std::cout << "  " << n << "\t" << rounds.mean() << "\t"
              << rounds.percentile(95) << "\t" << rounds.max() << '\n';
  }

  std::cout << "\nround distribution at n=64 (geometric tail — each round"
               " past agreement decides w.p. 1/2):\n";
  Histogram h(1.0, 9.0, 8);
  for (int i = 0; i < runs; ++i) {
    RunConfig cfg(ClusterLayout::even(64, 4));
    cfg.alg = Algorithm::HybridCommonCoin;
    cfg.inputs = split_inputs(64);
    cfg.seed = mix64(0xDE41, static_cast<std::uint64_t>(i));
    h.add(static_cast<double>(run_consensus(cfg).max_decision_round));
  }
  std::cout << h.to_string() << '\n';
  return 0;
}
