// m&m model demo (Section III-C + appendix): builds the Figure 2 uniform
// shared-memory domain from its graph, prints the S_i sets exactly as the
// paper's appendix lists them, runs the m&m consensus comparator, and
// contrasts its consensus-object usage with the hybrid model's.
//
// Run: ./build/examples/mm_model_demo
#include <iostream>

#include "baseline/mm_domain.h"
#include "baseline/mm_runner.h"
#include "core/runner.h"

using namespace hyco;

int main() {
  const auto d = MmDomain::fig2();
  std::cout << "Figure 2 graph: 5 processes, edges"
               " {p0p1, p1p2, p2p3, p2p4, p3p4}\n";
  std::cout << "memory domains: " << d.to_string() << "\n\n";

  MmRunConfig cfg(d);
  cfg.seed = 5;
  const auto r = run_mm(cfg);
  std::cout << "m&m consensus on this domain: decided "
            << (r.decided_value ? to_cstring(*r.decided_value) : "nothing")
            << " in " << r.max_decision_round << " round(s), "
            << r.shm.consensus_proposals << " consensus proposals\n\n";

  std::cout << "per-process consensus-object invocations per phase"
               " (m&m claim: degree + 1):\n";
  for (ProcId p = 0; p < d.n(); ++p) {
    const auto& st = r.proc_stats[static_cast<std::size_t>(p)];
    const double per_phase =
        st.rounds_entered > 0
            ? static_cast<double>(st.cons_invocations) /
                  (2.0 * static_cast<double>(st.rounds_entered))
            : 0.0;
    std::cout << "  p" << p << ": degree " << d.degree(p) << " -> "
              << per_phase << " invocations/phase\n";
  }

  // The hybrid side of the III-C comparison on the same number of
  // processes, 2 clusters: always exactly 1 invocation per phase.
  RunConfig hybrid(ClusterLayout::from_sizes({3, 2}));
  hybrid.alg = Algorithm::HybridLocalCoin;
  hybrid.inputs = split_inputs(5);
  hybrid.seed = 5;
  const auto hr = run_consensus(hybrid);
  std::cout << "\nhybrid (n=5, m=2) for contrast: ";
  const auto& st = hr.proc_stats[0];
  std::cout << static_cast<double>(st.cons_invocations) /
                   (2.0 * static_cast<double>(st.rounds_entered))
            << " invocation/phase per process, " << hr.consensus_objects
            << " objects total for " << hr.max_decision_round
            << " round(s)\n";
  std::cout << "\nThe m&m model also lacks the one-for-all closure: see"
               " tests/mm_model_test.cpp (NoOneForAllClosure).\n";
  return 0;
}
