// "One for All and All for One" — the paper's headline scenario.
//
// Layout: Figure 1 (right): P[0]={p0}, P[1]={p1,p2,p3,p4}, P[2]={p5,p6}.
// P[1] holds a majority of the 7 processes. We crash SIX of the seven
// processes — everyone except p2 — and consensus still terminates, because
// the lone survivor of the majority cluster speaks for its whole cluster:
// the message-exchange pattern credits a message from p2 to all of P[1]
// (4 > 7/2 processes). Pure message passing (Ben-Or) provably blocks here;
// the demo runs it side by side.
//
// Run: ./build/examples/majority_cluster [--seed=N]
#include <iostream>

#include "core/runner.h"
#include "util/options.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 7));

  const auto layout = ClusterLayout::fig1_right();
  std::cout << "layout: " << layout.to_string() << "\n";

  CrashPlan crashes = CrashPlan::none(7);
  for (const ProcId p : {0, 1, 3, 4, 5, 6}) {
    // Crash at staggered virtual times early in the run.
    crashes.specs[static_cast<std::size_t>(p)] =
        CrashSpec::at_time(20 * (p + 1));
  }
  std::cout << "crashing 6 of 7 processes (all but p2, a member of the"
               " majority cluster P[1])\n\n";

  RunConfig hybrid(layout);
  hybrid.alg = Algorithm::HybridCommonCoin;
  hybrid.inputs = split_inputs(7);
  hybrid.crashes = crashes;
  hybrid.seed = seed;
  const auto hr = run_consensus(hybrid);

  std::cout << "hybrid (Algorithm 3):\n"
            << "  p2 decided: "
            << (hr.decisions[2].has_value() ? to_cstring(*hr.decisions[2])
                                            : "no")
            << " (round " << hr.decision_rounds[2] << ")\n"
            << "  safety: " << (hr.safe() ? "ok" : "VIOLATED") << "\n\n";

  RunConfig benor(ClusterLayout::singletons(7));
  benor.alg = Algorithm::BenOr;
  benor.inputs = split_inputs(7);
  benor.crashes = crashes;
  benor.seed = seed;
  benor.max_rounds = 100;
  const auto br = run_consensus(benor);

  std::cout << "pure message passing (Ben-Or), same failure pattern:\n"
            << "  anyone decided: "
            << (br.decided_value.has_value() ? "yes" : "no — blocked, as"
                                               " theory demands (f >= n/2)")
            << "\n  safety: " << (br.safe() ? "ok (indulgent)" : "VIOLATED")
            << '\n';

  return (hr.decisions[2].has_value() && hr.safe() && br.safe() &&
          !br.decided_value.has_value())
             ? 0
             : 1;
}
