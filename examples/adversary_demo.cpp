// Adversary demo: hands the message scheduler to an adversary that delays
// all messages carrying value 1 by 100x, trying to keep the system split
// between 0-supporters and 1-supporters. Randomized consensus defeats such
// schedulers with probability 1 — the demo shows both algorithms deciding
// anyway, and how the ε-biased coin degrades Algorithm 3 gracefully.
//
// Run: ./build/examples/adversary_demo [--runs=N]
#include <iostream>
#include <memory>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 300));
  const auto layout = ClusterLayout::fig1_left();

  const auto adversary = [] {
    return std::make_unique<AdversarialDelay>(
        [](ProcId, ProcId, const Message& m, SimTime, Rng& rng) {
          const SimTime base = rng.uniform(10, 50);
          return m.est == Estimate::One ? base * 100 : base;
        });
  };

  std::cout << "value-split adversary (1-messages delayed 100x), " << runs
            << " runs each:\n";
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    Summary rounds;
    int decided0 = 0, decided1 = 0;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(layout);
      cfg.alg = alg;
      cfg.inputs = split_inputs(7);
      cfg.seed = mix64(0xADD, static_cast<std::uint64_t>(i));
      cfg.delay_factory = adversary;
      const auto r = run_consensus(cfg);
      if (!r.success()) {
        std::cerr << "violation/timeout under adversary!\n";
        return 1;
      }
      rounds.add(static_cast<double>(r.max_decision_round));
      (*r.decided_value == Estimate::Zero ? decided0 : decided1)++;
    }
    std::cout << "  " << to_cstring(alg) << ": mean rounds "
              << rounds.mean() << ", p95 " << rounds.percentile(95)
              << ", decisions 0/1: " << decided0 << "/" << decided1
              << "  (adversary biases WHICH value wins — never safety)\n";
  }

  std::cout << "\nε-biased common coin (adversary picks bit 0 with prob ε):\n";
  for (const double eps : {0.0, 0.5, 0.9}) {
    Summary rounds;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(layout);
      cfg.alg = Algorithm::HybridCommonCoin;
      cfg.inputs = split_inputs(7);
      cfg.seed = mix64(0xADE, static_cast<std::uint64_t>(i));
      cfg.coin_epsilon = eps;
      cfg.adversary_bit = 0;
      const auto r = run_consensus(cfg);
      if (!r.safe()) {
        std::cerr << "safety violation!\n";
        return 1;
      }
      rounds.add(static_cast<double>(r.max_decision_round));
    }
    std::cout << "  eps=" << eps << ": mean rounds " << rounds.mean()
              << " (slower, never wrong)\n";
  }
  return 0;
}
