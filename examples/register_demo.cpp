// Hybrid register demo: an MWMR atomic register emulated with one-for-all
// cluster quorums. Seven processes hammer the register with reads and
// uniquely-valued writes; the recorded history is checked for atomicity.
// Then the majority-crash scenario: the lone survivor of the majority
// cluster keeps reading and writing — a process-majority ABD would block.
//
// Run: ./build/examples/register_demo [--seed=N]
#include <iostream>

#include "util/options.h"
#include "workload/register_harness.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));
  const auto layout = ClusterLayout::fig1_right();

  RegisterRunConfig cfg(layout);
  cfg.ops_per_process = 6;
  cfg.seed = seed;
  const auto r = run_register_workload(cfg);
  std::cout << "workload: " << r.history.size() << " operations completed, "
            << "atomicity " << (r.atomicity_ok ? "ok" : "VIOLATED") << '\n';
  int reads = 0, writes = 0;
  for (const auto& op : r.history) (op.is_write ? writes : reads)++;
  std::cout << "  " << writes << " writes, " << reads << " reads, "
            << r.net.unicasts_sent << " messages, final sim time "
            << r.end_time << " ns\n\n";

  RegisterRunConfig crashy(layout);
  crashy.ops_per_process = 5;
  crashy.seed = seed + 1;
  crashy.crashes = CrashPlan::none(7);
  for (const ProcId p : {0, 1, 3, 4, 5, 6}) {
    crashy.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  const auto cr = run_register_workload(crashy);
  std::cout << "with 6/7 crashed at t=0 (survivor p2 in the majority"
               " cluster):\n  survivor completed "
            << cr.history.size() << "/5 ops, atomicity "
            << (cr.atomicity_ok ? "ok" : "VIOLATED")
            << " — register quorums inherit one-for-all\n";
  return (r.success() && cr.success()) ? 0 : 1;
}
