// FIG1 — reproduction of Figure 1: two cluster-based decompositions of
// n = 7 processes into m = 3 clusters. Prints both layouts, then runs both
// hybrid algorithms on each over many seeds, reporting termination rate,
// expected rounds, and message counts. Usage: fig1_cluster_layouts
// [--runs=N] [--csv=true]
#include <iostream>

#include "core/runner.h"
#include "util/csv.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 400));
  const bool csv = opts.get_bool("csv", false);

  std::cout << "FIG1: cluster-based decompositions of n=7 into m=3 "
               "(Raynal & Cao, Figure 1)\n\n";
  const struct {
    const char* name;
    ClusterLayout layout;
  } layouts[] = {
      {"fig1-left  (sizes 2,3,2)", ClusterLayout::fig1_left()},
      {"fig1-right (sizes 1,4,2)", ClusterLayout::fig1_right()},
  };

  Table shape("Figure 1 layouts");
  shape.set_columns({"layout", "clusters (0-based)", "majority cluster?"});
  for (const auto& l : layouts) {
    shape.add_row_values(l.name, l.layout.to_string(),
                         l.layout.has_majority_cluster() ? "yes" : "no");
  }
  shape.print(std::cout);

  Table results("Consensus on the Figure 1 layouts (split inputs)");
  results.set_columns({"layout", "algorithm", "runs", "terminated",
                       "safety violations", "mean rounds", "p95 rounds",
                       "mean msgs"});
  CsvWriter csv_out(std::cout);
  if (csv) {
    csv_out.header({"layout", "algorithm", "seed", "rounds", "msgs"});
  }

  for (const auto& l : layouts) {
    for (const Algorithm alg :
         {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
      Summary rounds, msgs;
      int terminated = 0, violations = 0;
      for (int i = 0; i < runs; ++i) {
        RunConfig cfg(l.layout);
        cfg.alg = alg;
        cfg.inputs = split_inputs(7);
        cfg.seed = mix64(0xF161, static_cast<std::uint64_t>(i));
        const auto r = run_consensus(cfg);
        terminated += r.all_correct_decided ? 1 : 0;
        violations += r.safe() ? 0 : 1;
        rounds.add(static_cast<double>(r.max_decision_round));
        msgs.add(static_cast<double>(r.net.unicasts_sent));
        if (csv) {
          csv_out.row_values(l.name, to_cstring(alg), i,
                             r.max_decision_round, r.net.unicasts_sent);
        }
      }
      results.add_row_values(l.name, to_cstring(alg), runs, terminated,
                             violations, fixed(rounds.mean()),
                             fixed(rounds.percentile(95)),
                             fixed(msgs.mean(), 0));
    }
  }
  if (!csv) results.print(std::cout);

  std::cout << "Expected shape: both decompositions solve consensus on every"
               " run with zero safety violations;\nthe right layout's"
               " majority cluster makes it the fault-tolerance showcase"
               " (see table_fault_tolerance).\n";
  return 0;
}
