// Microbenchmarks of the shared-memory substrate (experiment B-SHM):
// consensus-object proposals for the three constructions, and the lazy
// CONS_x[r, ph] lookup path of ClusterMemory.
#include <benchmark/benchmark.h>

#include "runtime/atomic_memory.h"
#include "shm/cluster_memory.h"
#include "shm/consensus_object.h"

namespace hyco {
namespace {

void BM_CasConsensusPropose(benchmark::State& state) {
  ShmOpCounts counts;
  std::uint64_t i = 0;
  for (auto _ : state) {
    CasConsensus obj(&counts);
    benchmark::DoNotOptimize(
        obj.propose(0, (i++ % 2) ? Estimate::One : Estimate::Zero));
  }
}
BENCHMARK(BM_CasConsensusPropose);

void BM_CasConsensusLosingPropose(benchmark::State& state) {
  ShmOpCounts counts;
  CasConsensus obj(&counts);
  obj.propose(0, Estimate::One);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.propose(1, Estimate::Zero));
  }
}
BENCHMARK(BM_CasConsensusLosingPropose);

void BM_LlScConsensusPropose(benchmark::State& state) {
  ShmOpCounts counts;
  for (auto _ : state) {
    LlScConsensus obj(8, &counts);
    benchmark::DoNotOptimize(obj.propose(0, Estimate::One));
  }
}
BENCHMARK(BM_LlScConsensusPropose);

void BM_AtomicConsensusPropose(benchmark::State& state) {
  for (auto _ : state) {
    AtomicConsensus obj;
    benchmark::DoNotOptimize(obj.propose(0, Estimate::One));
  }
}
BENCHMARK(BM_AtomicConsensusPropose);

void BM_AtomicConsensusContended(benchmark::State& state) {
  static AtomicConsensus obj;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obj.propose(static_cast<ProcId>(state.thread_index()), Estimate::One));
  }
}
BENCHMARK(BM_AtomicConsensusContended)->Threads(1)->Threads(4)->Threads(8);

void BM_ClusterMemoryLookupHit(benchmark::State& state) {
  ClusterMemory mem(0, 8);
  mem.cons(1, Phase::One).propose(0, Estimate::One);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&mem.cons(1, Phase::One));
  }
}
BENCHMARK(BM_ClusterMemoryLookupHit);

void BM_ClusterMemoryGrowth(benchmark::State& state) {
  // Cost of materializing fresh CONS objects round after round.
  for (auto _ : state) {
    ClusterMemory mem(0, 8);
    for (Round r = 1; r <= state.range(0); ++r) {
      benchmark::DoNotOptimize(mem.cons(r, Phase::One).propose(0, Estimate::One));
      benchmark::DoNotOptimize(mem.cons(r, Phase::Two).propose(0, Estimate::Bot));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ClusterMemoryGrowth)->Arg(16)->Arg(256);

}  // namespace
}  // namespace hyco
