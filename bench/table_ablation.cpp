// T-ABL — ablations of the reproduction's design choices (DESIGN.md §4):
//   * consensus-object construction: CAS vs LL/SC cluster memories
//     (identical outcomes expected — both linearize the same winner —
//     with slightly different primitive-op counts);
//   * delay distribution: constant vs uniform vs exponential (round counts
//     should be distribution-robust; simulated latency shifts);
//   * DECIDE gossip contribution: measured as the share of processes whose
//     decision round differs from the maximum (i.e. they were pulled over
//     the line by gossip rather than their own phase completion).
// Usage: table_ablation [--runs=N]
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t runs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, opts.get_int("runs", 200)));
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});

  std::cout << "T-ABL: design-choice ablations (n=7, split inputs, " << runs
            << " seeds)\n\n";

  Table shm("cluster memory primitive: CAS vs LL/SC");
  shm.set_columns({"impl", "algorithm", "identical decisions vs CAS",
                   "mean rounds", "primitive ops (cas+sc attempts)"});
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    int identical = 0;
    Summary rounds_cas, rounds_llsc, ops_cas, ops_llsc;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(layout);
      cfg.alg = alg;
      cfg.inputs = split_inputs(7);
      cfg.seed = mix64(0xAB1, static_cast<std::uint64_t>(i));
      cfg.shm_impl = ConsensusImpl::Cas;
      const auto a = run_consensus(cfg);
      cfg.shm_impl = ConsensusImpl::LlSc;
      const auto b = run_consensus(cfg);
      identical += (a.decided_value == b.decided_value &&
                    a.decision_rounds == b.decision_rounds)
                       ? 1
                       : 0;
      rounds_cas.add(static_cast<double>(a.max_decision_round));
      rounds_llsc.add(static_cast<double>(b.max_decision_round));
      ops_cas.add(static_cast<double>(a.shm.cas_attempts));
      ops_llsc.add(static_cast<double>(b.shm.sc_attempts + b.shm.ll_ops));
    }
    shm.add_row_values("CAS", to_cstring(alg), "-", fixed(rounds_cas.mean()),
                       fixed(ops_cas.mean(), 0));
    shm.add_row_values("LL/SC", to_cstring(alg),
                       std::to_string(identical) + "/" + std::to_string(runs),
                       fixed(rounds_llsc.mean()), fixed(ops_llsc.mean(), 0));
  }
  shm.print(std::cout);

  Table delays("delay distribution robustness (hybrid-CC)");
  delays.set_columns({"distribution", "mean rounds", "p95 rounds",
                      "mean sim latency (ns)"});
  const struct {
    const char* name;
    DelayConfig cfg;
  } dists[] = {
      {"constant(100)", DelayConfig::constant_of(100)},
      {"uniform(50,150)", DelayConfig::uniform(50, 150)},
      {"uniform(1,500)", DelayConfig::uniform(1, 500)},
      {"exponential(100)", DelayConfig::exponential(100.0)},
  };
  for (const auto& d : dists) {
    Summary rounds, latency;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(layout);
      cfg.alg = Algorithm::HybridCommonCoin;
      cfg.inputs = split_inputs(7);
      cfg.seed = mix64(0xAB2, static_cast<std::uint64_t>(i));
      cfg.delays = d.cfg;
      const auto r = run_consensus(cfg);
      rounds.add(static_cast<double>(r.max_decision_round));
      latency.add(static_cast<double>(r.last_decision_time));
    }
    delays.add_row_values(d.name, fixed(rounds.mean()),
                          fixed(rounds.percentile(95)),
                          fixed(latency.mean(), 0));
  }
  delays.print(std::cout);

  Table gossip("DECIDE gossip contribution (hybrid-LC)");
  gossip.set_columns({"metric", "value"});
  {
    Summary pulled;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(layout);
      cfg.alg = Algorithm::HybridLocalCoin;
      cfg.inputs = split_inputs(7);
      cfg.seed = mix64(0xAB3, static_cast<std::uint64_t>(i));
      const auto r = run_consensus(cfg);
      int early = 0;
      for (const Round dr : r.decision_rounds) {
        if (dr < r.max_decision_round) ++early;
      }
      pulled.add(static_cast<double>(early) / 7.0);
    }
    gossip.add_row_values("mean share of processes decided before the last"
                          " round (gossip or early phase-2)",
                          fixed(pulled.mean() * 100.0, 1) + " %");
  }
  gossip.print(std::cout);

  std::cout << "Expected shape: LL/SC row shows identical decisions on every"
               " seed (both constructions linearize\nthe first proposal);"
               " round counts are delay-distribution robust; only simulated"
               " latency scales.\n";
  return 0;
}
