// Microbenchmarks of the simulation substrate (experiment B-SIM): raw event
// throughput of the discrete-event engine and message throughput of the
// simulated network.
#include <benchmark/benchmark.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace hyco {
namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    const std::int64_t total = state.range(0);
    std::int64_t fired = 0;
    std::function<void()> tick = [&] {
      if (++fired < total) sim.schedule_in(1, tick);
    };
    sim.schedule_in(0, tick);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(10'000)->Arg(100'000);

void BM_SimulatorFanOut(benchmark::State& state) {
  // Heap behavior under broadcast-like bursts: schedule k events at once.
  for (auto _ : state) {
    Simulator sim(2);
    sim.reserve(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(0)));
    std::int64_t sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_in(i % 17, [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorFanOut)->Arg(10'000)->Arg(100'000);

void BM_NetworkBroadcastDelivery(benchmark::State& state) {
  const auto n = static_cast<ProcId>(state.range(0));
  std::size_t peak = 0;
  for (auto _ : state) {
    Simulator sim(3);
    sim.reserve(10 * static_cast<std::size_t>(n));
    ConstantDelay delay(10);
    CrashTracker tracker(static_cast<std::size_t>(n));
    SimNetwork net(sim, delay, tracker, n);
    std::int64_t delivered = 0;
    net.set_deliver([&](ProcId, ProcId, const Message&) { ++delivered; });
    for (int b = 0; b < 10; ++b) {
      net.broadcast(b % n, Message::phase_msg(1, Phase::One, Estimate::One));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
    peak = sim.peak_queue_depth();
  }
  state.counters["peak_queue_depth"] = static_cast<double>(peak);
  state.SetItemsProcessed(state.iterations() * 10 * n);
}
BENCHMARK(BM_NetworkBroadcastDelivery)->Arg(8)->Arg(64)->Arg(256);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform(0, 1000));
  }
}
BENCHMARK(BM_RngUniform);

}  // namespace
}  // namespace hyco
