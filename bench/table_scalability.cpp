// T-SCALE — the scalability motivation of the introduction/conclusion:
// per-decision resource usage as n grows. Message complexity is n^2 per
// phase regardless of m (the exchange is all-to-all), but the shared-memory
// footprint is m objects per phase — the hybrid tradeoff: intra-cluster
// agreement is "free" (shared memory), the message side scales like pure
// message passing while gaining cluster-weight fault tolerance.
// Usage: table_scalability [--runs=N]
#include <iostream>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

namespace {

struct Row {
  Summary msgs, shm_props, simtime, rounds, objects;
};

Row measure(Algorithm alg, const ClusterLayout& layout, int runs,
            std::uint64_t salt) {
  Row row;
  for (int i = 0; i < runs; ++i) {
    RunConfig cfg(layout);
    cfg.alg = alg;
    cfg.inputs = split_inputs(layout.n());
    cfg.seed = mix64(salt, static_cast<std::uint64_t>(i));
    const auto r = run_consensus(cfg);
    if (!r.all_correct_decided) continue;
    row.msgs.add(static_cast<double>(r.net.unicasts_sent));
    row.shm_props.add(static_cast<double>(r.shm.consensus_proposals));
    row.simtime.add(static_cast<double>(r.last_decision_time));
    row.rounds.add(static_cast<double>(r.max_decision_round));
    row.objects.add(static_cast<double>(r.consensus_objects));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 40));

  std::cout << "T-SCALE: per-decision resource usage (split inputs, " << runs
            << " seeds per cell)\n\n";

  Table t("Algorithm 3 (common coin), m = 4 clusters");
  t.set_columns({"n", "mean rounds", "mean msgs", "msgs/n^2/round",
                 "shm proposals", "cons objects", "mean sim latency (ns)"});
  for (const ProcId n : {8, 16, 32, 64, 128}) {
    const auto r =
        measure(Algorithm::HybridCommonCoin, ClusterLayout::even(n, 4), runs,
                0x5C);
    const double per_n2 =
        r.msgs.mean() / (static_cast<double>(n) * static_cast<double>(n) *
                         r.rounds.mean());
    t.add_row_values(n, fixed(r.rounds.mean()), fixed(r.msgs.mean(), 0),
                     fixed(per_n2), fixed(r.shm_props.mean(), 0),
                     fixed(r.objects.mean(), 1), fixed(r.simtime.mean(), 0));
  }
  t.print(std::cout);

  Table t2("Algorithm 2 (local coin), n = 32: cost vs m");
  t2.set_columns({"m", "mean rounds", "mean msgs", "shm proposals",
                  "cons objects"});
  for (const ClusterId m : {1, 2, 4, 8, 16, 32}) {
    const auto r = measure(Algorithm::HybridLocalCoin,
                           ClusterLayout::even(32, m), runs, 0x5D);
    t2.add_row_values(m, fixed(r.rounds.mean()), fixed(r.msgs.mean(), 0),
                      fixed(r.shm_props.mean(), 0),
                      fixed(r.objects.mean(), 1));
  }
  t2.print(std::cout);

  std::cout << "Expected shape: msgs/n^2/round is a constant (~1 plus DECIDE"
               " gossip) for every n — the message side is the n^2"
               " all-to-all;\nshared-memory objects per phase equal m, so"
               " fewer clusters mean a smaller consensus-object footprint"
               " AND fewer rounds (coin collapsing).\n";
  return 0;
}
