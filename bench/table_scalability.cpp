// T-SCALE — the scalability motivation of the introduction/conclusion:
// per-decision resource usage as n grows. Message complexity is n^2 per
// phase regardless of m (the exchange is all-to-all), but the shared-memory
// footprint is m objects per phase — the hybrid tradeoff: intra-cluster
// agreement is "free" (shared memory), the message side scales like pure
// message passing while gaining cluster-weight fault tolerance.
// Usage: table_scalability [--runs=N] [--threads=K]
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "exp/executor.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t runs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, opts.get_int("runs", 40)));
  ParallelExecutor::Options exec_opts;
  exec_opts.threads = opts.get_int("threads", 0);
  const ParallelExecutor exec(exec_opts);

  std::cout << "T-SCALE: per-decision resource usage (split inputs, " << runs
            << " seeds per cell)\n\n";

  Table t("Algorithm 3 (common coin), m = 4 clusters");
  t.set_columns({"n", "mean rounds", "mean msgs", "msgs/n^2/round",
                 "shm proposals", "cons objects", "mean sim latency (ns)"});
  {
    ExperimentSpec spec;
    spec.name = "t-scale-cc";
    spec.algorithms = {Algorithm::HybridCommonCoin};
    for (const ProcId n : {8, 16, 32, 64, 128}) {
      spec.layouts.push_back(ClusterLayout::even(n, 4));
    }
    spec.runs_per_cell = runs;
    spec.base_seed = 0x5C;
    for (const auto& r : exec.run(spec)) {
      const double n = static_cast<double>(r.cell.layout.n());
      const double per_n2 = r.msgs().mean() / (n * n * r.rounds().mean());
      t.add_row_values(r.cell.layout.n(), fixed(r.rounds().mean()),
                       fixed(r.msgs().mean(), 0), fixed(per_n2),
                       fixed(r.shm_proposals().mean(), 0),
                       fixed(r.objects().mean(), 1),
                       fixed(r.decision_time().mean(), 0));
    }
  }
  t.print(std::cout);

  Table t2("Algorithm 2 (local coin), n = 32: cost vs m");
  t2.set_columns({"m", "mean rounds", "mean msgs", "shm proposals",
                  "cons objects"});
  {
    ExperimentSpec spec;
    spec.name = "t-scale-lc";
    spec.algorithms = {Algorithm::HybridLocalCoin};
    for (const ClusterId m : {1, 2, 4, 8, 16, 32}) {
      spec.layouts.push_back(ClusterLayout::even(32, m));
    }
    spec.runs_per_cell = runs;
    spec.base_seed = 0x5D;
    for (const auto& r : exec.run(spec)) {
      t2.add_row_values(r.cell.layout.m(), fixed(r.rounds().mean()),
                        fixed(r.msgs().mean(), 0),
                        fixed(r.shm_proposals().mean(), 0),
                        fixed(r.objects().mean(), 1));
    }
  }
  t2.print(std::cout);

  std::cout << "Expected shape: msgs/n^2/round is a constant (~1 plus DECIDE"
               " gossip) for every n — the message side is the n^2"
               " all-to-all;\nshared-memory objects per phase equal m, so"
               " fewer clusters mean a smaller consensus-object footprint"
               " AND fewer rounds (coin collapsing).\n";
  return 0;
}
