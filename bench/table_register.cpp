// T-REG (extension) — the one-for-all register: operation latency and
// message cost vs n, plus the fault-tolerance contrast. Quorums are
// clusters covering > n/2 processes (one live responder each), so register
// operations survive the same failure patterns as the consensus
// algorithms — including a crashed majority with a live majority cluster.
// Usage: table_register [--runs=N]
#include <iostream>

#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/register_harness.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 60));

  std::cout << "T-REG (extension): MWMR atomic register with cluster-closure"
               " quorums\n\n";

  Table t("latency and message cost per operation vs n (m = 4, mixed 50/50"
          " workload)");
  t.set_columns({"n", "ops", "atomic histories", "mean op latency (ns)",
                 "msgs per op"});
  for (const ProcId n : {8, 16, 32, 64}) {
    Summary latency;
    std::uint64_t msgs = 0, ops = 0;
    int atomic = 0;
    for (int i = 0; i < runs; ++i) {
      RegisterRunConfig cfg(ClusterLayout::even(n, 4));
      cfg.ops_per_process = 4;
      cfg.seed = mix64(0x4E9, static_cast<std::uint64_t>(i));
      const auto r = run_register_workload(cfg);
      atomic += r.atomicity_ok ? 1 : 0;
      for (const auto& op : r.history) {
        latency.add(static_cast<double>(op.responded - op.invoked));
      }
      msgs += r.net.unicasts_sent;
      ops += r.history.size();
    }
    t.add_row_values(n, ops, std::to_string(atomic) + "/" + std::to_string(runs),
                     fixed(latency.mean(), 0),
                     fixed(static_cast<double>(msgs) /
                               static_cast<double>(ops), 1));
  }
  t.print(std::cout);

  Table ft("fault tolerance (fig1-right, 6/7 crashed at t=0, survivor in"
           " the majority cluster)");
  ft.set_columns({"runs", "survivor completed all ops", "atomic histories"});
  int completed = 0, atomic = 0;
  for (int i = 0; i < runs; ++i) {
    RegisterRunConfig cfg(ClusterLayout::fig1_right());
    cfg.ops_per_process = 5;
    cfg.seed = mix64(0x4EA, static_cast<std::uint64_t>(i));
    cfg.crashes = CrashPlan::none(7);
    for (const ProcId p : {0, 1, 3, 4, 5, 6}) {
      cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
    }
    const auto r = run_register_workload(cfg);
    completed += r.all_correct_completed ? 1 : 0;
    atomic += r.atomicity_ok ? 1 : 0;
  }
  ft.add_row_values(runs, std::to_string(completed) + "/" + std::to_string(runs),
                    std::to_string(atomic) + "/" + std::to_string(runs));
  ft.print(std::cout);

  std::cout << "Expected shape: every history atomic; op latency flat-ish in"
               " n (two quorum round trips);\nthe majority-crash row"
               " completes on every run — a process-majority ABD blocks"
               " there.\n";
  return 0;
}
