// FIG2 — reproduction of Figure 2 + appendix: the uniform m&m shared-memory
// domain of 5 processes. Verifies the constructed S_i sets against the
// paper's list, then runs the m&m consensus comparator on the domain.
// Usage: fig2_mm_domain [--runs=N]
#include <iostream>

#include "baseline/mm_domain.h"
#include "baseline/mm_runner.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 300));

  std::cout << "FIG2: uniform m&m shared-memory domain (Raynal & Cao,"
               " Figure 2 + appendix)\n\n";
  const auto d = MmDomain::fig2();

  // Paper's appendix, 1-based: S1={p1,p2} S2={p1,p2,p3} S3={p2,p3,p4,p5}
  // S4={p3,p4,p5} S5={p3,p4,p5}.
  const char* paper_sets[] = {"{0,1}", "{0,1,2}", "{1,2,3,4}", "{2,3,4}",
                              "{2,3,4}"};
  Table sets("Memory domains S_i (paper appendix vs constructed, 0-based)");
  sets.set_columns({"process", "paper S_i", "constructed S_i", "degree a_i",
                    "match"});
  bool all_match = true;
  for (ProcId i = 0; i < d.n(); ++i) {
    const auto set = d.domain_set(i).to_string();
    const bool match = set == paper_sets[i];
    all_match &= match;
    sets.add_row_values("p" + std::to_string(i), paper_sets[i], set,
                        d.degree(i), match ? "yes" : "NO");
  }
  sets.print(std::cout);
  std::cout << (all_match ? "All S_i sets match the paper.\n\n"
                          : "MISMATCH against the paper!\n\n");

  Table run("m&m consensus on the Figure 2 domain (split inputs)");
  run.set_columns({"runs", "terminated", "safety violations", "mean rounds",
                   "p95 rounds"});
  Summary rounds;
  int terminated = 0, violations = 0;
  for (int i = 0; i < runs; ++i) {
    MmRunConfig cfg(d);
    cfg.seed = mix64(0xF162, static_cast<std::uint64_t>(i));
    const auto r = run_mm(cfg);
    terminated += r.all_correct_decided ? 1 : 0;
    violations += (r.agreement_ok && r.validity_ok) ? 0 : 1;
    rounds.add(static_cast<double>(r.max_decision_round));
  }
  run.add_row_values(runs, terminated, violations, fixed(rounds.mean()),
                     fixed(rounds.percentile(95)));
  run.print(std::cout);

  Table inv("Per-process consensus-object invocations per phase (claim: a_i + 1)");
  inv.set_columns({"process", "claimed a_i+1", "measured"});
  {
    MmRunConfig cfg(d);
    cfg.inputs = std::vector<Estimate>(5, Estimate::Zero);  // 1-round run
    cfg.seed = 99;
    const auto r = run_mm(cfg);
    for (ProcId p = 0; p < d.n(); ++p) {
      const auto& st = r.proc_stats[static_cast<std::size_t>(p)];
      const double per_phase =
          st.rounds_entered > 0
              ? static_cast<double>(st.cons_invocations) /
                    (2.0 * static_cast<double>(st.rounds_entered))
              : 0.0;
      inv.add_row_values("p" + std::to_string(p), d.degree(p) + 1,
                         fixed(per_phase, 1));
    }
  }
  inv.print(std::cout);
  return 0;
}
