// B-SNAP — self-contained performance snapshot of the event core. Runs the
// same loops as the Google-Benchmark suite in bench_sim.cpp
// (BM_SimulatorEventThroughput / BM_SimulatorFanOut /
// BM_NetworkBroadcastDelivery) but requires no external dependency, so it
// can run in any CI job and seed the repo's performance trajectory.
//
// Writes a JSON document (default BENCH_sim.json) with events/sec, msgs/sec
// and peak queue depth per benchmark. Methodology: each loop is repeated
// `--reps` times and the best rate is reported (minimum-noise estimator for
// a throughput benchmark on a shared machine).
//
// Usage: perf_snapshot [--out=BENCH_sim.json] [--n=256] [--reps=5]
//                      [--baseline-broadcast=MSGS_PER_SEC]
// The optional baseline is a previously measured broadcast-delivery rate
// (same machine, same flags); when given, the document records it and the
// resulting speedup factor.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "net/network.h"
#include "service/service_runner.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/options.h"
#include "util/rng.h"

using namespace hyco;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct BenchResult {
  std::uint64_t items = 0;        ///< events or messages per repetition
  double best_rate = 0.0;         ///< items/sec, best repetition
  std::size_t peak_queue = 0;     ///< peak pending events in the best rep
};

/// Self-perpetuating event chain: pure push/pop/dispatch cost at depth ~1.
BenchResult bench_event_throughput(int reps) {
  const std::int64_t total = 2'000'000;
  BenchResult r;
  r.items = static_cast<std::uint64_t>(total);
  for (int rep = 0; rep < reps; ++rep) {
    Simulator sim(1);
    std::int64_t fired = 0;
    std::function<void()> tick = [&] {
      if (++fired < total) sim.schedule_in(1, tick);
    };
    sim.schedule_in(0, tick);
    const auto t0 = Clock::now();
    sim.run();
    const double rate = static_cast<double>(fired) / seconds_since(t0);
    if (rate > r.best_rate) {
      r.best_rate = rate;
      r.peak_queue = sim.peak_queue_depth();
    }
  }
  return r;
}

/// Broadcast-like burst: k callbacks scheduled at once, then drained.
BenchResult bench_fanout(int reps) {
  const int k = 1'000'000;
  BenchResult r;
  r.items = static_cast<std::uint64_t>(k);
  for (int rep = 0; rep < reps; ++rep) {
    Simulator sim(2);
    sim.reserve(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
    std::int64_t sink = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < k; ++i) {
      sim.schedule_in(i % 17, [&sink] { ++sink; });
    }
    sim.run();
    const double rate = static_cast<double>(sink) / seconds_since(t0);
    if (rate > r.best_rate) {
      r.best_rate = rate;
      r.peak_queue = sim.peak_queue_depth();
    }
  }
  return r;
}

/// Calendar stressor: 1M callbacks whose times are skewed across ~4096
/// distinct days (squared draws pile most events near the window base with
/// a long sparse tail), so the cursor walks empty buckets and the far tail
/// rides the overflow heap — the case a binary heap handles with deep
/// sifts and the calendar front end must handle in O(1) per event.
BenchResult bench_calendar_fanout(int reps) {
  const int k = 1'000'000;
  BenchResult r;
  r.items = static_cast<std::uint64_t>(k);
  for (int rep = 0; rep < reps; ++rep) {
    Simulator sim(4);
    sim.reserve(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
    Rng rng(0xCAFE);
    std::int64_t sink = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < k; ++i) {
      const std::uint64_t d = rng.bounded(64);
      sim.schedule_in(static_cast<SimTime>(d * d), [&sink] { ++sink; });
    }
    sim.run();
    const double rate = static_cast<double>(sink) / seconds_since(t0);
    if (rate > r.best_rate) {
      r.best_rate = rate;
      r.peak_queue = sim.peak_queue_depth();
    }
  }
  return r;
}

/// End-to-end service throughput: one full replicated-service run (closed-
/// loop clients, batching, sequenced consensus) measured in decided ops per
/// WALL second — the figure a capacity planner actually buys.
BenchResult bench_service_ops(int reps) {
  BenchResult r;
  for (int rep = 0; rep < reps; ++rep) {
    ServiceRunConfig cfg(ClusterLayout::even(8, 2));
    cfg.seed = 7;
    cfg.clients = 20'000;
    cfg.ops_per_client = 1;
    const auto t0 = Clock::now();
    const ServiceRunResult res = run_service(cfg);
    const double secs = seconds_since(t0);
    HYCO_CHECK_MSG(res.success(), "service benchmark run failed");
    r.items = res.ops_completed;
    const double rate = static_cast<double>(res.ops_completed) / secs;
    if (rate > r.best_rate) r.best_rate = rate;
  }
  return r;
}

/// The acceptance benchmark: full network path (delay model, crash checks,
/// stats, deliver dispatch) under all-to-all broadcast bursts.
BenchResult bench_broadcast_delivery(ProcId n, int reps) {
  const int bursts = 40;   // bursts per drain cycle: 40·n messages in flight
  const int cycles = 100;
  BenchResult r;
  r.items = static_cast<std::uint64_t>(bursts) * cycles *
            static_cast<std::uint64_t>(n);
  for (int rep = 0; rep < reps; ++rep) {
    Simulator sim(3);
    sim.reserve(static_cast<std::size_t>(bursts) *
                static_cast<std::size_t>(n));
    ConstantDelay delay(10);
    CrashTracker tracker(static_cast<std::size_t>(n));
    SimNetwork net(sim, delay, tracker, n);
    std::int64_t delivered = 0;
    net.set_deliver([&](ProcId, ProcId, const Message&) { ++delivered; });
    const auto t0 = Clock::now();
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (int b = 0; b < bursts; ++b) {
        net.broadcast(b % n, Message::phase_msg(1, Phase::One, Estimate::One));
      }
      sim.run();
    }
    const double rate = static_cast<double>(delivered) / seconds_since(t0);
    if (rate > r.best_rate) {
      r.best_rate = rate;
      r.peak_queue = sim.peak_queue_depth();
    }
  }
  return r;
}

void emit(std::ostream& out, const std::string& name, const char* unit,
          const BenchResult& r, bool last = false) {
  out << "    \"" << name << "\": {\"items\": " << r.items << ", \"" << unit
      << "\": " << static_cast<std::uint64_t>(r.best_rate)
      << ", \"peak_queue_depth\": " << r.peak_queue << "}"
      << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto n = static_cast<ProcId>(opts.get_int("n", 256));
  const int reps = static_cast<int>(opts.get_int("reps", 5));
  const std::string out_path = opts.get_string("out", "BENCH_sim.json");
  const double baseline = opts.get_double("baseline-broadcast", 0.0);
  HYCO_CHECK_MSG(n > 0 && reps > 0, "--n and --reps must be positive");

  std::cerr << "perf_snapshot: event throughput...\n";
  const BenchResult events = bench_event_throughput(reps);
  std::cerr << "perf_snapshot: fan-out...\n";
  const BenchResult fanout = bench_fanout(reps);
  std::cerr << "perf_snapshot: calendar fan-out...\n";
  const BenchResult calfan = bench_calendar_fanout(reps);
  std::cerr << "perf_snapshot: broadcast delivery (n=" << n << ")...\n";
  const BenchResult bcast = bench_broadcast_delivery(n, reps);
  std::cerr << "perf_snapshot: service decided ops...\n";
  const BenchResult service = bench_service_ops(reps);

  std::ofstream out(out_path);
  HYCO_CHECK_MSG(out.good(), "cannot open " << out_path);
  // Schema 2 = schema 1 plus calendar_fanout and service_decided_ops; every
  // schema-1 key keeps its exact name and shape so existing consumers (the
  // CI perf guard's older revisions, plotting scripts) read both.
  out << "{\n"
      << "  \"schema\": \"hyco-bench-sim/2\",\n"
      << "  \"config\": {\"n\": " << n << ", \"reps\": " << reps << "},\n"
      << "  \"results\": {\n";
  emit(out, "simulator_event_throughput", "events_per_sec", events);
  emit(out, "simulator_fanout", "events_per_sec", fanout);
  emit(out, "calendar_fanout", "events_per_sec", calfan);
  emit(out, "network_broadcast_delivery", "msgs_per_sec", bcast);
  out << "    \"service_decided_ops\": {\"items\": " << service.items
      << ", \"ops_per_sec\": "
      << static_cast<std::uint64_t>(service.best_rate) << "}"
      << (baseline > 0.0 ? ",\n" : "\n");
  if (baseline > 0.0) {
    out << "    \"reference\": {\"pre_refactor_broadcast_msgs_per_sec\": "
        << static_cast<std::uint64_t>(baseline)
        << ", \"speedup\": " << bcast.best_rate / baseline << "}\n";
  }
  out << "  }\n}\n";
  out.close();

  std::cout << "event throughput:   "
            << static_cast<std::uint64_t>(events.best_rate) << " events/sec\n"
            << "fan-out:            "
            << static_cast<std::uint64_t>(fanout.best_rate) << " events/sec\n"
            << "calendar fan-out:   "
            << static_cast<std::uint64_t>(calfan.best_rate) << " events/sec\n"
            << "broadcast delivery: "
            << static_cast<std::uint64_t>(bcast.best_rate) << " msgs/sec"
            << " (peak queue depth " << bcast.peak_queue << ")\n"
            << "service decided:    "
            << static_cast<std::uint64_t>(service.best_rate)
            << " ops/sec (wall)\n";
  if (baseline > 0.0) {
    std::cout << "speedup vs baseline: " << bcast.best_rate / baseline
              << "x\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
