// T-ADV — adversarial-scheduler and imperfect-coin ablation:
//   * a value-split delay adversary (delays 1-carrying messages) against
//     Algorithm 2 vs Algorithm 3 — randomization defeats it, but round
//     counts degrade gracefully;
//   * an ε-biased common coin against Algorithm 3 — the adversary's ability
//     to pick coin bits slows (never corrupts) decisions.
// Usage: table_adversary [--runs=N]
#include <iostream>
#include <memory>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

namespace {

std::function<std::unique_ptr<DelayModel>()> split_adversary(SimTime factor) {
  return [factor] {
    return std::make_unique<AdversarialDelay>(
        [factor](ProcId, ProcId, const Message& m, SimTime, Rng& rng) {
          const SimTime base = rng.uniform(10, 50);
          return m.est == Estimate::One ? base * factor : base;
        });
  };
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 200));

  std::cout << "T-ADV: adversarial scheduling and imperfect coins (n=7,"
               " fig1-left, split inputs, " << runs << " seeds)\n\n";

  Table t("value-split delay adversary (messages carrying 1 delayed x"
          " factor)");
  t.set_columns({"delay factor", "algorithm", "terminated", "violations",
                 "mean rounds", "p95 rounds"});
  for (const SimTime factor : {1, 10, 100}) {
    for (const Algorithm alg :
         {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
      Summary rounds;
      int terminated = 0, violations = 0;
      for (int i = 0; i < runs; ++i) {
        RunConfig cfg(ClusterLayout::fig1_left());
        cfg.alg = alg;
        cfg.inputs = split_inputs(7);
        cfg.seed = mix64(0xAD, static_cast<std::uint64_t>(i));
        cfg.delay_factory = split_adversary(factor);
        const auto r = run_consensus(cfg);
        terminated += r.all_correct_decided ? 1 : 0;
        violations += r.safe() ? 0 : 1;
        if (r.all_correct_decided) {
          rounds.add(static_cast<double>(r.max_decision_round));
        }
      }
      t.add_row_values(factor, to_cstring(alg),
                       std::to_string(terminated) + "/" + std::to_string(runs),
                       violations, fixed(rounds.mean()),
                       fixed(rounds.percentile(95)));
    }
  }
  t.print(std::cout);

  Table b("ε-biased common coin (adversary substitutes bit 0 with"
          " probability ε)");
  b.set_columns({"epsilon", "terminated", "violations", "mean rounds",
                 "p95 rounds"});
  for (const double eps : {0.0, 0.1, 0.25, 0.5, 0.9}) {
    Summary rounds;
    int terminated = 0, violations = 0;
    for (int i = 0; i < runs; ++i) {
      RunConfig cfg(ClusterLayout::fig1_left());
      cfg.alg = Algorithm::HybridCommonCoin;
      cfg.inputs = split_inputs(7);
      cfg.seed = mix64(0xAE, static_cast<std::uint64_t>(i));
      cfg.coin_epsilon = eps;
      cfg.adversary_bit = 0;
      const auto r = run_consensus(cfg);
      terminated += r.all_correct_decided ? 1 : 0;
      violations += r.safe() ? 0 : 1;
      if (r.all_correct_decided) {
        rounds.add(static_cast<double>(r.max_decision_round));
      }
    }
    b.add_row_values(fixed(eps, 2),
                     std::to_string(terminated) + "/" + std::to_string(runs),
                     violations, fixed(rounds.mean()),
                     fixed(rounds.percentile(95)));
  }
  b.print(std::cout);

  std::cout << "Expected shape: termination stays 100% with 0 violations in"
               " every cell (indulgence + randomization);\nround counts rise"
               " with the delay factor and with ε — the adversary can slow,"
               " never corrupt.\n";
  return 0;
}
