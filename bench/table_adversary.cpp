// T-ADV — adversarial-scheduler and imperfect-coin ablation:
//   * a value-split delay adversary (delays 1-carrying messages) against
//     Algorithm 2 vs Algorithm 3 — randomization defeats it, but round
//     counts degrade gracefully;
//   * an ε-biased common coin against Algorithm 3 — the adversary's ability
//     to pick coin bits slows (never corrupts) decisions.
// Usage: table_adversary [--runs=N] [--threads=K]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "exp/executor.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

namespace {

DelayAxis split_adversary(SimTime factor) {
  return DelayAxis::adversarial(
      "split-x" + std::to_string(factor), [factor] {
        return std::make_unique<AdversarialDelay>(
            [factor](ProcId, ProcId, const Message& m, SimTime, Rng& rng) {
              const SimTime base = rng.uniform(10, 50);
              return m.est == Estimate::One ? base * factor : base;
            });
      });
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t runs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, opts.get_int("runs", 200)));
  ParallelExecutor::Options exec_opts;
  exec_opts.threads = opts.get_int("threads", 0);
  const ParallelExecutor exec(exec_opts);

  std::cout << "T-ADV: adversarial scheduling and imperfect coins (n=7,"
               " fig1-left, split inputs, " << runs << " seeds)\n\n";

  Table t("value-split delay adversary (messages carrying 1 delayed x"
          " factor)");
  t.set_columns({"delay factor", "algorithm", "terminated", "violations",
                 "mean rounds", "p95 rounds"});
  {
    const std::vector<SimTime> factors{1, 10, 100};
    ExperimentSpec spec;
    spec.name = "t-adv-split";
    spec.algorithms = {Algorithm::HybridLocalCoin,
                       Algorithm::HybridCommonCoin};
    spec.layouts = {ClusterLayout::fig1_left()};
    spec.delays.clear();
    for (const SimTime factor : factors) {
      spec.delays.push_back(split_adversary(factor));
    }
    spec.runs_per_cell = runs;
    spec.base_seed = 0xAD;
    const auto res = exec.run(spec);
    // Expansion is algorithms ▸ delays; the table iterates factor outer,
    // algorithm inner, so cell (a, f) sits at a * factors.size() + f.
    for (std::size_t f = 0; f < factors.size(); ++f) {
      for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
        const auto& r = res[a * factors.size() + f];
        t.add_row_values(factors[f], to_cstring(r.cell.alg),
                         std::to_string(r.terminated()) + "/" +
                             std::to_string(r.runs()),
                         r.violations(), fixed(r.rounds().mean()),
                         fixed(r.rounds().percentile(95)));
      }
    }
  }
  t.print(std::cout);

  Table b("ε-biased common coin (adversary substitutes bit 0 with"
          " probability ε)");
  b.set_columns({"epsilon", "terminated", "violations", "mean rounds",
                 "p95 rounds"});
  {
    ExperimentSpec spec;
    spec.name = "t-adv-coin";
    spec.algorithms = {Algorithm::HybridCommonCoin};
    spec.layouts = {ClusterLayout::fig1_left()};
    spec.coin_epsilons = {0.0, 0.1, 0.25, 0.5, 0.9};
    spec.adversary_bit = 0;
    spec.runs_per_cell = runs;
    spec.base_seed = 0xAE;
    for (const auto& r : exec.run(spec)) {
      b.add_row_values(fixed(r.cell.coin_epsilon, 2),
                       std::to_string(r.terminated()) + "/" +
                           std::to_string(r.runs()),
                       r.violations(), fixed(r.rounds().mean()),
                       fixed(r.rounds().percentile(95)));
    }
  }
  b.print(std::cout);

  std::cout << "Expected shape: termination stays 100% with 0 violations in"
               " every cell (indulgence + randomization);\nround counts rise"
               " with the delay factor and with ε — the adversary can slow,"
               " never corrupt.\n";
  return 0;
}
