// T-ROUNDS — expected round counts:
//   * Algorithm 3 (common coin): O(1) expected rounds — once every live
//     process holds the same estimate, each round decides with prob. 1/2,
//     so ~2 extra rounds — INDEPENDENT of n (Section IV).
//   * Algorithm 2 (local coin): convergence needs the per-cluster coins to
//     align, so expected rounds grow with the number of clusters m, not
//     with n; at m = 1 it is 1 round, at m = n it matches Ben-Or.
// Usage: table_expected_rounds [--runs=N] [--threads=K]
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "exp/executor.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t runs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, opts.get_int("runs", 300)));
  ParallelExecutor::Options exec_opts;
  exec_opts.threads = opts.get_int("threads", 0);
  const ParallelExecutor exec(exec_opts);

  std::cout << "T-ROUNDS: decision rounds, split inputs, " << runs
            << " seeds per cell\n\n";

  Table cc("Algorithm 3 (common coin): rounds vs n — claim: flat in n,"
           " mean ~2-3");
  cc.set_columns({"n", "m", "mean rounds", "p50", "p95", "max"});
  {
    ExperimentSpec spec;
    spec.name = "t-rounds-cc";
    spec.algorithms = {Algorithm::HybridCommonCoin};
    for (const ProcId n : {4, 8, 16, 32, 64}) {
      spec.layouts.push_back(
          ClusterLayout::even(n, std::min<ClusterId>(4, n)));
    }
    spec.runs_per_cell = runs;
    spec.base_seed = 0xCC;
    for (const auto& r : exec.run(spec)) {
      cc.add_row_values(r.cell.layout.n(), r.cell.layout.m(),
                        fixed(r.rounds().mean()), fixed(r.rounds().percentile(50)),
                        fixed(r.rounds().percentile(95)),
                        fixed(r.rounds().max(), 0));
    }
  }
  cc.print(std::cout);

  Table lc("Algorithm 2 (local coin): rounds vs m at fixed n=12 — claim:"
           " grows with m, 1 at m=1, matches Ben-Or at m=n");
  lc.set_columns({"m", "mean rounds", "p50", "p95", "max"});
  {
    ExperimentSpec spec;
    spec.name = "t-rounds-lc";
    spec.algorithms = {Algorithm::HybridLocalCoin};
    for (const ClusterId m : {1, 2, 3, 4, 6, 12}) {
      spec.layouts.push_back(ClusterLayout::even(12, m));
    }
    spec.runs_per_cell = runs;
    spec.base_seed = 0x1C;
    for (const auto& r : exec.run(spec)) {
      lc.add_row_values(r.cell.layout.m(), fixed(r.rounds().mean()),
                        fixed(r.rounds().percentile(50)),
                        fixed(r.rounds().percentile(95)),
                        fixed(r.rounds().max(), 0));
    }
  }
  {
    ExperimentSpec spec;
    spec.name = "t-rounds-benor";
    spec.algorithms = {Algorithm::BenOr};
    spec.layouts = {ClusterLayout::singletons(12)};
    spec.runs_per_cell = runs;
    spec.base_seed = 0xB0;
    for (const auto& r : exec.run(spec)) {
      lc.add_row_values("ben-or (=m=12)", fixed(r.rounds().mean()),
                        fixed(r.rounds().percentile(50)),
                        fixed(r.rounds().percentile(95)),
                        fixed(r.rounds().max(), 0));
    }
  }
  lc.print(std::cout);

  Table lcn("Algorithm 2: rounds vs n at fixed m=2 — claim: flat in n"
            " (cluster count is what matters)");
  lcn.set_columns({"n", "mean rounds", "p95"});
  {
    ExperimentSpec spec;
    spec.name = "t-rounds-lc-n";
    spec.algorithms = {Algorithm::HybridLocalCoin};
    for (const ProcId n : {4, 8, 16, 32}) {
      spec.layouts.push_back(ClusterLayout::even(n, 2));
    }
    spec.runs_per_cell = runs;
    spec.base_seed = 0x1D;
    for (const auto& r : exec.run(spec)) {
      lcn.add_row_values(r.cell.layout.n(), fixed(r.rounds().mean()),
                         fixed(r.rounds().percentile(95)));
    }
  }
  lcn.print(std::cout);
  return 0;
}
