// T-ROUNDS — expected round counts:
//   * Algorithm 3 (common coin): O(1) expected rounds — once every live
//     process holds the same estimate, each round decides with prob. 1/2,
//     so ~2 extra rounds — INDEPENDENT of n (Section IV).
//   * Algorithm 2 (local coin): convergence needs the per-cluster coins to
//     align, so expected rounds grow with the number of clusters m, not
//     with n; at m = 1 it is 1 round, at m = n it matches Ben-Or.
// Usage: table_expected_rounds [--runs=N]
#include <iostream>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyco;

namespace {

Summary measure(Algorithm alg, const ClusterLayout& layout, int runs,
                std::uint64_t salt) {
  Summary rounds;
  for (int i = 0; i < runs; ++i) {
    RunConfig cfg(layout);
    cfg.alg = alg;
    cfg.inputs = split_inputs(layout.n());
    cfg.seed = mix64(salt, static_cast<std::uint64_t>(i));
    const auto r = run_consensus(cfg);
    if (r.all_correct_decided) {
      rounds.add(static_cast<double>(r.max_decision_round));
    }
  }
  return rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 300));

  std::cout << "T-ROUNDS: decision rounds, split inputs, " << runs
            << " seeds per cell\n\n";

  Table cc("Algorithm 3 (common coin): rounds vs n — claim: flat in n,"
           " mean ~2-3");
  cc.set_columns({"n", "m", "mean rounds", "p50", "p95", "max"});
  for (const ProcId n : {4, 8, 16, 32, 64}) {
    const auto layout = ClusterLayout::even(n, std::min<ClusterId>(4, n));
    const auto s = measure(Algorithm::HybridCommonCoin, layout, runs, 0xCC);
    cc.add_row_values(n, std::min<ClusterId>(4, n), fixed(s.mean()),
                      fixed(s.percentile(50)), fixed(s.percentile(95)),
                      fixed(s.max(), 0));
  }
  cc.print(std::cout);

  Table lc("Algorithm 2 (local coin): rounds vs m at fixed n=12 — claim:"
           " grows with m, 1 at m=1, matches Ben-Or at m=n");
  lc.set_columns({"m", "mean rounds", "p50", "p95", "max"});
  for (const ClusterId m : {1, 2, 3, 4, 6, 12}) {
    const auto s =
        measure(Algorithm::HybridLocalCoin, ClusterLayout::even(12, m), runs,
                0x1C);
    lc.add_row_values(m, fixed(s.mean()), fixed(s.percentile(50)),
                      fixed(s.percentile(95)), fixed(s.max(), 0));
  }
  {
    const auto s = measure(Algorithm::BenOr, ClusterLayout::singletons(12),
                           runs, 0xB0);
    lc.add_row_values("ben-or (=m=12)", fixed(s.mean()),
                      fixed(s.percentile(50)), fixed(s.percentile(95)),
                      fixed(s.max(), 0));
  }
  lc.print(std::cout);

  Table lcn("Algorithm 2: rounds vs n at fixed m=2 — claim: flat in n"
            " (cluster count is what matters)");
  lcn.set_columns({"n", "mean rounds", "p95"});
  for (const ProcId n : {4, 8, 16, 32}) {
    const auto s = measure(Algorithm::HybridLocalCoin,
                           ClusterLayout::even(n, 2), runs, 0x1D);
    lcn.add_row_values(n, fixed(s.mean()), fixed(s.percentile(95)));
  }
  lcn.print(std::cout);
  return 0;
}
