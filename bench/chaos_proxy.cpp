// chaos_proxy — standalone chaos-injection TCP proxy (src/dist/chaos.h)
// for exercising the distributed sweep engine's recovery paths from the
// command line and the nightly chaos CI job.
//
// Sits between sweep workers and their coordinator, forwarding traffic
// until a seeded per-connection byte budget runs out, then severing the
// connection mid-stream (optionally after a stall that simulates a wedged
// link). Workers started with --reconnect ride the injuries out; the
// sweep's output bytes must not change.
//
// Usage:
//   chaos_proxy --listen=PORT --target=HOST:PORT [--seed=S]
//               [--sever-bytes=MIN:MAX] [--stall-ms=N] [--max-severs=N]
//
//   --listen=PORT        port workers connect to
//   --target=HOST:PORT   the real coordinator
//   --seed=S             budget-draw seed [1]
//   --sever-bytes=MIN:MAX  bytes forwarded before the cut [65536:262144]
//   --stall-ms=N         wedge the link N ms before each cut [0]
//   --max-severs=N       injuries before turning transparent [unlimited]
//
// Runs until killed (SIGINT/SIGTERM); prints one status line per second
// with accepted/severed counts so CI logs show the injuries happening.
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "dist/chaos.h"
#include "util/assert.h"
#include "util/options.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// Parses "MIN:MAX" into a byte range.
void parse_sever_bytes(const std::string& text, std::uint64_t& lo,
                       std::uint64_t& hi) {
  const std::size_t colon = text.find(':');
  HYCO_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                     colon + 1 < text.size(),
                 "--sever-bytes: want MIN:MAX, got \"" << text << '"');
  char* end = nullptr;
  lo = std::strtoull(text.c_str(), &end, 10);
  HYCO_CHECK_MSG(end == text.c_str() + colon,
                 "--sever-bytes: bad MIN in \"" << text << '"');
  hi = std::strtoull(text.c_str() + colon + 1, &end, 10);
  HYCO_CHECK_MSG(*end == '\0',
                 "--sever-bytes: bad MAX in \"" << text << '"');
  HYCO_CHECK_MSG(lo <= hi, "--sever-bytes: MIN " << lo << " > MAX " << hi);
}

}  // namespace

int main(int argc, char** argv) try {
  const hyco::Options opts(argc, argv);
  hyco::dist::ChaosProxyOptions cfg;
  HYCO_CHECK_MSG(opts.has("listen"), "chaos_proxy: --listen=PORT is required");
  HYCO_CHECK_MSG(opts.has("target"),
                 "chaos_proxy: --target=HOST:PORT is required");
  cfg.listen_port =
      hyco::dist::validate_port(opts.get_int("listen"), "--listen");
  cfg.target = hyco::dist::parse_host_port(opts.get_string("target"));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  if (opts.has("sever-bytes")) {
    parse_sever_bytes(opts.get_string("sever-bytes"), cfg.sever_min_bytes,
                      cfg.sever_max_bytes);
  }
  cfg.stall = std::chrono::milliseconds(opts.get_int("stall-ms", 0));
  if (opts.has("max-severs")) {
    cfg.max_severs = static_cast<std::uint64_t>(opts.get_int("max-severs"));
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  hyco::dist::ChaosProxy proxy(cfg);
  proxy.start();
  std::cerr << "chaos_proxy: " << proxy.port() << " -> " << cfg.target.host
            << ':' << cfg.target.port << " (seed " << cfg.seed
            << ", sever after " << cfg.sever_min_bytes << ".."
            << cfg.sever_max_bytes << " bytes)\n";
  while (g_stop == 0) {
    ::sleep(1);
    std::cerr << "chaos_proxy: accepted " << proxy.accepted() << ", severed "
              << proxy.severed() << '\n';
  }
  proxy.stop();
  std::cerr << "chaos_proxy: exiting (severed " << proxy.severed() << ")\n";
  return 0;
} catch (const hyco::ContractViolation& e) {
  std::cerr << "chaos_proxy: " << e.what() << '\n';
  return 2;
}
