// End-to-end benchmarks (experiment B-E2E): wall-clock cost of a full
// consensus decision on the discrete-event substrate for each algorithm,
// across n and m, plus the threaded runtime.
#include <benchmark/benchmark.h>

#include "core/runner.h"
#include "runtime/threaded_runner.h"

namespace hyco {
namespace {

void run_one(benchmark::State& state, Algorithm alg, ProcId n, ClusterId m) {
  std::uint64_t seed = 1;
  std::uint64_t decided = 0;
  for (auto _ : state) {
    RunConfig cfg(ClusterLayout::even(n, m));
    cfg.alg = alg;
    cfg.inputs = split_inputs(n);
    cfg.seed = seed++;
    const auto r = run_consensus(cfg);
    decided += r.all_correct_decided ? 1 : 0;
    benchmark::DoNotOptimize(r.end_time);
  }
  state.counters["decided_frac"] =
      static_cast<double>(decided) / static_cast<double>(state.iterations());
}

void BM_HybridLocalCoinDecision(benchmark::State& state) {
  run_one(state, Algorithm::HybridLocalCoin,
          static_cast<ProcId>(state.range(0)),
          static_cast<ClusterId>(state.range(1)));
}
BENCHMARK(BM_HybridLocalCoinDecision)
    ->Args({8, 2})
    ->Args({8, 8})
    ->Args({32, 4})
    ->Args({64, 8});

void BM_HybridCommonCoinDecision(benchmark::State& state) {
  run_one(state, Algorithm::HybridCommonCoin,
          static_cast<ProcId>(state.range(0)),
          static_cast<ClusterId>(state.range(1)));
}
BENCHMARK(BM_HybridCommonCoinDecision)
    ->Args({8, 2})
    ->Args({32, 4})
    ->Args({64, 8})
    ->Args({128, 8});

void BM_BenOrDecision(benchmark::State& state) {
  run_one(state, Algorithm::BenOr, static_cast<ProcId>(state.range(0)),
          static_cast<ClusterId>(state.range(0)));
}
BENCHMARK(BM_BenOrDecision)->Arg(5)->Arg(9);

void BM_ThreadedCommonCoin(benchmark::State& state) {
  const auto n = static_cast<ProcId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ThreadRunConfig cfg(ClusterLayout::even(n, 2));
    cfg.alg = ThreadAlgorithm::CommonCoin;
    cfg.seed = seed++;
    const auto r = run_threaded(cfg);
    benchmark::DoNotOptimize(r.decided_value);
  }
}
BENCHMARK(BM_ThreadedCommonCoin)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hyco
