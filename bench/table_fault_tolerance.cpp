// T-FT — the fault-tolerance grid: the paper's "consensus even if a
// majority of processes crash" claim plus indulgence, contrasted with pure
// message-passing Ben-Or.
//
// Expected shape (paper): hybrid algorithms terminate on every pattern that
// keeps one live process in a covering set of clusters — including patterns
// with > n/2 crashes — and never violate safety on any pattern; Ben-Or
// terminates iff a majority of processes survive.
// Usage: table_fault_tolerance [--runs=N] [--threads=K]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "exp/executor.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/failure_patterns.h"

using namespace hyco;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t runs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, opts.get_int("runs", 150)));
  ParallelExecutor::Options exec_opts;
  exec_opts.threads = opts.get_int("threads", 0);
  const ParallelExecutor exec(exec_opts);

  std::cout << "T-FT: termination and safety per failure pattern "
               "(fig1-right layout {0},{1,2,3,4},{5,6}, n=7)\n\n";
  const auto layout = ClusterLayout::fig1_right();
  Rng rng(0xFA);

  struct Scenario {
    std::string label;
    FailureScenario s;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"no crashes (f=0)", failure_patterns::none(layout)});
  scenarios.push_back(
      {"random minority", failure_patterns::random_minority(layout, rng, 300)});
  scenarios.push_back(
      {"majority crash, 1 survivor in majority cluster (f=6!)",
       failure_patterns::majority_crash_one_survivor(layout, rng, 300)});
  scenarios.push_back(
      {"covering clusters each keep 1 (f=5)",
       failure_patterns::one_survivor_per_cluster(layout, {1, 2}, rng, 300)});
  scenarios.push_back({"covering set dead from t=0",
                       failure_patterns::kill_covering_set(layout, rng, 0)});
  scenarios.push_back({"3 mid-broadcast crashes",
                       failure_patterns::mid_broadcast(layout, 3, 1, rng)});

  std::vector<CrashAxis> crash_axes;
  for (const auto& [label, s] : scenarios) {
    crash_axes.push_back(CrashAxis::of(label, s.plan));
  }

  // One grid for both hybrid algorithms on fig1_right, one for Ben-Or on
  // singleton clusters; expansion is row-major (algorithms outer, crashes
  // inner), so hybrid cell (a, s) sits at a * S + s.
  ExperimentSpec hybrid;
  hybrid.name = "t-ft-hybrid";
  hybrid.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  hybrid.layouts = {layout};
  hybrid.crashes = crash_axes;
  hybrid.runs_per_cell = runs;
  hybrid.max_rounds = 200;  // blocked runs quiesce quickly
  hybrid.base_seed = 0xA1;

  ExperimentSpec benor = hybrid;
  benor.name = "t-ft-benor";
  benor.algorithms = {Algorithm::BenOr};
  benor.layouts = {ClusterLayout::singletons(7)};
  benor.base_seed = 0xA3;

  const auto hybrid_res = exec.run(hybrid);
  const auto benor_res = exec.run(benor);

  Table t("termination rate (terminated/runs) and safety violations");
  t.set_columns({"failure pattern", "crashes", "hybrid should terminate?",
                 "hybrid-LC", "hybrid-CC", "ben-or", "violations (all)"});

  const std::size_t S = scenarios.size();
  for (std::size_t s = 0; s < S; ++s) {
    const auto& lc = hybrid_res[s];
    const auto& cc = hybrid_res[S + s];
    const auto& bo = benor_res[s];
    const auto frac = [&](const CellResult& c) {
      return std::to_string(c.terminated()) + "/" + std::to_string(c.runs());
    };
    t.add_row_values(scenarios[s].label, scenarios[s].s.crash_count,
                     scenarios[s].s.hybrid_should_terminate ? "yes" : "no",
                     frac(lc), frac(cc), frac(bo),
                     lc.violations() + cc.violations() + bo.violations());
  }
  t.print(std::cout);

  std::cout << "Reading: the f=6 row is the paper's headline — 6 of 7"
               " processes crash, yet the hybrid algorithms decide on every"
               " run because the surviving majority-cluster member carries"
               " the weight of its whole cluster; Ben-Or blocks whenever"
               " >= n/2 crash. Violations must be 0 everywhere"
               " (indulgence).\n";
  return 0;
}
