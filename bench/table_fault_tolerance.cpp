// T-FT — the fault-tolerance grid: the paper's "consensus even if a
// majority of processes crash" claim plus indulgence, contrasted with pure
// message-passing Ben-Or.
//
// Expected shape (paper): hybrid algorithms terminate on every pattern that
// keeps one live process in a covering set of clusters — including patterns
// with > n/2 crashes — and never violate safety on any pattern; Ben-Or
// terminates iff a majority of processes survive.
// Usage: table_fault_tolerance [--runs=N]
#include <iostream>

#include "core/runner.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/failure_patterns.h"

using namespace hyco;

namespace {

struct Cell {
  int terminated = 0;
  int violations = 0;
  Summary rounds;
};

Cell run_cell(Algorithm alg, const ClusterLayout& layout,
              const CrashPlan& plan, int runs, std::uint64_t salt) {
  Cell c;
  for (int i = 0; i < runs; ++i) {
    RunConfig cfg(layout);
    cfg.alg = alg;
    cfg.inputs = split_inputs(layout.n());
    cfg.crashes = plan;
    cfg.seed = mix64(salt, static_cast<std::uint64_t>(i));
    cfg.max_rounds = 200;  // blocked runs quiesce quickly
    const auto r = run_consensus(cfg);
    c.terminated += r.all_correct_decided ? 1 : 0;
    c.violations += r.safe() ? 0 : 1;
    if (r.all_correct_decided) {
      c.rounds.add(static_cast<double>(r.max_decision_round));
    }
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int runs = static_cast<int>(opts.get_int("runs", 150));

  std::cout << "T-FT: termination and safety per failure pattern "
               "(fig1-right layout {0},{1,2,3,4},{5,6}, n=7)\n\n";
  const auto layout = ClusterLayout::fig1_right();
  Rng rng(0xFA);

  struct Scenario {
    std::string label;
    FailureScenario s;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"no crashes (f=0)", failure_patterns::none(layout)});
  scenarios.push_back(
      {"random minority", failure_patterns::random_minority(layout, rng, 300)});
  scenarios.push_back(
      {"majority crash, 1 survivor in majority cluster (f=6!)",
       failure_patterns::majority_crash_one_survivor(layout, rng, 300)});
  scenarios.push_back(
      {"covering clusters each keep 1 (f=5)",
       failure_patterns::one_survivor_per_cluster(layout, {1, 2}, rng, 300)});
  scenarios.push_back({"covering set dead from t=0",
                       failure_patterns::kill_covering_set(layout, rng, 0)});
  scenarios.push_back({"3 mid-broadcast crashes",
                       failure_patterns::mid_broadcast(layout, 3, 1, rng)});

  Table t("termination rate (terminated/runs) and safety violations");
  t.set_columns({"failure pattern", "crashes", "hybrid should terminate?",
                 "hybrid-LC", "hybrid-CC", "ben-or", "violations (all)"});

  for (const auto& [label, s] : scenarios) {
    const auto lc =
        run_cell(Algorithm::HybridLocalCoin, layout, s.plan, runs, 0xA1);
    const auto cc =
        run_cell(Algorithm::HybridCommonCoin, layout, s.plan, runs, 0xA2);
    const auto bo = run_cell(Algorithm::BenOr, ClusterLayout::singletons(7),
                             s.plan, runs, 0xA3);
    const auto frac = [&](const Cell& c) {
      return std::to_string(c.terminated) + "/" + std::to_string(runs);
    };
    t.add_row_values(label, s.crash_count,
                     s.hybrid_should_terminate ? "yes" : "no", frac(lc),
                     frac(cc), frac(bo),
                     lc.violations + cc.violations + bo.violations);
  }
  t.print(std::cout);

  std::cout << "Reading: the f=6 row is the paper's headline — 6 of 7"
               " processes crash, yet the hybrid algorithms decide on every"
               " run because the surviving majority-cluster member carries"
               " the weight of its whole cluster; Ben-Or blocks whenever"
               " >= n/2 crash. Violations must be 0 everywhere"
               " (indulgence).\n";
  return 0;
}
