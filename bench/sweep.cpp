// sweep — run an arbitrary experiment grid from flags and emit the
// aggregate as an ASCII table, CSV, and/or JSON. The declarative engine
// (src/exp/) fans all (cell × seed) runs across worker threads; aggregates
// are bit-identical at every --threads value.
//
// Example (reproduces the shape of T-ROUNDS' first table):
//   sweep --alg=common_coin --n=4,8,16,32,64 --m=4 --runs=300 \
//         --threads=8 --json=out.json
//
// Flags:
//   --alg=A,B       local_coin | common_coin | ben_or      [local_coin]
//   --n=8,16,32     process counts                         [8]
//   --m=1,4         cluster counts (cells with m > n skip) [1]
//   --runs=N        seeds per cell                         [40]
//   --threads=K     workers; 0 = hardware concurrency      [0]
//   --seed=S        base seed                              [1]
//   --eps=0,0.25    common-coin corruption probabilities   [0]
//   --inputs=KIND   split | all0 | all1                    [split]
//   --delay=SPEC    uniform:LO:HI | constant:T | exp:MEAN  [uniform:50:150]
//   --crash=C,...   none | minority | covering-dead | mid-broadcast  [none]
//   --max-rounds=R  per-run round cap                      [5000]
//   --json=PATH     write JSON report (- for stdout)
//   --csv=PATH      write CSV report (- for stdout)
//   --replay=N      re-run up to N failing seeds with tracing on
//   --quiet         suppress the ASCII table
//
// Adversarial scenario flags (src/scenario/; all default off — combined
// into one scenario axis value applied to every cell):
//   --loss=P        per-link message loss probability      [0]
//   --dup=P         per-link duplication probability       [0]
//   --reorder=T     bounded-reordering jitter (ns/us/ms)   [0]
//   --partition=S,... scheduled cuts, KIND:IDS@START..HEAL with KIND
//                   cluster | procs | split; HEAL may be "never"
//                   (e.g. cluster:0-1@5ms..20ms)
//   --recover=S,... crash-recovery cycles, PID@DOWN..UP or
//                   cluster:X@DOWN..UP (e.g. 3@2ms..8ms)
//   --coin-attack=BIT:BOOST delay round>=2 phase-1 carriers of BIT by BOOST
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/executor.h"
#include "exp/replay.h"
#include "exp/report.h"
#include "scenario/engine.h"
#include "scenario/scenario.h"
#include "util/assert.h"
#include "util/options.h"
#include "workload/failure_patterns.h"

using namespace hyco;

namespace {

Algorithm parse_algorithm(const std::string& name) {
  if (name == "local_coin" || name == "lc" || name == "hybrid-LC") {
    return Algorithm::HybridLocalCoin;
  }
  if (name == "common_coin" || name == "cc" || name == "hybrid-CC") {
    return Algorithm::HybridCommonCoin;
  }
  if (name == "ben_or" || name == "benor" || name == "ben-or") {
    return Algorithm::BenOr;
  }
  HYCO_CHECK_MSG(false, "--alg: unknown algorithm \"" << name
                        << "\" (want local_coin | common_coin | ben_or)");
  return Algorithm::HybridLocalCoin;  // unreachable
}

InputKind parse_inputs(const std::string& name) {
  if (name == "split") return InputKind::Split;
  if (name == "all0" || name == "all-0") return InputKind::AllZero;
  if (name == "all1" || name == "all-1") return InputKind::AllOne;
  HYCO_CHECK_MSG(false, "--inputs: unknown kind \"" << name
                        << "\" (want split | all0 | all1)");
  return InputKind::Split;  // unreachable
}

DelayAxis parse_delay(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  const auto num = [&](std::size_t i) {
    char* end = nullptr;
    const double v = std::strtod(parts[i].c_str(), &end);
    HYCO_CHECK_MSG(end != parts[i].c_str() && *end == '\0',
                   "--delay: \"" << parts[i] << "\" is not a number in \""
                                 << spec << '"');
    return v;
  };
  if (parts[0] == "uniform" && parts.size() == 3) {
    return DelayAxis::of(spec, DelayConfig::uniform(
                                   static_cast<SimTime>(num(1)),
                                   static_cast<SimTime>(num(2))));
  }
  if (parts[0] == "constant" && parts.size() == 2) {
    return DelayAxis::of(spec,
                         DelayConfig::constant_of(static_cast<SimTime>(num(1))));
  }
  if (parts[0] == "exp" && parts.size() == 2) {
    return DelayAxis::of(spec, DelayConfig::exponential(num(1)));
  }
  HYCO_CHECK_MSG(false, "--delay: malformed spec \"" << spec
                        << "\" (want uniform:LO:HI | constant:T | exp:MEAN)");
  return DelayAxis{};  // unreachable
}

CrashAxis parse_crash(const std::string& name, std::uint64_t base_seed) {
  if (name == "none") return CrashAxis::none();
  if (name == "minority") {
    return CrashAxis::of(name, [base_seed](const ClusterLayout& l) {
      Rng rng(mix64(base_seed, 0xC8A5));
      return failure_patterns::random_minority(l, rng, 300).plan;
    });
  }
  if (name == "covering-dead") {
    return CrashAxis::of(name, [base_seed](const ClusterLayout& l) {
      Rng rng(mix64(base_seed, 0xC8A6));
      return failure_patterns::kill_covering_set(l, rng, 0).plan;
    });
  }
  if (name == "mid-broadcast") {
    return CrashAxis::of(name, [base_seed](const ClusterLayout& l) {
      Rng rng(mix64(base_seed, 0xC8A7));
      const ProcId count = std::max<ProcId>(1, l.n() / 4);
      return failure_patterns::mid_broadcast(l, count, 1, rng).plan;
    });
  }
  HYCO_CHECK_MSG(false,
                 "--crash: unknown pattern \"" << name
                     << "\" (want none | minority | covering-dead |"
                        " mid-broadcast)");
  return CrashAxis::none();  // unreachable
}

ScenarioConfig parse_scenario(const Options& opts) {
  ScenarioConfig scn;
  scn.link.loss = opts.get_double("loss", 0.0);
  scn.link.dup = opts.get_double("dup", 0.0);
  if (opts.has("reorder")) {
    scn.link.reorder_max = parse_sim_time(opts.get_string("reorder"));
  }
  if (opts.has("partition")) {
    for (const auto& s : opts.get_string_list("partition")) {
      scn.partitions.push_back(parse_partition_spec(s));
    }
  }
  if (opts.has("recover")) {
    for (const auto& s : opts.get_string_list("recover")) {
      scn.recoveries.push_back(parse_recovery_spec(s));
    }
  }
  if (opts.has("coin-attack")) {
    const std::string spec = opts.get_string("coin-attack");
    const std::size_t colon = spec.find(':');
    HYCO_CHECK_MSG(colon != std::string::npos,
                   "--coin-attack: want BIT:BOOST, got \"" << spec << '"');
    const std::string bit = spec.substr(0, colon);
    HYCO_CHECK_MSG(bit == "0" || bit == "1",
                   "--coin-attack: bit must be 0 or 1 in \"" << spec << '"');
    scn.coin_attack.enabled = true;
    scn.coin_attack.bit = bit == "1" ? 1 : 0;
    scn.coin_attack.boost = parse_sim_time(spec.substr(colon + 1));
  }
  return scn;
}

void write_report(const std::string& path,
                  const std::function<void(std::ostream&)>& emit) {
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream out(path);
  HYCO_CHECK_MSG(out.good(), "cannot open \"" << path << "\" for writing");
  emit(out);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  try {
    ExperimentSpec spec;
    spec.name = "sweep";
    spec.base_seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    spec.runs_per_cell = static_cast<int>(opts.get_int("runs", 40));
    spec.max_rounds = static_cast<Round>(opts.get_int("max-rounds", 5000));
    spec.inputs = parse_inputs(opts.get_string("inputs", "split"));
    spec.coin_epsilons.clear();
    for (const double e : opts.get_double_list("eps", {0.0})) {
      spec.coin_epsilons.push_back(e);
    }

    spec.algorithms.clear();
    for (const auto& a : opts.get_string_list("alg", {"local_coin"})) {
      spec.algorithms.push_back(parse_algorithm(a));
    }

    spec.delays = {parse_delay(opts.get_string("delay", "uniform:50:150"))};

    spec.crashes.clear();
    for (const auto& c : opts.get_string_list("crash", {"none"})) {
      spec.crashes.push_back(parse_crash(c, spec.base_seed));
    }

    spec.scenarios = {ScenarioAxis::of(parse_scenario(opts))};

    const auto ns = opts.get_int_list("n", {8});
    const auto ms = opts.get_int_list("m", {1});
    for (const auto n : ns) {
      HYCO_CHECK_MSG(n >= 1, "--n: process count must be >= 1, got " << n);
      for (const auto m : ms) {
        HYCO_CHECK_MSG(m >= 1, "--m: cluster count must be >= 1, got " << m);
        if (m > n) {
          std::cerr << "sweep: skipping n=" << n << " m=" << m
                    << " (more clusters than processes)\n";
          continue;
        }
        spec.layouts.push_back(ClusterLayout::even(
            static_cast<ProcId>(n), static_cast<ClusterId>(m)));
      }
    }
    HYCO_CHECK_MSG(!spec.layouts.empty(), "no valid (n, m) layouts in grid");

    // Validate the scenario against every layout here, on the main thread:
    // an out-of-range cluster/proc id would otherwise throw inside a worker
    // thread and terminate the process instead of exiting 2.
    for (const auto& axis : spec.scenarios) {
      for (const auto& layout : spec.layouts) {
        validate_scenario(axis.config, layout);
      }
    }

    ParallelExecutor::Options exec_opts;
    exec_opts.threads = opts.get_int("threads", 0);
    const ParallelExecutor exec(exec_opts);

    const auto cells = spec.expand();
    const std::size_t total =
        cells.size() * static_cast<std::size_t>(spec.runs_per_cell);
    const unsigned workers = exec.worker_count(total);
    std::cerr << "sweep: " << cells.size() << " cells x "
              << spec.runs_per_cell << " seeds = " << total << " runs on "
              << workers << " threads\n";
    const auto results = exec.run(cells);

    if (!opts.get_bool("quiet")) {
      to_table("sweep results", results).print(std::cout);
    }
    if (opts.has("csv")) {
      write_report(opts.get_string("csv"), [&](std::ostream& out) {
        write_cell_csv(out, results);
      });
    }
    if (opts.has("json")) {
      write_report(opts.get_string("json"), [&](std::ostream& out) {
        write_cell_json(out, spec.name, results);
      });
    }

    const auto max_replays =
        static_cast<std::size_t>(opts.get_int("replay", 0));
    if (max_replays > 0) {
      const auto reports = replay_failures(results, max_replays);
      std::cout << "replayed " << reports.size() << " failing run(s)\n";
      dump_replays(std::cout, reports);
    }
  } catch (const ContractViolation& e) {
    std::cerr << "sweep: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
