// sweep — run an arbitrary experiment grid from flags and emit the
// aggregate as an ASCII table, CSV, and/or JSON. The declarative engine
// (src/exp/) fans all (cell × seed) runs across worker threads; aggregates
// are bit-identical at every --threads value.
//
// Example (reproduces the shape of T-ROUNDS' first table):
//   sweep --alg=common_coin --n=4,8,16,32,64 --m=4 --runs=300 \
//         --threads=8 --json=out.json
//
// Flags:
//   --alg=A,B       local_coin | common_coin | ben_or      [local_coin]
//   --n=8,16,32     process counts                         [8]
//   --m=1,4         cluster counts (cells with m > n skip) [1]
//   --runs=N        seeds per cell                         [40]
//   --threads=K     workers; 0 = hardware concurrency      [0]
//   --lanes=K       independent runs interleaved per worker [1]
//                   tick-by-tick (consensus cells only);
//                   artifacts are byte-identical at any K
//   --seed=S        base seed                              [1]
//   --eps=0,0.25    common-coin corruption probabilities   [0]
//   --inputs=KIND   split | all0 | all1                    [split]
//   --delay=SPEC    uniform:LO:HI | constant:T | exp:MEAN  [uniform:50:150]
//   --crash=C,...   none | minority | covering-dead | mid-broadcast  [none]
//   --max-rounds=R  per-run round cap                      [5000]
//   --json=PATH     write JSON report (- for stdout)
//   --csv=PATH      write CSV report (- for stdout)
//   --csv-shard=N   shard the CSV into PATH.000, PATH.001, … N cells each
//   --replay=N      re-run up to N failing seeds with tracing on
//   --quiet         suppress the ASCII table
//
// Streaming pipeline (bounded memory for multi-million-run grids; see
// README "Streaming sweeps"):
//   --stream          drop per-run records: memory stays O(cells) while
//                     CSV/JSON stay byte-identical to batch mode
//   --max-records=N   batch mode: retain at most N records per cell (the
//                     lowest run indices win)
//   --chunk=N         max runs per work unit (auto-shrunk so every worker
//                     has chunks to steal; grain never changes output bytes)
//                     [1024]
//   --checkpoint=PATH append each completed chunk's and cell's exact
//                     accumulator state to PATH (flushed per block; an
//                     existing checkpoint is never truncated without
//                     --resume)
//   --resume          load PATH first and skip its completed work. Resume
//                     is *chunk-granular*: a cell interrupted mid-flight
//                     re-runs only its uncovered run ranges, so even a
//                     single monster cell resumes where it left off. Final
//                     artifacts are byte-identical to an uninterrupted run.
//                     The loaded trail is also rewritten in place as its
//                     compacted equivalent (temp file + rename), so
//                     repeated crash/resume cycles never grow the file
//                     without bound.
//   --progress        1 Hz stderr line: runs & cells done, runs/s, ETA.
//                     With --service the rate and ETA count decided
//                     service ops instead of runs (a single service run
//                     can take minutes; runs/s would read 0 throughout)
//
// Distributed sweeps (src/dist/; see README "Distributed sweeps"):
//   --serve=PORT      coordinate: listen on PORT, lease chunk-sized run
//                     ranges to connecting workers, and merge their
//                     accumulators. Emits the same artifacts as a local
//                     run — byte-identical at any worker count, lease
//                     grain, or arrival order. Combines with --checkpoint
//                     (the work ledger doubles as the chunk checkpoint).
//   --connect=HOST:PORT  work for a coordinator started with the *same
//                     grid flags* (the handshake verifies the grid
//                     fingerprint). Emits no artifacts locally.
//                     Local-executor knobs (--threads/--chunk/--stream/
//                     --max-records) are rejected in both modes: workers
//                     parallelize with --workers, coordinators shape work
//                     units with --lease.
//   --workers=N       with --connect: parallel worker sessions [1]
//   --reconnect=N     with --connect: mid-sweep recovery budget — after a
//                     lost connection (sever, coordinator crash/restart) a
//                     session redials with jittered exponential backoff
//                     and re-Hellos, giving up after N consecutive failed
//                     attempts (the counter resets on every successful
//                     re-handshake). 0 = a mid-sweep disconnect is fatal [5]
//   --lease=N         with --serve: runs per lease chunk [4096]
//   --lease-floor=N   with --serve: adaptive-tail floor — as the pending
//                     pool drains, lease sizes halve from --lease down to
//                     N so the last chunks finish on all workers together
//                     instead of one straggler. Never changes output
//                     bytes; set equal to --lease to disable [32]
//   --lease-ttl=SEC   with --serve: re-queue leases not folded in SEC [60].
//                     Size --lease so a chunk comfortably finishes within
//                     the TTL: an expired lease is re-executed elsewhere
//                     (late results are dropped as duplicates — output is
//                     unaffected, but the work is done twice and the
//                     coordinator warns on stderr).
//
// Adversarial scenario flags (src/scenario/; all default off — combined
// into one scenario axis value applied to every cell):
//   --loss=P        per-link message loss probability      [0]
//   --dup=P         per-link duplication probability       [0]
//   --reorder=T     bounded-reordering jitter (ns/us/ms)   [0]
//   --partition=S,... scheduled cuts, KIND:IDS[:flap=D:period=D][@START..HEAL]
//                   with KIND cluster | procs | split; HEAL may be "never";
//                   flap/period make a square-wave cut/heal cycle
//                   (e.g. cluster:0-1@5ms..20ms, cluster:0:flap=2ms:period=4ms)
//   --recover=S,... crash-recovery cycles, PID@DOWN..UP or
//                   cluster:X@DOWN..UP (e.g. 3@2ms..8ms)
//   --coin-attack=BIT:BOOST delay round>=2 phase-1 carriers of BIT by BOOST
//   --skew=S,...    clock skew / slow processes: proc:ID:xF or
//                   cluster:ID:xF step-speed multipliers (e.g. proc:3:x4
//                   makes p3's steps 4x slower; x0.5 makes a fast process)
//
// Observability (src/obs/; see README "Observability" — every section is
// opt-in and strictly appended, so default artifacts stay byte-identical):
//   --log-level=L     trace | debug | info | warn | error       [warn]
//   --net-stats       append per-cell message-class counter columns
//                     (delivered / dropped_* / duplicated / held) to
//                     CSV/JSON
//   --phase-metrics   collect per-phase latency timings (phase1/phase2 ns,
//                     decide spread, coin flips) and append their columns.
//                     Changes the grid fingerprint (timed and untimed runs
//                     checkpoint separately) but never the base columns.
//   --profile         append executor wall/cpu/msgs-per-sec columns (host
//                     timing — NOT deterministic; local mode only)
//   --trace-out=PATH  after the sweep, re-run one (cell, run) with tracing
//                     on and export its event timeline ("-" for stdout)
//   --trace-cell=I    cell index to trace                       [0]
//   --trace-run=K     run index within the cell to trace        [0]
//   --trace-format=F  jsonl | binary                            [jsonl]
//   --trace-cap=N     trace ring capacity in records; a run that records
//                     more keeps the trailing window and the export is
//                     marked truncated                          [65536]
//   --health=PORT     with --serve: read-only HTTP progress endpoint
//                     (0 = kernel-assigned; printed on stderr). Serves one
//                     "hyco-health/2" JSON document per request, including
//                     the recovery counters (lease expiries, re-queued
//                     chunks, worker reconnects, checkpoint flush age).
//
// Replicated service workload (src/service/; see README "Replicated
// service" and docs/cli.md for the full flag registry):
//   --service         run the replicated-state-machine workload: closed-
//                     loop clients submit ops, replicas batch them into
//                     sequenced consensus slots, and cells report decided-
//                     ops/sec plus client-latency p50/p99/p999 decomposed
//                     into batching-wait / slot-queueing / consensus
//                     components. Forces the hybrid common-coin algorithm;
//                     rejects --alg, --inputs, --phase-metrics, and
//                     --crash=mid-broadcast. Combines with --trace-out:
//                     the traced re-run records service milestones (op /
//                     flush / slot / deliver) alongside network events.
//   --clients=N       simulated closed-loop clients            [100000]
//   --ops-per-client=K  ops each client submits (bounds a run) [1]
//   --batch=B,...     max ops per proposed batch (axis)        [64]
//   --batch-delay=D   ns a partial batch waits before flushing
//                     (0 = flush every op)                     [50000]
//   --svc-load=R,...  offered load in ops/sec across all clients;
//                     0 = no think time (axis)                 [0]
//
// Unknown --flags are rejected (exit 2): the registry in
// src/exp/sweep_flags.cpp is the single source of truth, and docs/cli.md
// documents every entry (enforced by tests and CI).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/worker.h"
#include "exp/checkpoint.h"
#include "exp/executor.h"
#include "exp/replay.h"
#include "exp/report.h"
#include "exp/sweep_flags.h"
#include "obs/trace_export.h"
#include "scenario/engine.h"
#include "scenario/scenario.h"
#include "service/service_runner.h"
#include "sim/trace.h"
#include "util/assert.h"
#include "util/log.h"
#include "util/options.h"
#include "workload/failure_patterns.h"

using namespace hyco;

namespace {

Algorithm parse_algorithm(const std::string& name) {
  if (name == "local_coin" || name == "lc" || name == "hybrid-LC") {
    return Algorithm::HybridLocalCoin;
  }
  if (name == "common_coin" || name == "cc" || name == "hybrid-CC") {
    return Algorithm::HybridCommonCoin;
  }
  if (name == "ben_or" || name == "benor" || name == "ben-or") {
    return Algorithm::BenOr;
  }
  HYCO_CHECK_MSG(false, "--alg: unknown algorithm \"" << name
                        << "\" (want local_coin | common_coin | ben_or)");
  return Algorithm::HybridLocalCoin;  // unreachable
}

InputKind parse_inputs(const std::string& name) {
  if (name == "split") return InputKind::Split;
  if (name == "all0" || name == "all-0") return InputKind::AllZero;
  if (name == "all1" || name == "all-1") return InputKind::AllOne;
  HYCO_CHECK_MSG(false, "--inputs: unknown kind \"" << name
                        << "\" (want split | all0 | all1)");
  return InputKind::Split;  // unreachable
}

DelayAxis parse_delay(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  const auto num = [&](std::size_t i) {
    char* end = nullptr;
    const double v = std::strtod(parts[i].c_str(), &end);
    HYCO_CHECK_MSG(end != parts[i].c_str() && *end == '\0',
                   "--delay: \"" << parts[i] << "\" is not a number in \""
                                 << spec << '"');
    return v;
  };
  if (parts[0] == "uniform" && parts.size() == 3) {
    return DelayAxis::of(spec, DelayConfig::uniform(
                                   static_cast<SimTime>(num(1)),
                                   static_cast<SimTime>(num(2))));
  }
  if (parts[0] == "constant" && parts.size() == 2) {
    return DelayAxis::of(spec,
                         DelayConfig::constant_of(static_cast<SimTime>(num(1))));
  }
  if (parts[0] == "exp" && parts.size() == 2) {
    return DelayAxis::of(spec, DelayConfig::exponential(num(1)));
  }
  HYCO_CHECK_MSG(false, "--delay: malformed spec \"" << spec
                        << "\" (want uniform:LO:HI | constant:T | exp:MEAN)");
  return DelayAxis{};  // unreachable
}

CrashAxis parse_crash(const std::string& name, std::uint64_t base_seed) {
  if (name == "none") return CrashAxis::none();
  if (name == "minority") {
    return CrashAxis::of(name, [base_seed](const ClusterLayout& l) {
      Rng rng(mix64(base_seed, 0xC8A5));
      return failure_patterns::random_minority(l, rng, 300).plan;
    });
  }
  if (name == "covering-dead") {
    return CrashAxis::of(name, [base_seed](const ClusterLayout& l) {
      Rng rng(mix64(base_seed, 0xC8A6));
      return failure_patterns::kill_covering_set(l, rng, 0).plan;
    });
  }
  if (name == "mid-broadcast") {
    return CrashAxis::of(name, [base_seed](const ClusterLayout& l) {
      Rng rng(mix64(base_seed, 0xC8A7));
      const ProcId count = std::max<ProcId>(1, l.n() / 4);
      return failure_patterns::mid_broadcast(l, count, 1, rng).plan;
    });
  }
  HYCO_CHECK_MSG(false,
                 "--crash: unknown pattern \"" << name
                     << "\" (want none | minority | covering-dead |"
                        " mid-broadcast)");
  return CrashAxis::none();  // unreachable
}

ScenarioConfig parse_scenario(const Options& opts) {
  ScenarioConfig scn;
  scn.link.loss = opts.get_double("loss", 0.0);
  scn.link.dup = opts.get_double("dup", 0.0);
  if (opts.has("reorder")) {
    scn.link.reorder_max = parse_sim_time(opts.get_string("reorder"));
  }
  if (opts.has("partition")) {
    for (const auto& s : opts.get_string_list("partition")) {
      scn.partitions.push_back(parse_partition_spec(s));
    }
  }
  if (opts.has("recover")) {
    for (const auto& s : opts.get_string_list("recover")) {
      scn.recoveries.push_back(parse_recovery_spec(s));
    }
  }
  if (opts.has("skew")) {
    for (const auto& s : opts.get_string_list("skew")) {
      scn.skews.push_back(parse_skew_spec(s));
    }
  }
  if (opts.has("coin-attack")) {
    const std::string spec = opts.get_string("coin-attack");
    const std::size_t colon = spec.find(':');
    HYCO_CHECK_MSG(colon != std::string::npos,
                   "--coin-attack: want BIT:BOOST, got \"" << spec << '"');
    const std::string bit = spec.substr(0, colon);
    HYCO_CHECK_MSG(bit == "0" || bit == "1",
                   "--coin-attack: bit must be 0 or 1 in \"" << spec << '"');
    scn.coin_attack.enabled = true;
    scn.coin_attack.bit = bit == "1" ? 1 : 0;
    scn.coin_attack.boost = parse_sim_time(spec.substr(colon + 1));
  }
  return scn;
}

void write_report(const std::string& path,
                  const std::function<void(std::ostream&)>& emit) {
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream out(path);
  HYCO_CHECK_MSG(out.good(), "cannot open \"" << path << "\" for writing");
  emit(out);
}

/// Validated distributed-mode flags; parsed on the main thread before any
/// socket or worker thread exists, so bad input exits 2 with an actionable
/// message instead of aborting a thread (same pattern as
/// validate_scenario()).
struct DistFlags {
  bool serve = false;
  bool connect = false;
  std::uint16_t serve_port = 0;
  dist::HostPort target;
  unsigned workers = 1;
  std::uint64_t lease_grain = 4096;
  std::uint64_t lease_floor = 32;
  std::chrono::milliseconds lease_ttl{60'000};
  int health_port = -1;  ///< -1 = no health endpoint
  unsigned reconnect = 5;  ///< worker mid-sweep reconnect budget
};

DistFlags parse_dist_flags(const Options& opts) {
  DistFlags f;
  f.serve = opts.has("serve");
  f.connect = opts.has("connect");
  HYCO_CHECK_MSG(!(f.serve && f.connect),
                 "--serve and --connect are mutually exclusive (a process"
                 " either coordinates a grid or works for one)");
  if (f.serve) {
    f.serve_port = dist::validate_port(opts.get_int("serve"), "--serve");
  }
  if (f.connect) {
    f.target = dist::parse_host_port(opts.get_string("connect"));
  }
  if (opts.has("workers")) {
    HYCO_CHECK_MSG(f.connect, "--workers only applies to --connect mode");
    const auto w = opts.get_int("workers");
    HYCO_CHECK_MSG(w >= 1 && w <= 4096,
                   "--workers must be in [1, 4096], got " << w);
    f.workers = static_cast<unsigned>(w);
  }
  if (opts.has("lease")) {
    HYCO_CHECK_MSG(f.serve, "--lease only applies to --serve mode");
    const auto grain = opts.get_int("lease");
    HYCO_CHECK_MSG(grain >= 1, "--lease must be >= 1, got " << grain);
    f.lease_grain = static_cast<std::uint64_t>(grain);
  }
  if (opts.has("lease-floor")) {
    HYCO_CHECK_MSG(f.serve, "--lease-floor only applies to --serve mode");
    const auto floor = opts.get_int("lease-floor");
    HYCO_CHECK_MSG(floor >= 1, "--lease-floor must be >= 1, got " << floor);
    f.lease_floor = static_cast<std::uint64_t>(floor);
  }
  if (opts.has("reconnect")) {
    HYCO_CHECK_MSG(f.connect, "--reconnect only applies to --connect mode");
    const auto r = opts.get_int("reconnect");
    HYCO_CHECK_MSG(r >= 0 && r <= 100'000,
                   "--reconnect must be in [0, 100000], got " << r);
    f.reconnect = static_cast<unsigned>(r);
  }
  if (opts.has("lease-ttl")) {
    HYCO_CHECK_MSG(f.serve, "--lease-ttl only applies to --serve mode");
    const auto ttl = opts.get_int("lease-ttl");
    HYCO_CHECK_MSG(ttl >= 1 && ttl <= 86'400,
                   "--lease-ttl must be in [1, 86400] seconds, got " << ttl);
    f.lease_ttl = std::chrono::seconds(ttl);
  }
  if (opts.has("health")) {
    HYCO_CHECK_MSG(f.serve,
                   "--health only applies to --serve mode (the endpoint"
                   " reports the coordinator's ledger)");
    const auto hp = opts.get_int("health");
    HYCO_CHECK_MSG(hp >= 0 && hp <= 65'535,
                   "--health must be a port in [0, 65535], got " << hp);
    f.health_port = static_cast<int>(hp);
  }
  if (opts.has("profile")) {
    // Profile columns are host wall/CPU timing — meaningless to merge
    // across machines and a determinism hazard on the wire.
    HYCO_CHECK_MSG(!f.serve && !f.connect,
                   "--profile only applies to local execution (host timing"
                   " does not aggregate across distributed workers)");
  }
  if (f.connect) {
    for (const char* banned :
         {"json", "csv", "csv-shard", "checkpoint", "resume", "replay",
          "net-stats", "trace-out", "trace-cell", "trace-run",
          "trace-format", "trace-cap"}) {
      HYCO_CHECK_MSG(!opts.has(banned),
                     "--" << banned << " cannot combine with --connect"
                          << " (artifacts are emitted by the --serve"
                             " coordinator)");
    }
    for (const char* banned :
         {"threads", "chunk", "stream", "max-records", "progress", "lanes"}) {
      HYCO_CHECK_MSG(!opts.has(banned),
                     "--" << banned << " cannot combine with --connect"
                          << " (worker parallelism is --workers=N; the"
                             " coordinator owns execution and reporting)");
    }
  }
  if (f.serve) {
    // These shape the *local* executor, which never runs in coordinator
    // mode — reject them so a silently dead knob can't mislead anyone.
    for (const char* banned :
         {"threads", "chunk", "stream", "max-records", "lanes"}) {
      HYCO_CHECK_MSG(!opts.has(banned),
                     "--" << banned << " cannot combine with --serve"
                          << " (workers execute the runs; use --lease to"
                             " shape work units)");
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  try {
    // Every flag must be in the registry (src/exp/sweep_flags.cpp): a
    // typo'd flag exits 2 instead of silently falling back to a default.
    for (const std::string& key : opts.keys()) {
      HYCO_CHECK_MSG(is_sweep_flag(key),
                     "--" << key << ": unknown flag (docs/cli.md lists the"
                             " full registry)");
    }

    // Log level first, on the main thread, so a typo exits 2 before any
    // worker thread exists and the chosen level covers all startup logging.
    if (opts.has("log-level")) {
      const std::string name = opts.get_string("log-level");
      const auto lvl = parse_log_level(name);
      HYCO_CHECK_MSG(lvl.has_value(),
                     "--log-level: unknown level \"" << name
                         << "\" (want trace | debug | info | warn | error)");
      Log::set_level(*lvl);
    }

    ExperimentSpec spec;
    spec.name = "sweep";
    spec.base_seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    const auto runs_flag = opts.get_int("runs", 40);
    HYCO_CHECK_MSG(runs_flag >= 1, "--runs must be >= 1, got " << runs_flag);
    spec.runs_per_cell = static_cast<std::uint64_t>(runs_flag);
    spec.max_rounds = static_cast<Round>(opts.get_int("max-rounds", 5000));
    spec.inputs = parse_inputs(opts.get_string("inputs", "split"));
    spec.coin_epsilons.clear();
    for (const double e : opts.get_double_list("eps", {0.0})) {
      spec.coin_epsilons.push_back(e);
    }

    spec.algorithms.clear();
    for (const auto& a : opts.get_string_list("alg", {"local_coin"})) {
      spec.algorithms.push_back(parse_algorithm(a));
    }

    spec.delays = {parse_delay(opts.get_string("delay", "uniform:50:150"))};

    spec.crashes.clear();
    for (const auto& c : opts.get_string_list("crash", {"none"})) {
      spec.crashes.push_back(parse_crash(c, spec.base_seed));
    }

    spec.scenarios = {ScenarioAxis::of(parse_scenario(opts))};

    // Replicated-service workload axis (src/service/): closed-loop client
    // traffic over the sequenced consensus core, gridded batch x offered-
    // load alongside every other axis. Off by default, so plain grids keep
    // their cell indices, labels, and fingerprints.
    const bool service = opts.get_bool("service");
    // Ops every service run decides when it succeeds (clients x
    // ops-per-client); --progress uses it for the ETA. Zero for plain grids.
    std::uint64_t service_ops_per_run = 0;
    if (!service) {
      for (const char* orphan :
           {"clients", "ops-per-client", "batch", "batch-delay", "svc-load"}) {
        HYCO_CHECK_MSG(!opts.has(orphan),
                       "--" << orphan << " needs --service to apply to");
      }
    } else {
      HYCO_CHECK_MSG(!opts.has("alg"),
                     "--alg cannot combine with --service (the service layer"
                     " sequences multivalued consensus, which builds on the"
                     " hybrid common-coin algorithm)");
      HYCO_CHECK_MSG(!opts.has("inputs"),
                     "--inputs cannot combine with --service (clients supply"
                     " the proposed values)");
      HYCO_CHECK_MSG(!opts.has("phase-metrics"),
                     "--phase-metrics cannot combine with --service (service"
                     " runs do not instrument consensus phases)");
      HYCO_CHECK_MSG(!opts.has("lanes"),
                     "--lanes cannot combine with --service (service runs"
                     " always execute one at a time per worker)");
      for (const auto& c : opts.get_string_list("crash", {"none"})) {
        HYCO_CHECK_MSG(c != "mid-broadcast",
                       "--crash=mid-broadcast cannot combine with --service"
                       " (service runs support timed crash specs only)");
      }
      spec.algorithms = {Algorithm::HybridCommonCoin};

      const auto clients = opts.get_int("clients", 100'000);
      HYCO_CHECK_MSG(clients >= 1 && clients <= 10'000'000,
                     "--clients must be in [1, 10000000], got " << clients);
      const auto opc = opts.get_int("ops-per-client", 1);
      HYCO_CHECK_MSG(opc >= 1 && opc <= 1'000'000,
                     "--ops-per-client must be in [1, 1000000], got " << opc);
      service_ops_per_run = static_cast<std::uint64_t>(clients) *
                            static_cast<std::uint64_t>(opc);
      const auto batch_delay = opts.get_int("batch-delay", 50'000);
      HYCO_CHECK_MSG(batch_delay >= 0,
                     "--batch-delay must be >= 0 ns, got " << batch_delay);

      spec.services.clear();
      for (const auto b : opts.get_int_list("batch", {64})) {
        HYCO_CHECK_MSG(b >= 1, "--batch: batch size must be >= 1, got " << b);
        for (const double load : opts.get_double_list("svc-load", {0.0})) {
          HYCO_CHECK_MSG(load >= 0.0,
                         "--svc-load must be >= 0 ops/sec, got " << load);
          spec.services.push_back(ServiceAxis::of(
              static_cast<std::uint64_t>(clients),
              static_cast<std::uint64_t>(opc), static_cast<std::size_t>(b),
              static_cast<SimTime>(batch_delay), load));
        }
      }
    }

    const auto ns = opts.get_int_list("n", {8});
    const auto ms = opts.get_int_list("m", {1});
    for (const auto n : ns) {
      HYCO_CHECK_MSG(n >= 1, "--n: process count must be >= 1, got " << n);
      for (const auto m : ms) {
        HYCO_CHECK_MSG(m >= 1, "--m: cluster count must be >= 1, got " << m);
        if (m > n) {
          std::cerr << "sweep: skipping n=" << n << " m=" << m
                    << " (more clusters than processes)\n";
          continue;
        }
        spec.layouts.push_back(ClusterLayout::even(
            static_cast<ProcId>(n), static_cast<ClusterId>(m)));
      }
    }
    HYCO_CHECK_MSG(!spec.layouts.empty(), "no valid (n, m) layouts in grid");

    // Validate the scenario against every layout here, on the main thread:
    // an out-of-range cluster/proc id would otherwise throw inside a worker
    // thread and terminate the process instead of exiting 2.
    for (const auto& axis : spec.scenarios) {
      for (const auto& layout : spec.layouts) {
        validate_scenario(axis.config, layout);
      }
    }

    // Distributed-mode flags get the same main-thread validation.
    const DistFlags dist_flags = parse_dist_flags(opts);

    // Observability report sections (all opt-in; see src/exp/report.h).
    // --phase-metrics flows into the spec *before* expand(): cells snapshot
    // collect_obs and the grid fingerprint mixes it, so timed and untimed
    // sweeps never share a checkpoint or a distributed grid.
    ReportOptions report_opts;
    report_opts.net_stats = opts.get_bool("net-stats");
    report_opts.phase_metrics = opts.get_bool("phase-metrics");
    report_opts.profile = opts.get_bool("profile");
    report_opts.service = service;
    spec.collect_obs = report_opts.phase_metrics;

    ParallelExecutor::Options exec_opts;
    exec_opts.threads = opts.get_int("threads", 0);
    exec_opts.profile = report_opts.profile;
    const auto chunk_flag = opts.get_int("chunk", 1024);
    HYCO_CHECK_MSG(chunk_flag >= 1,
                   "--chunk must be >= 1, got " << chunk_flag);
    exec_opts.chunk_size = static_cast<std::uint64_t>(chunk_flag);
    const auto lanes_flag = opts.get_int("lanes", 1);
    HYCO_CHECK_MSG(lanes_flag >= 1,
                   "--lanes must be >= 1, got " << lanes_flag);
    exec_opts.lanes = static_cast<std::uint64_t>(lanes_flag);

    const auto cells = spec.expand();
    const std::uint64_t total = spec.total_runs();
    const std::uint64_t fingerprint = grid_fingerprint(
        cells, exec_opts.reservoir_capacity, exec_opts.failure_capacity);

    // Structured trace export: validated here, on the main thread, against
    // the expanded grid; the traced run itself happens after the sweep.
    const bool want_trace = opts.has("trace-out");
    std::string trace_path;
    std::uint64_t trace_cell = 0;
    std::uint64_t trace_run = 0;
    bool trace_binary = false;
    std::size_t trace_cap = 1 << 16;
    if (want_trace) {
      trace_path = opts.get_string("trace-out");
      HYCO_CHECK_MSG(!trace_path.empty(), "--trace-out needs a path (or -)");
      const auto cell_flag = opts.get_int("trace-cell", 0);
      HYCO_CHECK_MSG(cell_flag >= 0 &&
                         static_cast<std::uint64_t>(cell_flag) < cells.size(),
                     "--trace-cell must be in [0, " << cells.size()
                         << "), got " << cell_flag);
      trace_cell = static_cast<std::uint64_t>(cell_flag);
      const auto run_flag = opts.get_int("trace-run", 0);
      const std::uint64_t cell_runs = cells[trace_cell].runs;
      HYCO_CHECK_MSG(run_flag >= 0 &&
                         static_cast<std::uint64_t>(run_flag) < cell_runs,
                     "--trace-run must be in [0, " << cell_runs << "), got "
                         << run_flag);
      trace_run = static_cast<std::uint64_t>(run_flag);
      const std::string fmt = opts.get_string("trace-format", "jsonl");
      HYCO_CHECK_MSG(fmt == "jsonl" || fmt == "binary",
                     "--trace-format: unknown format \"" << fmt
                         << "\" (want jsonl | binary)");
      trace_binary = fmt == "binary";
      const auto cap_flag = opts.get_int("trace-cap", 1 << 16);
      HYCO_CHECK_MSG(cap_flag >= 1 && cap_flag <= 100'000'000,
                     "--trace-cap must be in [1, 100000000] records, got "
                         << cap_flag);
      trace_cap = static_cast<std::size_t>(cap_flag);
    } else {
      for (const char* orphan :
           {"trace-cell", "trace-run", "trace-format", "trace-cap"}) {
        HYCO_CHECK_MSG(!opts.has(orphan), "--" << orphan
                           << " needs --trace-out=PATH to apply to");
      }
    }

    // Worker mode: lease chunks from the coordinator and ship accumulators
    // back; the grid definition stays local (fingerprint-checked).
    if (dist_flags.connect) {
      dist::WorkerOptions wopts;
      wopts.target = dist_flags.target;
      wopts.sessions = dist_flags.workers;
      wopts.reconnect_attempts = dist_flags.reconnect;
      wopts.reservoir_capacity = exec_opts.reservoir_capacity;
      wopts.failure_capacity = exec_opts.failure_capacity;
      std::cerr << "sweep: worker connecting to " << wopts.target.host << ':'
                << wopts.target.port << " with " << wopts.sessions
                << " session(s)\n";
      const dist::WorkerReport report =
          dist::run_worker(cells, fingerprint, wopts);
      std::cerr << "sweep: worker executed " << report.runs_executed
                << " run(s) in " << report.chunks_executed << " chunk(s)\n";
      if (report.reconnects > 0) {
        std::cerr << "sweep: worker reconnected " << report.reconnects
                  << " time(s) mid-sweep\n";
      }
      if (!report.completed) {
        std::cerr << "sweep: worker did not finish cleanly: " << report.error
                  << '\n';
        return 1;
      }
      return 0;
    }

    // Checkpoint/resume, chunk-granular: completed cells reload bit-exactly
    // and skip entirely; a partially-completed cell reloads its folded
    // chunk ranges and re-runs only the complement.
    const std::string ckpt_path = opts.get_string("checkpoint");
    CheckpointData loaded;
    if (opts.get_bool("resume")) {
      HYCO_CHECK_MSG(!ckpt_path.empty(),
                     "--resume needs --checkpoint=PATH to read from");
      std::ifstream in(ckpt_path);
      if (in.good()) {
        loaded = load_checkpoint_data(in, fingerprint);
        // A corrupted block could carry an out-of-grid index or range;
        // drop it and re-run that work instead of indexing out of bounds.
        for (auto it = loaded.cells.begin(); it != loaded.cells.end();) {
          it = it->first >= cells.size() ? loaded.cells.erase(it)
                                         : std::next(it);
        }
        for (auto it = loaded.chunks.begin(); it != loaded.chunks.end();) {
          if (it->first >= cells.size()) {
            it = loaded.chunks.erase(it);
            continue;
          }
          auto& list = it->second;
          const std::uint64_t cell_runs = cells[it->first].runs;
          list.erase(std::remove_if(list.begin(), list.end(),
                                    [&](const ChunkCheckpoint& c) {
                                      return c.end > cell_runs;
                                    }),
                     list.end());
          it = list.empty() ? loaded.chunks.erase(it) : std::next(it);
        }
        std::size_t partial_chunks = 0;
        for (const auto& [index, list] : loaded.chunks) {
          (void)index;
          partial_chunks += list.size();
        }
        std::cerr << "sweep: resumed " << loaded.cells.size() << " of "
                  << cells.size() << " cells";
        if (partial_chunks > 0) {
          std::cerr << " + " << partial_chunks << " mid-cell chunk(s) across "
                    << loaded.chunks.size() << " cell(s)";
        }
        std::cerr << " from " << ckpt_path << "\n";
      } else {
        std::cerr << "sweep: no checkpoint at " << ckpt_path
                  << ", starting fresh\n";
      }
    }

    std::map<std::uint64_t, CellAccumulator>& resumed = loaded.cells;

    // Merge each partial cell's chunk accumulators into one prior per cell
    // (merge-order-invariant, so any fold order lands on the same bytes)
    // and derive the complement spans still to execute. A cell whose
    // chunks cover everything (killed between the last chunk and its cell
    // block) completes right here.
    std::map<std::uint64_t, CellAccumulator> prior;  // cell.index → acc
    std::vector<ExperimentCell> todo;
    std::vector<RunSpan> todo_spans;
    todo.reserve(cells.size() - resumed.size());
    for (const auto& c : cells) {
      if (resumed.find(c.index) != resumed.end()) continue;
      const auto chunk_it = loaded.chunks.find(c.index);
      if (chunk_it == loaded.chunks.end()) {
        todo_spans.push_back({todo.size(), 0, c.runs});
        todo.push_back(c);
        continue;
      }
      CellAccumulator acc(exec_opts.reservoir_capacity,
                          exec_opts.failure_capacity);
      std::vector<RunSpan> gaps;
      std::uint64_t cursor = 0;
      for (const ChunkCheckpoint& chunk : chunk_it->second) {
        if (chunk.begin > cursor) gaps.push_back({0, cursor, chunk.begin});
        acc.merge(chunk.acc);
        cursor = chunk.end;
      }
      if (cursor < c.runs) gaps.push_back({0, cursor, c.runs});
      if (gaps.empty()) {
        // Killed between the last chunk and the cell block: the compacted
        // rewrite below lands this cell as a cell block directly.
        acc.finalize();
        resumed.emplace(c.index, std::move(acc));
        continue;
      }
      for (RunSpan g : gaps) {
        g.cell_pos = todo.size();
        todo_spans.push_back(g);
      }
      prior.emplace(c.index, std::move(acc));
      todo.push_back(c);
    }

    std::ofstream ckpt_out;
    if (!ckpt_path.empty()) {
      if (resumed.empty() && prior.empty()) {
        // Never silently destroy an earlier session's progress: a file
        // that already carries a checkpoint header needs an explicit
        // --resume (or manual removal) before we truncate it.
        if (!opts.get_bool("resume")) {
          std::ifstream probe(ckpt_path);
          std::string first;
          if (probe.good() && std::getline(probe, first)) {
            HYCO_CHECK_MSG(
                first.rfind("hyco-checkpoint", 0) != 0,
                "--checkpoint: \"" << ckpt_path << "\" already holds a"
                " checkpoint; pass --resume to continue it or remove the"
                " file first");
          }
        }
        ckpt_out.open(ckpt_path, std::ios::trunc);
        HYCO_CHECK_MSG(ckpt_out.good(),
                       "cannot open \"" << ckpt_path << "\" for writing");
        write_checkpoint_header(ckpt_out, fingerprint);
      } else {
        // Before appending more blocks, rewrite the loaded trail as its
        // compacted equivalent (cell blocks + one merged chunk block per
        // contiguous chain) via a temporary + rename, so repeated
        // crash/resume cycles cannot grow the file without bound — and a
        // kill mid-rewrite leaves the old file untouched. Chunk-covered
        // cells land as cell blocks here (they sit in `resumed` already).
        const std::string tmp_path = ckpt_path + ".tmp";
        {
          std::ofstream compact(tmp_path, std::ios::trunc);
          HYCO_CHECK_MSG(compact.good(),
                         "cannot open \"" << tmp_path << "\" for writing");
          write_compacted_checkpoint(compact, fingerprint, loaded);
          compact.flush();
          HYCO_CHECK_MSG(compact.good(),
                         "failed writing compacted checkpoint to \""
                             << tmp_path << '"');
        }
        HYCO_CHECK_MSG(std::rename(tmp_path.c_str(), ckpt_path.c_str()) == 0,
                       "cannot rename \"" << tmp_path << "\" over \""
                                          << ckpt_path << '"');
        ckpt_out.open(ckpt_path, std::ios::app);
        HYCO_CHECK_MSG(ckpt_out.good(),
                       "cannot open \"" << ckpt_path << "\" for appending");
      }
    }

    // The cell-complete checkpoint block must hold the *full* accumulator;
    // for a cell resumed mid-flight that is prior + the freshly executed
    // complement.
    const auto full_accumulator = [&](std::uint64_t index,
                                      const CellAccumulator& fresh) {
      const auto it = prior.find(index);
      if (it == prior.end()) return fresh;
      CellAccumulator full = it->second;
      full.merge(fresh);
      full.finalize();
      return full;
    };

    const std::uint64_t resumed_runs = total - [&] {
      std::uint64_t left = 0;
      for (const auto& s : todo_spans) left += s.length();
      return left;
    }();

    const bool stream = opts.get_bool("stream");
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::uint64_t> cells_done{resumed.size()};
    std::atomic<std::uint64_t> ops_done{0};
    std::atomic<std::int64_t> last_print_ms{-1000};
    const bool want_progress = opts.get_bool("progress");
    // Throttled stderr heartbeat shared by the local executor and the
    // coordinator loop. Runs restored from a checkpoint count as done.
    const auto print_progress = [&](std::uint64_t done_runs,
                                    std::uint64_t total_runs,
                                    std::size_t workers) {
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      auto last = last_print_ms.load(std::memory_order_relaxed);
      if (elapsed_ms - last < 1000 ||
          !last_print_ms.compare_exchange_strong(last, elapsed_ms)) {
        return;
      }
      const double secs = static_cast<double>(elapsed_ms) / 1000.0 + 1e-9;
      const std::uint64_t ops = ops_done.load(std::memory_order_relaxed);
      if (service && ops > 0) {
        // Service runs take minutes each, so runs/s reads 0 for most of a
        // sweep. Rate and ETA on decided ops instead: the executor reports
        // each chunk's decided-op count, and every successful run decides
        // clients x ops-per-client ops, so the remaining-runs estimate is
        // exact when nothing fails (and an upper bound otherwise).
        const double ops_rate = static_cast<double>(ops) / secs;
        const double remaining_ops =
            static_cast<double>(total_runs - done_runs) *
            static_cast<double>(service_ops_per_run);
        const double eta = ops_rate > 0.0 ? remaining_ops / ops_rate : 0.0;
        std::fprintf(stderr,
                     "sweep: %llu/%llu runs | %llu/%zu cells"
                     " | %.0f ops/s | eta ~%.1fs",
                     static_cast<unsigned long long>(done_runs),
                     static_cast<unsigned long long>(total_runs),
                     static_cast<unsigned long long>(
                         cells_done.load(std::memory_order_relaxed)),
                     cells.size(), ops_rate, eta);
        if (workers > 0) {
          std::fprintf(stderr, " | %zu worker(s)", workers);
        }
        std::fprintf(stderr, "\n");
        return;
      }
      const double rate =
          static_cast<double>(done_runs - resumed_runs) / secs;
      const double eta =
          rate > 0.0 ? static_cast<double>(total_runs - done_runs) / rate
                     : 0.0;
      std::fprintf(stderr,
                   "sweep: %llu/%llu runs | %llu/%zu cells | %.0f runs/s"
                   " | eta %.1fs",
                   static_cast<unsigned long long>(done_runs),
                   static_cast<unsigned long long>(total_runs),
                   static_cast<unsigned long long>(
                       cells_done.load(std::memory_order_relaxed)),
                   cells.size(), rate, eta);
      if (workers > 0) {
        std::fprintf(stderr, " | %zu worker(s)", workers);
      }
      std::fprintf(stderr, "\n");
    };

    std::vector<CellResult> results;
    results.reserve(cells.size());

    if (dist_flags.serve) {
      // Coordinator mode: the ledger leases the todo spans to TCP workers
      // and merges what they fold back. prior accumulators slide under the
      // same cells they would in a local resume.
      std::map<std::size_t, CellAccumulator> prior_by_pos;
      for (std::size_t pos = 0; pos < todo.size(); ++pos) {
        auto it = prior.find(todo[pos].index);
        if (it != prior.end()) prior_by_pos.emplace(pos, it->second);
      }
      dist::CoordinatorOptions copts;
      copts.port = dist_flags.serve_port;
      copts.lease_grain = dist_flags.lease_grain;
      copts.lease_floor = dist_flags.lease_floor;
      copts.lease_ttl = dist_flags.lease_ttl;
      copts.reservoir_capacity = exec_opts.reservoir_capacity;
      copts.failure_capacity = exec_opts.failure_capacity;
      copts.health_port = dist_flags.health_port;
      if (ckpt_out.is_open()) {
        copts.on_chunk = [&](const ExperimentCell& cell, std::uint64_t begin,
                             std::uint64_t end, const CellAccumulator& acc) {
          append_checkpoint_chunk(ckpt_out, cell.index, begin, end, acc);
        };
      }
      copts.on_cell_complete = [&](const ExperimentCell& cell,
                                   const CellAccumulator& acc) {
        cells_done.fetch_add(1, std::memory_order_relaxed);
        if (ckpt_out.is_open()) {
          // The coordinator's slot already merged prior chunks: acc is the
          // full cell.
          append_checkpoint_cell(ckpt_out, cell.index, acc);
        }
      };
      if (want_progress) {
        // The coordinator's `folded` already includes the prior chunk runs
        // it was constructed with; add only the cell-block-resumed part of
        // resumed_runs to get the grid-wide figure.
        std::uint64_t prior_runs = 0;
        for (const auto& [index, acc] : prior) {
          (void)index;
          prior_runs += acc.runs;
        }
        copts.progress = [&, prior_runs](std::uint64_t folded, std::uint64_t,
                                         std::size_t workers) {
          print_progress(resumed_runs - prior_runs + folded, total, workers);
        };
      }
      dist::Coordinator coordinator(todo, todo_spans, std::move(prior_by_pos),
                                    fingerprint, std::move(copts));
      coordinator.bind();
      std::cerr << "sweep: coordinating " << cells.size() << " cells x "
                << spec.runs_per_cell << " seeds = " << total
                << " runs on port " << coordinator.port() << " (lease grain "
                << dist_flags.lease_grain << ")\n";
      if (coordinator.health_port() != 0) {
        std::cerr << "sweep: health endpoint on port "
                  << coordinator.health_port() << "\n";
      }
      for (auto& r : coordinator.serve()) results.push_back(std::move(r));
    } else {
      CollectingSink::Options sink_opts;
      sink_opts.retain_records = !stream;
      if (opts.has("max-records")) {
        const auto cap = opts.get_int("max-records");
        HYCO_CHECK_MSG(cap >= 0, "--max-records must be >= 0, got " << cap);
        sink_opts.max_records_per_cell = static_cast<std::uint64_t>(cap);
      }
      if (ckpt_out.is_open()) {
        sink_opts.on_chunk = [&](const ExperimentCell& cell,
                                 std::uint64_t begin, std::uint64_t end,
                                 const CellAccumulator& acc) {
          append_checkpoint_chunk(ckpt_out, cell.index, begin, end, acc);
        };
      }
      sink_opts.on_complete = [&](const ExperimentCell& cell,
                                  const CellAccumulator& acc) {
        cells_done.fetch_add(1, std::memory_order_relaxed);
        if (ckpt_out.is_open()) {
          append_checkpoint_cell(ckpt_out, cell.index,
                                 full_accumulator(cell.index, acc));
        }
      };
      if (want_progress) {
        exec_opts.progress = [&](std::uint64_t done, std::uint64_t) {
          print_progress(resumed_runs + done, total, 0);
        };
        if (service) {
          // Fed before `progress` for every chunk, so the heartbeat the
          // progress callback prints already includes this chunk's ops.
          exec_opts.ops_progress = [&](std::uint64_t ops) {
            ops_done.fetch_add(ops, std::memory_order_relaxed);
          };
        }
      }

      const ParallelExecutor exec(exec_opts);
      // The executor spawns worker_count(residual runs) workers (it
      // shrinks the chunk grain so the pool is never starved), so this
      // banner is exact even mid-resume.
      const unsigned workers = exec.worker_count(total - resumed_runs);
      std::cerr << "sweep: " << cells.size() << " cells x "
                << spec.runs_per_cell << " seeds = " << total << " runs on "
                << workers << " threads"
                << (stream ? " [streaming]" : "") << "\n";

      CollectingSink sink(todo, std::move(sink_opts));
      exec.run(todo, todo_spans, sink);
      for (auto& r : sink.take_results()) {
        // A mid-cell resume: the sink only saw the complement; fold the
        // checkpointed prior back in for the in-memory artifacts.
        if (prior.find(r.cell.index) != prior.end()) {
          r.acc = full_accumulator(r.cell.index, r.acc);
        }
        results.push_back(std::move(r));
      }
    }

    // Assemble the full grid in cell order: resumed cells + fresh ones.
    // Everything downstream (table, CSV, JSON, replay) is agnostic to how
    // a cell's accumulator was produced.
    for (auto& [index, acc] : resumed) {
      results.emplace_back(cells[index], std::move(acc));
    }
    std::sort(results.begin(), results.end(),
              [](const CellResult& a, const CellResult& b) {
                return a.cell.index < b.cell.index;
              });

    if (!opts.get_bool("quiet")) {
      to_table("sweep results", results).print(std::cout);
    }
    if (opts.has("csv")) {
      const std::string path = opts.get_string("csv");
      const auto shard = opts.get_int("csv-shard", 0);
      if (shard > 0) {
        HYCO_CHECK_MSG(path != "-", "--csv-shard needs a file path, not -");
        const auto shards = write_cell_csv_sharded(
            path, results, static_cast<std::size_t>(shard), report_opts);
        std::cerr << "sweep: wrote " << shards.size() << " CSV shard(s)\n";
      } else {
        write_report(path, [&](std::ostream& out) {
          write_cell_csv(out, results, report_opts);
        });
      }
    }
    if (opts.has("json")) {
      write_report(opts.get_string("json"), [&](std::ostream& out) {
        write_cell_json(out, spec.name, results, report_opts);
      });
    }

    // Structured trace export: re-run the selected (cell, run) bit-exactly
    // — seeds are pure functions of the spec — with tracing into a caller-
    // owned ring, then export the structured records.
    if (want_trace) {
      const ExperimentCell& cell = cells[trace_cell];
      Trace trace(trace_cap);
      if (cell.service.enabled) {
        ServiceRunConfig cfg = cell.service_run_config(trace_run);
        cfg.enable_trace = true;
        cfg.trace_sink = &trace;
        (void)run_service(cfg);
      } else {
        RunConfig cfg = cell.run_config(trace_run);
        cfg.enable_trace = true;
        cfg.trace_sink = &trace;
        (void)run_consensus(cfg);
      }
      if (trace.recorded() > trace.size()) {
        HYCO_WARN("trace ring wrapped: recorded "
                  << trace.recorded() << " events, kept the trailing "
                  << trace.size() << " (raise --trace-cap for the full run)");
      }
      obs::TraceMeta meta;
      meta.cell = trace_cell;
      meta.run = trace_run;
      meta.seed = cell.seed_for(trace_run);
      meta.label = cell.label();
      const auto emit = [&](std::ostream& out) {
        if (trace_binary) {
          obs::write_trace_binary(out, meta, trace);
        } else {
          obs::write_trace_jsonl(out, meta, trace);
        }
      };
      if (trace_path == "-") {
        emit(std::cout);
      } else {
        std::ofstream out(trace_path, trace_binary
                                          ? std::ios::out | std::ios::binary
                                          : std::ios::out);
        HYCO_CHECK_MSG(out.good(), "cannot open \"" << trace_path
                                       << "\" for writing");
        emit(out);
      }
      std::cerr << "sweep: traced cell " << trace_cell << " run " << trace_run
                << " (seed " << meta.seed << ", " << trace.recorded()
                << " events) -> " << trace_path << "\n";
    }

    const auto max_replays =
        static_cast<std::size_t>(opts.get_int("replay", 0));
    if (max_replays > 0) {
      const auto reports = replay_failures(results, max_replays);
      std::cout << "replayed " << reports.size() << " failing run(s)\n";
      dump_replays(std::cout, reports);
    }
  } catch (const ContractViolation& e) {
    std::cerr << "sweep: " << e.what() << '\n';
    return 2;
  }
  return 0;
}
