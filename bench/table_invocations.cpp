// T-INV — the Section III-C comparison table: consensus-object usage per
// phase of a round in the hybrid model vs the m&m model.
//
// Paper claims:
//   hybrid:  a process invokes exactly 1 consensus object per phase;
//            the system touches m objects per phase (one per cluster).
//   m&m:     a process invokes a_i + 1 objects per phase (a_i = degree);
//            the system touches n objects per phase (one per process).
// Usage: table_invocations
#include <iostream>

#include "baseline/mm_domain.h"
#include "baseline/mm_runner.h"
#include "core/runner.h"
#include "util/table.h"

using namespace hyco;

namespace {

// One hybrid measurement row: run to decision, derive per-process-per-phase
// invocations and system objects per phase from the instrumentation.
void hybrid_row(Table& t, const char* label, const ClusterLayout& layout) {
  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = uniform_inputs(layout.n(), Estimate::Zero);  // 1-round run
  cfg.seed = 0x11;
  const auto r = run_consensus(cfg);

  double max_per_phase = 0.0;
  for (const auto& st : r.proc_stats) {
    if (st.rounds_entered == 0) continue;
    max_per_phase = std::max(
        max_per_phase, static_cast<double>(st.cons_invocations) /
                           (2.0 * static_cast<double>(st.rounds_entered)));
  }
  // One LC round = 2 phases; objects materialized = 2 * m for round 1.
  const double objects_per_phase =
      static_cast<double>(r.consensus_objects) /
      (2.0 * static_cast<double>(r.max_decision_round));
  t.add_row_values(label, "hybrid", layout.n(), layout.m(), "1",
                   fixed(max_per_phase, 1), std::to_string(layout.m()),
                   fixed(objects_per_phase, 1));
}

void mm_row(Table& t, const char* label, const MmDomain& d) {
  MmRunConfig cfg(d);
  cfg.inputs = std::vector<Estimate>(static_cast<std::size_t>(d.n()),
                                     Estimate::Zero);
  cfg.seed = 0x12;
  const auto r = run_mm(cfg);

  ProcId max_deg = 0;
  for (ProcId i = 0; i < d.n(); ++i) max_deg = std::max(max_deg, d.degree(i));
  double max_per_phase = 0.0;
  for (const auto& st : r.proc_stats) {
    if (st.rounds_entered == 0) continue;
    max_per_phase = std::max(
        max_per_phase, static_cast<double>(st.cons_invocations) /
                           (2.0 * static_cast<double>(st.rounds_entered)));
  }
  t.add_row_values(label, "m&m", d.n(), "n/a",
                   "a_i+1 (max " + std::to_string(max_deg + 1) + ")",
                   fixed(max_per_phase, 1), std::to_string(d.n()),
                   std::to_string(d.n()));
}

}  // namespace

int main() {
  std::cout << "T-INV: consensus-object invocations per phase "
               "(Section III-C comparison)\n\n";

  Table t("hybrid (1 per process, m system-wide) vs m&m (a_i+1 per process,"
          " n system-wide)");
  t.set_columns({"configuration", "model", "n", "m",
                 "claimed/process/phase", "measured/process/phase (max)",
                 "claimed system/phase", "measured system/phase"});

  hybrid_row(t, "fig1-left  n=7 m=3", ClusterLayout::fig1_left());
  hybrid_row(t, "fig1-right n=7 m=3", ClusterLayout::fig1_right());
  hybrid_row(t, "even       n=16 m=4", ClusterLayout::even(16, 4));
  hybrid_row(t, "even       n=32 m=4", ClusterLayout::even(32, 4));
  hybrid_row(t, "singleton  n=16 m=16", ClusterLayout::singletons(16));

  mm_row(t, "fig2       n=5", MmDomain::fig2());
  // A denser graph: ring of 16 with chords (every process degree 4).
  {
    std::vector<std::pair<ProcId, ProcId>> edges;
    const ProcId n = 16;
    for (ProcId i = 0; i < n; ++i) {
      edges.push_back({i, static_cast<ProcId>((i + 1) % n)});
      edges.push_back({i, static_cast<ProcId>((i + 2) % n)});
    }
    const MmDomain ring(n, edges);
    mm_row(t, "ring+chords n=16", ring);
  }
  t.print(std::cout);

  std::cout << "Expected shape: hybrid measured/process/phase = 1 exactly;"
               " m&m grows with the degree;\nthe hybrid system count equals"
               " m << n while m&m touches all n memories.\n";
  return 0;
}
