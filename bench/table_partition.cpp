// T-PART — the one-for-all property under cluster cuts: scheduled network
// partitions over the even n=16, m=4 layout (4 processes per cluster, so a
// single cluster covers 4/16 and two clusters cover exactly half).
//
// Expected shape:
//  * minority cut ({P0} vs the rest, healed): the 12-process side covers a
//    majority of processes — it decides DURING the cut; the cut cluster
//    catches up once the cut heals (its held messages and the deciders'
//    DECIDE gossip arrive). Termination 100%, decision time stretched to
//    ~the heal time for the cut side.
//  * half cut ({P0, P1} vs {P2, P3}, healed): neither 8-process side covers
//    > n/2, so NOBODY decides while the cut is up; both sides finish after
//    it heals. Termination 100%, decision times all >= heal.
//  * half cut, never healed: no side ever covers a majority — termination
//    0%, but safety (agreement/validity/invariants) must hold on every run:
//    indulgence under partitions.
//  * intra-cluster split (half of P0 cut off, healed): the cut members still
//    share P0's memory — cluster-local consensus keeps both halves
//    championing one value (one-for-all), and the rest of the system covers
//    a majority without them.
// Violations must be 0 everywhere.
// Usage: table_partition [--runs=N] [--threads=K]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "exp/executor.h"
#include "scenario/scenario.h"
#include "util/options.h"
#include "util/table.h"

using namespace hyco;

namespace {

ScenarioConfig cut(PartitionSpec::Kind kind, std::vector<std::int32_t> ids,
                   SimTime start, SimTime heal) {
  ScenarioConfig scn;
  PartitionSpec spec;
  spec.kind = kind;
  spec.ids = std::move(ids);
  spec.start = start;
  spec.heal = heal;
  scn.partitions.push_back(spec);
  return scn;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t runs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, opts.get_int("runs", 100)));
  ParallelExecutor::Options exec_opts;
  exec_opts.threads = opts.get_int("threads", 0);
  const ParallelExecutor exec(exec_opts);

  std::cout << "T-PART: termination and safety under scheduled cluster cuts"
               " (n=16, m=4, cut window [200, 2000])\n\n";

  // Cuts open at t=200 (mid round 1 under uniform(50,150) delays) and heal
  // at t=2000 — long after an uncut run would have quiesced.
  const SimTime kStart = 200;
  const SimTime kHeal = 2000;

  struct Row {
    std::string label;
    ScenarioConfig scn;
    const char* should_terminate;
  };
  std::vector<Row> rows;
  rows.push_back({"no partition", ScenarioConfig{}, "yes"});
  rows.push_back({"minority cut {P0}, healed",
                  cut(PartitionSpec::Kind::Clusters, {0}, kStart, kHeal),
                  "yes"});
  rows.push_back({"half cut {P0,P1}, healed",
                  cut(PartitionSpec::Kind::Clusters, {0, 1}, kStart, kHeal),
                  "yes"});
  // The blocking cut must open at t=0: fast runs decide before t=200.
  rows.push_back({"half cut {P0,P1}, never heals",
                  cut(PartitionSpec::Kind::Clusters, {0, 1}, 0,
                      kSimTimeNever),
                  "no"});
  rows.push_back({"intra-cluster split of P0, healed",
                  cut(PartitionSpec::Kind::SplitCluster, {0}, kStart, kHeal),
                  "yes"});

  ExperimentSpec spec;
  spec.name = "t-part";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(16, 4)};
  spec.scenarios.clear();
  for (const Row& row : rows) {
    spec.scenarios.push_back(ScenarioAxis::of(row.label, row.scn));
  }
  spec.runs_per_cell = runs;
  spec.max_rounds = 200;  // the never-healed cells park quickly
  spec.base_seed = 0x9A;
  const auto results = exec.run(spec);

  Table t("termination rate and decision time per cut (healed cuts must"
          " reach 100%)");
  t.set_columns({"partition", "should terminate?", "hybrid-LC", "hybrid-CC",
                 "LC mean decision t", "CC mean decision t",
                 "violations (all)"});
  const std::size_t S = rows.size();
  const auto frac = [](const CellResult& c) {
    return std::to_string(c.terminated()) + "/" + std::to_string(c.runs());
  };
  const auto mean_t = [](const CellResult& c) {
    return c.terminated() > 0 ? std::to_string(
                                  static_cast<long long>(c.decision_time().mean()))
                            : std::string("-");
  };
  for (std::size_t s = 0; s < S; ++s) {
    const auto& lc = results[s];
    const auto& cc = results[S + s];
    t.add_row_values(rows[s].label, rows[s].should_terminate, frac(lc),
                     frac(cc), mean_t(lc), mean_t(cc),
                     lc.violations() + cc.violations());
  }
  t.print(std::cout);

  std::cout << "Reading: a healed cut only stretches transit times, so it"
               " stays inside the paper's asynchronous model — termination"
               " must return (one for all: the uncut covering clusters"
               " decide during the cut and gossip the decision after)."
               " The never-healed half cut leaves no side covering > n/2:"
               " nobody may decide, and violations must still be 0"
               " (indulgence). The intra-cluster split shows the hybrid"
               " twist: the split halves still agree via P0's shared"
               " memory.\n";
  return 0;
}
