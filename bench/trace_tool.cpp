// hyco-trace: offline forensics over exported run traces ("hyco-trace/2",
// JSONL or binary — auto-detected). Subcommands:
//
//   stats         record counts, ring accounting, quorum-wait summary
//   provenance    per-Decide backward slice: the message set that carried
//                 each decision, and who sent the phase-1 support
//                 (--clusters s1,s2,.. maps senders onto contiguous clusters)
//   critical-path the latest-cause Deliver <- Send spine into each decision
//   anomalies     excess rounds, stalled quorums, message storms, causal
//                 integrity; exits 2 when a *safety* anomaly is present
//   export --chrome [-o FILE]
//                 Chrome trace-event JSON (Perfetto-loadable): one track per
//                 process, phase spans, flow arrows on causal send->deliver
//
// Exit codes: 0 ok, 1 usage/parse error, 2 safety anomalies (anomalies only).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/trace_export.h"
#include "sim/trace.h"

namespace {

using hyco::ProcId;
using hyco::Round;
using hyco::SimTime;
using hyco::TraceKind;
using hyco::TraceRecord;
using hyco::obs::CausalGraph;
using hyco::obs::TraceMeta;

int usage() {
  std::cerr
      << "usage: hyco-trace <stats|provenance|critical-path|anomalies|"
         "export> [options] <trace-file>\n"
         "  provenance     [--clusters s1,s2,...]\n"
         "  anomalies      [--round-bound N] [--storm-factor F]\n"
         "  export         --chrome [-o FILE]\n";
  return 1;
}

/// Loads a trace file in either export format (binary magic probed first).
bool load_trace(const std::string& path, TraceMeta& meta,
                std::vector<TraceRecord>& records) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "hyco-trace: cannot open " << path << "\n";
      return false;
    }
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() == 8 && magic[0] == 'H' && magic[1] == 'Y' &&
        magic[2] == 'T' && magic[3] == 'R' && magic[4] == 'C' &&
        magic[5] == 'B') {
      in.seekg(0);
      if (hyco::obs::read_trace_binary(in, meta, records)) return true;
      std::cerr << "hyco-trace: " << path << ": malformed binary trace\n";
      return false;
    }
  }
  std::ifstream in(path);
  if (hyco::obs::read_trace_jsonl(in, meta, records)) return true;
  std::cerr << "hyco-trace: " << path
            << ": not a hyco-trace/2 file (jsonl or binary)\n";
  return false;
}

void print_header(const CausalGraph& g) {
  const TraceMeta& m = g.meta();
  std::cout << "trace: cell=" << m.cell << " run=" << m.run
            << " seed=" << m.seed << " label=\"" << m.label << "\"\n"
            << "records: " << g.records().size() << " held, " << m.recorded
            << " recorded" << (m.truncated ? "  [TRUNCATED RING]" : "")
            << "\n";
}

std::string describe(const CausalGraph& g, std::size_t i) {
  const TraceRecord& r = g.records()[i];
  std::ostringstream os;
  os << "#" << i << " t=" << r.at << " p" << r.proc << " "
     << hyco::to_cstring(r.kind) << " " << r.detail;
  if (r.mid != 0) os << " [m" << r.mid << "]";
  return os.str();
}

// ---- stats -----------------------------------------------------------------

int cmd_stats(const CausalGraph& g) {
  print_header(g);
  std::map<std::string, std::uint64_t> by_kind;
  ProcId max_proc = -1;
  SimTime t0 = 0, t1 = 0;
  for (const TraceRecord& r : g.records()) {
    ++by_kind[hyco::to_cstring(r.kind)];
    max_proc = std::max(max_proc, r.proc);
    if (t1 == 0 && t0 == 0) t0 = r.at;
    t0 = std::min(t0, r.at);
    t1 = std::max(t1, r.at);
  }
  std::cout << "span: [" << t0 << ", " << t1 << "] ns, procs: 0.."
            << max_proc << "\n";
  for (const auto& [k, c] : by_kind) std::cout << "  " << k << ": " << c << "\n";

  const auto waits = g.quorum_waits();
  std::uint64_t satisfied = 0, stalled = 0;
  std::uint64_t wait_sum = 0, slack_sum = 0;
  for (const auto& w : waits) {
    if (w.stalled) ++stalled;
    if (!w.satisfied) continue;
    ++satisfied;
    wait_sum += static_cast<std::uint64_t>(w.quorum - w.begin);
    if (w.last_arrival > w.quorum) {
      slack_sum += static_cast<std::uint64_t>(w.last_arrival - w.quorum);
    }
  }
  std::cout << "quorum windows: " << waits.size() << " (" << satisfied
            << " satisfied, " << stalled << " stalled)\n";
  if (satisfied > 0) {
    std::cout << "  mean wait to quorum: " << wait_sum / satisfied
              << " ns, mean post-quorum slack: " << slack_sum / satisfied
              << " ns\n";
  }
  std::cout << "decides: " << g.decides().size() << "\n";
  return 0;
}

// ---- provenance ------------------------------------------------------------

bool parse_cluster_sizes(const std::string& arg, std::vector<ProcId>& sizes) {
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) return false;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || v <= 0) return false;
    sizes.push_back(static_cast<ProcId>(v));
  }
  return !sizes.empty();
}

int cluster_of(const std::vector<ProcId>& sizes, ProcId p) {
  ProcId acc = 0;
  for (std::size_t x = 0; x < sizes.size(); ++x) {
    acc += sizes[x];
    if (p < acc) return static_cast<int>(x);
  }
  return -1;
}

int cmd_provenance(const CausalGraph& g, const std::vector<ProcId>& sizes) {
  print_header(g);
  const auto decides = g.decides();
  if (decides.empty()) {
    std::cout << "no decisions in trace\n";
    return 0;
  }
  for (const std::size_t d : decides) {
    const auto p = g.provenance(d);
    std::cout << "decide: p" << p.proc << " r=" << p.round << " t=" << p.at;
    if (p.decided_est.has_value()) std::cout << " value=" << *p.decided_est;
    std::cout << "\n  slice: " << p.slice.size() << " events, "
              << p.support.size() << " supporting deliveries\n";
    std::cout << "  phase-1 support (r=" << p.round << "): ";
    if (p.phase1_senders.empty()) {
      std::cout << "(none in slice)";
    } else {
      for (const ProcId s : p.phase1_senders) {
        std::cout << "p" << s;
        if (!sizes.empty()) std::cout << "(C" << cluster_of(sizes, s) << ")";
        std::cout << " ";
      }
    }
    std::cout << "\n";
    if (!sizes.empty() && !p.phase1_senders.empty()) {
      std::vector<int> clusters;
      for (const ProcId s : p.phase1_senders) {
        const int c = cluster_of(sizes, s);
        if (std::find(clusters.begin(), clusters.end(), c) == clusters.end()) {
          clusters.push_back(c);
        }
      }
      std::sort(clusters.begin(), clusters.end());
      std::cout << "  carrying clusters:";
      for (const int c : clusters) std::cout << " C" << c;
      std::cout << "\n";
    }
    std::cout << "  est-consistent: " << (p.est_consistent ? "yes" : "NO")
              << "\n";
  }
  return 0;
}

// ---- critical-path ---------------------------------------------------------

int cmd_critical_path(const CausalGraph& g) {
  print_header(g);
  const auto decides = g.decides();
  if (decides.empty()) {
    std::cout << "no decisions in trace\n";
    return 0;
  }
  for (const std::size_t d : decides) {
    const auto path = g.critical_path(d);
    const SimTime t_end = g.records()[d].at;
    const SimTime t_begin = g.records()[path.front()].at;
    std::cout << "critical path into decide by p" << g.records()[d].proc
              << " (" << path.size() << " hops, " << (t_end - t_begin)
              << " ns):\n";
    SimTime prev = t_begin;
    for (const std::size_t i : path) {
      const SimTime dt = g.records()[i].at - prev;
      prev = g.records()[i].at;
      std::cout << "  +" << dt << "  " << describe(g, i) << "\n";
    }
  }
  return 0;
}

// ---- anomalies -------------------------------------------------------------

int cmd_anomalies(const CausalGraph& g, Round round_bound,
                  double storm_factor) {
  print_header(g);
  std::uint64_t safety = 0, warnings = 0;

  if (g.meta().truncated) {
    ++warnings;
    std::cout << "warning: ring truncated (" << g.meta().recorded
              << " recorded, " << g.records().size()
              << " held) — integrity checks limited to the window\n";
  }

  // Excess rounds: decisions beyond the expected-round bound. The paper's
  // algorithms decide in a small constant expected number of rounds; a
  // decision far past the bound marks a pathological seed worth replaying.
  for (const std::size_t d : g.decides()) {
    const Round r = g.info(d).round;
    if (r > round_bound) {
      ++warnings;
      std::cout << "warning: excess-rounds: p" << g.records()[d].proc
                << " decided at r=" << r << " (bound " << round_bound
                << ")\n";
    }
  }

  // Stalled quorums: phase windows that never satisfied and never closed.
  for (const auto& w : g.quorum_waits()) {
    if (!w.stalled) continue;
    ++warnings;
    std::cout << "warning: stalled-quorum: p" << w.proc << " r=" << w.round
              << " ph=" << w.phase << " open since t=" << w.begin << " ("
              << w.arrivals_total << " arrivals)\n";
  }

  // Message storms: a round whose Send count dwarfs the median round's.
  std::map<Round, std::uint64_t> sends_per_round;
  for (std::size_t i = 0; i < g.records().size(); ++i) {
    if (g.records()[i].kind == TraceKind::Send && g.info(i).is_phase_msg) {
      ++sends_per_round[g.info(i).round];
    }
  }
  if (sends_per_round.size() >= 3) {
    std::vector<std::uint64_t> counts;
    for (const auto& [r, c] : sends_per_round) counts.push_back(c);
    std::sort(counts.begin(), counts.end());
    const std::uint64_t median = counts[counts.size() / 2];
    for (const auto& [r, c] : sends_per_round) {
      if (median > 0 &&
          static_cast<double>(c) >
              storm_factor * static_cast<double>(median)) {
        ++warnings;
        std::cout << "warning: message-storm: round " << r << " sent " << c
                  << " PHASE messages (median " << median << ")\n";
      }
    }
  }

  // Safety: causal integrity. A Deliver whose mid has no Send cannot happen
  // in a complete trace — the network records the Send when it schedules
  // the delivery. (Skipped under truncation: the Send may have been evicted.)
  if (!g.meta().truncated) {
    for (std::size_t i = 0; i < g.records().size(); ++i) {
      const TraceRecord& r = g.records()[i];
      if (r.kind == TraceKind::Deliver && r.mid != 0 &&
          g.send_of(r.mid) == CausalGraph::npos) {
        ++safety;
        std::cout << "SAFETY: dangling-delivery: " << describe(g, i) << "\n";
      }
    }
  }

  // Safety: all decisions must carry one value, and each slice's phase-2
  // support must match it.
  int decided_value = -2;
  for (const std::size_t d : g.decides()) {
    const auto p = g.provenance(d);
    if (!p.est_consistent) {
      ++safety;
      std::cout << "SAFETY: provenance-mismatch: p" << p.proc << " r="
                << p.round << " slice supports a different value\n";
    }
    if (!p.decided_est.has_value()) continue;
    if (decided_value == -2) {
      decided_value = *p.decided_est;
    } else if (decided_value != *p.decided_est) {
      ++safety;
      std::cout << "SAFETY: conflicting-decides: p" << p.proc << " decided "
                << *p.decided_est << " vs earlier " << decided_value << "\n";
    }
  }

  std::cout << "anomalies: safety=" << safety << " warnings=" << warnings
            << "\n";
  return safety > 0 ? 2 : 0;
}

// ---- export --chrome -------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Sim-time ns -> trace-event microseconds.
double ts_us(SimTime at) { return static_cast<double>(at) / 1000.0; }

int cmd_export_chrome(const CausalGraph& g, std::ostream& out) {
  char buf[64];
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    out << (first ? "\n  " : ",\n  ") << ev;
    first = false;
  };
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
         "\"hyco-trace/2\",\"label\":\""
      << json_escape(g.meta().label) << "\",\"seed\":" << g.meta().seed
      << "},\"traceEvents\":[";

  // Track names: one tid per process under pid 0.
  ProcId max_proc = 0;
  for (const TraceRecord& r : g.records()) max_proc = std::max(max_proc, r.proc);
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":"
       "\"hyco sim\"}}");
  for (ProcId p = 0; p <= max_proc; ++p) {
    std::ostringstream os;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << p
       << ",\"args\":{\"name\":\"p" << p << "\"}}";
    emit(os.str());
  }

  // Phase spans: PhaseStart -> next PhaseStart/Decide of the same process.
  std::map<ProcId, std::size_t> open;
  const auto close_span = [&](std::size_t begin_idx, SimTime end_at) {
    const TraceRecord& b = g.records()[begin_idx];
    std::snprintf(buf, sizeof(buf), "%.3f", ts_us(b.at));
    std::ostringstream os;
    os << "{\"name\":\"" << json_escape(b.detail) << "\",\"cat\":\"phase\","
       << "\"ph\":\"X\",\"ts\":" << buf << ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f", ts_us(end_at - b.at));
    os << buf << ",\"pid\":0,\"tid\":" << b.proc << "}";
    emit(os.str());
  };
  for (std::size_t i = 0; i < g.records().size(); ++i) {
    const TraceRecord& r = g.records()[i];
    if (r.kind == TraceKind::PhaseStart || r.kind == TraceKind::Decide) {
      const auto it = open.find(r.proc);
      if (it != open.end()) {
        close_span(it->second, r.at);
        open.erase(it);
      }
      if (r.kind == TraceKind::PhaseStart) open[r.proc] = i;
    }
  }

  // Instant events for every record; flow arrows over send->deliver edges.
  for (std::size_t i = 0; i < g.records().size(); ++i) {
    const TraceRecord& r = g.records()[i];
    const ProcId tid = r.proc < 0 ? max_proc + 1 : r.proc;
    std::snprintf(buf, sizeof(buf), "%.3f", ts_us(r.at));
    {
      std::ostringstream os;
      os << "{\"name\":\"" << hyco::to_cstring(r.kind) << ": "
         << json_escape(r.detail) << "\",\"cat\":\""
         << hyco::to_cstring(r.kind) << "\",\"ph\":\"i\",\"ts\":" << buf
         << ",\"pid\":0,\"tid\":" << tid << ",\"s\":\"t\"}";
      emit(os.str());
    }
    if (r.kind == TraceKind::Send && r.mid != 0 &&
        g.consume_of(r.mid) != CausalGraph::npos) {
      std::ostringstream os;
      os << "{\"name\":\"msg\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":"
         << r.mid << ",\"ts\":" << buf << ",\"pid\":0,\"tid\":" << tid
         << "}";
      emit(os.str());
    } else if (r.kind == TraceKind::Deliver && r.mid != 0 &&
               g.send_of(r.mid) != CausalGraph::npos) {
      std::ostringstream os;
      os << "{\"name\":\"msg\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\","
         << "\"id\":" << r.mid << ",\"ts\":" << buf << ",\"pid\":0,\"tid\":"
         << tid << "}";
      emit(os.str());
    }
  }
  out << "\n]}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  std::string path;
  std::string out_path;
  std::vector<ProcId> cluster_sizes;
  Round round_bound = 8;
  double storm_factor = 8.0;
  bool chrome = false;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "hyco-trace: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--chrome") {
      chrome = true;
    } else if (a == "-o") {
      out_path = next("-o");
    } else if (a == "--clusters") {
      if (!parse_cluster_sizes(next("--clusters"), cluster_sizes)) {
        std::cerr << "hyco-trace: bad --clusters (want s1,s2,...)\n";
        return 1;
      }
    } else if (a == "--round-bound") {
      round_bound = static_cast<Round>(std::atoll(next("--round-bound")));
    } else if (a == "--storm-factor") {
      storm_factor = std::atof(next("--storm-factor"));
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "hyco-trace: unknown option " << a << "\n";
      return 1;
    } else if (path.empty()) {
      path = a;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  TraceMeta meta;
  std::vector<TraceRecord> records;
  if (!load_trace(path, meta, records)) return 1;
  const CausalGraph g = CausalGraph::build(std::move(meta),
                                           std::move(records));

  if (cmd == "stats") return cmd_stats(g);
  if (cmd == "provenance") return cmd_provenance(g, cluster_sizes);
  if (cmd == "critical-path") return cmd_critical_path(g);
  if (cmd == "anomalies") return cmd_anomalies(g, round_bound, storm_factor);
  if (cmd == "export") {
    if (!chrome) {
      std::cerr << "hyco-trace: export requires --chrome\n";
      return 1;
    }
    if (out_path.empty()) return cmd_export_chrome(g, std::cout);
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "hyco-trace: cannot write " << out_path << "\n";
      return 1;
    }
    return cmd_export_chrome(g, out);
  }
  return usage();
}
