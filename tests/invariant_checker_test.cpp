// Unit tests for the online invariant checker: it must catch each violation
// class (cluster inconsistency, WA1, WA2, agreement, validity) and stay
// silent on clean traces.
#include <gtest/gtest.h>

#include "core/invariant_checker.h"
#include "util/assert.h"

namespace hyco {
namespace {

ClusterLayout layout() { return ClusterLayout::from_sizes({2, 3, 2}); }

TEST(InvariantChecker, CleanTraceIsOk) {
  const auto l = layout();
  InvariantChecker c(l);
  c.set_inputs(std::vector<Estimate>(7, Estimate::One));
  for (ProcId p = 0; p < 7; ++p) c.on_est1(p, 1, Estimate::One);
  for (ProcId p = 0; p < 7; ++p) c.on_est2(p, 1, Estimate::One);
  for (ProcId p = 0; p < 7; ++p) c.on_rec(p, 1, {Estimate::One});
  for (ProcId p = 0; p < 7; ++p) c.on_decide(p, 1, Estimate::One);
  EXPECT_TRUE(c.ok()) << c.violations()[0];
  EXPECT_EQ(c.decided_value(), Estimate::One);
}

TEST(InvariantChecker, CatchesClusterInconsistentEst1) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_est1(2, 1, Estimate::Zero);  // p2 and p3 are both in P[1]
  c.on_est1(3, 1, Estimate::One);
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("cluster-inconsistency"),
            std::string::npos);
}

TEST(InvariantChecker, SameClusterDifferentRoundsIsFine) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_est1(2, 1, Estimate::Zero);
  c.on_est1(3, 2, Estimate::One);  // different round: no conflict
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, CatchesBotEst1) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_est1(0, 1, Estimate::Bot);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, CatchesWa1Violation) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_est2(0, 3, Estimate::Zero);
  c.on_est2(2, 3, Estimate::One);  // two distinct non-⊥ est2 in one round
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("WA1"), std::string::npos);
}

TEST(InvariantChecker, BotEst2NeverTriggersWa1) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_est2(0, 3, Estimate::Zero);
  c.on_est2(2, 3, Estimate::Bot);
  c.on_est2(5, 3, Estimate::Zero);
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, CatchesWa2Violation) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_rec(0, 2, {Estimate::One});   // rec = {v}
  c.on_rec(2, 2, {Estimate::Bot});   // rec = {⊥}: mutually exclusive
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("WA2"), std::string::npos);
}

TEST(InvariantChecker, Wa2OrderIndependent) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_rec(2, 2, {Estimate::Bot});
  c.on_rec(0, 2, {Estimate::One});
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, MixedRecIsCompatibleWithBoth) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_rec(0, 2, {Estimate::One});
  c.on_rec(1, 2, {Estimate::One, Estimate::Bot});  // {v,⊥} is fine
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, CatchesRecWithBothBinaryValues) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_rec(0, 1, {Estimate::Zero, Estimate::One});
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, CatchesEmptyRec) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_rec(0, 1, {});
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, CatchesDisagreement) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_decide(0, 1, Estimate::Zero);
  c.on_decide(1, 2, Estimate::One);
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("AGREEMENT"), std::string::npos);
}

TEST(InvariantChecker, CatchesInvalidDecision) {
  const auto l = layout();
  InvariantChecker c(l);
  c.set_inputs(std::vector<Estimate>(7, Estimate::Zero));
  c.on_decide(0, 1, Estimate::One);  // 1 was never proposed
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("VALIDITY"), std::string::npos);
}

TEST(InvariantChecker, CatchesBotDecision) {
  const auto l = layout();
  InvariantChecker c(l);
  c.on_decide(0, 1, Estimate::Bot);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, InputSizeValidated) {
  const auto l = layout();
  InvariantChecker c(l);
  EXPECT_THROW(c.set_inputs({Estimate::One}), ContractViolation);
  EXPECT_THROW(c.set_inputs(std::vector<Estimate>(7, Estimate::Bot)),
               ContractViolation);
}

}  // namespace
}  // namespace hyco
