// Tests of the multivalued consensus extension (bit-by-bit reduction over
// embedded hybrid binary instances): agreement, validity (the decided
// value must be a proposed value — the acid test of the prefix-filtered
// reduction), termination, inherited one-for-all fault tolerance, and the
// instance-multiplexing plumbing.
#include <gtest/gtest.h>

#include "core/multivalued_runner.h"
#include "util/assert.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

TEST(MultiValued, UnanimousDecidesProposal) {
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.width = 16;
  cfg.inputs = std::vector<std::uint64_t>(7, 0xBEEF);
  cfg.seed = 1;
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decided_value, 0xBEEF);
}

TEST(MultiValued, TwoDistinctValues) {
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.width = 8;
  cfg.inputs = {3, 200, 3, 200, 3, 200, 3};
  cfg.seed = 2;
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_TRUE(*r.decided_value == 3 || *r.decided_value == 200);
}

TEST(MultiValued, AllDistinctValuesStillValid) {
  // The hard case for bit-by-bit reductions: decided bits must never
  // "frankenstein" a value nobody proposed.
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.width = 16;
  cfg.inputs = {11, 222, 3333, 44, 5555, 666, 7777};
  cfg.seed = 3;
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.success());
  bool proposed = false;
  for (const auto v : cfg.inputs) proposed |= (v == *r.decided_value);
  EXPECT_TRUE(proposed) << "decided " << *r.decided_value;
}

TEST(MultiValued, WidthOneIsBinaryConsensus) {
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.width = 1;
  cfg.inputs = {0, 1, 0, 1};
  cfg.seed = 4;
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_LE(*r.decided_value, 1u);
}

TEST(MultiValued, FullWidth64) {
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.width = 64;
  cfg.inputs = {0xDEADBEEFCAFEF00DULL, 0x123456789ABCDEF0ULL,
                0xDEADBEEFCAFEF00DULL, 0x123456789ABCDEF0ULL};
  cfg.seed = 5;
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_TRUE(*r.decided_value == 0xDEADBEEFCAFEF00DULL ||
              *r.decided_value == 0x123456789ABCDEF0ULL);
}

TEST(MultiValued, ProposalMustFitWidth) {
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.width = 4;
  cfg.inputs = {16, 0, 0, 0};  // 16 needs 5 bits
  EXPECT_THROW(run_multivalued(cfg), ContractViolation);
}

TEST(MultiValued, OneForAllSurvivesMajorityCrash) {
  // The inherited paper property: 6 of 7 crash, the lone survivor of the
  // majority cluster still drives all W bits to decision.
  const auto layout = ClusterLayout::fig1_right();
  Rng rng(42);
  const auto scenario =
      failure_patterns::majority_crash_one_survivor(layout, rng, 200);
  MultiRunConfig cfg(layout);
  cfg.width = 8;
  cfg.inputs = {10, 20, 30, 40, 50, 60, 70};
  cfg.crashes = scenario.plan;
  cfg.seed = 6;
  const auto r = run_multivalued(cfg);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.agreement_ok && r.validity_ok);
}

TEST(MultiValued, IndulgentWithoutCoveringSet) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  Rng rng(43);
  const auto scenario = failure_patterns::kill_covering_set(layout, rng, 0);
  MultiRunConfig cfg(layout);
  cfg.width = 8;
  cfg.inputs = {1, 2, 3, 4, 5, 6, 7};
  cfg.crashes = scenario.plan;
  cfg.seed = 7;
  cfg.max_rounds_per_bit = 60;
  const auto r = run_multivalued(cfg);
  EXPECT_TRUE(r.agreement_ok && r.validity_ok);
  EXPECT_EQ(r.stop, StopReason::Quiescent);
}

TEST(MultiValued, UsesOneMemoryNamespacePerBit) {
  MultiRunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.width = 8;
  cfg.inputs = {100, 100, 100, 100};
  cfg.seed = 8;
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.success());
  // 8 bit-instances, each unanimous -> 1 round each, m=2 memories per
  // instance, 1 object per memory-round.
  EXPECT_GE(r.consensus_objects, 8u * 2u);
}

class MultiValuedSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MultiValuedSweep, RandomInputsAlwaysSafeAndLive) {
  const auto [shape, seed] = GetParam();
  const auto layout = shape == 0   ? ClusterLayout::from_sizes({2, 3, 2})
                      : shape == 1 ? ClusterLayout::singletons(5)
                                   : ClusterLayout::even(9, 3);
  MultiRunConfig cfg(layout);
  cfg.width = 12;
  cfg.seed = seed;  // inputs derived pseudorandomly from the seed
  const auto r = run_multivalued(cfg);
  ASSERT_TRUE(r.agreement_ok) << "seed " << seed;
  ASSERT_TRUE(r.validity_ok) << "seed " << seed;
  EXPECT_TRUE(r.all_correct_decided) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiValuedSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range<std::uint64_t>(1, 13)));

TEST(MultiValued, MidBroadcastCrashesStaySafe) {
  const auto layout = ClusterLayout::from_sizes({3, 3, 3});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(mix64(seed, 0xAB));
    const auto scenario = failure_patterns::mid_broadcast(layout, 2, 1, rng);
    MultiRunConfig cfg(layout);
    cfg.width = 8;
    cfg.crashes = scenario.plan;
    cfg.seed = seed;
    const auto r = run_multivalued(cfg);
    EXPECT_TRUE(r.agreement_ok && r.validity_ok) << "seed " << seed;
    if (scenario.hybrid_should_terminate) {
      EXPECT_TRUE(r.all_correct_decided) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace hyco
