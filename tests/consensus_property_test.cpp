// Property-based sweeps: for EVERY combination of algorithm, layout shape,
// input pattern, failure pattern, and seed, a run must be safe (agreement,
// validity, WA1, WA2, cluster consistency); and whenever the paper's
// termination condition holds, it must also be live.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runner.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

ClusterLayout layout_for(int shape, ProcId n) {
  switch (shape) {
    case 0: return ClusterLayout::single(n);
    case 1: return ClusterLayout::singletons(n);
    case 2: return ClusterLayout::even(n, 2);
    case 3: return ClusterLayout::even(n, (n >= 4 ? 4 : 2));
    default: {
      // skewed: one cluster of about 60%, rest singletons
      const ProcId big = std::max<ProcId>(1, (3 * n) / 5);
      std::vector<ProcId> sizes{big};
      for (ProcId i = big; i < n; ++i) sizes.push_back(1);
      return ClusterLayout::from_sizes(sizes);
    }
  }
}

std::vector<Estimate> inputs_for(int pattern, ProcId n, std::uint64_t seed) {
  switch (pattern) {
    case 0: return uniform_inputs(n, Estimate::Zero);
    case 1: return uniform_inputs(n, Estimate::One);
    case 2: return split_inputs(n);
    default: {
      Rng rng(mix64(seed, 0x1A9));
      std::vector<Estimate> in(static_cast<std::size_t>(n));
      for (auto& e : in) e = estimate_from_bit(rng.coin());
      return in;
    }
  }
}

// (algorithm, layout shape, input pattern, n, seed)
using Param = std::tuple<int, int, int, int, std::uint64_t>;

class CrashFreeProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CrashFreeProperty, SafeAndLive) {
  const auto [alg, shape, pattern, n, seed] = GetParam();
  RunConfig cfg(layout_for(shape, static_cast<ProcId>(n)));
  cfg.alg = alg == 0 ? Algorithm::HybridLocalCoin
                     : Algorithm::HybridCommonCoin;
  cfg.inputs = inputs_for(pattern, static_cast<ProcId>(n), seed);
  cfg.seed = mix64(seed, static_cast<std::uint64_t>(shape * 100 + pattern));
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.safe()) << (r.violations.empty() ? "?" : r.violations[0]);
  EXPECT_TRUE(r.all_correct_decided)
      << to_cstring(cfg.alg) << " n=" << n << " layout="
      << cfg.layout.to_string();
  // Unanimous proposals must decide the proposed value (strong validity).
  if (pattern == 0) EXPECT_EQ(r.decided_value, Estimate::Zero);
  if (pattern == 1) EXPECT_EQ(r.decided_value, Estimate::One);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrashFreeProperty,
    ::testing::Combine(::testing::Values(0, 1),       // algorithm
                       ::testing::Values(0, 1, 2, 3, 4),  // layout shape
                       ::testing::Values(0, 1, 2, 3),     // input pattern
                       ::testing::Values(5, 8, 13),       // n
                       ::testing::Values<std::uint64_t>(1, 2)));

class CrashyProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CrashyProperty, RandomMinorityCrashesStaySafeAndLive) {
  const auto [alg, shape, pattern, n, seed] = GetParam();
  const auto layout = layout_for(shape, static_cast<ProcId>(n));
  Rng rng(mix64(seed, 0xC4A5));
  const auto scenario = failure_patterns::random_minority(layout, rng, 500);

  RunConfig cfg(layout);
  cfg.alg = alg == 0 ? Algorithm::HybridLocalCoin
                     : Algorithm::HybridCommonCoin;
  cfg.inputs = inputs_for(pattern, static_cast<ProcId>(n), seed);
  cfg.crashes = scenario.plan;
  cfg.seed = mix64(seed, 0xEE);
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.safe()) << (r.violations.empty() ? "?" : r.violations[0]);
  // A minority of crashed processes always leaves a live covering set.
  ASSERT_TRUE(scenario.hybrid_should_terminate);
  EXPECT_TRUE(r.all_correct_decided);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrashyProperty,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0, 2, 4),
                       ::testing::Values(2, 3),
                       ::testing::Values(7, 12),
                       ::testing::Values<std::uint64_t>(3, 4, 5)));

class MidBroadcastProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MidBroadcastProperty, PartialBroadcastsNeverBreakSafety) {
  // The paper's "arbitrary subset" clause is the classic trap for
  // consensus algorithms; sweep crashes in different broadcasts.
  const auto [alg, seed] = GetParam();
  const auto layout = ClusterLayout::from_sizes({3, 3, 3});
  Rng rng(mix64(seed, 0xB0));
  const auto scenario = failure_patterns::mid_broadcast(
      layout, /*count=*/3, /*broadcast_index=*/static_cast<std::int32_t>(seed % 4),
      rng);

  RunConfig cfg(layout);
  cfg.alg = alg == 0 ? Algorithm::HybridLocalCoin
                     : Algorithm::HybridCommonCoin;
  cfg.inputs = split_inputs(9);
  cfg.crashes = scenario.plan;
  cfg.seed = seed;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.safe()) << (r.violations.empty() ? "?" : r.violations[0]);
  if (scenario.hybrid_should_terminate) {
    EXPECT_TRUE(r.all_correct_decided);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MidBroadcastProperty,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Range<std::uint64_t>(1, 16)));

class DelayDistributionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(DelayDistributionProperty, TerminationUnderEveryDelayModel) {
  const auto [alg, delay_kind, seed] = GetParam();
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = alg == 0 ? Algorithm::HybridLocalCoin
                     : Algorithm::HybridCommonCoin;
  cfg.inputs = split_inputs(7);
  cfg.seed = seed;
  switch (delay_kind) {
    case 0: cfg.delays = DelayConfig::constant_of(100); break;
    case 1: cfg.delays = DelayConfig::uniform(1, 500); break;
    default: cfg.delays = DelayConfig::exponential(120.0); break;
  }
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.safe());
  EXPECT_TRUE(r.all_correct_decided);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DelayDistributionProperty,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1, 2),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace hyco
