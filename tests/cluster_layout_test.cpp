// Unit tests for ClusterLayout (Section II-A clusters), including the two
// Figure 1 decompositions and the one-for-all coverage predicate.
#include <gtest/gtest.h>

#include "core/cluster_layout.h"
#include "util/assert.h"

namespace hyco {
namespace {

TEST(ClusterLayout, ValidatesPartition) {
  EXPECT_THROW(ClusterLayout({{0, 1}, {1, 2}}), ContractViolation);  // overlap
  EXPECT_THROW(ClusterLayout({{0}, {}}), ContractViolation);        // empty
  EXPECT_THROW(ClusterLayout({{0, 2}}), ContractViolation);  // gap (1 missing)
  EXPECT_THROW(ClusterLayout({{0, -1}}), ContractViolation); // negative id
  EXPECT_THROW(ClusterLayout({}), ContractViolation);        // no clusters
}

TEST(ClusterLayout, BasicAccessors) {
  const ClusterLayout l({{0, 1}, {2, 3, 4}});
  EXPECT_EQ(l.n(), 5);
  EXPECT_EQ(l.m(), 2);
  EXPECT_EQ(l.cluster_of(0), 0);
  EXPECT_EQ(l.cluster_of(4), 1);
  EXPECT_EQ(l.cluster_size(1), 3);
  EXPECT_EQ(l.members(0), (std::vector<ProcId>{0, 1}));
  EXPECT_TRUE(l.member_set(1).test(2));
  EXPECT_FALSE(l.member_set(1).test(0));
  EXPECT_THROW(l.cluster_of(9), ContractViolation);
  EXPECT_THROW(l.members(5), ContractViolation);
}

TEST(ClusterLayout, MembersAreSortedEvenIfGivenUnsorted) {
  const ClusterLayout l({{1, 0}, {4, 2, 3}});
  EXPECT_EQ(l.members(0), (std::vector<ProcId>{0, 1}));
  EXPECT_EQ(l.members(1), (std::vector<ProcId>{2, 3, 4}));
}

TEST(ClusterLayout, SingletonsIsPureMessagePassing) {
  const auto l = ClusterLayout::singletons(4);
  EXPECT_EQ(l.n(), 4);
  EXPECT_EQ(l.m(), 4);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(l.cluster_of(p), p);
    EXPECT_EQ(l.cluster_size(p), 1);
  }
}

TEST(ClusterLayout, SingleIsPureSharedMemory) {
  const auto l = ClusterLayout::single(6);
  EXPECT_EQ(l.m(), 1);
  EXPECT_EQ(l.cluster_size(0), 6);
  EXPECT_TRUE(l.has_majority_cluster());
}

TEST(ClusterLayout, FromSizesAndEven) {
  const auto l = ClusterLayout::from_sizes({2, 3, 2});
  EXPECT_EQ(l.n(), 7);
  EXPECT_EQ(l.m(), 3);
  EXPECT_EQ(l.members(1), (std::vector<ProcId>{2, 3, 4}));

  const auto e = ClusterLayout::even(10, 3);
  EXPECT_EQ(e.cluster_size(0), 4);
  EXPECT_EQ(e.cluster_size(1), 3);
  EXPECT_EQ(e.cluster_size(2), 3);
  EXPECT_THROW(ClusterLayout::even(3, 5), ContractViolation);
  EXPECT_THROW(ClusterLayout::from_sizes({2, 0}), ContractViolation);
}

TEST(ClusterLayout, Figure1Decompositions) {
  // Both Figure 1 layouts: n = 7 into m = 3 clusters.
  const auto left = ClusterLayout::fig1_left();
  EXPECT_EQ(left.n(), 7);
  EXPECT_EQ(left.m(), 3);
  EXPECT_FALSE(left.has_majority_cluster());

  const auto right = ClusterLayout::fig1_right();
  EXPECT_EQ(right.n(), 7);
  EXPECT_EQ(right.m(), 3);
  // P[2] = {p2,p3,p4,p5} (paper 1-based) = {1,2,3,4} 0-based: a majority.
  EXPECT_EQ(right.members(1), (std::vector<ProcId>{1, 2, 3, 4}));
  EXPECT_TRUE(right.has_majority_cluster());
}

TEST(ClusterLayout, LiveCoverageCountsWholeClusters) {
  const auto l = ClusterLayout::fig1_right();  // {0},{1,2,3,4},{5,6}
  DynamicBitset live(7);
  live.set(2);  // one survivor inside the majority cluster
  EXPECT_EQ(l.live_coverage(live), 4);  // whole cluster counts
  EXPECT_TRUE(l.covering_set_alive(live));  // 4 > 7/2

  DynamicBitset live2(7);
  live2.set(0);
  live2.set(5);  // {0} + {5,6} = coverage 3, not a majority
  EXPECT_EQ(l.live_coverage(live2), 3);
  EXPECT_FALSE(l.covering_set_alive(live2));
}

TEST(ClusterLayout, CoverageOfAllLiveIsN) {
  const auto l = ClusterLayout::from_sizes({2, 3, 2});
  DynamicBitset live(7);
  live.set_all();
  EXPECT_EQ(l.live_coverage(live), 7);
  DynamicBitset none(7);
  EXPECT_EQ(l.live_coverage(none), 0);
  EXPECT_FALSE(l.covering_set_alive(none));
}

TEST(ClusterLayout, ToStringListsClusters) {
  const auto l = ClusterLayout::from_sizes({1, 2});
  EXPECT_EQ(l.to_string(), "{0},{1,2}");
}

}  // namespace
}  // namespace hyco
