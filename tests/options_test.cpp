// Unit tests for comma-separated list parsing in util/options.h.
#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"
#include "util/options.h"

namespace hyco {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionsIntList, ParsesCommaSeparatedIntegers) {
  const auto opts = parse({"--n=8,16,32"});
  EXPECT_EQ(opts.get_int_list("n"),
            (std::vector<std::int64_t>{8, 16, 32}));
}

TEST(OptionsIntList, SingleValueAndNegatives) {
  const auto opts = parse({"--n=8", "--delta=-3,4"});
  EXPECT_EQ(opts.get_int_list("n"), (std::vector<std::int64_t>{8}));
  EXPECT_EQ(opts.get_int_list("delta"), (std::vector<std::int64_t>{-3, 4}));
}

TEST(OptionsIntList, FallbackWhenAbsent) {
  const auto opts = parse({});
  EXPECT_EQ(opts.get_int_list("n", {1, 2}),
            (std::vector<std::int64_t>{1, 2}));
  EXPECT_TRUE(opts.get_int_list("n").empty());
}

TEST(OptionsIntList, RejectsMalformedInput) {
  EXPECT_THROW(parse({"--n=8,banana"}).get_int_list("n"), ContractViolation);
  EXPECT_THROW(parse({"--n=8,,16"}).get_int_list("n"), ContractViolation);
  EXPECT_THROW(parse({"--n=8,16,"}).get_int_list("n"), ContractViolation);
  EXPECT_THROW(parse({"--n=12junk"}).get_int_list("n"), ContractViolation);
}

TEST(OptionsIntList, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse({"--n=99999999999999999999"}).get_int_list("n"),
               ContractViolation);
  EXPECT_THROW(parse({"--eps=1e999"}).get_double_list("eps"),
               ContractViolation);
}

TEST(OptionsIntList, ErrorNamesKeyAndToken) {
  try {
    (void)parse({"--n=8,oops"}).get_int_list("n");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--n"), std::string::npos);
    EXPECT_NE(what.find("oops"), std::string::npos);
  }
}

TEST(OptionsDoubleList, ParsesAndRejects) {
  const auto opts = parse({"--eps=0,0.25,0.5"});
  EXPECT_EQ(opts.get_double_list("eps"),
            (std::vector<double>{0.0, 0.25, 0.5}));
  EXPECT_THROW(parse({"--eps=0.1,x"}).get_double_list("eps"),
               ContractViolation);
}

TEST(OptionsStringList, SplitsAndRejectsEmptyItems) {
  const auto opts = parse({"--alg=local_coin,common_coin"});
  EXPECT_EQ(opts.get_string_list("alg"),
            (std::vector<std::string>{"local_coin", "common_coin"}));
  EXPECT_THROW(parse({"--alg=a,,b"}).get_string_list("alg"),
               ContractViolation);
}

}  // namespace
}  // namespace hyco
