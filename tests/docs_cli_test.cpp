// docs/cli.md must document every flag the sweep binary accepts: the
// registry in src/exp/sweep_flags.cpp is the single source of truth (the
// binary rejects anything outside it), and this test fails the build when
// a flag lands without its documentation.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/sweep_flags.h"

namespace hyco {
namespace {

std::string read_doc(const char* rel) {
  const std::string path = std::string(HYCO_SOURCE_DIR) + rel;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(DocsCli, EveryRegisteredFlagIsDocumented) {
  const std::string doc = read_doc("/docs/cli.md");
  ASSERT_FALSE(doc.empty());
  for (const SweepFlag& f : sweep_flag_registry()) {
    EXPECT_NE(doc.find("--" + std::string(f.name)),
              std::string::npos)
        << "docs/cli.md does not mention --" << f.name
        << " (registered in src/exp/sweep_flags.cpp as: " << f.summary << ")";
  }
}

TEST(DocsCli, RegistryHasNoDuplicatesAndRejectsUnknowns) {
  const auto& flags = sweep_flag_registry();
  for (std::size_t i = 0; i < flags.size(); ++i) {
    for (std::size_t j = i + 1; j < flags.size(); ++j) {
      EXPECT_STRNE(flags[i].name, flags[j].name);
    }
    EXPECT_TRUE(is_sweep_flag(flags[i].name));
  }
  EXPECT_FALSE(is_sweep_flag("definitely-not-a-flag"));
}

TEST(DocsCli, ArchitectureAndPaperMapExistAndAreLinkedFromReadme) {
  EXPECT_NE(read_doc("/docs/architecture.md").find("# "), std::string::npos);
  EXPECT_NE(read_doc("/docs/paper-map.md").find("# "), std::string::npos);
  const std::string readme = read_doc("/README.md");
  EXPECT_NE(readme.find("docs/architecture.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/paper-map.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/cli.md"), std::string::npos);
}

}  // namespace
}  // namespace hyco
