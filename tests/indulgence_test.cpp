// Indulgence (Section III-B): "whatever the failure pattern, the algorithm
// never terminates with an incorrect result". When no covering set of
// clusters survives, the algorithms may block forever — but they must never
// decide wrongly, under any delay distribution or adversarial scheduler.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/runner.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

class Indulgence
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Indulgence, NoCoveringSetMeansQuiescenceWithoutDecision) {
  const auto [alg_idx, seed] = GetParam();
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  Rng rng(mix64(seed, 0x1D01));
  const auto scenario = failure_patterns::kill_covering_set(layout, rng, 0);
  ASSERT_FALSE(scenario.hybrid_should_terminate);

  RunConfig cfg(layout);
  cfg.alg = alg_idx == 0 ? Algorithm::HybridLocalCoin
                         : Algorithm::HybridCommonCoin;
  cfg.inputs = split_inputs(7);
  cfg.crashes = scenario.plan;
  cfg.seed = seed;
  cfg.max_rounds = 100;
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.safe()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.stop, StopReason::Quiescent);
  // Survivors of non-covering clusters may never decide...
  EXPECT_FALSE(r.all_correct_decided);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Indulgence,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8)));

TEST(Indulgence, ValueSplitAdversaryCannotBreakSafety) {
  // An adversarial scheduler that delays 1-carrying messages 50x longer
  // than 0-carrying ones, trying to keep the system split. Randomization
  // must still terminate it, and safety must hold throughout.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
    cfg.alg = Algorithm::HybridLocalCoin;
    cfg.inputs = split_inputs(7);
    cfg.seed = seed;
    cfg.delay_factory = [] {
      return std::make_unique<AdversarialDelay>(
          [](ProcId, ProcId, const Message& m, SimTime, Rng& rng) {
            const SimTime base = rng.uniform(10, 50);
            return m.est == Estimate::One ? base * 50 : base;
          });
    };
    const auto r = run_consensus(cfg);
    EXPECT_TRUE(r.success()) << "seed " << seed;
  }
}

TEST(Indulgence, SlowClusterAdversaryCannotBreakSafety) {
  // Delay everything from the majority cluster — its weight still counts
  // once a single (slow) message arrives.
  const auto layout = ClusterLayout::fig1_right();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg(layout);
    cfg.alg = Algorithm::HybridCommonCoin;
    cfg.inputs = split_inputs(7);
    cfg.seed = seed;
    cfg.delay_factory = [] {
      return std::make_unique<AdversarialDelay>(
          [](ProcId from, ProcId, const Message&, SimTime, Rng& rng) {
            const SimTime base = rng.uniform(10, 50);
            const bool from_majority = from >= 1 && from <= 4;
            return from_majority ? base * 100 : base;
          });
    };
    const auto r = run_consensus(cfg);
    EXPECT_TRUE(r.success()) << "seed " << seed;
  }
}

TEST(Indulgence, EpsilonBiasedCoinDelaysButNeverCorruptsDecisions) {
  // With an ε-biased common coin the adversary can stall termination (it
  // sometimes picks the wrong bit) but can never manufacture disagreement.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
    cfg.alg = Algorithm::HybridCommonCoin;
    cfg.inputs = split_inputs(7);
    cfg.seed = seed;
    cfg.coin_epsilon = 0.5;
    cfg.adversary_bit = 0;
    const auto r = run_consensus(cfg);
    EXPECT_TRUE(r.safe()) << "seed " << seed;
    EXPECT_TRUE(r.all_correct_decided) << "seed " << seed;
  }
}

TEST(Indulgence, LateCrashesAfterDecisionAreHarmless) {
  // Processes crash at a time most runs have already decided by; whatever
  // the interleaving, safety and (for survivors) termination hold.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
    cfg.alg = Algorithm::HybridLocalCoin;
    cfg.inputs = split_inputs(7);
    cfg.seed = seed;
    cfg.crashes = CrashPlan::none(7);
    cfg.crashes.specs[2] = CrashSpec::at_time(5000);
    cfg.crashes.specs[6] = CrashSpec::at_time(6000);
    const auto r = run_consensus(cfg);
    EXPECT_TRUE(r.safe()) << "seed " << seed;
    EXPECT_TRUE(r.all_correct_decided) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hyco
