// Tests for the replicated service layer (src/service/): the decided-log
// safety checker, end-to-end closed-loop runs through run_service(), and
// safety under crashes and partitions. Every e2e test runs the standalone
// checker over the slot logs in addition to asserting the run's own
// safe_ok verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/total_order.h"
#include "scenario/scenario.h"
#include "service/checker.h"
#include "service/service_runner.h"
#include "util/assert.h"

namespace hyco {
namespace {

std::vector<SlotRecord> log_of(std::vector<std::uint64_t> batches) {
  std::vector<SlotRecord> log;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    log.push_back({static_cast<int>(i), batches[i]});
  }
  return log;
}

TEST(ServiceChecker, AcceptsCleanLogsIncludingNoopsAndPrefixes) {
  const std::vector<std::vector<SlotRecord>> logs = {
      log_of({3, TobProcess::kNoop, 1, 2}),
      log_of({3, TobProcess::kNoop, 1}),  // shorter prefix is fine
      log_of({3, TobProcess::kNoop, 1, 2}),
  };
  const ServiceCheckReport rep = check_service_logs(logs);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.violations.empty());
}

TEST(ServiceChecker, DetectsSlotGap) {
  std::vector<SlotRecord> log = log_of({1, 2});
  log.push_back({3, 5});  // slot 2 missing
  const ServiceCheckReport rep = check_service_logs({log});
  EXPECT_FALSE(rep.ok);
  ASSERT_FALSE(rep.violations.empty());
}

TEST(ServiceChecker, DetectsDuplicateBatchInOneLog) {
  const ServiceCheckReport rep = check_service_logs({log_of({7, 2, 7})});
  EXPECT_FALSE(rep.ok);
}

TEST(ServiceChecker, DetectsDivergentSlotAssignment) {
  const ServiceCheckReport rep = check_service_logs({
      log_of({1, 2, 3}),
      log_of({1, 3}),  // batch 3 at slot 1 here, slot 2 elsewhere
  });
  EXPECT_FALSE(rep.ok);
}

TEST(ServiceChecker, DetectsPrefixDisagreement) {
  const ServiceCheckReport rep = check_service_logs({
      log_of({1, 2}),
      log_of({1, 4}),
  });
  EXPECT_FALSE(rep.ok);
}

TEST(ServiceE2E, ClosedLoopDecidesEveryOpAndPassesTheChecker) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.seed = 11;
  cfg.clients = 100;
  cfg.ops_per_client = 2;
  cfg.batch_max = 16;
  const ServiceRunResult r = run_service(cfg);

  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(r.safe_ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.ops_submitted, 200u);
  EXPECT_EQ(r.ops_completed, 200u);
  EXPECT_GT(r.batches, 0u);
  EXPECT_LE(r.batches, r.ops_completed);
  EXPECT_GT(r.slots, 0u);
  EXPECT_GT(r.ops_per_sec(), 0u);
  EXPECT_EQ(r.latency.count(), r.ops_completed);
  EXPECT_EQ(r.latency_hist.total(), r.ops_completed);
  EXPECT_TRUE(check_service_logs(r.slot_logs).ok);
}

TEST(ServiceE2E, BatchingCollapsesOpsIntoFewerProposals) {
  ServiceRunConfig batched(ClusterLayout::even(4, 2));
  batched.seed = 5;
  batched.clients = 80;
  batched.batch_max = 64;
  batched.batch_delay = 200'000;
  const ServiceRunResult rb = run_service(batched);

  ServiceRunConfig unbatched = batched;
  unbatched.batch_delay = 0;  // flush every op
  const ServiceRunResult ru = run_service(unbatched);

  ASSERT_TRUE(rb.success());
  ASSERT_TRUE(ru.success());
  EXPECT_EQ(rb.ops_completed, 80u);
  EXPECT_EQ(ru.ops_completed, 80u);
  // Unbatched: one proposal per op; batched: strictly fewer.
  EXPECT_EQ(ru.batches, 80u);
  EXPECT_LT(rb.batches, ru.batches);
  EXPECT_TRUE(check_service_logs(rb.slot_logs).ok);
  EXPECT_TRUE(check_service_logs(ru.slot_logs).ok);
}

TEST(ServiceE2E, OfferedLoadPacesArrivalsAndStillCompletes) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.seed = 21;
  cfg.clients = 60;
  cfg.ops_per_client = 2;
  cfg.load = 1'000'000.0;  // 1M ops/sec across all clients
  const ServiceRunResult r = run_service(cfg);
  EXPECT_TRUE(r.success());
  EXPECT_EQ(r.ops_completed, 120u);
  EXPECT_TRUE(check_service_logs(r.slot_logs).ok);
}

TEST(ServiceE2E, SafeAndLiveWithTimedMinorityCrash) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.seed = 31;
  cfg.clients = 80;
  cfg.crashes = CrashPlan::none(4);
  cfg.crashes.specs[3] = CrashSpec::at_time(100'000);
  const ServiceRunResult r = run_service(cfg);

  EXPECT_EQ(r.crashed, 1u);
  // Safety always; termination for ops at never-crashed origins.
  EXPECT_TRUE(r.safe_ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_TRUE(r.terminated);
  EXPECT_GT(r.ops_completed, 0u);
  EXPECT_TRUE(check_service_logs(r.slot_logs).ok);
}

TEST(ServiceE2E, SafeUnderHealingPartition) {
  ServiceRunConfig cfg(ClusterLayout::even(6, 3));
  cfg.seed = 41;
  cfg.clients = 60;
  cfg.scenario.partitions.push_back(
      parse_partition_spec("cluster:0@40us..400us"));
  const ServiceRunResult r = run_service(cfg);

  EXPECT_TRUE(r.safe_ok) << (r.violations.empty() ? "" : r.violations[0]);
  // The cut heals, so the run also terminates (indulgence).
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.ops_completed, 60u);
  EXPECT_TRUE(check_service_logs(r.slot_logs).ok);
}

TEST(ServiceE2E, SafeUnderMessageLossWithCorruptedCoin) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.seed = 51;
  cfg.clients = 40;
  cfg.scenario.link.loss = 0.05;
  cfg.coin_epsilon = 0.2;
  const ServiceRunResult r = run_service(cfg);
  EXPECT_TRUE(r.safe_ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(check_service_logs(r.slot_logs).ok);
}

TEST(ServiceE2E, RejectsOnBroadcastCrashSpecs) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.clients = 10;
  cfg.crashes = CrashPlan::none(4);
  cfg.crashes.specs[0] = CrashSpec::on_broadcast(1, 1);
  EXPECT_THROW(run_service(cfg), ContractViolation);
}

}  // namespace
}  // namespace hyco
