// Unit tests for the coin oracles (Section II-B): local coins must be fair
// and independent; the common coin must deliver the SAME bit sequence to
// every process; the biased variant must corrupt exactly an ε-fraction.
#include <gtest/gtest.h>

#include <cmath>

#include "coin/coin.h"
#include "util/assert.h"

namespace hyco {
namespace {

TEST(LocalCoin, FairIsh) {
  LocalCoin c(123);
  int ones = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ones += c.flip();
  EXPECT_NEAR(ones, trials / 2, 1200);
}

TEST(LocalCoin, SeedDeterministic) {
  LocalCoin a(5), b(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.flip(), b.flip());
}

TEST(LocalCoin, DistinctSeedsIndependentIsh) {
  LocalCoin a(1), b(2);
  int agree = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) agree += (a.flip() == b.flip()) ? 1 : 0;
  // Independent fair coins agree ~half the time.
  EXPECT_NEAR(agree, trials / 2, 500);
}

TEST(LocalCoin, FlipCountedCounts) {
  LocalCoin c(9);
  EXPECT_EQ(c.flips(), 0u);
  (void)c.flip_counted();
  (void)c.flip_counted();
  EXPECT_EQ(c.flips(), 2u);
}

TEST(CommonCoin, SameSeedSameSequenceForEveryProcess) {
  // Two instances model two processes consulting the same oracle.
  CommonCoin p_i(777), p_j(777);
  for (Round r = 1; r <= 1000; ++r) {
    ASSERT_EQ(p_i.bit(r), p_j.bit(r)) << "diverged at round " << r;
  }
}

TEST(CommonCoin, BitsAreFairIsh) {
  CommonCoin c(31337);
  int ones = 0;
  const int rounds = 100000;
  for (Round r = 1; r <= rounds; ++r) ones += c.bit(r);
  EXPECT_NEAR(ones, rounds / 2, 1200);
}

TEST(CommonCoin, DifferentSeedsDiffer) {
  CommonCoin a(1), b(2);
  int agree = 0;
  for (Round r = 1; r <= 10000; ++r) agree += (a.bit(r) == b.bit(r)) ? 1 : 0;
  EXPECT_NEAR(agree, 5000, 500);
}

TEST(CommonCoin, RepeatedQueriesAreStable) {
  CommonCoin c(5);
  const int b1 = c.bit(42);
  EXPECT_EQ(c.bit(42), b1);
  EXPECT_EQ(c.bit(42), b1);
}

TEST(BiasedCoin, EpsilonZeroMatchesFairCoin) {
  CommonCoin fair(99);
  BiasedCommonCoin biased(99, 0.0, [](Round) { return 1; });
  for (Round r = 1; r <= 1000; ++r) ASSERT_EQ(biased.bit(r), fair.bit(r));
}

TEST(BiasedCoin, EpsilonOneAlwaysAdversary) {
  BiasedCommonCoin biased(99, 1.0, [](Round) { return 1; });
  for (Round r = 1; r <= 1000; ++r) ASSERT_EQ(biased.bit(r), 1);
}

TEST(BiasedCoin, IntermediateEpsilonCorruptsAboutEpsilonFraction) {
  CommonCoin fair(4242);
  BiasedCommonCoin biased(4242, 0.25, [](Round) { return 1; });
  int corrupted = 0;
  const int rounds = 100000;
  for (Round r = 1; r <= rounds; ++r) {
    if (biased.bit(r) != fair.bit(r)) ++corrupted;
  }
  // A corruption is visible only when the fair bit was 0 (~half the ε
  // rounds), so expect ~ε/2 visible disagreement.
  EXPECT_NEAR(corrupted, rounds / 8, 1200);
}

TEST(BiasedCoin, StillCommonAcrossInstances) {
  BiasedCommonCoin a(7, 0.3, [](Round) { return 0; });
  BiasedCommonCoin b(7, 0.3, [](Round) { return 0; });
  for (Round r = 1; r <= 1000; ++r) ASSERT_EQ(a.bit(r), b.bit(r));
}

TEST(BiasedCoin, ValidatesArguments) {
  EXPECT_THROW(BiasedCommonCoin(1, -0.1, [](Round) { return 0; }),
               ContractViolation);
  EXPECT_THROW(BiasedCommonCoin(1, 1.1, [](Round) { return 0; }),
               ContractViolation);
  EXPECT_THROW(BiasedCommonCoin(1, 0.5, nullptr), ContractViolation);
  BiasedCommonCoin bad_bit(1, 1.0, [](Round) { return 7; });
  EXPECT_THROW(bad_bit.bit(1), ContractViolation);
}

}  // namespace
}  // namespace hyco
