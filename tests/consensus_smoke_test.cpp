// End-to-end smoke tests of the three algorithms on small systems. The
// heavyweight property sweeps live in consensus_property_test.cpp; these
// tests pin down the basic behaviors with specific layouts and seeds.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

TEST(SmokeLocalCoin, AllProposeZeroDecidesZeroFast) {
  RunConfig cfg(ClusterLayout::fig1_left());
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = uniform_inputs(7, Estimate::Zero);
  cfg.seed = 7;
  const RunResult r = run_consensus(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "timeout" : r.violations[0]);
  EXPECT_EQ(r.decided_value, Estimate::Zero);
  // Unanimous input: phase 1 sees only 0, phase 2 sees rec = {0} — one round.
  EXPECT_EQ(r.max_decision_round, 1);
}

TEST(SmokeLocalCoin, SplitInputsTerminateSafely) {
  RunConfig cfg(ClusterLayout::fig1_left());
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  cfg.seed = 3;
  const RunResult r = run_consensus(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "timeout" : r.violations[0]);
  EXPECT_TRUE(r.decided_value.has_value());
}

TEST(SmokeCommonCoin, SplitInputsTerminate) {
  RunConfig cfg(ClusterLayout::fig1_right());
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.inputs = split_inputs(7);
  cfg.seed = 11;
  const RunResult r = run_consensus(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "timeout" : r.violations[0]);
}

TEST(SmokeBenOr, SplitInputsTerminate) {
  RunConfig cfg(ClusterLayout::singletons(5));
  cfg.alg = Algorithm::BenOr;
  cfg.inputs = split_inputs(5);
  cfg.seed = 5;
  const RunResult r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
}

TEST(SmokeSingleCluster, OneRoundWhenMIsOne) {
  // m = 1: the cluster consensus object already decides everything; the
  // exchange trivially covers n/2 < n, and rec = {v}.
  RunConfig cfg(ClusterLayout::single(6));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(6);
  cfg.seed = 2;
  const RunResult r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.max_decision_round, 1);
}

TEST(SmokeOneForAll, MajorityCrashWithMajorityClusterSurvivorTerminates) {
  // fig1_right has the majority cluster P[1] = {1,2,3,4}. Crash 5 of 7
  // processes (everything except one member of the majority cluster and...
  // actually everything except exactly one process).
  const auto layout = ClusterLayout::fig1_right();
  Rng rng(99);
  const auto scenario =
      failure_patterns::majority_crash_one_survivor(layout, rng, 500);
  EXPECT_TRUE(scenario.hybrid_should_terminate);
  EXPECT_FALSE(scenario.benor_should_terminate);
  EXPECT_EQ(scenario.crash_count, 6u);

  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  cfg.crashes = scenario.plan;
  cfg.seed = 21;
  const RunResult r = run_consensus(cfg);
  EXPECT_TRUE(r.all_correct_decided) << "survivor should decide";
  EXPECT_TRUE(r.safe());
}

TEST(SmokeIndulgence, NoCoveringSetNeverDecidesButStaysSafe) {
  const auto layout = ClusterLayout::fig1_left();
  Rng rng(123);
  const auto scenario =
      failure_patterns::kill_covering_set(layout, rng, 0);
  EXPECT_FALSE(scenario.hybrid_should_terminate);

  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  cfg.crashes = scenario.plan;
  cfg.seed = 22;
  cfg.max_rounds = 50;  // quiesce fast
  const RunResult r = run_consensus(cfg);
  EXPECT_TRUE(r.safe());
  EXPECT_EQ(r.stop, StopReason::Quiescent);
}

}  // namespace
}  // namespace hyco
