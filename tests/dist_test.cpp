// Distributed sweep engine (src/dist/): the chunk-granular work ledger's
// state machine (lease → expire → re-lease → fold exactly-once, plus the
// adaptive lease tail), the wire protocol (framing, host:port validation,
// accumulator round-trip, garbage rejection), and end-to-end
// coordinator/worker grids over localhost TCP — including a worker killed
// mid-chunk, a lease that expires on a wedged worker, connections severed
// by the chaos proxy, and the coordinator itself crashing and resuming
// from its checkpoint — all of which must leave the merged artifacts
// byte-identical to a single-machine streaming run. Mid-cell
// chunk-checkpoint resume and its compacted rewrite ride the same
// accumulator encoding and are pinned here too.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "dist/ledger.h"
#include "dist/proto.h"
#include "dist/worker.h"
#include "exp/checkpoint.h"
#include "exp/executor.h"
#include "exp/report.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {
namespace {

using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::WorkLedger;

ExperimentSpec dist_spec() {
  ExperimentSpec spec;
  spec.name = "dist-test";
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2), ClusterLayout::even(6, 2)};
  spec.runs_per_cell = 40;
  spec.base_seed = 77;
  return spec;
}

std::string render_artifacts(const std::string& name,
                             const std::vector<CellResult>& results) {
  std::ostringstream os;
  write_cell_csv(os, results);
  write_cell_json(os, name, results);
  return os.str();
}

/// Single-machine streaming reference for a grid.
std::string reference_artifacts(const ExperimentSpec& spec) {
  const auto cells = spec.expand();
  CollectingSink sink(cells, {});
  ParallelExecutor::Options opts;
  opts.threads = 2;
  ParallelExecutor(opts).run(cells, sink);
  return render_artifacts(spec.name, sink.take_results());
}

CoordinatorOptions test_coordinator_options() {
  CoordinatorOptions opts;
  opts.port = 0;  // ephemeral
  opts.lease_grain = 7;
  opts.poll_interval = std::chrono::milliseconds(20);
  opts.max_wait = std::chrono::minutes(2);  // fail loudly, never hang CI
  return opts;
}

std::vector<RunSpan> full_spans(const std::vector<ExperimentCell>& cells) {
  std::vector<RunSpan> spans;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    spans.push_back({c, 0, cells[c].runs});
  }
  return spans;
}

// ---- work ledger ------------------------------------------------------------

TEST(WorkLedger, LeaseExpireReleaseFoldExactlyOnce) {
  WorkLedger ledger(1, 10);
  ledger.add_span(0, 0, 25);  // chunks [0,10) [10,20) [20,25)
  EXPECT_EQ(ledger.chunk_count(), 3u);
  EXPECT_EQ(ledger.total_runs(), 25u);
  EXPECT_FALSE(ledger.all_folded());

  const auto t0 = WorkLedger::Clock::now();
  const auto ttl = std::chrono::milliseconds(100);

  const auto l1 = ledger.acquire(1, t0, ttl);
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->begin, 0u);
  EXPECT_EQ(l1->end, 10u);
  EXPECT_EQ(ledger.leased_chunks(), 1u);

  // The lease expires; the chunk re-queues and re-leases to someone else.
  EXPECT_EQ(ledger.expire(t0 + std::chrono::milliseconds(50)), 0u);
  EXPECT_EQ(ledger.expire(t0 + std::chrono::milliseconds(150)), 1u);
  EXPECT_EQ(ledger.leased_chunks(), 0u);
  const auto l2 = ledger.acquire(2, t0, ttl);
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->begin, 10u);  // FIFO: next fresh chunk first
  const auto l3 = ledger.acquire(2, t0, ttl);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->begin, 20u);
  const auto l4 = ledger.acquire(3, t0, ttl);
  ASSERT_TRUE(l4.has_value());
  EXPECT_EQ(l4->begin, 0u);  // the expired chunk came back around
  EXPECT_FALSE(ledger.acquire(3, t0, ttl).has_value());

  // First fold wins; the late original result is a duplicate.
  const auto f1 = ledger.fold(0, 0, 10);
  EXPECT_EQ(f1.outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_FALSE(f1.cell_completed);
  const auto dup = ledger.fold(0, 0, 10);
  EXPECT_EQ(dup.outcome, WorkLedger::FoldOutcome::kDuplicate);
  EXPECT_EQ(ledger.folded_runs(), 10u);

  // Unknown ranges are rejected outright.
  EXPECT_EQ(ledger.fold(0, 0, 5).outcome, WorkLedger::FoldOutcome::kUnknown);
  EXPECT_EQ(ledger.fold(0, 3, 10).outcome,
            WorkLedger::FoldOutcome::kUnknown);

  const auto f2 = ledger.fold(0, 10, 20);
  EXPECT_EQ(f2.outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_FALSE(f2.cell_completed);
  const auto f3 = ledger.fold(0, 20, 25);
  EXPECT_EQ(f3.outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_TRUE(f3.cell_completed);
  EXPECT_TRUE(ledger.all_folded());
  EXPECT_TRUE(ledger.cell_folded(0));
}

TEST(WorkLedger, ReleaseOwnerRequeuesItsLeases) {
  WorkLedger ledger(2, 8);
  ledger.add_span(0, 0, 16);
  ledger.add_span(1, 0, 8);
  const auto t0 = WorkLedger::Clock::now();
  const auto ttl = std::chrono::seconds(60);
  (void)ledger.acquire(7, t0, ttl);
  (void)ledger.acquire(7, t0, ttl);
  (void)ledger.acquire(9, t0, ttl);
  EXPECT_EQ(ledger.leased_chunks(), 3u);
  EXPECT_EQ(ledger.release_owner(7), 2u);  // worker 7 disconnected
  EXPECT_EQ(ledger.leased_chunks(), 1u);
  EXPECT_EQ(ledger.pending_chunks(), 2u);
  // The released chunks can be folded by whoever re-executes them.
  EXPECT_EQ(ledger.fold(0, 0, 8).outcome,
            WorkLedger::FoldOutcome::kAccepted);
}

TEST(WorkLedger, SpansRespectGrainAndCells) {
  WorkLedger ledger(3, 1000);
  ledger.add_span(0, 0, 5);
  ledger.add_span(2, 100, 104);  // mid-cell span (resume complement)
  EXPECT_EQ(ledger.chunk_count(), 2u);
  EXPECT_TRUE(ledger.cell_folded(1));  // no registered work
  EXPECT_FALSE(ledger.cell_folded(2));
  EXPECT_EQ(ledger.fold(2, 100, 104).outcome,
            WorkLedger::FoldOutcome::kAccepted);
  EXPECT_TRUE(ledger.cell_folded(2));
  EXPECT_THROW(ledger.add_span(0, 3, 7), ContractViolation);  // overlap
  EXPECT_THROW(ledger.add_span(0, 9, 9), ContractViolation);  // empty
}

TEST(WorkLedger, AcquireSplitsLongChunksAtMaxLen) {
  WorkLedger ledger(1, 10);
  ledger.add_span(0, 0, 25);  // chunks [0,10) [10,20) [20,25)
  const auto t0 = WorkLedger::Clock::now();
  const auto ttl = std::chrono::seconds(60);

  // A capped acquire splits the head chunk: the first max_len runs go out,
  // the tail re-registers at the *front* of the queue.
  const auto l1 = ledger.acquire(1, t0, ttl, 4);
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->begin, 0u);
  EXPECT_EQ(l1->end, 4u);
  EXPECT_EQ(ledger.chunk_count(), 4u);   // the split minted a new chunk
  EXPECT_EQ(ledger.total_runs(), 25u);   // ...but no runs appeared or vanished

  const auto l2 = ledger.acquire(2, t0, ttl);  // uncapped: the tail, not [10,20)
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->begin, 4u);
  EXPECT_EQ(l2->end, 10u);

  // A cap wider than the chunk leaves it whole.
  const auto l3 = ledger.acquire(3, t0, ttl, 100);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->begin, 10u);
  EXPECT_EQ(l3->end, 20u);

  // The pre-split range no longer exists; the split ranges fold exactly-once.
  EXPECT_EQ(ledger.fold(0, 0, 10).outcome, WorkLedger::FoldOutcome::kUnknown);
  EXPECT_EQ(ledger.fold(0, 0, 4).outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_EQ(ledger.fold(0, 4, 10).outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_EQ(ledger.fold(0, 10, 20).outcome,
            WorkLedger::FoldOutcome::kAccepted);
  const auto l4 = ledger.acquire(1, t0, ttl, 5);  // exact fit: no split
  ASSERT_TRUE(l4.has_value());
  EXPECT_EQ(l4->begin, 20u);
  EXPECT_EQ(l4->end, 25u);
  EXPECT_EQ(ledger.chunk_count(), 4u);
  EXPECT_TRUE(ledger.fold(0, 20, 25).cell_completed);
  EXPECT_TRUE(ledger.all_folded());
}

TEST(WorkLedger, AdaptiveLeaseCapShrinksTowardFloor) {
  using dist::adaptive_lease_cap;
  // Plenty of work left: the grain passes through untouched.
  EXPECT_EQ(adaptive_lease_cap(4096, 32, 1'000'000, 8), 4096u);
  EXPECT_EQ(adaptive_lease_cap(100, 8, 1000, 2), 100u);
  // The tail: halve until every worker has ~2 cap-sized chunks left.
  EXPECT_EQ(adaptive_lease_cap(64, 4, 80, 1), 32u);
  EXPECT_EQ(adaptive_lease_cap(64, 4, 48, 1), 16u);
  EXPECT_EQ(adaptive_lease_cap(100, 8, 100, 1), 50u);
  // The floor stops the shrink even when the remainder says go lower.
  EXPECT_EQ(adaptive_lease_cap(64, 4, 8, 1), 4u);
  EXPECT_EQ(adaptive_lease_cap(64, 4, 0, 3), 4u);
  // Zero workers is treated as one (a lease request proves one exists).
  EXPECT_EQ(adaptive_lease_cap(64, 4, 1, 0), 4u);
  // floor >= grain disables the adaptive tail entirely.
  EXPECT_EQ(adaptive_lease_cap(64, 64, 1, 5), 64u);
  EXPECT_EQ(adaptive_lease_cap(64, 128, 1, 5), 64u);
  // A zero floor is clamped to one run.
  EXPECT_EQ(adaptive_lease_cap(16, 0, 1, 1), 1u);
}

// ---- protocol ---------------------------------------------------------------

TEST(Proto, HostPortValidation) {
  const auto hp = dist::parse_host_port("127.0.0.1:7600");
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 7600);
  EXPECT_EQ(dist::parse_host_port("example.com:1").port, 1);
  EXPECT_THROW((void)dist::parse_host_port("localhost"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port(":80"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port("h:0"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port("h:65536"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port("h:80x"), ContractViolation);
  EXPECT_THROW((void)dist::validate_port(0, "--serve"), ContractViolation);
  EXPECT_THROW((void)dist::validate_port(99999, "--serve"),
               ContractViolation);
}

TEST(Proto, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kWait,
                               dist::encode_wait(250)));
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kLeaseReq, ""));
  dist::Frame f;
  ASSERT_TRUE(dist::recv_frame(fds[1], f));
  EXPECT_EQ(f.type, dist::MsgType::kWait);
  std::uint32_t ms = 0;
  EXPECT_TRUE(dist::decode_wait(f.payload, ms));
  EXPECT_EQ(ms, 250u);
  ASSERT_TRUE(dist::recv_frame(fds[1], f));
  EXPECT_EQ(f.type, dist::MsgType::kLeaseReq);
  EXPECT_TRUE(f.payload.empty());
  ::close(fds[0]);
  EXPECT_FALSE(dist::recv_frame(fds[1], f));  // EOF
  ::close(fds[1]);
}

TEST(Proto, FrameBufferReassemblesSplitFrames) {
  const std::string one = dist::encode_lease({3, 10, 20});
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kLease, one));
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kDone, ""));
  std::string wire(4096, '\0');
  const ssize_t n = ::recv(fds[1], wire.data(), wire.size(), 0);
  ASSERT_GT(n, 0);
  wire.resize(static_cast<std::size_t>(n));
  ::close(fds[0]);
  ::close(fds[1]);

  dist::FrameBuffer buf;
  // Drip-feed one byte at a time: frames must surface exactly when whole.
  std::size_t yielded = 0;
  for (const char c : wire) {
    buf.feed(&c, 1);
    while (const auto f = buf.next()) {
      if (yielded == 0) {
        EXPECT_EQ(f->type, dist::MsgType::kLease);
        dist::LeaseMsg lease;
        ASSERT_TRUE(dist::decode_lease(f->payload, lease));
        EXPECT_EQ(lease.cell_index, 3u);
        EXPECT_EQ(lease.begin, 10u);
        EXPECT_EQ(lease.end, 20u);
      } else {
        EXPECT_EQ(f->type, dist::MsgType::kDone);
      }
      ++yielded;
    }
  }
  EXPECT_EQ(yielded, 2u);
  EXPECT_FALSE(buf.error());
}

/// One hand-built frame: 4-byte big-endian length (type byte + payload),
/// then the type, then the payload.
std::string raw_frame(std::uint32_t len, std::uint8_t type,
                      const std::string& payload) {
  std::string f;
  f.push_back(static_cast<char>(len >> 24));
  f.push_back(static_cast<char>(len >> 16));
  f.push_back(static_cast<char>(len >> 8));
  f.push_back(static_cast<char>(len));
  f.push_back(static_cast<char>(type));
  f += payload;
  return f;
}

TEST(Proto, FrameBufferRejectsHostileLengthPrefixes) {
  // An oversized length means a garbage or hostile peer: the buffer turns
  // sticky-errored instead of allocating, and stays errored even when a
  // perfectly valid frame follows the poison.
  dist::FrameBuffer oversized;
  const std::string big = raw_frame(dist::kMaxFrameBytes + 1, 1, "");
  oversized.feed(big.data(), big.size());
  EXPECT_FALSE(oversized.next().has_value());
  EXPECT_TRUE(oversized.error());
  const std::string ok = raw_frame(1, 4, "");  // a valid LeaseReq
  oversized.feed(ok.data(), ok.size());
  EXPECT_FALSE(oversized.next().has_value());
  EXPECT_TRUE(oversized.error());

  // A zero length (no room for even the type byte) is equally malformed.
  dist::FrameBuffer zero;
  const std::string z = raw_frame(0, 7, "");
  zero.feed(z.data(), z.size());
  EXPECT_FALSE(zero.next().has_value());
  EXPECT_TRUE(zero.error());

  // Truncation is not an error — the frame simply isn't whole yet.
  dist::FrameBuffer cut;
  const std::string whole = raw_frame(10, 5, "abcdefghi");
  cut.feed(whole.data(), 7);
  EXPECT_FALSE(cut.next().has_value());
  EXPECT_FALSE(cut.error());
  cut.feed(whole.data() + 7, whole.size() - 7);
  const auto f = cut.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "abcdefghi");
  EXPECT_FALSE(cut.error());
}

TEST(Proto, FrameBufferSurvivesSeededGarbage) {
  // Pure noise, fed in random-sized slices: the decoder must reject it
  // cleanly (almost every random length prefix is oversized) and never
  // crash, hang, or hand a frame to a decoder that then throws.
  Rng rng(2026);
  dist::FrameBuffer noise_buf;
  std::string noise(64 * 1024, '\0');
  for (auto& c : noise) c = static_cast<char>(rng.next_u64() & 0xFF);
  std::size_t off = 0;
  while (off < noise.size() && !noise_buf.error()) {
    const std::size_t n = std::min<std::size_t>(
        1 + static_cast<std::size_t>(rng.bounded(509)), noise.size() - off);
    noise_buf.feed(noise.data() + off, n);
    off += n;
    while (const auto frame = noise_buf.next()) {
      dist::HelloMsg h;
      (void)dist::decode_hello(frame->payload, h);
    }
  }

  // Frame-aligned garbage: valid length prefixes around random types and
  // payload bytes. Every frame must surface exactly once, and every decoder
  // must refuse the junk payloads by returning false, never by throwing.
  std::string wire;
  const int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    const std::uint32_t payload_len =
        static_cast<std::uint32_t>(rng.bounded(64));
    std::string payload;
    for (std::uint32_t k = 0; k < payload_len; ++k) {
      payload.push_back(static_cast<char>(rng.next_u64() & 0xFF));
    }
    wire += raw_frame(payload_len + 1,
                      static_cast<std::uint8_t>(rng.next_u64() & 0xFF),
                      payload);
  }
  dist::FrameBuffer buf;
  int yielded = 0;
  off = 0;
  while (off < wire.size()) {
    const std::size_t n = std::min<std::size_t>(
        1 + static_cast<std::size_t>(rng.bounded(17)), wire.size() - off);
    buf.feed(wire.data() + off, n);
    off += n;
    while (const auto frame = buf.next()) {
      ++yielded;
      dist::HelloMsg h;
      (void)dist::decode_hello(frame->payload, h);
      dist::LeaseMsg l;
      (void)dist::decode_lease(frame->payload, l);
      dist::ResultMsg r;
      (void)dist::decode_result(frame->payload, r);
      std::uint32_t ms = 0;
      (void)dist::decode_wait(frame->payload, ms);
    }
  }
  EXPECT_EQ(yielded, kFrames);
  EXPECT_FALSE(buf.error());
}

TEST(Proto, ResultEncodingRoundTripsAccumulatorExactly) {
  // A real accumulator (reservoirs, histogram, failure ring populated by
  // actual runs) must survive the wire byte-exactly — the distributed
  // determinism contract reduces to this round-trip plus merge invariance.
  const auto cells = dist_spec().expand();
  const ExperimentCell& cell = cells[0];
  CellAccumulator acc(MetricStats::kDefaultReservoir, 4);
  for (std::uint64_t k = 0; k < 12; ++k) {
    const RunConfig cfg = cell.run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }

  dist::ResultMsg msg;
  msg.cell_index = cell.index;
  msg.begin = 0;
  msg.end = 12;
  msg.acc = acc;
  const std::string payload = dist::encode_result(msg);

  dist::ResultMsg back;
  ASSERT_TRUE(dist::decode_result(payload, back));
  EXPECT_EQ(back.cell_index, cell.index);
  EXPECT_EQ(back.begin, 0u);
  EXPECT_EQ(back.end, 12u);
  EXPECT_EQ(back.acc.runs, acc.runs);
  EXPECT_EQ(back.acc.terminated, acc.terminated);
  EXPECT_EQ(back.acc.violations, acc.violations);
  // Exactness: every rendered statistic (moments, percentiles, histogram,
  // failure list) of the decoded accumulator matches the original's byte
  // for byte. (Reservoir heap *layout* may legally differ — the kept set
  // and everything derived from it may not.)
  CellAccumulator fa = acc;
  fa.finalize();
  CellAccumulator fb = back.acc;
  fb.finalize();
  std::vector<CellResult> ra, rb;
  ra.emplace_back(cell, std::move(fa));
  rb.emplace_back(cell, std::move(fb));
  EXPECT_EQ(render_artifacts("roundtrip", ra),
            render_artifacts("roundtrip", rb));

  dist::ResultMsg bad;
  EXPECT_FALSE(dist::decode_result("result 0 5 5 0 0 0\n", bad));
  EXPECT_FALSE(dist::decode_result("garbage", bad));
}

// ---- end-to-end over localhost TCP -----------------------------------------

/// Runs a coordinator for `spec` on an ephemeral port and hands its port to
/// `drive` (which runs workers / rogue clients); returns the rendered
/// artifacts of the coordinator's merged results.
std::string serve_grid(const ExperimentSpec& spec, CoordinatorOptions opts,
                       const std::function<void(std::uint16_t)>& drive) {
  const auto cells = spec.expand();
  Coordinator coordinator(cells, full_spans(cells), {},
                          grid_fingerprint(cells, opts.reservoir_capacity,
                                           opts.failure_capacity),
                          std::move(opts));
  coordinator.bind();
  const std::uint16_t port = coordinator.port();
  std::vector<CellResult> results;
  std::thread server([&] { results = coordinator.serve(); });
  drive(port);
  server.join();
  return render_artifacts(spec.name, results);
}

dist::WorkerOptions worker_options(std::uint16_t port, unsigned sessions) {
  dist::WorkerOptions w;
  w.target = {"127.0.0.1", port};
  w.sessions = sessions;
  return w;
}

TEST(DistributedSweep, TwoWorkersMatchLocalByteForByte) {
  const ExperimentSpec spec = dist_spec();
  const std::string reference = reference_artifacts(spec);
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        std::thread w1([&] {
          const auto r = dist::run_worker(cells, fp, worker_options(port, 2));
          EXPECT_TRUE(r.completed) << r.error;
          EXPECT_GT(r.runs_executed, 0u);
        });
        const auto r2 = dist::run_worker(cells, fp, worker_options(port, 1));
        EXPECT_TRUE(r2.completed) << r2.error;
        w1.join();
      });
  EXPECT_EQ(distributed, reference);
}

TEST(DistributedSweep, RejectsForeignGridFingerprint) {
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        // Wrong fingerprint first: rejected before any run executes.
        const auto bad =
            dist::run_worker(cells, fp + 1, worker_options(port, 1));
        EXPECT_FALSE(bad.completed);
        EXPECT_NE(bad.error.find("rejected"), std::string::npos) << bad.error;
        EXPECT_EQ(bad.runs_executed, 0u);
        // A correct worker still completes the grid afterwards.
        const auto good =
            dist::run_worker(cells, fp, worker_options(port, 2));
        EXPECT_TRUE(good.completed) << good.error;
      });
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

TEST(DistributedSweep, WorkerKilledMidChunkLeavesOutputIdentical) {
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        // The "killed" worker: completes the handshake, takes a lease, and
        // vanishes without folding it. Its chunk must re-queue.
        const int fd = dist::connect_once({"127.0.0.1", port});
        ASSERT_GE(fd, 0);
        dist::HelloMsg hello;
        hello.fingerprint = fp;
        hello.cells = cells.size();
        hello.reservoir_capacity = MetricStats::kDefaultReservoir;
        hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
        ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kHello,
                                     dist::encode_hello(hello)));
        dist::Frame f;
        ASSERT_TRUE(dist::recv_frame(fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kWelcome);
        ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
        ASSERT_TRUE(dist::recv_frame(fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kLease);
        ::close(fd);  // SIGKILL equivalent: the TCP connection just dies

        const auto r = dist::run_worker(cells, fp, worker_options(port, 2));
        EXPECT_TRUE(r.completed) << r.error;
      });
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

TEST(DistributedSweep, ExpiredLeaseOnWedgedWorkerIsReassigned) {
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CoordinatorOptions opts = test_coordinator_options();
  opts.lease_ttl = std::chrono::milliseconds(150);

  int wedged_fd = -1;
  const std::string distributed =
      serve_grid(spec, std::move(opts), [&](std::uint16_t port) {
        // The wedged worker: leases a chunk and then sits on it, connection
        // alive, well past the lease TTL.
        wedged_fd = dist::connect_once({"127.0.0.1", port});
        ASSERT_GE(wedged_fd, 0);
        dist::HelloMsg hello;
        hello.fingerprint = fp;
        hello.cells = cells.size();
        hello.reservoir_capacity = MetricStats::kDefaultReservoir;
        hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
        ASSERT_TRUE(dist::send_frame(wedged_fd, dist::MsgType::kHello,
                                     dist::encode_hello(hello)));
        dist::Frame f;
        ASSERT_TRUE(dist::recv_frame(wedged_fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kWelcome);
        ASSERT_TRUE(dist::send_frame(wedged_fd, dist::MsgType::kLeaseReq, ""));
        ASSERT_TRUE(dist::recv_frame(wedged_fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kLease);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));

        // A live worker drains the grid, the expired chunk included.
        const auto r = dist::run_worker(cells, fp, worker_options(port, 1));
        EXPECT_TRUE(r.completed) << r.error;
      });
  if (wedged_fd >= 0) ::close(wedged_fd);
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

/// A well-formed Hello for this grid (default capacities).
dist::HelloMsg make_hello(std::uint64_t fp, std::size_t n_cells,
                          std::uint64_t reconnect = 0) {
  dist::HelloMsg hello;
  hello.fingerprint = fp;
  hello.cells = n_cells;
  hello.reservoir_capacity = MetricStats::kDefaultReservoir;
  hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
  hello.reconnect = reconnect;
  return hello;
}

TEST(DistributedSweep, AdaptiveLeaseTailShrinksToFloor) {
  // One serial manual worker against grain 64 / floor 4 on an 80-run grid:
  // the lease lengths it is handed follow the adaptive_lease_cap schedule
  // exactly (the protocol is strictly request/response on one connection,
  // so there is no timing in this sequence), the final leases sit on the
  // floor, and the resharded tail must not change a single output byte.
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CoordinatorOptions opts = test_coordinator_options();
  opts.lease_grain = 64;
  opts.lease_floor = 4;

  std::vector<std::uint64_t> lengths;
  const std::string distributed =
      serve_grid(spec, std::move(opts), [&](std::uint16_t port) {
        const int fd = dist::connect_once({"127.0.0.1", port});
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(dist::send_frame(
            fd, dist::MsgType::kHello,
            dist::encode_hello(make_hello(fp, cells.size()))));
        dist::Frame f;
        ASSERT_TRUE(dist::recv_frame(fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kWelcome);

        std::uint64_t executed = 0;
        while (executed < spec.total_runs()) {
          ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
          ASSERT_TRUE(dist::recv_frame(fd, f));
          ASSERT_EQ(f.type, dist::MsgType::kLease);
          dist::LeaseMsg lease;
          ASSERT_TRUE(dist::decode_lease(f.payload, lease));
          lengths.push_back(lease.end - lease.begin);

          dist::ResultMsg result;
          result.cell_index = lease.cell_index;
          result.begin = lease.begin;
          result.end = lease.end;
          result.acc = CellAccumulator(MetricStats::kDefaultReservoir,
                                       CellAccumulator::kDefaultFailureCap);
          for (std::uint64_t k = lease.begin; k < lease.end; ++k) {
            const RunConfig cfg = cells[lease.cell_index].run_config(k);
            result.acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
          }
          ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kResult,
                                       dist::encode_result(result)));
          executed += lease.end - lease.begin;
        }
        ::close(fd);
      });

  // 80 runs, one worker: 64 halves to 32 up front, the caps shrink as the
  // pool drains, and the last two leases sit exactly on the floor.
  const std::vector<std::uint64_t> expected = {32, 8, 16, 8, 8, 4, 4};
  EXPECT_EQ(lengths, expected);
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

TEST(DistributedSweep, WorkerRidesOutSeveredConnections) {
  // A chaos proxy between the worker and the coordinator cuts the
  // connection mid-stream on a seeded byte budget (twice, then turns
  // transparent so the grid always drains). The worker's backoff/re-hello
  // recovery must ride the injuries out and the bytes must not change.
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        dist::ChaosProxyOptions popts;
        popts.target = {"127.0.0.1", port};
        popts.seed = 42;
        popts.sever_min_bytes = 1500;  // past the handshake, well inside the
        popts.sever_max_bytes = 3000;  // grid's total traffic
        popts.max_severs = 2;
        dist::ChaosProxy proxy(popts);
        proxy.start();

        dist::WorkerOptions wopts = worker_options(proxy.port(), 1);
        wopts.reconnect_attempts = 50;
        wopts.reconnect_base = std::chrono::milliseconds(10);
        wopts.reconnect_cap = std::chrono::milliseconds(100);
        const auto r = dist::run_worker(cells, fp, wopts);
        EXPECT_TRUE(r.completed) << r.error;
        EXPECT_GE(r.reconnects, 1u);
        EXPECT_GE(proxy.severed(), 1u);
        proxy.stop();
      });
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

TEST(DistributedSweep, CoordinatorCrashAndResumeMatchesByteForByte) {
  // Full failover drill: the coordinator checkpoint-appends every fold,
  // dies abruptly after three (every socket torn down, no Done — the
  // injected SIGKILL), and a second coordinator resumes from the
  // checkpoint on the *same port*. The workers, started before the crash,
  // ride it out with backoff + re-hello. Checkpointed cells/chunks merge
  // under the restarted run's results; the combined artifacts must be
  // byte-identical to a never-crashed run.
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  std::stringstream ckpt;
  write_checkpoint_header(ckpt, fp);

  CoordinatorOptions opts = test_coordinator_options();
  opts.crash_after_chunks = 3;
  opts.on_chunk = [&](const ExperimentCell& cell, std::uint64_t begin,
                      std::uint64_t end, const CellAccumulator& acc) {
    append_checkpoint_chunk(ckpt, cell.index, begin, end, acc);
  };
  opts.on_cell_complete = [&](const ExperimentCell& cell,
                              const CellAccumulator& acc) {
    append_checkpoint_cell(ckpt, cell.index, acc);
  };

  auto first = std::make_unique<Coordinator>(
      cells, full_spans(cells), std::map<std::size_t, CellAccumulator>{}, fp,
      std::move(opts));
  first->bind();
  const std::uint16_t port = first->port();

  // Generous recovery budget: the sessions must survive both the crash
  // window and however long the restart takes.
  dist::WorkerOptions wopts = worker_options(port, 1);
  wopts.reconnect_attempts = 200;
  wopts.reconnect_base = std::chrono::milliseconds(10);
  wopts.reconnect_cap = std::chrono::milliseconds(100);
  dist::WorkerReport r1, r2;
  std::thread w1([&] { r1 = dist::run_worker(cells, fp, wopts); });
  std::thread w2([&] { r2 = dist::run_worker(cells, fp, wopts); });

  bool crashed = false;
  try {
    (void)first->serve();
  } catch (const dist::ChaosKill& kill) {
    crashed = true;
    EXPECT_GE(kill.folded_chunks, 3u);
  }
  ASSERT_TRUE(crashed);
  first.reset();

  // Rebuild exactly as `sweep --serve --resume` does: completed cells load
  // bit-exact, partial cells merge their chunk trail into a prior and
  // re-run only the complement spans.
  std::istringstream in(ckpt.str());
  CheckpointData loaded = load_checkpoint_data(in, fp);
  std::map<std::uint64_t, CellAccumulator>& resumed = loaded.cells;
  std::map<std::uint64_t, CellAccumulator> prior;
  std::vector<ExperimentCell> todo;
  std::vector<RunSpan> todo_spans;
  for (const auto& c : cells) {
    if (resumed.find(c.index) != resumed.end()) continue;
    const auto chunk_it = loaded.chunks.find(c.index);
    if (chunk_it == loaded.chunks.end()) {
      todo_spans.push_back({todo.size(), 0, c.runs});
      todo.push_back(c);
      continue;
    }
    CellAccumulator acc(MetricStats::kDefaultReservoir,
                        CellAccumulator::kDefaultFailureCap);
    std::vector<RunSpan> gaps;
    std::uint64_t cursor = 0;
    for (const ChunkCheckpoint& chunk : chunk_it->second) {
      if (chunk.begin > cursor) gaps.push_back({0, cursor, chunk.begin});
      acc.merge(chunk.acc);
      cursor = chunk.end;
    }
    if (cursor < c.runs) gaps.push_back({0, cursor, c.runs});
    if (gaps.empty()) {
      acc.finalize();
      resumed.emplace(c.index, std::move(acc));
      continue;
    }
    for (RunSpan g : gaps) {
      g.cell_pos = todo.size();
      todo_spans.push_back(g);
    }
    prior.emplace(c.index, std::move(acc));
    todo.push_back(c);
  }
  // 3 folded chunks of 12: the crash left real work (this also proves the
  // checkpoint caught the pre-crash folds).
  ASSERT_FALSE(todo.empty());
  ASSERT_FALSE(loaded.chunks.empty());

  std::map<std::size_t, CellAccumulator> prior_by_pos;
  for (std::size_t pos = 0; pos < todo.size(); ++pos) {
    const auto it = prior.find(todo[pos].index);
    if (it != prior.end()) prior_by_pos.emplace(pos, it->second);
  }

  CoordinatorOptions opts2 = test_coordinator_options();
  opts2.port = port;  // the endpoint the workers keep redialing
  Coordinator second(todo, todo_spans, std::move(prior_by_pos), fp,
                     std::move(opts2));
  second.bind();
  std::vector<CellResult> rest = second.serve();
  w1.join();
  w2.join();
  EXPECT_TRUE(r1.completed) << r1.error;
  EXPECT_TRUE(r2.completed) << r2.error;
  EXPECT_GE(r1.reconnects + r2.reconnects, 1u);

  // Stitch resumed cells and restarted-run results back into grid order.
  std::vector<CellResult> all;
  std::size_t next_rest = 0;
  for (const auto& cell : cells) {
    const auto it = resumed.find(cell.index);
    if (it != resumed.end()) {
      all.emplace_back(cell, std::move(it->second));
    } else {
      ASSERT_LT(next_rest, rest.size());
      ASSERT_EQ(rest[next_rest].cell.index, cell.index);
      all.push_back(std::move(rest[next_rest]));
      ++next_rest;
    }
  }
  EXPECT_EQ(render_artifacts(spec.name, all), reference_artifacts(spec));
}

// ---- health endpoint + distributed obs metrics ------------------------------

/// Parses the first unsigned integer after `key` in a flat JSON string.
std::uint64_t json_uint_after(const std::string& json, const std::string& key) {
  const auto pos = json.find(key);
  if (pos == std::string::npos) return ~0ull;
  std::uint64_t v = 0;
  bool any = false;
  for (std::size_t i = pos + key.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  return any ? v : ~0ull;
}

/// One HTTP GET against the coordinator's health endpoint; returns the raw
/// response (headers + JSON body).
std::string fetch_health(std::uint16_t port) {
  const int fd = dist::connect_once({"127.0.0.1", port});
  if (fd < 0) return {};
  const char req[] = "GET /health HTTP/1.0\r\n\r\n";
  (void)::send(fd, req, sizeof(req) - 1, 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(DistributedSweep, HealthEndpointServesMonotonicProgress) {
  // collect_obs on: phase timings ride the wire alongside the counters, and
  // the final artifacts (obs columns included) must still match a local run.
  ExperimentSpec spec = dist_spec();
  spec.collect_obs = true;
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CoordinatorOptions opts = test_coordinator_options();
  opts.health_port = 0;  // ephemeral
  opts.lease_grain = 16;
  Coordinator coordinator(cells, full_spans(cells), {}, fp, std::move(opts));
  coordinator.bind();
  const std::uint16_t hport = coordinator.health_port();
  ASSERT_NE(hport, 0);
  std::vector<CellResult> results;
  std::thread server([&] { results = coordinator.serve(); });

  // Before any worker connects: schema present, zero progress, no workers.
  const std::string before = fetch_health(hport);
  ASSERT_NE(before.find("\"schema\":\"hyco-health/2\""), std::string::npos)
      << before;
  EXPECT_EQ(json_uint_after(before, "\"folded\":"), 0u);
  EXPECT_NE(before.find("\"workers\":[]"), std::string::npos);
  const std::uint64_t total = json_uint_after(before, "\"total\":");
  EXPECT_EQ(total, spec.total_runs());

  // A manual worker folds exactly one chunk, so "mid-sweep" is a state we
  // control rather than a race we hope to win.
  const int fd = dist::connect_once({"127.0.0.1", coordinator.port()});
  ASSERT_GE(fd, 0);
  dist::HelloMsg hello;
  hello.fingerprint = fp;
  hello.cells = cells.size();
  hello.reservoir_capacity = MetricStats::kDefaultReservoir;
  hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kHello,
                               dist::encode_hello(hello)));
  dist::Frame f;
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_EQ(f.type, dist::MsgType::kWelcome);
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_EQ(f.type, dist::MsgType::kLease);
  dist::LeaseMsg lease;
  ASSERT_TRUE(dist::decode_lease(f.payload, lease));

  dist::ResultMsg result;
  result.cell_index = lease.cell_index;
  result.begin = lease.begin;
  result.end = lease.end;
  result.acc = CellAccumulator(MetricStats::kDefaultReservoir,
                               CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = lease.begin; k < lease.end; ++k) {
    const RunConfig cfg = cells[lease.cell_index].run_config(k);
    result.acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kResult,
                               dist::encode_result(result)));
  // Frames on one connection are handled in order: once the next lease
  // round-trips, the Result before it has been folded.
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_TRUE(f.type == dist::MsgType::kLease ||
              f.type == dist::MsgType::kWait);

  const std::string mid = fetch_health(hport);
  const std::uint64_t chunk_len = lease.end - lease.begin;
  EXPECT_EQ(json_uint_after(mid, "\"folded\":"), chunk_len) << mid;
  EXPECT_NE(mid.find("\"welcomed\":true"), std::string::npos);
  EXPECT_EQ(json_uint_after(mid, "\"folded_runs\":"), chunk_len) << mid;

  // The manual worker vanishes (its second lease re-queues); real workers
  // drain the rest and the artifacts — obs columns included — must match a
  // single-machine run byte for byte.
  ::close(fd);
  const auto r = dist::run_worker(cells, fp, worker_options(
                                      coordinator.port(), 2));
  EXPECT_TRUE(r.completed) << r.error;
  server.join();

  ReportOptions ropts;
  ropts.net_stats = true;
  ropts.phase_metrics = true;
  std::ostringstream da;
  write_cell_csv(da, results, ropts);
  write_cell_json(da, spec.name, results, ropts);

  CollectingSink sink(cells, {});
  ParallelExecutor::Options eopts;
  eopts.threads = 2;
  ParallelExecutor(eopts).run(cells, sink);
  auto local = sink.take_results();
  std::ostringstream la;
  write_cell_csv(la, local, ropts);
  write_cell_json(la, spec.name, local, ropts);
  EXPECT_EQ(da.str(), la.str());
}

TEST(DistributedSweep, HealthEndpointReportsRecoveryCounters) {
  // The hyco-health/2 recovery block: a lease aging on a wedged worker
  // shows up as oldest_lease_ms before it expires, the expiry bumps
  // lease_expiries + requeued_chunks, and a re-hello bumps
  // worker_reconnects (with the per-worker reconnect count echoed back).
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CoordinatorOptions opts = test_coordinator_options();
  opts.health_port = 0;
  opts.lease_ttl = std::chrono::milliseconds(250);
  Coordinator coordinator(cells, full_spans(cells), {}, fp, std::move(opts));
  coordinator.bind();
  const std::uint16_t hport = coordinator.health_port();
  ASSERT_NE(hport, 0);
  std::vector<CellResult> results;
  std::thread server([&] { results = coordinator.serve(); });

  // The wedged worker: leases a chunk, then sits on it.
  const int fd = dist::connect_once({"127.0.0.1", coordinator.port()});
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kHello,
                               dist::encode_hello(make_hello(fp,
                                                             cells.size()))));
  dist::Frame f;
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_EQ(f.type, dist::MsgType::kWelcome);
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_EQ(f.type, dist::MsgType::kLease);

  // Mid-lease (well inside the TTL): the lease's age is visible, nothing
  // has expired yet, and with no checkpoint hook wired the flush stamp
  // stays at its -1 sentinel.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const std::string aging = fetch_health(hport);
  ASSERT_NE(aging.find("\"recovery\":{"), std::string::npos) << aging;
  EXPECT_NE(aging.find("\"checkpoint_flush_ms\":-1"), std::string::npos)
      << aging;
  const std::uint64_t age = json_uint_after(aging, "\"oldest_lease_ms\":");
  EXPECT_GE(age, 1u) << aging;
  EXPECT_LT(age, 10'000u) << aging;
  EXPECT_EQ(json_uint_after(aging, "\"lease_expiries\":"), 0u) << aging;

  // Past the TTL: exactly one lease expired and re-queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const std::string expired = fetch_health(hport);
  EXPECT_EQ(json_uint_after(expired, "\"lease_expiries\":"), 1u) << expired;
  EXPECT_EQ(json_uint_after(expired, "\"requeued_chunks\":"), 1u) << expired;
  EXPECT_EQ(json_uint_after(expired, "\"worker_reconnects\":"), 0u)
      << expired;

  // A re-hello (session's third connect) registers as a reconnect, and the
  // worker row echoes its cumulative count.
  const int fd2 = dist::connect_once({"127.0.0.1", coordinator.port()});
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(dist::send_frame(
      fd2, dist::MsgType::kHello,
      dist::encode_hello(make_hello(fp, cells.size(), 2))));
  ASSERT_TRUE(dist::recv_frame(fd2, f));
  ASSERT_EQ(f.type, dist::MsgType::kWelcome);
  const std::string rejoined = fetch_health(hport);
  EXPECT_EQ(json_uint_after(rejoined, "\"worker_reconnects\":"), 1u)
      << rejoined;
  EXPECT_NE(rejoined.find("\"reconnects\":2"), std::string::npos) << rejoined;

  // Real workers drain the grid — the expired chunk included — and the
  // artifacts still match a local run byte for byte.
  const auto r =
      dist::run_worker(cells, fp, worker_options(coordinator.port(), 2));
  EXPECT_TRUE(r.completed) << r.error;
  server.join();
  ::close(fd);
  ::close(fd2);
  EXPECT_EQ(render_artifacts(spec.name, results), reference_artifacts(spec));
}

// ---- mid-cell chunk-checkpoint resume --------------------------------------

TEST(ChunkCheckpoint, MidCellResumeMatchesUninterruptedByteForByte) {
  // One monster cell. The interrupted session executes only [0, 120) +
  // [200, 260), appending chunk blocks; the resumed session loads them,
  // runs the complement spans, merges, and must land on identical bytes.
  ExperimentSpec spec;
  spec.name = "monster";
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.runs_per_cell = 300;
  spec.base_seed = 11;
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);
  const std::string reference = reference_artifacts(spec);

  std::stringstream file;
  write_checkpoint_header(file, fp);
  {
    std::mutex mu;
    CollectingSink::Options sink_opts;
    sink_opts.on_chunk = [&](const ExperimentCell& cell, std::uint64_t begin,
                             std::uint64_t end, const CellAccumulator& acc) {
      const std::lock_guard<std::mutex> lock(mu);
      append_checkpoint_chunk(file, cell.index, begin, end, acc);
    };
    CollectingSink sink(cells, std::move(sink_opts));
    ParallelExecutor::Options opts;
    opts.threads = 2;
    opts.chunk_size = 32;
    ParallelExecutor(opts).run(cells, {{0, 0, 120}, {0, 200, 260}}, sink);
  }

  const CheckpointData loaded = load_checkpoint_data(file, fp);
  EXPECT_TRUE(loaded.cells.empty());
  ASSERT_EQ(loaded.chunks.size(), 1u);
  const auto& chunk_list = loaded.chunks.at(0);
  ASSERT_FALSE(chunk_list.empty());

  // Merge the prior and derive the complement spans.
  CellAccumulator prior(MetricStats::kDefaultReservoir,
                        CellAccumulator::kDefaultFailureCap);
  std::vector<RunSpan> gaps;
  std::uint64_t cursor = 0;
  for (const ChunkCheckpoint& c : chunk_list) {
    if (c.begin > cursor) gaps.push_back({0, cursor, c.begin});
    prior.merge(c.acc);
    cursor = c.end;
  }
  if (cursor < cells[0].runs) gaps.push_back({0, cursor, cells[0].runs});
  EXPECT_EQ(prior.runs, 180u);
  ASSERT_EQ(gaps.size(), 2u);  // [120, 200) and [260, 300)

  CollectingSink sink(cells, {});
  ParallelExecutor::Options opts;
  opts.threads = 2;
  opts.chunk_size = 57;  // a different grain must not change the bytes
  ParallelExecutor(opts).run(cells, gaps, sink);
  auto results = sink.take_results();
  ASSERT_EQ(results.size(), 1u);
  prior.merge(results[0].acc);
  prior.finalize();
  results[0].acc = std::move(prior);
  EXPECT_EQ(render_artifacts(spec.name, results), reference);
}

TEST(ChunkCheckpoint, LoaderDropsOverlapsTruncationAndCoveredChunks) {
  const auto cells = dist_spec().expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CellAccumulator acc(MetricStats::kDefaultReservoir,
                      CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const RunConfig cfg = cells[0].run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }

  // Cell 0 has a cell block → its chunk blocks are redundant. Cell 1 keeps
  // [0,10) and [10,20); an overlapping [5,15) (a raced duplicate) drops.
  std::stringstream file;
  write_checkpoint_header(file, fp);
  append_checkpoint_chunk(file, 0, 0, 10, acc);
  CellAccumulator whole = acc;
  whole.finalize();
  append_checkpoint_cell(file, 0, whole);
  append_checkpoint_chunk(file, 1, 0, 10, acc);
  append_checkpoint_chunk(file, 1, 5, 15, acc);
  append_checkpoint_chunk(file, 1, 10, 20, acc);

  const CheckpointData data = load_checkpoint_data(file, fp);
  EXPECT_EQ(data.cells.size(), 1u);
  EXPECT_TRUE(data.cells.count(0));
  ASSERT_EQ(data.chunks.size(), 1u);
  const auto& list = data.chunks.at(1);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].begin, 0u);
  EXPECT_EQ(list[0].end, 10u);
  EXPECT_EQ(list[1].begin, 10u);
  EXPECT_EQ(list[1].end, 20u);

  // A truncated trailing chunk block is dropped; the complete blocks before
  // it survive.
  std::stringstream file2;
  write_checkpoint_header(file2, fp);
  append_checkpoint_chunk(file2, 1, 0, 10, acc);
  append_checkpoint_chunk(file2, 1, 10, 20, acc);
  const std::string text = file2.str();
  std::istringstream cut(text.substr(0, text.size() - 30));
  const CheckpointData partial = load_checkpoint_data(cut, fp);
  ASSERT_EQ(partial.chunks.count(1), 1u);
  EXPECT_EQ(partial.chunks.at(1).size(), 1u);
}

TEST(ChunkCheckpoint, CompactionMergesChainsAndDropsCoveredTrails) {
  const auto cells = dist_spec().expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CellAccumulator acc(MetricStats::kDefaultReservoir,
                      CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const RunConfig cfg = cells[0].run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }

  // Cell 0: chunk trail + cell block. Cell 1: a contiguous [0,10)+[10,20)
  // chain and a detached [30,40).
  std::stringstream file;
  write_checkpoint_header(file, fp);
  append_checkpoint_chunk(file, 0, 0, 10, acc);
  CellAccumulator whole = acc;
  whole.finalize();
  append_checkpoint_cell(file, 0, whole);
  append_checkpoint_chunk(file, 1, 0, 10, acc);
  append_checkpoint_chunk(file, 1, 10, 20, acc);
  append_checkpoint_chunk(file, 1, 30, 40, acc);

  const CheckpointData data = load_checkpoint_data(file, fp);
  std::stringstream compact;
  write_compacted_checkpoint(compact, fp, data);
  EXPECT_LT(compact.str().size(), file.str().size());

  // The rewrite keeps the cell block, merges the chain into one block, and
  // leaves the gap before [30,40) open.
  const CheckpointData out = load_checkpoint_data(compact, fp);
  EXPECT_EQ(out.cells.size(), 1u);
  EXPECT_EQ(out.cells.count(0), 1u);
  ASSERT_EQ(out.chunks.size(), 1u);
  const auto& list = out.chunks.at(1);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].begin, 0u);
  EXPECT_EQ(list[0].end, 20u);
  EXPECT_EQ(list[0].acc.runs, 20u);
  EXPECT_EQ(list[1].begin, 30u);
  EXPECT_EQ(list[1].end, 40u);
}

TEST(ChunkCheckpoint, CompactedRewriteResumesByteForByte) {
  // The --resume compaction path end to end: an interrupted session leaves
  // a chunk trail with a gap, the rewrite collapses it, and a resume from
  // the compacted file lands on the same bytes as an uninterrupted run.
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 2u);
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);
  const std::string reference = reference_artifacts(spec);

  // Interrupted session: cell 0 executed [0,10) + [20,40) in grain-10
  // chunks (three chunk blocks); cell 1 untouched.
  std::stringstream file;
  write_checkpoint_header(file, fp);
  {
    std::mutex mu;
    CollectingSink::Options sink_opts;
    sink_opts.on_chunk = [&](const ExperimentCell& cell, std::uint64_t begin,
                             std::uint64_t end, const CellAccumulator& a) {
      const std::lock_guard<std::mutex> lock(mu);
      append_checkpoint_chunk(file, cell.index, begin, end, a);
    };
    CollectingSink sink(cells, std::move(sink_opts));
    ParallelExecutor::Options opts;
    opts.threads = 2;
    opts.chunk_size = 10;
    ParallelExecutor(opts).run(cells, {{0, 0, 10}, {0, 20, 40}}, sink);
  }

  const CheckpointData loaded = load_checkpoint_data(file, fp);
  std::stringstream compact;
  write_compacted_checkpoint(compact, fp, loaded);
  EXPECT_LT(compact.str().size(), file.str().size());

  const CheckpointData reloaded = load_checkpoint_data(compact, fp);
  EXPECT_TRUE(reloaded.cells.empty());
  ASSERT_EQ(reloaded.chunks.size(), 1u);
  const auto& list = reloaded.chunks.at(0);
  ASSERT_EQ(list.size(), 2u);  // [20,30)+[30,40) merged; the gap survives
  EXPECT_EQ(list[0].begin, 0u);
  EXPECT_EQ(list[0].end, 10u);
  EXPECT_EQ(list[1].begin, 20u);
  EXPECT_EQ(list[1].end, 40u);
  EXPECT_EQ(list[1].acc.runs, 20u);

  // Resume from the compacted file at a different grain: complement spans
  // only, merged under the prior — byte-identical artifacts.
  CellAccumulator prior(MetricStats::kDefaultReservoir,
                        CellAccumulator::kDefaultFailureCap);
  for (const ChunkCheckpoint& c : list) prior.merge(c.acc);
  CollectingSink sink(cells, {});
  ParallelExecutor::Options opts;
  opts.threads = 2;
  opts.chunk_size = 7;
  ParallelExecutor(opts).run(cells, {{0, 10, 20}, {1, 0, 40}}, sink);
  auto results = sink.take_results();
  ASSERT_EQ(results.size(), 2u);
  prior.merge(results[0].acc);
  prior.finalize();
  results[0].acc = std::move(prior);
  EXPECT_EQ(render_artifacts(spec.name, results), reference);
}

}  // namespace
}  // namespace hyco
