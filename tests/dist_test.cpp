// Distributed sweep engine (src/dist/): the chunk-granular work ledger's
// state machine (lease → expire → re-lease → fold exactly-once), the wire
// protocol (framing, host:port validation, accumulator round-trip), and
// end-to-end coordinator/worker grids over localhost TCP — including a
// worker killed mid-chunk and a lease that expires on a wedged worker —
// all of which must leave the merged artifacts byte-identical to a
// single-machine streaming run. Mid-cell chunk-checkpoint resume rides the
// same accumulator encoding and is pinned here too.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/ledger.h"
#include "dist/proto.h"
#include "dist/worker.h"
#include "exp/checkpoint.h"
#include "exp/executor.h"
#include "exp/report.h"
#include "util/assert.h"

namespace hyco {
namespace {

using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::WorkLedger;

ExperimentSpec dist_spec() {
  ExperimentSpec spec;
  spec.name = "dist-test";
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2), ClusterLayout::even(6, 2)};
  spec.runs_per_cell = 40;
  spec.base_seed = 77;
  return spec;
}

std::string render_artifacts(const std::string& name,
                             const std::vector<CellResult>& results) {
  std::ostringstream os;
  write_cell_csv(os, results);
  write_cell_json(os, name, results);
  return os.str();
}

/// Single-machine streaming reference for a grid.
std::string reference_artifacts(const ExperimentSpec& spec) {
  const auto cells = spec.expand();
  CollectingSink sink(cells, {});
  ParallelExecutor::Options opts;
  opts.threads = 2;
  ParallelExecutor(opts).run(cells, sink);
  return render_artifacts(spec.name, sink.take_results());
}

CoordinatorOptions test_coordinator_options() {
  CoordinatorOptions opts;
  opts.port = 0;  // ephemeral
  opts.lease_grain = 7;
  opts.poll_interval = std::chrono::milliseconds(20);
  opts.max_wait = std::chrono::minutes(2);  // fail loudly, never hang CI
  return opts;
}

std::vector<RunSpan> full_spans(const std::vector<ExperimentCell>& cells) {
  std::vector<RunSpan> spans;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    spans.push_back({c, 0, cells[c].runs});
  }
  return spans;
}

// ---- work ledger ------------------------------------------------------------

TEST(WorkLedger, LeaseExpireReleaseFoldExactlyOnce) {
  WorkLedger ledger(1, 10);
  ledger.add_span(0, 0, 25);  // chunks [0,10) [10,20) [20,25)
  EXPECT_EQ(ledger.chunk_count(), 3u);
  EXPECT_EQ(ledger.total_runs(), 25u);
  EXPECT_FALSE(ledger.all_folded());

  const auto t0 = WorkLedger::Clock::now();
  const auto ttl = std::chrono::milliseconds(100);

  const auto l1 = ledger.acquire(1, t0, ttl);
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->begin, 0u);
  EXPECT_EQ(l1->end, 10u);
  EXPECT_EQ(ledger.leased_chunks(), 1u);

  // The lease expires; the chunk re-queues and re-leases to someone else.
  EXPECT_EQ(ledger.expire(t0 + std::chrono::milliseconds(50)), 0u);
  EXPECT_EQ(ledger.expire(t0 + std::chrono::milliseconds(150)), 1u);
  EXPECT_EQ(ledger.leased_chunks(), 0u);
  const auto l2 = ledger.acquire(2, t0, ttl);
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->begin, 10u);  // FIFO: next fresh chunk first
  const auto l3 = ledger.acquire(2, t0, ttl);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->begin, 20u);
  const auto l4 = ledger.acquire(3, t0, ttl);
  ASSERT_TRUE(l4.has_value());
  EXPECT_EQ(l4->begin, 0u);  // the expired chunk came back around
  EXPECT_FALSE(ledger.acquire(3, t0, ttl).has_value());

  // First fold wins; the late original result is a duplicate.
  const auto f1 = ledger.fold(0, 0, 10);
  EXPECT_EQ(f1.outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_FALSE(f1.cell_completed);
  const auto dup = ledger.fold(0, 0, 10);
  EXPECT_EQ(dup.outcome, WorkLedger::FoldOutcome::kDuplicate);
  EXPECT_EQ(ledger.folded_runs(), 10u);

  // Unknown ranges are rejected outright.
  EXPECT_EQ(ledger.fold(0, 0, 5).outcome, WorkLedger::FoldOutcome::kUnknown);
  EXPECT_EQ(ledger.fold(0, 3, 10).outcome,
            WorkLedger::FoldOutcome::kUnknown);

  const auto f2 = ledger.fold(0, 10, 20);
  EXPECT_EQ(f2.outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_FALSE(f2.cell_completed);
  const auto f3 = ledger.fold(0, 20, 25);
  EXPECT_EQ(f3.outcome, WorkLedger::FoldOutcome::kAccepted);
  EXPECT_TRUE(f3.cell_completed);
  EXPECT_TRUE(ledger.all_folded());
  EXPECT_TRUE(ledger.cell_folded(0));
}

TEST(WorkLedger, ReleaseOwnerRequeuesItsLeases) {
  WorkLedger ledger(2, 8);
  ledger.add_span(0, 0, 16);
  ledger.add_span(1, 0, 8);
  const auto t0 = WorkLedger::Clock::now();
  const auto ttl = std::chrono::seconds(60);
  (void)ledger.acquire(7, t0, ttl);
  (void)ledger.acquire(7, t0, ttl);
  (void)ledger.acquire(9, t0, ttl);
  EXPECT_EQ(ledger.leased_chunks(), 3u);
  EXPECT_EQ(ledger.release_owner(7), 2u);  // worker 7 disconnected
  EXPECT_EQ(ledger.leased_chunks(), 1u);
  EXPECT_EQ(ledger.pending_chunks(), 2u);
  // The released chunks can be folded by whoever re-executes them.
  EXPECT_EQ(ledger.fold(0, 0, 8).outcome,
            WorkLedger::FoldOutcome::kAccepted);
}

TEST(WorkLedger, SpansRespectGrainAndCells) {
  WorkLedger ledger(3, 1000);
  ledger.add_span(0, 0, 5);
  ledger.add_span(2, 100, 104);  // mid-cell span (resume complement)
  EXPECT_EQ(ledger.chunk_count(), 2u);
  EXPECT_TRUE(ledger.cell_folded(1));  // no registered work
  EXPECT_FALSE(ledger.cell_folded(2));
  EXPECT_EQ(ledger.fold(2, 100, 104).outcome,
            WorkLedger::FoldOutcome::kAccepted);
  EXPECT_TRUE(ledger.cell_folded(2));
  EXPECT_THROW(ledger.add_span(0, 3, 7), ContractViolation);  // overlap
  EXPECT_THROW(ledger.add_span(0, 9, 9), ContractViolation);  // empty
}

// ---- protocol ---------------------------------------------------------------

TEST(Proto, HostPortValidation) {
  const auto hp = dist::parse_host_port("127.0.0.1:7600");
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 7600);
  EXPECT_EQ(dist::parse_host_port("example.com:1").port, 1);
  EXPECT_THROW((void)dist::parse_host_port("localhost"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port(":80"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port("h:0"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port("h:65536"), ContractViolation);
  EXPECT_THROW((void)dist::parse_host_port("h:80x"), ContractViolation);
  EXPECT_THROW((void)dist::validate_port(0, "--serve"), ContractViolation);
  EXPECT_THROW((void)dist::validate_port(99999, "--serve"),
               ContractViolation);
}

TEST(Proto, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kWait,
                               dist::encode_wait(250)));
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kLeaseReq, ""));
  dist::Frame f;
  ASSERT_TRUE(dist::recv_frame(fds[1], f));
  EXPECT_EQ(f.type, dist::MsgType::kWait);
  std::uint32_t ms = 0;
  EXPECT_TRUE(dist::decode_wait(f.payload, ms));
  EXPECT_EQ(ms, 250u);
  ASSERT_TRUE(dist::recv_frame(fds[1], f));
  EXPECT_EQ(f.type, dist::MsgType::kLeaseReq);
  EXPECT_TRUE(f.payload.empty());
  ::close(fds[0]);
  EXPECT_FALSE(dist::recv_frame(fds[1], f));  // EOF
  ::close(fds[1]);
}

TEST(Proto, FrameBufferReassemblesSplitFrames) {
  const std::string one = dist::encode_lease({3, 10, 20});
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kLease, one));
  ASSERT_TRUE(dist::send_frame(fds[0], dist::MsgType::kDone, ""));
  std::string wire(4096, '\0');
  const ssize_t n = ::recv(fds[1], wire.data(), wire.size(), 0);
  ASSERT_GT(n, 0);
  wire.resize(static_cast<std::size_t>(n));
  ::close(fds[0]);
  ::close(fds[1]);

  dist::FrameBuffer buf;
  // Drip-feed one byte at a time: frames must surface exactly when whole.
  std::size_t yielded = 0;
  for (const char c : wire) {
    buf.feed(&c, 1);
    while (const auto f = buf.next()) {
      if (yielded == 0) {
        EXPECT_EQ(f->type, dist::MsgType::kLease);
        dist::LeaseMsg lease;
        ASSERT_TRUE(dist::decode_lease(f->payload, lease));
        EXPECT_EQ(lease.cell_index, 3u);
        EXPECT_EQ(lease.begin, 10u);
        EXPECT_EQ(lease.end, 20u);
      } else {
        EXPECT_EQ(f->type, dist::MsgType::kDone);
      }
      ++yielded;
    }
  }
  EXPECT_EQ(yielded, 2u);
  EXPECT_FALSE(buf.error());
}

TEST(Proto, ResultEncodingRoundTripsAccumulatorExactly) {
  // A real accumulator (reservoirs, histogram, failure ring populated by
  // actual runs) must survive the wire byte-exactly — the distributed
  // determinism contract reduces to this round-trip plus merge invariance.
  const auto cells = dist_spec().expand();
  const ExperimentCell& cell = cells[0];
  CellAccumulator acc(MetricStats::kDefaultReservoir, 4);
  for (std::uint64_t k = 0; k < 12; ++k) {
    const RunConfig cfg = cell.run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }

  dist::ResultMsg msg;
  msg.cell_index = cell.index;
  msg.begin = 0;
  msg.end = 12;
  msg.acc = acc;
  const std::string payload = dist::encode_result(msg);

  dist::ResultMsg back;
  ASSERT_TRUE(dist::decode_result(payload, back));
  EXPECT_EQ(back.cell_index, cell.index);
  EXPECT_EQ(back.begin, 0u);
  EXPECT_EQ(back.end, 12u);
  EXPECT_EQ(back.acc.runs, acc.runs);
  EXPECT_EQ(back.acc.terminated, acc.terminated);
  EXPECT_EQ(back.acc.violations, acc.violations);
  // Exactness: every rendered statistic (moments, percentiles, histogram,
  // failure list) of the decoded accumulator matches the original's byte
  // for byte. (Reservoir heap *layout* may legally differ — the kept set
  // and everything derived from it may not.)
  CellAccumulator fa = acc;
  fa.finalize();
  CellAccumulator fb = back.acc;
  fb.finalize();
  std::vector<CellResult> ra, rb;
  ra.emplace_back(cell, std::move(fa));
  rb.emplace_back(cell, std::move(fb));
  EXPECT_EQ(render_artifacts("roundtrip", ra),
            render_artifacts("roundtrip", rb));

  dist::ResultMsg bad;
  EXPECT_FALSE(dist::decode_result("result 0 5 5 0 0 0\n", bad));
  EXPECT_FALSE(dist::decode_result("garbage", bad));
}

// ---- end-to-end over localhost TCP -----------------------------------------

/// Runs a coordinator for `spec` on an ephemeral port and hands its port to
/// `drive` (which runs workers / rogue clients); returns the rendered
/// artifacts of the coordinator's merged results.
std::string serve_grid(const ExperimentSpec& spec, CoordinatorOptions opts,
                       const std::function<void(std::uint16_t)>& drive) {
  const auto cells = spec.expand();
  Coordinator coordinator(cells, full_spans(cells), {},
                          grid_fingerprint(cells, opts.reservoir_capacity,
                                           opts.failure_capacity),
                          std::move(opts));
  coordinator.bind();
  const std::uint16_t port = coordinator.port();
  std::vector<CellResult> results;
  std::thread server([&] { results = coordinator.serve(); });
  drive(port);
  server.join();
  return render_artifacts(spec.name, results);
}

dist::WorkerOptions worker_options(std::uint16_t port, unsigned sessions) {
  dist::WorkerOptions w;
  w.target = {"127.0.0.1", port};
  w.sessions = sessions;
  return w;
}

TEST(DistributedSweep, TwoWorkersMatchLocalByteForByte) {
  const ExperimentSpec spec = dist_spec();
  const std::string reference = reference_artifacts(spec);
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        std::thread w1([&] {
          const auto r = dist::run_worker(cells, fp, worker_options(port, 2));
          EXPECT_TRUE(r.completed) << r.error;
          EXPECT_GT(r.runs_executed, 0u);
        });
        const auto r2 = dist::run_worker(cells, fp, worker_options(port, 1));
        EXPECT_TRUE(r2.completed) << r2.error;
        w1.join();
      });
  EXPECT_EQ(distributed, reference);
}

TEST(DistributedSweep, RejectsForeignGridFingerprint) {
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        // Wrong fingerprint first: rejected before any run executes.
        const auto bad =
            dist::run_worker(cells, fp + 1, worker_options(port, 1));
        EXPECT_FALSE(bad.completed);
        EXPECT_NE(bad.error.find("rejected"), std::string::npos) << bad.error;
        EXPECT_EQ(bad.runs_executed, 0u);
        // A correct worker still completes the grid afterwards.
        const auto good =
            dist::run_worker(cells, fp, worker_options(port, 2));
        EXPECT_TRUE(good.completed) << good.error;
      });
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

TEST(DistributedSweep, WorkerKilledMidChunkLeavesOutputIdentical) {
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  const std::string distributed =
      serve_grid(spec, test_coordinator_options(), [&](std::uint16_t port) {
        // The "killed" worker: completes the handshake, takes a lease, and
        // vanishes without folding it. Its chunk must re-queue.
        const int fd = dist::connect_once({"127.0.0.1", port});
        ASSERT_GE(fd, 0);
        dist::HelloMsg hello;
        hello.fingerprint = fp;
        hello.cells = cells.size();
        hello.reservoir_capacity = MetricStats::kDefaultReservoir;
        hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
        ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kHello,
                                     dist::encode_hello(hello)));
        dist::Frame f;
        ASSERT_TRUE(dist::recv_frame(fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kWelcome);
        ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
        ASSERT_TRUE(dist::recv_frame(fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kLease);
        ::close(fd);  // SIGKILL equivalent: the TCP connection just dies

        const auto r = dist::run_worker(cells, fp, worker_options(port, 2));
        EXPECT_TRUE(r.completed) << r.error;
      });
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

TEST(DistributedSweep, ExpiredLeaseOnWedgedWorkerIsReassigned) {
  const ExperimentSpec spec = dist_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CoordinatorOptions opts = test_coordinator_options();
  opts.lease_ttl = std::chrono::milliseconds(150);

  int wedged_fd = -1;
  const std::string distributed =
      serve_grid(spec, std::move(opts), [&](std::uint16_t port) {
        // The wedged worker: leases a chunk and then sits on it, connection
        // alive, well past the lease TTL.
        wedged_fd = dist::connect_once({"127.0.0.1", port});
        ASSERT_GE(wedged_fd, 0);
        dist::HelloMsg hello;
        hello.fingerprint = fp;
        hello.cells = cells.size();
        hello.reservoir_capacity = MetricStats::kDefaultReservoir;
        hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
        ASSERT_TRUE(dist::send_frame(wedged_fd, dist::MsgType::kHello,
                                     dist::encode_hello(hello)));
        dist::Frame f;
        ASSERT_TRUE(dist::recv_frame(wedged_fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kWelcome);
        ASSERT_TRUE(dist::send_frame(wedged_fd, dist::MsgType::kLeaseReq, ""));
        ASSERT_TRUE(dist::recv_frame(wedged_fd, f));
        ASSERT_EQ(f.type, dist::MsgType::kLease);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));

        // A live worker drains the grid, the expired chunk included.
        const auto r = dist::run_worker(cells, fp, worker_options(port, 1));
        EXPECT_TRUE(r.completed) << r.error;
      });
  if (wedged_fd >= 0) ::close(wedged_fd);
  EXPECT_EQ(distributed, reference_artifacts(spec));
}

// ---- health endpoint + distributed obs metrics ------------------------------

/// Parses the first unsigned integer after `key` in a flat JSON string.
std::uint64_t json_uint_after(const std::string& json, const std::string& key) {
  const auto pos = json.find(key);
  if (pos == std::string::npos) return ~0ull;
  std::uint64_t v = 0;
  bool any = false;
  for (std::size_t i = pos + key.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  return any ? v : ~0ull;
}

/// One HTTP GET against the coordinator's health endpoint; returns the raw
/// response (headers + JSON body).
std::string fetch_health(std::uint16_t port) {
  const int fd = dist::connect_once({"127.0.0.1", port});
  if (fd < 0) return {};
  const char req[] = "GET /health HTTP/1.0\r\n\r\n";
  (void)::send(fd, req, sizeof(req) - 1, 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(DistributedSweep, HealthEndpointServesMonotonicProgress) {
  // collect_obs on: phase timings ride the wire alongside the counters, and
  // the final artifacts (obs columns included) must still match a local run.
  ExperimentSpec spec = dist_spec();
  spec.collect_obs = true;
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CoordinatorOptions opts = test_coordinator_options();
  opts.health_port = 0;  // ephemeral
  opts.lease_grain = 16;
  Coordinator coordinator(cells, full_spans(cells), {}, fp, std::move(opts));
  coordinator.bind();
  const std::uint16_t hport = coordinator.health_port();
  ASSERT_NE(hport, 0);
  std::vector<CellResult> results;
  std::thread server([&] { results = coordinator.serve(); });

  // Before any worker connects: schema present, zero progress, no workers.
  const std::string before = fetch_health(hport);
  ASSERT_NE(before.find("\"schema\":\"hyco-health/1\""), std::string::npos)
      << before;
  EXPECT_EQ(json_uint_after(before, "\"folded\":"), 0u);
  EXPECT_NE(before.find("\"workers\":[]"), std::string::npos);
  const std::uint64_t total = json_uint_after(before, "\"total\":");
  EXPECT_EQ(total, spec.total_runs());

  // A manual worker folds exactly one chunk, so "mid-sweep" is a state we
  // control rather than a race we hope to win.
  const int fd = dist::connect_once({"127.0.0.1", coordinator.port()});
  ASSERT_GE(fd, 0);
  dist::HelloMsg hello;
  hello.fingerprint = fp;
  hello.cells = cells.size();
  hello.reservoir_capacity = MetricStats::kDefaultReservoir;
  hello.failure_capacity = CellAccumulator::kDefaultFailureCap;
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kHello,
                               dist::encode_hello(hello)));
  dist::Frame f;
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_EQ(f.type, dist::MsgType::kWelcome);
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_EQ(f.type, dist::MsgType::kLease);
  dist::LeaseMsg lease;
  ASSERT_TRUE(dist::decode_lease(f.payload, lease));

  dist::ResultMsg result;
  result.cell_index = lease.cell_index;
  result.begin = lease.begin;
  result.end = lease.end;
  result.acc = CellAccumulator(MetricStats::kDefaultReservoir,
                               CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = lease.begin; k < lease.end; ++k) {
    const RunConfig cfg = cells[lease.cell_index].run_config(k);
    result.acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kResult,
                               dist::encode_result(result)));
  // Frames on one connection are handled in order: once the next lease
  // round-trips, the Result before it has been folded.
  ASSERT_TRUE(dist::send_frame(fd, dist::MsgType::kLeaseReq, ""));
  ASSERT_TRUE(dist::recv_frame(fd, f));
  ASSERT_TRUE(f.type == dist::MsgType::kLease ||
              f.type == dist::MsgType::kWait);

  const std::string mid = fetch_health(hport);
  const std::uint64_t chunk_len = lease.end - lease.begin;
  EXPECT_EQ(json_uint_after(mid, "\"folded\":"), chunk_len) << mid;
  EXPECT_NE(mid.find("\"welcomed\":true"), std::string::npos);
  EXPECT_EQ(json_uint_after(mid, "\"folded_runs\":"), chunk_len) << mid;

  // The manual worker vanishes (its second lease re-queues); real workers
  // drain the rest and the artifacts — obs columns included — must match a
  // single-machine run byte for byte.
  ::close(fd);
  const auto r = dist::run_worker(cells, fp, worker_options(
                                      coordinator.port(), 2));
  EXPECT_TRUE(r.completed) << r.error;
  server.join();

  ReportOptions ropts;
  ropts.net_stats = true;
  ropts.phase_metrics = true;
  std::ostringstream da;
  write_cell_csv(da, results, ropts);
  write_cell_json(da, spec.name, results, ropts);

  CollectingSink sink(cells, {});
  ParallelExecutor::Options eopts;
  eopts.threads = 2;
  ParallelExecutor(eopts).run(cells, sink);
  auto local = sink.take_results();
  std::ostringstream la;
  write_cell_csv(la, local, ropts);
  write_cell_json(la, spec.name, local, ropts);
  EXPECT_EQ(da.str(), la.str());
}

// ---- mid-cell chunk-checkpoint resume --------------------------------------

TEST(ChunkCheckpoint, MidCellResumeMatchesUninterruptedByteForByte) {
  // One monster cell. The interrupted session executes only [0, 120) +
  // [200, 260), appending chunk blocks; the resumed session loads them,
  // runs the complement spans, merges, and must land on identical bytes.
  ExperimentSpec spec;
  spec.name = "monster";
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.runs_per_cell = 300;
  spec.base_seed = 11;
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);
  const std::string reference = reference_artifacts(spec);

  std::stringstream file;
  write_checkpoint_header(file, fp);
  {
    std::mutex mu;
    CollectingSink::Options sink_opts;
    sink_opts.on_chunk = [&](const ExperimentCell& cell, std::uint64_t begin,
                             std::uint64_t end, const CellAccumulator& acc) {
      const std::lock_guard<std::mutex> lock(mu);
      append_checkpoint_chunk(file, cell.index, begin, end, acc);
    };
    CollectingSink sink(cells, std::move(sink_opts));
    ParallelExecutor::Options opts;
    opts.threads = 2;
    opts.chunk_size = 32;
    ParallelExecutor(opts).run(cells, {{0, 0, 120}, {0, 200, 260}}, sink);
  }

  const CheckpointData loaded = load_checkpoint_data(file, fp);
  EXPECT_TRUE(loaded.cells.empty());
  ASSERT_EQ(loaded.chunks.size(), 1u);
  const auto& chunk_list = loaded.chunks.at(0);
  ASSERT_FALSE(chunk_list.empty());

  // Merge the prior and derive the complement spans.
  CellAccumulator prior(MetricStats::kDefaultReservoir,
                        CellAccumulator::kDefaultFailureCap);
  std::vector<RunSpan> gaps;
  std::uint64_t cursor = 0;
  for (const ChunkCheckpoint& c : chunk_list) {
    if (c.begin > cursor) gaps.push_back({0, cursor, c.begin});
    prior.merge(c.acc);
    cursor = c.end;
  }
  if (cursor < cells[0].runs) gaps.push_back({0, cursor, cells[0].runs});
  EXPECT_EQ(prior.runs, 180u);
  ASSERT_EQ(gaps.size(), 2u);  // [120, 200) and [260, 300)

  CollectingSink sink(cells, {});
  ParallelExecutor::Options opts;
  opts.threads = 2;
  opts.chunk_size = 57;  // a different grain must not change the bytes
  ParallelExecutor(opts).run(cells, gaps, sink);
  auto results = sink.take_results();
  ASSERT_EQ(results.size(), 1u);
  prior.merge(results[0].acc);
  prior.finalize();
  results[0].acc = std::move(prior);
  EXPECT_EQ(render_artifacts(spec.name, results), reference);
}

TEST(ChunkCheckpoint, LoaderDropsOverlapsTruncationAndCoveredChunks) {
  const auto cells = dist_spec().expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir,
      CellAccumulator::kDefaultFailureCap);

  CellAccumulator acc(MetricStats::kDefaultReservoir,
                      CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const RunConfig cfg = cells[0].run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }

  // Cell 0 has a cell block → its chunk blocks are redundant. Cell 1 keeps
  // [0,10) and [10,20); an overlapping [5,15) (a raced duplicate) drops.
  std::stringstream file;
  write_checkpoint_header(file, fp);
  append_checkpoint_chunk(file, 0, 0, 10, acc);
  CellAccumulator whole = acc;
  whole.finalize();
  append_checkpoint_cell(file, 0, whole);
  append_checkpoint_chunk(file, 1, 0, 10, acc);
  append_checkpoint_chunk(file, 1, 5, 15, acc);
  append_checkpoint_chunk(file, 1, 10, 20, acc);

  const CheckpointData data = load_checkpoint_data(file, fp);
  EXPECT_EQ(data.cells.size(), 1u);
  EXPECT_TRUE(data.cells.count(0));
  ASSERT_EQ(data.chunks.size(), 1u);
  const auto& list = data.chunks.at(1);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].begin, 0u);
  EXPECT_EQ(list[0].end, 10u);
  EXPECT_EQ(list[1].begin, 10u);
  EXPECT_EQ(list[1].end, 20u);

  // A truncated trailing chunk block is dropped; the complete blocks before
  // it survive.
  std::stringstream file2;
  write_checkpoint_header(file2, fp);
  append_checkpoint_chunk(file2, 1, 0, 10, acc);
  append_checkpoint_chunk(file2, 1, 10, 20, acc);
  const std::string text = file2.str();
  std::istringstream cut(text.substr(0, text.size() - 30));
  const CheckpointData partial = load_checkpoint_data(cut, fp);
  ASSERT_EQ(partial.chunks.count(1), 1u);
  EXPECT_EQ(partial.chunks.at(1).size(), 1u);
}

}  // namespace
}  // namespace hyco
