// Unit tests for the discrete-event engine (sim/simulator.h, event_queue.h)
// and crash tracking (sim/crash.h).
#include <gtest/gtest.h>

#include <vector>

#include "sim/crash.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace hyco {
namespace {

void run_next(EventQueue& q) {
  const Event ev = q.pop();
  ASSERT_EQ(ev.kind, Event::Kind::Callback);
  q.take_callback(ev.slot)();
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) run_next(q);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) run_next(q);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1, [] {}), ContractViolation);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), ContractViolation);
  EXPECT_THROW(static_cast<void>(q.next_time()), ContractViolation);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim(1);
  SimTime seen = -1;
  sim.schedule_in(100, [&] { seen = sim.now(); });
  EXPECT_EQ(sim.run(), StopReason::Quiescent);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, NestedSchedulingUsesCurrentTime) {
  Simulator sim(1);
  std::vector<SimTime> times;
  sim.schedule_in(10, [&] {
    times.push_back(sim.now());
    sim.schedule_in(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 15);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim(1);
  sim.schedule_in(50, [&] {
    EXPECT_THROW(sim.schedule_at(10, [] {}), ContractViolation);
  });
  sim.run();
}

TEST(Simulator, EventLimitStops) {
  Simulator sim(1);
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] { sim.schedule_in(1, tick); };
  sim.schedule_in(0, tick);
  EXPECT_EQ(sim.run(100), StopReason::EventLimit);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, TimeLimitStops) {
  Simulator sim(1);
  std::function<void()> tick = [&] { sim.schedule_in(10, tick); };
  sim.schedule_in(0, tick);
  EXPECT_EQ(sim.run(1'000'000, 500), StopReason::TimeLimit);
  EXPECT_LE(sim.now(), 500);
}

TEST(Simulator, HaltStopsMidRun) {
  Simulator sim(1);
  int executed = 0;
  sim.schedule_in(1, [&] {
    ++executed;
    sim.halt();
  });
  sim.schedule_in(2, [&] { ++executed; });
  EXPECT_EQ(sim.run(), StopReason::Halted);
  EXPECT_EQ(executed, 1);
  // A fresh run() resumes the remaining events.
  EXPECT_EQ(sim.run(), StopReason::Quiescent);
  EXPECT_EQ(executed, 2);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_in(1, [&] { ++fired; });
  sim.schedule_in(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunTickExecutesOneTickAtATime) {
  Simulator sim(1);
  std::vector<int> fired;
  sim.schedule_in(5, [&] { fired.push_back(0); });
  sim.schedule_in(5, [&] { fired.push_back(1); });
  sim.schedule_in(9, [&] { fired.push_back(2); });
  // First tick: both time-5 events, nothing else.
  EXPECT_EQ(sim.run_tick(), std::nullopt);
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.now(), 5);
  EXPECT_EQ(sim.run_tick(), std::nullopt);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.run_tick(), std::optional<StopReason>(StopReason::Quiescent));
}

TEST(Simulator, HaltMidTickLeavesRestQueued) {
  // Three same-time events; the first halts. The other two must survive
  // the tick (two-phase commit) and run on a fresh run().
  Simulator sim(1);
  int executed = 0;
  sim.schedule_in(1, [&] {
    ++executed;
    sim.halt();
  });
  sim.schedule_in(1, [&] { ++executed; });
  sim.schedule_in(1, [&] { ++executed; });
  EXPECT_EQ(sim.run(), StopReason::Halted);
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.run(), StopReason::Quiescent);
  EXPECT_EQ(executed, 3);
}

namespace {
/// Counts batch calls so tests can see the batched dispatch shape.
struct CountingSink : DeliverSink {
  int batches = 0;
  int messages = 0;
  void deliver_event(ProcId, ProcId, const Message&,
                     std::uint64_t) override {
    ++messages;
  }
  std::size_t deliver_batch(const TickItem* items, std::size_t count,
                            const bool& halted) override {
    ++batches;
    return DeliverSink::deliver_batch(items, count, halted);
  }
};
}  // namespace

TEST(Simulator, SameTickDeliveriesDispatchAsOneBatch) {
  Simulator sim(1);
  CountingSink sink;
  sim.set_deliver_sink(&sink);
  const Message m = Message::value_msg(0, 7);
  for (int i = 0; i < 32; ++i) sim.schedule_deliver(4, 0, 1, m);
  sim.schedule_deliver(9, 0, 1, m);
  EXPECT_EQ(sim.run(), StopReason::Quiescent);
  EXPECT_EQ(sink.messages, 33);
  EXPECT_EQ(sink.batches, 2);  // one burst at t=4, one singleton at t=9
  sim.clear_deliver_sink(&sink);
}

TEST(Simulator, RngIsSeedDeterministic) {
  Simulator a(42), b(42), c(43);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  // Different seeds almost surely differ.
  EXPECT_NE(a.rng().next_u64(), c.rng().next_u64());
}

TEST(CrashTracker, BasicLifecycle) {
  CrashTracker t(5);
  EXPECT_FALSE(t.is_crashed(2));
  EXPECT_EQ(t.crash_time(2), kSimTimeNever);
  t.crash(2, 100);
  EXPECT_TRUE(t.is_crashed(2));
  EXPECT_EQ(t.crash_time(2), 100);
  EXPECT_EQ(t.crashed_count(), 1u);
}

TEST(CrashTracker, DoubleCrashKeepsFirstTime) {
  CrashTracker t(3);
  t.crash(0, 10);
  t.crash(0, 99);
  EXPECT_EQ(t.crash_time(0), 10);
  EXPECT_EQ(t.crashed_count(), 1u);
}

TEST(CrashTracker, CorrectSetComplementsCrashes) {
  CrashTracker t(4);
  t.crash(1, 5);
  t.crash(3, 6);
  const auto live = t.correct();
  EXPECT_TRUE(live.test(0));
  EXPECT_FALSE(live.test(1));
  EXPECT_TRUE(live.test(2));
  EXPECT_FALSE(live.test(3));
}

TEST(CrashTracker, UnknownProcessThrows) {
  CrashTracker t(2);
  EXPECT_THROW(t.crash(2, 0), ContractViolation);
}

}  // namespace
}  // namespace hyco
