// Property/fuzz tests for the zero-allocation event core: the calendar
// queue (and its overflow heap) is checked against a stable-sort reference
// model under random interleavings of pushes and pops (including heavy
// equal-time contention), and both free-list slabs are checked for
// steady-state reuse (no growth under churn). The calendar-specific
// geometries (tiny windows, forced migration/widening, pop_tick spans)
// live in calendar_queue_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/message.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace hyco {
namespace {

Message tagged(std::uint64_t tag) {
  Message m = Message::value_msg(0, tag);
  return m;
}

/// Reference model entry: what the queue should eventually emit.
struct Expected {
  SimTime at = 0;
  std::uint64_t order = 0;  ///< push order — the tie-breaker contract
  std::uint64_t tag = 0;    ///< payload identity
};

/// Drains `q`, checking each popped event against the reference sorted by
/// (at, push order) — i.e. std::stable_sort over the pending set by time.
void drain_and_check(EventQueue& q, std::vector<Expected> pending) {
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.at < b.at;  // stable ⇒ push order at equal times
                   });
  for (const Expected& want : pending) {
    ASSERT_FALSE(q.empty());
    ASSERT_EQ(q.next_time(), want.at);
    const Event ev = q.pop();
    EXPECT_EQ(ev.at, want.at);
    ASSERT_EQ(ev.kind, Event::Kind::Deliver);
    EXPECT_EQ(ev.msg->value, want.tag);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueProperty, RandomInterleavingMatchesStableSortModel) {
  Rng rng(0xE7E7);
  for (int round = 0; round < 50; ++round) {
    EventQueue q;
    std::vector<Expected> pending;
    std::uint64_t next_tag = 0;
    // Random interleaving of pushes and pops; pops must always agree with
    // the reference model's front.
    const int ops = 400;
    for (int op = 0; op < ops; ++op) {
      const bool do_push = pending.empty() || rng.bounded(100) < 60;
      if (do_push) {
        // Deliberately small time range: lots of equal-time collisions.
        const SimTime at = static_cast<SimTime>(rng.bounded(20));
        q.push_deliver(at, 0, 1, tagged(next_tag));
        pending.push_back({at, next_tag, next_tag});
        ++next_tag;
      } else {
        auto front = std::min_element(
            pending.begin(), pending.end(),
            [](const Expected& a, const Expected& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.order < b.order;
            });
        const Event ev = q.pop();
        EXPECT_EQ(ev.at, front->at);
        EXPECT_EQ(ev.msg->value, front->tag);
        pending.erase(front);
      }
    }
    drain_and_check(q, std::move(pending));
  }
}

TEST(EventQueueProperty, EqualTimeBurstPopsInPushOrder) {
  EventQueue q;
  std::vector<Expected> pending;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.push_deliver(7, 0, 1, tagged(i));
    pending.push_back({7, i, i});
  }
  drain_and_check(q, std::move(pending));
}

TEST(EventQueueProperty, MixedCallbackAndDeliverOrdering) {
  EventQueue q;
  std::vector<int> order;
  q.push_deliver(5, 0, 1, tagged(2));
  q.push(5, [&] { order.push_back(1); });  // same time, pushed second
  q.push(3, [&] { order.push_back(0); });
  while (!q.empty()) {
    const Event ev = q.pop();
    if (ev.kind == Event::Kind::Callback) {
      q.take_callback(ev.slot)();
    } else {
      order.push_back(static_cast<int>(ev.msg->value));
    }
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(EventQueuePool, CallbackSlotsAreReusedUnderChurn) {
  EventQueue q;
  // Warm up: establish the steady-state slot population.
  for (int i = 0; i < 8; ++i) q.push(i, [] {});
  const std::size_t warm = q.pool_capacity();
  // Steady-state churn: one in flight at a time, thousands of iterations.
  for (int i = 0; i < 5000; ++i) {
    const Event ev = q.pop();
    ASSERT_EQ(ev.kind, Event::Kind::Callback);
    q.take_callback(ev.slot)();
    q.push(ev.at + 8, [] {});
  }
  EXPECT_EQ(q.pool_capacity(), warm) << "closure pool grew under churn";
  EXPECT_EQ(q.pool_in_use(), 8u);
  while (!q.empty()) q.take_callback(q.pop().slot);
  EXPECT_EQ(q.pool_in_use(), 0u);
}

TEST(EventQueuePool, DeliverSlotsAreReusedUnderChurn) {
  EventQueue q;
  const Message m = tagged(1);
  for (int i = 0; i < 16; ++i) q.push_deliver(i, 0, 1, m);
  const std::size_t warm = q.deliver_pool_capacity();
  for (int i = 0; i < 5000; ++i) {
    const Event ev = q.pop();
    q.push_deliver(ev.at + 16, 0, 1, m);
  }
  // A popped slot recycles at the NEXT pop (the deferred free keeps the
  // popped Message reference valid across pushes), so steady-state churn
  // holds exactly one slot beyond the warm population — and no more.
  EXPECT_LE(q.deliver_pool_capacity(), warm + 1)
      << "deliver slab grew under churn";
  EXPECT_EQ(q.deliver_pool_in_use(), 16u);
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.deliver_pool_in_use(), 0u);
}

TEST(EventQueuePool, PoppedMessageReferenceSurvivesPushes) {
  // Satellite regression for the slab-reference pop: the Message a popped
  // Deliver event points at must stay intact across arbitrary pushes
  // (which recycle slots and grow the slab) until the next pop.
  EventQueue q;
  q.push_deliver(1, 0, 1, tagged(0xFEED));
  const Event ev = q.pop();
  ASSERT_EQ(ev.kind, Event::Kind::Deliver);
  const Message* held = ev.msg;
  EXPECT_EQ(held->value, 0xFEEDu);
  // Slot-reuse pressure: these pushes must NOT claim the just-popped slot.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    q.push_deliver(2, 0, 1, tagged(i));
  }
  EXPECT_EQ(held->value, 0xFEEDu)
      << "popped slab reference clobbered by a push";
  // The next pop may recycle the held slot; its own reference is distinct.
  const Event ev2 = q.pop();
  EXPECT_EQ(ev2.msg->value, 0u);
}

TEST(EventQueuePool, TakeCallbackTwiceThrows) {
  EventQueue q;
  q.push(1, [] {});
  const Event ev = q.pop();
  q.take_callback(ev.slot)();
  EXPECT_THROW(static_cast<void>(q.take_callback(ev.slot)), ContractViolation);
}

TEST(EventQueueProperty, ReserveDoesNotDisturbContents) {
  EventQueue q;
  std::vector<Expected> pending;
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.push_deliver(static_cast<SimTime>(10 - i), 0, 1, tagged(i));
    pending.push_back({static_cast<SimTime>(10 - i), i, i});
  }
  q.reserve(4096, 64);
  for (std::uint64_t i = 10; i < 20; ++i) {
    q.push_deliver(5, 0, 1, tagged(i));
    pending.push_back({5, i, i});
  }
  drain_and_check(q, std::move(pending));
}

TEST(EventQueueProperty, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) q.push_deliver(i, 0, 1, tagged(0));
  for (int i = 0; i < 50; ++i) q.pop();
  for (int i = 0; i < 10; ++i) q.push_deliver(200 + i, 0, 1, tagged(0));
  EXPECT_EQ(q.peak_size(), 100u);
  EXPECT_EQ(q.size(), 60u);
}

}  // namespace
}  // namespace hyco
