// Unit tests for CSV emission, ASCII tables, CLI options, and logging.
#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/options.h"
#include "util/table.h"

namespace hyco {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.row({"1", "2"});
  w.row_values(3, 4.5);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4.5\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, FieldCountContract) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), ContractViolation);
}

TEST(Csv, DoubleHeaderRejected) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), ContractViolation);
}

TEST(Table, AlignsAndCounts) {
  Table t("demo");
  t.set_columns({"name", "value"});
  t.add_row_values("x", 1);
  t.add_row_values("longer-name", 22);
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
}

TEST(Table, RowWidthContract) {
  Table t("demo");
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, FixedFormatsDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=16", "--verbose", "--rate=2.5",
                        "positional"};
  Options o(5, argv);
  EXPECT_EQ(o.get_int("n"), 16);
  EXPECT_TRUE(o.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(o.get_double("rate"), 2.5);
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "positional");
}

TEST(Options, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Options o(1, argv);
  EXPECT_EQ(o.get_int("missing", 7), 7);
  EXPECT_EQ(o.get_string("missing", "d"), "d");
  EXPECT_FALSE(o.get_bool("missing"));
  EXPECT_FALSE(o.has("missing"));
}

TEST(Log, LevelGating) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::Error);
  EXPECT_FALSE(Log::enabled(LogLevel::Debug));
  EXPECT_TRUE(Log::enabled(LogLevel::Error));
  Log::set_level(saved);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::Info), "INFO");
  EXPECT_STREQ(Log::level_name(LogLevel::Trace), "TRACE");
}

}  // namespace
}  // namespace hyco
