// Unit tests for DynamicBitset (util/bitset.h).
#include <gtest/gtest.h>

#include "util/assert.h"
#include "util/bitset.h"

namespace hyco {
namespace {

TEST(Bitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(Bitset, SetResetTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, AssignDispatches) {
  DynamicBitset b(10);
  b.assign(3, true);
  EXPECT_TRUE(b.test(3));
  b.assign(3, false);
  EXPECT_FALSE(b.test(3));
}

TEST(Bitset, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), ContractViolation);
  EXPECT_THROW(b.test(10), ContractViolation);
  EXPECT_THROW(b.reset(11), ContractViolation);
}

TEST(Bitset, SetAllRespectsTail) {
  DynamicBitset b(67);
  b.set_all();
  EXPECT_EQ(b.count(), 67u);
  EXPECT_TRUE(b.all());
  b.clear_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitset, SetAllExactWordBoundary) {
  DynamicBitset b(128);
  b.set_all();
  EXPECT_EQ(b.count(), 128u);
}

TEST(Bitset, UnionIntersectionDifference) {
  DynamicBitset a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  const auto u = a | b;
  EXPECT_EQ(u.count(), 3u);
  EXPECT_TRUE(u.test(1) && u.test(2) && u.test(3));
  const auto i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(2));
  auto d = a;
  d -= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, UniverseMismatchThrows) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a |= b, ContractViolation);
  EXPECT_THROW(a &= b, ContractViolation);
  EXPECT_THROW((void)a.is_subset_of(b), ContractViolation);
}

TEST(Bitset, SubsetAndIntersects) {
  DynamicBitset a(10), b(10);
  a.set(1);
  b.set(1);
  b.set(2);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c(10);
  c.set(5);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset, ToIndicesSorted) {
  DynamicBitset b(100);
  b.set(90);
  b.set(5);
  b.set(64);
  const auto idx = b.to_indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 5u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 90u);
}

TEST(Bitset, ToStringFormat) {
  DynamicBitset b(10);
  EXPECT_EQ(b.to_string(), "{}");
  b.set(0);
  b.set(7);
  EXPECT_EQ(b.to_string(), "{0,7}");
}

TEST(Bitset, EqualityIsValueBased) {
  DynamicBitset a(10), b(10);
  a.set(4);
  b.set(4);
  EXPECT_EQ(a, b);
  b.set(5);
  EXPECT_NE(a, b);
}

TEST(Bitset, EmptyUniverse) {
  DynamicBitset b(0);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  b.set_all();  // no-op, must not crash
  EXPECT_EQ(b.count(), 0u);
}

}  // namespace
}  // namespace hyco
