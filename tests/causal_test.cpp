// Tests for the causal forensics layer (src/obs/causal.{h,cpp}) and the
// robustness of the trace readers it feeds: detail parsing, happens-before
// reconstruction, quorum-wait windows, critical paths, decision provenance,
// reader fuzz (truncated / garbage / hostile inputs must fail cleanly, never
// crash or over-allocate), and the JSONL-vs-binary identity of everything
// the graph derives. Also pins the service-run latency attribution:
// components sum exactly to the client latency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "obs/causal.h"
#include "obs/trace_export.h"
#include "service/service_runner.h"
#include "sim/trace.h"

namespace hyco {
namespace {

// ---- detail parsing ---------------------------------------------------------

TraceRecord rec(TraceKind kind, std::string detail, ProcId proc = 0,
                SimTime at = 0, std::uint64_t mid = 0,
                std::uint64_t parent = 0) {
  TraceRecord r;
  r.at = at;
  r.kind = kind;
  r.proc = proc;
  r.mid = mid;
  r.parent = parent;
  r.detail = std::move(detail);
  return r;
}

TEST(RecordInfo, ParsesPhaseMessageSends) {
  const obs::RecordInfo i = obs::parse_record_detail(
      rec(TraceKind::Send, "PHASE(r=2,ph1,est=1) -> p5"));
  EXPECT_TRUE(i.is_phase_msg);
  EXPECT_FALSE(i.is_decide_msg);
  EXPECT_EQ(i.round, 2);
  EXPECT_EQ(i.phase, 1);
  EXPECT_EQ(i.est, 1);
  EXPECT_EQ(i.peer, 5);
}

TEST(RecordInfo, ParsesPhaseDeliveriesAndBotEstimates) {
  const obs::RecordInfo i = obs::parse_record_detail(
      rec(TraceKind::Deliver, "PHASE(r=7,ph2,est=bot) from p3"));
  EXPECT_TRUE(i.is_phase_msg);
  EXPECT_EQ(i.round, 7);
  EXPECT_EQ(i.phase, 2);
  EXPECT_EQ(i.est, -1);
  EXPECT_EQ(i.peer, 3);
}

TEST(RecordInfo, ParsesDecideMessagesAndMilestones) {
  const obs::RecordInfo d = obs::parse_record_detail(
      rec(TraceKind::Send, "DECIDE(1) -> p3"));
  EXPECT_TRUE(d.is_decide_msg);
  EXPECT_EQ(d.est, 1);
  EXPECT_EQ(d.peer, 3);

  const obs::RecordInfo m = obs::parse_record_detail(
      rec(TraceKind::PhaseStart, "r=4 ph=2"));
  EXPECT_EQ(m.round, 4);
  EXPECT_EQ(m.phase, 2);

  const obs::RecordInfo n =
      obs::parse_record_detail(rec(TraceKind::Note, "free text"));
  EXPECT_FALSE(n.is_phase_msg);
  EXPECT_EQ(n.round, -1);
  EXPECT_EQ(n.peer, -1);
}

// ---- hand-built graph edges -------------------------------------------------

TEST(CausalGraph, LinksSendsToConsumersAndParents) {
  // p0 sends (mid 5) -> p1 delivers it and, under that context, sends
  // (mid 9) -> p0 delivers that and decides.
  std::vector<TraceRecord> rs;
  rs.push_back(rec(TraceKind::Send, "PHASE(r=1,ph1,est=0) -> p1", 0, 10, 5));
  rs.push_back(
      rec(TraceKind::Deliver, "PHASE(r=1,ph1,est=0) from p0", 1, 20, 5));
  rs.push_back(
      rec(TraceKind::Send, "PHASE(r=1,ph2,est=0) -> p0", 1, 20, 9, 5));
  rs.push_back(
      rec(TraceKind::Deliver, "PHASE(r=1,ph2,est=0) from p1", 0, 30, 9));
  rs.push_back(rec(TraceKind::Decide, "r=1", 0, 30, 0, 9));

  const obs::CausalGraph g = obs::CausalGraph::build({}, rs);
  EXPECT_EQ(g.send_of(5), 0u);
  EXPECT_EQ(g.consume_of(5), 1u);
  EXPECT_EQ(g.send_of(9), 2u);
  EXPECT_EQ(g.consume_of(9), 3u);
  EXPECT_EQ(g.send_of(1234), obs::CausalGraph::npos);

  // The Send under p1's delivery context chains to that delivery.
  const std::vector<std::size_t> c2 = g.causes(2);
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0], 1u);
  // The decide's slice reaches all the way back to the first send.
  const std::vector<std::size_t> slice = g.backward_slice(4);
  EXPECT_EQ(slice, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  // Critical path alternates Decide <- Deliver <- Send <- Deliver <- Send.
  const std::vector<std::size_t> path = g.critical_path(4);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 2, 3, 4}));

  const std::vector<std::size_t> dec = g.decides();
  ASSERT_EQ(dec.size(), 1u);
  const obs::CausalGraph::Provenance prov = g.provenance(dec[0]);
  EXPECT_EQ(prov.proc, 0);
  EXPECT_EQ(prov.support, (std::vector<std::size_t>{1, 3}));
  ASSERT_EQ(prov.phase1_senders.size(), 1u);
  EXPECT_EQ(prov.phase1_senders[0], 0);
  EXPECT_TRUE(prov.est_consistent);
}

// ---- reader fuzz ------------------------------------------------------------

TEST(TraceReaderFuzz, JsonlRejectsHostileInputsWithoutCrashing) {
  obs::TraceMeta meta;
  std::vector<TraceRecord> records;
  const char* bad[] = {
      "",
      "\n",
      "not json at all",
      "{\"schema\":\"hyco-trace/1\",\"cell\":0}",   // old schema version
      "{\"schema\":\"hyco-trace/2\"}",              // missing fields
      "{\"schema\":\"hyco-trace/2\",\"cell\":0,\"run\":0,\"seed\":0,"
      "\"label\":\"x\",\"recorded\":1,\"truncated\":maybe}",
      "{\"schema\":\"hyco-trace/2\",\"cell\":0,\"run\":0,\"seed\":0,"
      "\"label\":\"x\",\"recorded\":1,\"truncated\":false}\n"
      "{\"at\":5,\"kind\":\"frobnicate\",\"proc\":0,\"mid\":0,"
      "\"parent\":0,\"detail\":\"\"}",              // unknown kind
      "{\"schema\":\"hyco-trace/2\",\"cell\":0,\"run\":0,\"seed\":0,"
      "\"label\":\"x\",\"recorded\":1,\"truncated\":false}\n"
      "{\"at\":5,\"kind\":\"send\"",                // cut mid-record
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_FALSE(obs::read_trace_jsonl(in, meta, records))
        << "accepted: " << text;
  }
}

TEST(TraceReaderFuzz, BinaryRejectsHostileInputsWithoutCrashing) {
  obs::TraceMeta meta;
  std::vector<TraceRecord> records;

  const auto reject = [&](std::string bytes, const char* why) {
    std::istringstream in(std::move(bytes));
    EXPECT_FALSE(obs::read_trace_binary(in, meta, records)) << why;
  };

  reject("", "empty stream");
  reject("HYT", "cut magic");
  reject("HYTRCB1\n", "old magic version");
  reject("HYTRCB2\n", "magic only, no header");
  reject(std::string("HYTRCB2\n") + std::string(20, '\xff'),
         "garbage header");

  // A valid stream, then every truncation of it must fail cleanly.
  Trace t(8);
  t.enable(true);
  t.record(5, TraceKind::Send, 1, "PHASE(r=1,ph1,est=0) -> p2", 3);
  t.record(9, TraceKind::Deliver, 2, "PHASE(r=1,ph1,est=0) from p1", 3);
  std::ostringstream full(std::ios::out | std::ios::binary);
  obs::write_trace_binary(full, {}, t);
  const std::string good = full.str();
  {
    std::istringstream in(good);
    ASSERT_TRUE(obs::read_trace_binary(in, meta, records));
    ASSERT_EQ(records.size(), 2u);
  }
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    reject(good.substr(0, cut), "truncated stream");
  }

  // Corrupt interior bytes: a hostile kind byte or truncated flag must be
  // rejected, and a hostile record count must not over-allocate.
  for (std::size_t i = 8; i < good.size(); ++i) {
    std::string mutated = good;
    mutated[i] = '\xee';
    std::istringstream in(mutated);
    obs::TraceMeta m2;
    std::vector<TraceRecord> r2;
    (void)obs::read_trace_binary(in, m2, r2);  // must not crash
  }
}

// ---- real-run forensics: jsonl and binary feed the graph identically --------

RunConfig traced_config(Trace* sink) {
  RunConfig cfg(ClusterLayout::even(5, 2));
  cfg.seed = 77;
  cfg.enable_trace = true;
  cfg.trace_sink = sink;
  return cfg;
}

std::string provenance_digest(const obs::CausalGraph& g) {
  std::ostringstream os;
  for (const std::size_t d : g.decides()) {
    const obs::CausalGraph::Provenance p = g.provenance(d);
    os << 'p' << p.proc << " r" << p.round << " at" << p.at << " slice"
       << p.slice.size() << " support" << p.support.size() << " senders";
    for (const ProcId s : p.phase1_senders) os << ' ' << s;
    os << " est" << (p.decided_est ? *p.decided_est : -9) << " ok"
       << p.est_consistent << '\n';
    for (const std::size_t i : g.critical_path(d)) os << i << ',';
    os << '\n';
  }
  return os.str();
}

TEST(CausalGraph, RealRunProvenanceIdenticalAcrossFormats) {
  Trace trace(1 << 16);
  const RunResult r = run_consensus(traced_config(&trace));
  ASSERT_TRUE(r.success());
  ASSERT_GT(trace.size(), 0u);

  std::stringstream js;
  obs::write_trace_jsonl(js, {}, trace);
  std::stringstream bs(std::ios::in | std::ios::out | std::ios::binary);
  obs::write_trace_binary(bs, {}, trace);

  obs::TraceMeta jm, bm;
  std::vector<TraceRecord> jr, br;
  ASSERT_TRUE(obs::read_trace_jsonl(js, jm, jr));
  ASSERT_TRUE(obs::read_trace_binary(bs, bm, br));
  ASSERT_EQ(jr.size(), br.size());

  const obs::CausalGraph jg = obs::CausalGraph::build(jm, jr);
  const obs::CausalGraph bg = obs::CausalGraph::build(bm, br);
  ASSERT_FALSE(jg.decides().empty());
  EXPECT_EQ(provenance_digest(jg), provenance_digest(bg));
}

TEST(CausalGraph, RealRunDecidesHaveConsistentSupportedProvenance) {
  Trace trace(1 << 16);
  const RunResult r = run_consensus(traced_config(&trace));
  ASSERT_TRUE(r.success());

  std::stringstream ss;
  obs::write_trace_jsonl(ss, {}, trace);
  obs::TraceMeta meta;
  std::vector<TraceRecord> records;
  ASSERT_TRUE(obs::read_trace_jsonl(ss, meta, records));
  const obs::CausalGraph g = obs::CausalGraph::build(meta, records);

  const std::vector<std::size_t> decides = g.decides();
  ASSERT_EQ(decides.size(), 5u);  // every process decides
  std::set<int> values;
  // The earliest decide rests on its own quorum, so its slice must carry
  // the phase-1 support of the deciding round. (Later decides may be
  // DECIDE-assisted at an earlier local round, where the slice holds the
  // assister's history instead.)
  EXPECT_FALSE(g.provenance(decides.front()).phase1_senders.empty());
  for (const std::size_t d : decides) {
    const obs::CausalGraph::Provenance p = g.provenance(d);
    EXPECT_EQ(p.decide_index, d);
    EXPECT_GE(p.proc, 0);
    // A decision rests on messages it actually consumed.
    EXPECT_FALSE(p.slice.empty());
    EXPECT_FALSE(p.support.empty());
    ASSERT_TRUE(p.decided_est.has_value());
    EXPECT_TRUE(p.est_consistent);
    values.insert(*p.decided_est);
    // The critical path ends at the decide and is causally ordered.
    const std::vector<std::size_t> path = g.critical_path(d);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), d);
    for (std::size_t k = 1; k < path.size(); ++k) {
      EXPECT_LE(records[path[k - 1]].at, records[path[k]].at);
    }
  }
  // Agreement, recovered purely from the trace.
  EXPECT_EQ(values.size(), 1u);
}

TEST(CausalGraph, RealRunQuorumWaitsAreSatisfiedAndOrdered) {
  Trace trace(1 << 16);
  const RunResult r = run_consensus(traced_config(&trace));
  ASSERT_TRUE(r.success());

  std::stringstream ss;
  obs::write_trace_jsonl(ss, {}, trace);
  obs::TraceMeta meta;
  std::vector<TraceRecord> records;
  ASSERT_TRUE(obs::read_trace_jsonl(ss, meta, records));
  const obs::CausalGraph g = obs::CausalGraph::build(meta, records);

  const std::vector<obs::CausalGraph::QuorumWait> waits = g.quorum_waits();
  ASSERT_FALSE(waits.empty());
  std::uint64_t satisfied = 0;
  for (const auto& w : waits) {
    if (!w.satisfied) continue;
    ++satisfied;
    EXPECT_GE(w.quorum, w.begin);
    EXPECT_GE(w.last_arrival, 0);
    // The quorum never waits past the last arrival it counted.
    EXPECT_LE(w.arrivals_at_quorum, w.arrivals_total);
    EXPECT_GT(w.arrivals_at_quorum, 0u);
  }
  EXPECT_GT(satisfied, 0u);
}

// ---- service attribution ----------------------------------------------------

TEST(ServiceTrace, RecordsMilestonesAndDecomposesLatencyExactly) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.seed = 11;
  cfg.clients = 50;
  cfg.ops_per_client = 2;
  cfg.batch_max = 16;
  Trace trace(1 << 16);
  cfg.enable_trace = true;
  cfg.trace_sink = &trace;
  const ServiceRunResult r = run_service(cfg);
  ASSERT_TRUE(r.success());

  // The three components cover every completed op and sum exactly to the
  // total client latency (integer arithmetic, no estimation).
  EXPECT_EQ(r.batch_wait.count(), r.ops_completed);
  EXPECT_EQ(r.seq_wait.count(), r.ops_completed);
  EXPECT_EQ(r.consensus.count(), r.ops_completed);
  EXPECT_EQ(r.batch_wait.raw_sum() + r.seq_wait.raw_sum() +
                r.consensus.raw_sum(),
            r.latency.raw_sum());
  EXPECT_EQ(r.batch_wait_hist.total(), r.ops_completed);

  std::uint64_t ops = 0, flushes = 0, slots = 0, delivers = 0;
  trace.for_each([&](const TraceRecord& rec) {
    switch (rec.kind) {
      case TraceKind::SvcOp: ++ops; break;
      case TraceKind::SvcFlush: ++flushes; break;
      case TraceKind::SvcSlot: ++slots; break;
      case TraceKind::SvcDeliver: ++delivers; break;
      default: break;
    }
  });
  EXPECT_EQ(ops, r.ops_submitted);
  EXPECT_EQ(flushes, r.batches);
  EXPECT_GT(slots, 0u);
  EXPECT_GT(delivers, 0u);
}

TEST(ServiceTrace, TracedServiceRunMatchesUntracedResults) {
  ServiceRunConfig base(ClusterLayout::even(4, 2));
  base.seed = 21;
  base.clients = 40;
  base.batch_max = 8;
  const ServiceRunResult plain = run_service(base);

  ServiceRunConfig traced = base;
  Trace trace(1 << 16);
  traced.enable_trace = true;
  traced.trace_sink = &trace;
  const ServiceRunResult t = run_service(traced);

  // Tracing is strictly out of band: identical outcomes, byte for byte.
  EXPECT_EQ(plain.ops_completed, t.ops_completed);
  EXPECT_EQ(plain.batches, t.batches);
  EXPECT_EQ(plain.slots, t.slots);
  EXPECT_EQ(plain.end_time, t.end_time);
  EXPECT_EQ(plain.events, t.events);
  EXPECT_EQ(plain.latency.raw_sum(), t.latency.raw_sum());
  EXPECT_EQ(plain.slot_logs, t.slot_logs);
  EXPECT_GT(trace.recorded(), 0u);
}

}  // namespace
}  // namespace hyco
