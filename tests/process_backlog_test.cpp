// Edge cases of the round/phase message plumbing: heavily reordered
// deliveries, processes running many rounds ahead of a laggard, DECIDE
// arriving before any phase message, and messages for long-past phases.
// These paths are where round-based algorithm implementations classically
// go wrong; the scenarios force them deterministically.
#include <gtest/gtest.h>

#include <memory>

#include "core/runner.h"

namespace hyco {
namespace {

TEST(Backlog, OneProcessLagsManyRounds) {
  // All traffic TO p0 is delayed 400x: the rest of the system runs ahead
  // through many rounds; p0 must replay its backlog and terminate with the
  // same value.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RunConfig cfg(ClusterLayout::singletons(5));
    cfg.alg = Algorithm::HybridLocalCoin;
    cfg.inputs = split_inputs(5);
    cfg.seed = seed;
    cfg.delay_factory = [] {
      return std::make_unique<AdversarialDelay>(
          [](ProcId, ProcId to, const Message&, SimTime, Rng& rng) {
            const SimTime base = rng.uniform(5, 30);
            return to == 0 ? base * 400 : base;
          });
    };
    const auto r = run_consensus(cfg);
    ASSERT_TRUE(r.success()) << "seed " << seed;
  }
}

TEST(Backlog, ExtremeReorderingAcrossPhases) {
  // Per-message delays spanning three orders of magnitude: phase-2 traffic
  // of round r regularly overtakes phase-1 traffic of round r.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
    cfg.alg = Algorithm::HybridLocalCoin;
    cfg.inputs = split_inputs(7);
    cfg.seed = seed;
    cfg.delay_factory = [] {
      return std::make_unique<AdversarialDelay>(
          [](ProcId, ProcId, const Message&, SimTime, Rng& rng) {
            return rng.bernoulli(0.3) ? rng.uniform(1, 10)
                                      : rng.uniform(500, 5000);
          });
    };
    const auto r = run_consensus(cfg);
    ASSERT_TRUE(r.success()) << "seed " << seed;
  }
}

TEST(Backlog, DecideCanArriveBeforeAnyPhaseMessage) {
  // p6 gets all PHASE traffic delayed enormously but DECIDE gossip fast:
  // it must short-circuit to the decision without processing any round.
  RunConfig cfg(ClusterLayout::from_sizes({3, 3, 1}));
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.inputs = uniform_inputs(7, Estimate::One);
  cfg.seed = 3;
  cfg.delay_factory = [] {
    return std::make_unique<AdversarialDelay>(
        [](ProcId, ProcId to, const Message& m, SimTime, Rng& rng) {
          const SimTime base = rng.uniform(5, 30);
          if (to == 6 && m.kind == MsgKind::Phase) return base + 1'000'000;
          return base;
        });
  };
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decisions[6], Estimate::One);
  // p6 decided via gossip in whatever round it was stuck in (round 1).
  EXPECT_EQ(r.decision_rounds[6], 1);
}

TEST(Backlog, CommonCoinLaggardConvergesAcrossManyRounds) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RunConfig cfg(ClusterLayout::even(8, 4));
    cfg.alg = Algorithm::HybridCommonCoin;
    cfg.inputs = split_inputs(8);
    cfg.seed = seed;
    cfg.delay_factory = [] {
      return std::make_unique<AdversarialDelay>(
          [](ProcId from, ProcId, const Message&, SimTime, Rng& rng) {
            const SimTime base = rng.uniform(5, 30);
            return from == 7 ? base * 250 : base;
          });
    };
    const auto r = run_consensus(cfg);
    ASSERT_TRUE(r.success()) << "seed " << seed;
  }
}

TEST(Backlog, MaxRoundsParkingIsCleanNotCrash) {
  // Force non-termination structurally (no covering set) and verify parked
  // processes leave the run quiescent with bounded rounds.
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  cfg.seed = 4;
  cfg.max_rounds = 10;
  cfg.crashes = CrashPlan::none(7);
  // kill clusters 1 and 2 entirely: coverage 2 of 7 remains
  for (const ProcId p : {2, 3, 4, 5, 6}) {
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.safe());
  EXPECT_LE(r.max_round, 10);
  EXPECT_EQ(r.stop, StopReason::Quiescent);
}

TEST(Backlog, SelfDeliveryIsNotAssumedInstant) {
  // Self messages get the worst delay of all: algorithms must not rely on
  // hearing themselves first.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
    cfg.alg = Algorithm::HybridLocalCoin;
    cfg.inputs = split_inputs(7);
    cfg.seed = seed;
    cfg.delay_factory = [] {
      return std::make_unique<AdversarialDelay>(
          [](ProcId from, ProcId to, const Message&, SimTime, Rng& rng) {
            const SimTime base = rng.uniform(5, 30);
            return from == to ? base * 300 : base;
          });
    };
    const auto r = run_consensus(cfg);
    ASSERT_TRUE(r.success()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hyco
