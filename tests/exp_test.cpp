// Unit tests for the experiment engine (src/exp/): grid expansion,
// thread-count-independent execution, the streaming sink pipeline
// (streaming-vs-batch byte equivalence, bounded failure rings, checkpoint
// save/load/resume), report emission, and failure replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "exp/checkpoint.h"
#include "exp/executor.h"
#include "exp/replay.h"
#include "exp/report.h"
#include "util/assert.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "exp-test";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(4, 2), ClusterLayout::even(6, 3)};
  spec.runs_per_cell = 4;
  spec.base_seed = 42;
  return spec;
}

TEST(ExperimentSpec, ExpandCoversCrossProductWithoutDuplicates) {
  ExperimentSpec spec = small_spec();
  spec.delays = {DelayAxis::of("d1", DelayConfig::uniform(50, 150)),
                 DelayAxis::of("d2", DelayConfig::constant_of(100))};
  spec.crashes = {CrashAxis::none(),
                  CrashAxis::of("minority", [](const ClusterLayout& l) {
                    Rng rng(7);
                    return failure_patterns::random_minority(l, rng, 300).plan;
                  })};
  spec.coin_epsilons = {0.0, 0.25};

  const auto cells = spec.expand();
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 2u * 2u * 2u);
  ASSERT_EQ(cells.size(), spec.cell_count());

  std::set<std::tuple<int, ProcId, ClusterId, std::string, std::string, double>>
      seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);  // index matches expansion position
    seen.insert({static_cast<int>(cells[i].alg), cells[i].layout.n(),
                 cells[i].layout.m(), cells[i].delay.name,
                 cells[i].crash.name, cells[i].coin_epsilon});
  }
  EXPECT_EQ(seen.size(), cells.size());  // no duplicate combination
}

TEST(ExperimentSpec, ExpandRejectsEmptyAxes) {
  ExperimentSpec spec = small_spec();
  spec.algorithms.clear();
  EXPECT_THROW(spec.expand(), ContractViolation);

  spec = small_spec();
  spec.layouts.clear();
  EXPECT_THROW(spec.expand(), ContractViolation);

  spec = small_spec();
  spec.runs_per_cell = 0;
  EXPECT_THROW(spec.expand(), ContractViolation);
}

TEST(ExperimentSpec, TotalRunsIsOverflowChecked) {
  ExperimentSpec spec = small_spec();
  EXPECT_EQ(spec.total_runs(), spec.cell_count() * 4u);
  spec.runs_per_cell = std::uint64_t{1} << 62;
  EXPECT_THROW((void)spec.total_runs(), ContractViolation);
}

TEST(ExperimentCell, SeedsAreDeterministicAndDistinct) {
  const auto cells = small_spec().expand();
  std::set<std::uint64_t> seeds;
  for (const auto& c : cells) {
    for (std::uint64_t k = 0; k < c.runs; ++k) {
      EXPECT_EQ(c.seed_for(k), c.seed_for(k));
      seeds.insert(c.seed_for(k));
    }
  }
  // 4 cells x 4 runs, all distinct.
  EXPECT_EQ(seeds.size(), cells.size() * 4u);
}

TEST(ExperimentCell, SeedsStayDistinctBeyond32Bits) {
  // Run indices above 2^32 must not alias low indices (the multi-million
  // run grids of the streaming pipeline live in 64-bit index space).
  ExperimentCell cell(ClusterLayout::even(4, 2));
  cell.runs = std::uint64_t{1} << 40;
  const std::uint64_t hi = (std::uint64_t{1} << 33) + 17;
  EXPECT_NE(cell.seed_for(hi), cell.seed_for(17));
  EXPECT_NE(cell.seed_for(hi), cell.seed_for(hi - 1));
}

TEST(ExperimentCell, RunConfigReflectsAxes) {
  ExperimentSpec spec = small_spec();
  spec.coin_epsilons = {0.25};
  spec.max_rounds = 77;
  const auto cells = spec.expand();
  const RunConfig cfg = cells.front().run_config(1);
  EXPECT_EQ(cfg.alg, Algorithm::HybridLocalCoin);
  EXPECT_EQ(cfg.seed, cells.front().seed_for(1));
  EXPECT_EQ(cfg.max_rounds, 77);
  EXPECT_DOUBLE_EQ(cfg.coin_epsilon, 0.25);
  EXPECT_EQ(cfg.inputs.size(), static_cast<std::size_t>(cfg.layout.n()));
  EXPECT_THROW(cells.front().run_config(99), ContractViolation);
}

std::string render_artifacts(const std::string& name,
                             const std::vector<CellResult>& results) {
  std::ostringstream csv, json;
  write_cell_csv(csv, results);
  write_cell_json(json, name, results);
  return csv.str() + "\n---\n" + json.str();
}

std::string run_to_json(const ExperimentSpec& spec, unsigned threads) {
  ParallelExecutor::Options opts;
  opts.threads = threads;
  const auto results = ParallelExecutor(opts).run(spec);
  std::ostringstream os;
  write_cell_json(os, spec.name, results);
  return os.str();
}

TEST(ParallelExecutor, RejectsNegativeThreadCount) {
  ParallelExecutor::Options opts;
  opts.threads = -1;
  EXPECT_THROW((void)ParallelExecutor(opts).worker_count(4),
               ContractViolation);
}

TEST(ParallelExecutor, JsonIsByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = small_spec();
  const std::string one = run_to_json(spec, 1);
  const std::string eight = run_to_json(spec, 8);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find("\"experiment\":\"exp-test\""), std::string::npos);
}

TEST(ParallelExecutor, AggregatesEveryRun) {
  const ExperimentSpec spec = small_spec();
  const auto results = ParallelExecutor().run(spec);
  ASSERT_EQ(results.size(), spec.cell_count());
  for (const auto& r : results) {
    EXPECT_EQ(r.runs(), spec.runs_per_cell);
    EXPECT_EQ(r.terminated(), spec.runs_per_cell);  // no crashes => all decide
    EXPECT_EQ(r.violations(), 0u);
    EXPECT_TRUE(r.failures().empty());
    EXPECT_EQ(r.rounds().count(), r.terminated());
    EXPECT_EQ(r.round_hist().total(), r.terminated());
    EXPECT_DOUBLE_EQ(r.termination_rate(), 1.0);
    // Batch mode retains the raw records in run order.
    ASSERT_EQ(r.records.size(), static_cast<std::size_t>(r.runs()));
    for (std::size_t k = 0; k < r.records.size(); ++k) {
      EXPECT_EQ(r.records[k].run, k);
      EXPECT_EQ(r.records[k].seed, r.cell.seed_for(k));
    }
  }
}

TEST(ParallelExecutor, HeterogeneousRunCountsPerCell) {
  auto cells = small_spec().expand();
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].runs = 2 + i;
  const auto results = ParallelExecutor().run(cells);
  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].runs(), 2u + i);
  }
}

TEST(ParallelExecutor, CsvHasOneRowPerCell) {
  const ExperimentSpec spec = small_spec();
  const auto results = ParallelExecutor().run(spec);
  std::ostringstream os;
  write_cell_csv(os, results);
  std::size_t lines = 0;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, results.size() + 1);  // header + cells
}

// ---- streaming pipeline ----------------------------------------------------

/// A grid with both success and failure cells (covering-dead blocks every
/// run) so streaming equivalence covers the failure ring too.
ExperimentSpec mixed_spec() {
  ExperimentSpec spec;
  spec.name = "stream-test";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(4, 2), ClusterLayout::even(6, 3)};
  spec.crashes = {CrashAxis::none(),
                  CrashAxis::of("covering-dead", [](const ClusterLayout& l) {
                    Rng rng(3);
                    return failure_patterns::kill_covering_set(l, rng, 0).plan;
                  })};
  spec.runs_per_cell = 6;
  spec.max_rounds = 60;
  spec.base_seed = 0xBEE;
  return spec;
}

std::string run_with_sink(const ExperimentSpec& spec, std::int64_t threads,
                          bool retain_records, std::uint64_t chunk_size) {
  ParallelExecutor::Options opts;
  opts.threads = threads;
  opts.chunk_size = chunk_size;
  const auto cells = spec.expand();
  CollectingSink::Options sink_opts;
  sink_opts.retain_records = retain_records;
  CollectingSink sink(cells, std::move(sink_opts));
  ParallelExecutor(opts).run(cells, sink);
  return render_artifacts(spec.name, sink.take_results());
}

TEST(StreamingPipeline, StreamingMatchesBatchByteForByteAtAnyThreadCount) {
  const ExperimentSpec spec = mixed_spec();
  const std::string batch_1 = run_with_sink(spec, 1, true, 2);
  const std::string batch_8 = run_with_sink(spec, 8, true, 2);
  const std::string stream_1 = run_with_sink(spec, 1, false, 2);
  const std::string stream_8 = run_with_sink(spec, 8, false, 2);
  const std::string stream_big_chunks = run_with_sink(spec, 8, false, 1024);
  EXPECT_EQ(batch_1, batch_8);
  EXPECT_EQ(batch_1, stream_1);
  EXPECT_EQ(batch_1, stream_8);
  // Chunking only changes merge grouping, which the accumulators are
  // invariant to.
  EXPECT_EQ(batch_1, stream_big_chunks);
}

TEST(StreamingPipeline, StreamingSinkRetainsNoRecords) {
  const ExperimentSpec spec = mixed_spec();
  const auto cells = spec.expand();
  CollectingSink sink(cells, {});
  ParallelExecutor().run(cells, sink);
  for (const auto& r : sink.take_results()) {
    EXPECT_TRUE(r.records.empty());
    // ... but the failure ring still names the failing seeds.
    if (r.terminated() < r.runs()) EXPECT_FALSE(r.failures().empty());
  }
}

TEST(StreamingPipeline, FailureRingKeepsLowestRunsAndRecordCapApplies) {
  ExperimentSpec spec = mixed_spec();
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.crashes = {CrashAxis::of("covering-dead", [](const ClusterLayout& l) {
    Rng rng(3);
    return failure_patterns::kill_covering_set(l, rng, 0).plan;
  })};
  spec.runs_per_cell = 9;
  const auto cells = spec.expand();

  ParallelExecutor::Options opts;
  opts.threads = 4;
  opts.chunk_size = 2;
  opts.failure_capacity = 3;
  CollectingSink::Options sink_opts;
  sink_opts.retain_records = true;
  sink_opts.max_records_per_cell = 4;
  CollectingSink sink(cells, std::move(sink_opts));
  ParallelExecutor(opts).run(cells, sink);
  const auto results = sink.take_results();
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_EQ(r.terminated(), 0u);  // covering set dead => every run fails
  ASSERT_EQ(r.failures().size(), 3u);  // capped, lowest runs win, sorted
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(r.failures()[i].run, i);
  ASSERT_EQ(r.records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r.records[i].run, i);
}

TEST(StreamingPipeline, CellCompletionFiresOncePerCell) {
  const ExperimentSpec spec = mixed_spec();
  const auto cells = spec.expand();
  std::mutex mu;
  std::map<std::size_t, int> completions;
  CollectingSink::Options sink_opts;
  sink_opts.on_complete = [&](const ExperimentCell& cell,
                              const CellAccumulator& acc) {
    const std::lock_guard<std::mutex> lock(mu);
    ++completions[cell.index];
    EXPECT_EQ(acc.runs, cell.runs);
  };
  CollectingSink sink(cells, std::move(sink_opts));
  ParallelExecutor::Options opts;
  opts.threads = 4;
  opts.chunk_size = 2;
  ParallelExecutor(opts).run(cells, sink);
  ASSERT_EQ(completions.size(), cells.size());
  for (const auto& [idx, count] : completions) EXPECT_EQ(count, 1);
}

// ---- checkpoint / resume ---------------------------------------------------

TEST(Checkpoint, RoundTripsCellStateExactly) {
  const ExperimentSpec spec = mixed_spec();
  const auto cells = spec.expand();
  const auto results = ParallelExecutor().run(cells);
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir, CellAccumulator::kDefaultFailureCap);

  std::stringstream file;
  write_checkpoint_header(file, fp);
  for (const auto& r : results) {
    append_checkpoint_cell(file, r.cell.index, r.acc);
  }

  const auto loaded = load_checkpoint(file, fp);
  ASSERT_EQ(loaded.size(), results.size());
  std::vector<CellResult> rebuilt;
  for (const auto& c : cells) rebuilt.emplace_back(c, loaded.at(c.index));
  EXPECT_EQ(render_artifacts(spec.name, results),
            render_artifacts(spec.name, rebuilt));
}

TEST(Checkpoint, RefusesDifferentGridAndToleratesTruncation) {
  const ExperimentSpec spec = mixed_spec();
  const auto cells = spec.expand();
  const auto results = ParallelExecutor().run(cells);
  const std::uint64_t fp = grid_fingerprint(cells, 1024, 64);

  std::stringstream file;
  write_checkpoint_header(file, fp);
  append_checkpoint_cell(file, results[0].cell.index, results[0].acc);
  append_checkpoint_cell(file, results[1].cell.index, results[1].acc);
  std::string text = file.str();

  // Fingerprint mismatch refuses outright.
  std::istringstream wrong(text);
  EXPECT_THROW((void)load_checkpoint(wrong, fp + 1), ContractViolation);

  // A truncated trailing block (kill mid-append) is dropped silently.
  std::istringstream cut(text.substr(0, text.size() - 40));
  const auto partial = load_checkpoint(cut, fp);
  EXPECT_EQ(partial.size(), 1u);
  EXPECT_TRUE(partial.count(results[0].cell.index));

  // A partial block *followed by* complete blocks (kill mid-append, then a
  // resumed session appends more) must cost only the partial cell. The cut
  // lands after whole lines, so the loader is mid-block when it reads the
  // next block's "cell" header — it must resync on that line, not swallow
  // the complete block that follows it.
  std::ostringstream spliced;
  write_checkpoint_header(spliced, fp);
  const std::string block0 = text.substr(
      text.find("cell "), text.find("done ") - text.find("cell "));
  std::size_t third_newline = 0;
  for (int i = 0; i < 3; ++i) third_newline = block0.find('\n', third_newline) + 1;
  spliced << block0.substr(0, third_newline);  // header + first metric pair
  append_checkpoint_cell(spliced, results[1].cell.index, results[1].acc);
  append_checkpoint_cell(spliced, results[2].cell.index, results[2].acc);
  std::istringstream spliced_in(spliced.str());
  const auto recovered = load_checkpoint(spliced_in, fp);
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_TRUE(recovered.count(results[1].cell.index));
  EXPECT_TRUE(recovered.count(results[2].cell.index));
}

TEST(Checkpoint, ResumedRunMatchesUninterruptedByteForByte) {
  const ExperimentSpec spec = mixed_spec();
  const auto cells = spec.expand();
  const std::uint64_t fp = grid_fingerprint(
      cells, MetricStats::kDefaultReservoir, CellAccumulator::kDefaultFailureCap);

  // Uninterrupted reference.
  const std::string reference =
      render_artifacts(spec.name, ParallelExecutor().run(cells));

  // "Interrupted" run: execute only the first half of the cells,
  // checkpointing each as it completes.
  std::stringstream file;
  write_checkpoint_header(file, fp);
  {
    std::vector<ExperimentCell> first_half(cells.begin(),
                                           cells.begin() + cells.size() / 2);
    std::mutex mu;
    CollectingSink::Options sink_opts;
    sink_opts.on_complete = [&](const ExperimentCell& cell,
                                const CellAccumulator& acc) {
      const std::lock_guard<std::mutex> lock(mu);
      append_checkpoint_cell(file, cell.index, acc);
    };
    CollectingSink sink(first_half, std::move(sink_opts));
    ParallelExecutor::Options opts;
    opts.threads = 4;
    ParallelExecutor(opts).run(first_half, sink);
  }

  // Resume: load, run only what's missing, merge, emit.
  const auto resumed = load_checkpoint(file, fp);
  ASSERT_EQ(resumed.size(), cells.size() / 2);
  std::vector<ExperimentCell> todo;
  for (const auto& c : cells) {
    if (resumed.find(c.index) == resumed.end()) todo.push_back(c);
  }
  CollectingSink sink(todo, {});
  ParallelExecutor().run(todo, sink);
  std::vector<CellResult> all;
  for (const auto& [index, acc] : resumed) all.emplace_back(cells[index], acc);
  for (auto& r : sink.take_results()) all.push_back(std::move(r));
  std::sort(all.begin(), all.end(), [](const CellResult& a, const CellResult& b) {
    return a.cell.index < b.cell.index;
  });
  EXPECT_EQ(render_artifacts(spec.name, all), reference);
}

// ---- replay ----------------------------------------------------------------

TEST(Replay, ReproducesFailingSeedsWithTraces) {
  ExperimentSpec spec;
  spec.name = "replay-test";
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.crashes = {CrashAxis::of("covering-dead", [](const ClusterLayout& l) {
    Rng rng(3);
    return failure_patterns::kill_covering_set(l, rng, 0).plan;
  })};
  spec.runs_per_cell = 3;
  spec.max_rounds = 50;

  const auto results = ParallelExecutor().run(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].terminated(), 0u);  // covering set dead => blocked
  ASSERT_EQ(results[0].failures().size(), 3u);

  const auto reports = replay_failures(results, 2);
  ASSERT_EQ(reports.size(), 2u);  // capped
  for (const auto& rep : reports) {
    EXPECT_FALSE(rep.terminated);
    EXPECT_TRUE(rep.safe_ok);  // indulgence: blocked but safe
    EXPECT_FALSE(rep.trace.empty());
    EXPECT_EQ(rep.seed, results[0].cell.seed_for(rep.run));
  }
  std::ostringstream os;
  dump_replays(os, reports);
  EXPECT_NE(os.str().find("=== replay: cell 0"), std::string::npos);
}

TEST(Report, JsonEscapesAndFormatsNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(format_number(2.5), "2.5");
  EXPECT_EQ(format_number(3.0), "3");
}

TEST(Report, ShardedCsvConcatenatesToUnsharded) {
  const ExperimentSpec spec = small_spec();
  const auto results = ParallelExecutor().run(spec);
  std::ostringstream whole;
  write_cell_csv(whole, results);

  const std::string prefix =
      ::testing::TempDir() + "exp_test_shard_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
      ".csv";
  const auto shards = write_cell_csv_sharded(prefix, results, 3);
  ASSERT_EQ(shards.size(), (results.size() + 2) / 3);

  std::string glued;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    std::ifstream in(shards[s]);
    ASSERT_TRUE(in.good()) << shards[s];
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      if (first && s > 0) {
        first = false;
        continue;  // repeated header
      }
      first = false;
      glued += line + "\n";
    }
    std::remove(shards[s].c_str());
  }
  EXPECT_EQ(glued, whole.str());
}

}  // namespace
}  // namespace hyco
