// Unit tests for the experiment engine (src/exp/): grid expansion,
// thread-count-independent execution, report emission, and failure replay.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "exp/executor.h"
#include "exp/replay.h"
#include "exp/report.h"
#include "util/assert.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "exp-test";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(4, 2), ClusterLayout::even(6, 3)};
  spec.runs_per_cell = 4;
  spec.base_seed = 42;
  return spec;
}

TEST(ExperimentSpec, ExpandCoversCrossProductWithoutDuplicates) {
  ExperimentSpec spec = small_spec();
  spec.delays = {DelayAxis::of("d1", DelayConfig::uniform(50, 150)),
                 DelayAxis::of("d2", DelayConfig::constant_of(100))};
  spec.crashes = {CrashAxis::none(),
                  CrashAxis::of("minority", [](const ClusterLayout& l) {
                    Rng rng(7);
                    return failure_patterns::random_minority(l, rng, 300).plan;
                  })};
  spec.coin_epsilons = {0.0, 0.25};

  const auto cells = spec.expand();
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 2u * 2u * 2u);
  ASSERT_EQ(cells.size(), spec.cell_count());

  std::set<std::tuple<int, ProcId, ClusterId, std::string, std::string, double>>
      seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);  // index matches expansion position
    seen.insert({static_cast<int>(cells[i].alg), cells[i].layout.n(),
                 cells[i].layout.m(), cells[i].delay.name,
                 cells[i].crash.name, cells[i].coin_epsilon});
  }
  EXPECT_EQ(seen.size(), cells.size());  // no duplicate combination
}

TEST(ExperimentSpec, ExpandRejectsEmptyAxes) {
  ExperimentSpec spec = small_spec();
  spec.algorithms.clear();
  EXPECT_THROW(spec.expand(), ContractViolation);

  spec = small_spec();
  spec.layouts.clear();
  EXPECT_THROW(spec.expand(), ContractViolation);

  spec = small_spec();
  spec.runs_per_cell = 0;
  EXPECT_THROW(spec.expand(), ContractViolation);
}

TEST(ExperimentCell, SeedsAreDeterministicAndDistinct) {
  const auto cells = small_spec().expand();
  std::set<std::uint64_t> seeds;
  for (const auto& c : cells) {
    for (int k = 0; k < c.runs; ++k) {
      EXPECT_EQ(c.seed_for(k), c.seed_for(k));
      seeds.insert(c.seed_for(k));
    }
  }
  // 4 cells x 4 runs, all distinct.
  EXPECT_EQ(seeds.size(), cells.size() * 4u);
}

TEST(ExperimentCell, RunConfigReflectsAxes) {
  ExperimentSpec spec = small_spec();
  spec.coin_epsilons = {0.25};
  spec.max_rounds = 77;
  const auto cells = spec.expand();
  const RunConfig cfg = cells.front().run_config(1);
  EXPECT_EQ(cfg.alg, Algorithm::HybridLocalCoin);
  EXPECT_EQ(cfg.seed, cells.front().seed_for(1));
  EXPECT_EQ(cfg.max_rounds, 77);
  EXPECT_DOUBLE_EQ(cfg.coin_epsilon, 0.25);
  EXPECT_EQ(cfg.inputs.size(), static_cast<std::size_t>(cfg.layout.n()));
  EXPECT_THROW(cells.front().run_config(99), ContractViolation);
}

std::string run_to_json(const ExperimentSpec& spec, unsigned threads) {
  ParallelExecutor::Options opts;
  opts.threads = threads;
  const auto results = ParallelExecutor(opts).run(spec);
  std::ostringstream os;
  write_cell_json(os, spec.name, results);
  return os.str();
}

TEST(ParallelExecutor, RejectsNegativeThreadCount) {
  ParallelExecutor::Options opts;
  opts.threads = -1;
  EXPECT_THROW((void)ParallelExecutor(opts).worker_count(4),
               ContractViolation);
}

TEST(ParallelExecutor, JsonIsByteIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = small_spec();
  const std::string one = run_to_json(spec, 1);
  const std::string eight = run_to_json(spec, 8);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find("\"experiment\":\"exp-test\""), std::string::npos);
}

TEST(ParallelExecutor, AggregatesEveryRun) {
  const ExperimentSpec spec = small_spec();
  const auto results = ParallelExecutor().run(spec);
  ASSERT_EQ(results.size(), spec.cell_count());
  for (const auto& r : results) {
    EXPECT_EQ(r.runs, spec.runs_per_cell);
    EXPECT_EQ(r.terminated, spec.runs_per_cell);  // no crashes => all decide
    EXPECT_EQ(r.violations, 0);
    EXPECT_TRUE(r.failures.empty());
    EXPECT_EQ(r.rounds.count(), static_cast<std::size_t>(r.terminated));
    EXPECT_EQ(r.round_hist.total(), static_cast<std::uint64_t>(r.terminated));
    EXPECT_DOUBLE_EQ(r.termination_rate(), 1.0);
  }
}

TEST(ParallelExecutor, CsvHasOneRowPerCell) {
  const ExperimentSpec spec = small_spec();
  const auto results = ParallelExecutor().run(spec);
  std::ostringstream os;
  write_cell_csv(os, results);
  std::size_t lines = 0;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, results.size() + 1);  // header + cells
}

TEST(Replay, ReproducesFailingSeedsWithTraces) {
  ExperimentSpec spec;
  spec.name = "replay-test";
  spec.algorithms = {Algorithm::HybridLocalCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.crashes = {CrashAxis::of("covering-dead", [](const ClusterLayout& l) {
    Rng rng(3);
    return failure_patterns::kill_covering_set(l, rng, 0).plan;
  })};
  spec.runs_per_cell = 3;
  spec.max_rounds = 50;

  const auto results = ParallelExecutor().run(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].terminated, 0);  // covering set dead => blocked
  ASSERT_EQ(results[0].failures.size(), 3u);

  const auto reports = replay_failures(results, 2);
  ASSERT_EQ(reports.size(), 2u);  // capped
  for (const auto& rep : reports) {
    EXPECT_FALSE(rep.terminated);
    EXPECT_TRUE(rep.safe_ok);  // indulgence: blocked but safe
    EXPECT_FALSE(rep.trace.empty());
    EXPECT_EQ(rep.seed, results[0].cell.seed_for(rep.run));
  }
  std::ostringstream os;
  dump_replays(os, reports);
  EXPECT_NE(os.str().find("=== replay: cell 0"), std::string::npos);
}

TEST(Report, JsonEscapesAndFormatsNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(format_number(2.5), "2.5");
  EXPECT_EQ(format_number(3.0), "3");
}

}  // namespace
}  // namespace hyco
