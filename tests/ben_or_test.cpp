// Tests of the pure message-passing Ben-Or baseline: correctness under
// minority crashes, the classic majority-crash blocking behavior, and
// safety across seeds.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

RunConfig base(ProcId n) {
  RunConfig cfg(ClusterLayout::singletons(n));
  cfg.alg = Algorithm::BenOr;
  return cfg;
}

TEST(BenOr, UnanimousOneRound) {
  auto cfg = base(5);
  cfg.inputs = uniform_inputs(5, Estimate::One);
  cfg.seed = 1;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decided_value, Estimate::One);
  EXPECT_EQ(r.max_decision_round, 1);
}

TEST(BenOr, MajorityInputUsuallyWins) {
  // 4 of 5 propose 0: phase 1 majorities see 0, decide 0 in round 1.
  auto cfg = base(5);
  cfg.inputs = {Estimate::Zero, Estimate::Zero, Estimate::Zero,
                Estimate::Zero, Estimate::One};
  cfg.seed = 2;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decided_value, Estimate::Zero);
}

TEST(BenOr, MinorityCrashStillTerminates) {
  const auto layout = ClusterLayout::singletons(7);
  Rng rng(3);
  const auto scenario = failure_patterns::random_minority(layout, rng, 400);
  ASSERT_TRUE(scenario.benor_should_terminate);
  auto cfg = base(7);
  cfg.crashes = scenario.plan;
  cfg.seed = 4;
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
}

TEST(BenOr, MajorityCrashBlocksButStaysSafe) {
  // 4 of 7 crash at t=0: the >n/2 wait can never be satisfied. The run must
  // quiesce without any decision (indulgence of the baseline too).
  auto cfg = base(7);
  cfg.crashes = CrashPlan::none(7);
  for (const ProcId p : {0, 1, 2, 3}) {
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  cfg.seed = 5;
  const auto r = run_consensus(cfg);
  EXPECT_FALSE(r.decided_value.has_value());
  EXPECT_FALSE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
  EXPECT_EQ(r.stop, StopReason::Quiescent);
}

TEST(BenOr, NeverUsesSharedMemory) {
  auto cfg = base(5);
  cfg.seed = 6;
  const auto r = run_consensus(cfg);
  EXPECT_EQ(r.shm.consensus_proposals, 0u);
  EXPECT_EQ(r.consensus_objects, 0u);
  for (const auto& ps : r.proc_stats) EXPECT_EQ(ps.cons_invocations, 0u);
}

// Safety sweep: no seed, input, or delay distribution may ever break
// agreement/validity.
class BenOrSafetySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenOrSafetySweep, SplitInputsAlwaysSafeAndLive) {
  auto cfg = base(6);
  cfg.inputs = split_inputs(6);
  cfg.seed = GetParam();
  cfg.delays = (GetParam() % 2 == 0) ? DelayConfig::uniform(1, 300)
                                     : DelayConfig::exponential(80.0);
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.success()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenOrSafetySweep,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace hyco
