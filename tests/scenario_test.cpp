// Adversarial scenario subsystem (src/scenario/): spec parsing, the
// FaultyChannel decorator, the partition schedule, crash-recovery, and the
// end-to-end properties the paper's model promises under each fault class —
// partition-then-heal liveness, loss/duplication safety (agreement is never
// violated even when reliability is), recovery rejoin, and thread-count
// determinism of a faulty grid.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/runner.h"
#include "exp/executor.h"
#include "exp/report.h"
#include "exp/spec.h"
#include "net/delay_model.h"
#include "scenario/engine.h"
#include "scenario/faulty_channel.h"
#include "scenario/partition.h"
#include "scenario/scenario.h"
#include "sim/crash.h"
#include "util/assert.h"

namespace hyco {
namespace {

// ---- parsing ---------------------------------------------------------------

TEST(ScenarioParse, SimTimeUnits) {
  EXPECT_EQ(parse_sim_time("100"), 100);
  EXPECT_EQ(parse_sim_time("100ns"), 100);
  EXPECT_EQ(parse_sim_time("20us"), 20'000);
  EXPECT_EQ(parse_sim_time("5ms"), 5'000'000);
  EXPECT_EQ(parse_sim_time("2s"), 2'000'000'000);
  EXPECT_EQ(parse_sim_time("1.5us"), 1'500);
  EXPECT_THROW(parse_sim_time(""), ContractViolation);
  EXPECT_THROW(parse_sim_time("ms"), ContractViolation);
  EXPECT_THROW(parse_sim_time("5min"), ContractViolation);
  EXPECT_THROW(parse_sim_time("-5ms"), ContractViolation);
  EXPECT_THROW(parse_sim_time("inf"), ContractViolation);
  EXPECT_THROW(parse_sim_time("1e30"), ContractViolation);
  EXPECT_THROW(parse_sim_time("1e15s"), ContractViolation);
}

TEST(ScenarioParse, PartitionSpec) {
  const PartitionSpec p = parse_partition_spec("cluster:0-1@5ms..20ms");
  EXPECT_EQ(p.kind, PartitionSpec::Kind::Clusters);
  EXPECT_EQ(p.ids, (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(p.start, 5'000'000);
  EXPECT_EQ(p.heal, 20'000'000);
  EXPECT_EQ(p.to_string(), "cluster:0-1@5000000..20000000");

  const PartitionSpec q = parse_partition_spec("procs:0-3-7@0..never");
  EXPECT_EQ(q.kind, PartitionSpec::Kind::Procs);
  EXPECT_EQ(q.ids, (std::vector<std::int32_t>{0, 3, 7}));
  EXPECT_EQ(q.heal, kSimTimeNever);

  const PartitionSpec s = parse_partition_spec("split:2@10..20");
  EXPECT_EQ(s.kind, PartitionSpec::Kind::SplitCluster);
  EXPECT_EQ(s.ids, (std::vector<std::int32_t>{2}));

  EXPECT_THROW(parse_partition_spec("cluster:0-1"), ContractViolation);
  EXPECT_THROW(parse_partition_spec("bogus:0@1..2"), ContractViolation);
  EXPECT_THROW(parse_partition_spec("cluster:@1..2"), ContractViolation);
  EXPECT_THROW(parse_partition_spec("split:0-1@1..2"), ContractViolation);
  EXPECT_THROW(parse_partition_spec("cluster:0@20..10"), ContractViolation);
}

TEST(ScenarioParse, FlappingPartitionSpec) {
  // Windowless flapping: the square wave runs from t=0 forever.
  const PartitionSpec p = parse_partition_spec("cluster:0:flap=2ms:period=4ms");
  EXPECT_TRUE(p.flapping());
  EXPECT_EQ(p.flap, 2'000'000);
  EXPECT_EQ(p.period, 4'000'000);
  EXPECT_EQ(p.start, 0);
  EXPECT_EQ(p.heal, kSimTimeNever);
  EXPECT_EQ(p.to_string(), "cluster:0:flap=2000000:period=4000000@0..never");
  // to_string round-trips through the parser.
  const PartitionSpec rt = parse_partition_spec(p.to_string());
  EXPECT_EQ(rt.flap, p.flap);
  EXPECT_EQ(rt.period, p.period);
  EXPECT_EQ(rt.heal, p.heal);

  // Flapping inside an explicit window.
  const PartitionSpec w =
      parse_partition_spec("split:1:flap=1ms:period=3ms@5ms..50ms");
  EXPECT_EQ(w.kind, PartitionSpec::Kind::SplitCluster);
  EXPECT_EQ(w.start, 5'000'000);
  EXPECT_EQ(w.heal, 50'000'000);

  // flap without period, period <= flap, unknown keys: rejected.
  EXPECT_THROW(parse_partition_spec("cluster:0:flap=2ms"), ContractViolation);
  EXPECT_THROW(parse_partition_spec("cluster:0:period=2ms"),
               ContractViolation);
  EXPECT_THROW(parse_partition_spec("cluster:0:flap=2ms:period=2ms"),
               ContractViolation);
  EXPECT_THROW(parse_partition_spec("cluster:0:blink=2ms:period=4ms"),
               ContractViolation);
}

TEST(ScenarioParse, RecoverySpec) {
  const RecoverySpec r = parse_recovery_spec("3@2ms..8ms");
  EXPECT_FALSE(r.whole_cluster);
  EXPECT_EQ(r.id, 3);
  EXPECT_EQ(r.down_at, 2'000'000);
  EXPECT_EQ(r.up_at, 8'000'000);

  const RecoverySpec c = parse_recovery_spec("cluster:1@100..never");
  EXPECT_TRUE(c.whole_cluster);
  EXPECT_EQ(c.id, 1);
  EXPECT_EQ(c.up_at, kSimTimeNever);

  EXPECT_THROW(parse_recovery_spec("3"), ContractViolation);
  EXPECT_THROW(parse_recovery_spec("3@8ms..2ms"), ContractViolation);
  EXPECT_THROW(parse_recovery_spec("node:3@1..2"), ContractViolation);
}

TEST(ScenarioParse, LabelAndEmpty) {
  ScenarioConfig scn;
  EXPECT_TRUE(scn.empty());
  EXPECT_EQ(scn.label(), "none");
  scn.link.loss = 0.05;
  scn.partitions.push_back(parse_partition_spec("cluster:0-1@100..200"));
  EXPECT_FALSE(scn.empty());
  EXPECT_EQ(scn.label(), "loss=0.05,part=cluster:0-1@100..200");
}

TEST(ScenarioParse, SkewSpec) {
  const SkewSpec p = parse_skew_spec("proc:3:x4");
  EXPECT_FALSE(p.whole_cluster);
  EXPECT_EQ(p.id, 3);
  EXPECT_DOUBLE_EQ(p.factor, 4.0);
  EXPECT_EQ(p.to_string(), "proc:3:x4");

  const SkewSpec c = parse_skew_spec("cluster:0:x2.5");
  EXPECT_TRUE(c.whole_cluster);
  EXPECT_EQ(c.id, 0);
  EXPECT_DOUBLE_EQ(c.factor, 2.5);

  const SkewSpec fast = parse_skew_spec("proc:1:x0.5");
  EXPECT_DOUBLE_EQ(fast.factor, 0.5);

  EXPECT_THROW(parse_skew_spec("proc:3"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("node:3:x4"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("proc:3:4"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("proc:3:x"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("proc:3:x0"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("proc:3:x-2"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("proc:3:x2000"), ContractViolation);
  EXPECT_THROW(parse_skew_spec("proc:1-2:x4"), ContractViolation);

  ScenarioConfig scn;
  scn.skews.push_back(p);
  EXPECT_FALSE(scn.empty());
  EXPECT_EQ(scn.label(), "skew=proc:3:x4");
}

// ---- FaultyChannel ----------------------------------------------------------

TEST(FaultyChannel, CopiesFollowLossAndDup) {
  ConstantDelay inner(10);
  Rng rng(7);
  const Message m = Message::phase_msg(1, Phase::One, Estimate::One);

  LinkFaultConfig always_lost;
  always_lost.loss = 1.0;
  FaultyChannel lossy(inner, always_lost, CoinAttackConfig{});
  EXPECT_EQ(lossy.copies(m, rng), 0);

  LinkFaultConfig always_dup;
  always_dup.dup = 1.0;
  FaultyChannel dupy(inner, always_dup, CoinAttackConfig{});
  EXPECT_EQ(dupy.copies(m, rng), 2);

  LinkFaultConfig half;
  half.loss = 0.5;
  FaultyChannel coin(inner, half, CoinAttackConfig{});
  int lost = 0;
  const int kDraws = 10'000;
  for (int i = 0; i < kDraws; ++i) {
    if (coin.copies(m, rng) == 0) ++lost;
  }
  EXPECT_GT(lost, kDraws / 2 - 500);
  EXPECT_LT(lost, kDraws / 2 + 500);
}

TEST(FaultyChannel, ReorderJitterIsBounded) {
  ConstantDelay inner(100);
  LinkFaultConfig link;
  link.reorder_max = 40;
  FaultyChannel ch(inner, link, CoinAttackConfig{});
  Rng rng(9);
  const Message m = Message::phase_msg(1, Phase::One, Estimate::Zero);
  SimTime lo = 1'000'000, hi = -1;
  for (int i = 0; i < 2'000; ++i) {
    const SimTime d = ch.delay(0, 1, m, 0, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GE(lo, 100);
  EXPECT_LE(hi, 140);
  EXPECT_LT(lo, 110);  // the jitter actually spreads
  EXPECT_GT(hi, 130);
}

TEST(FaultyChannel, CoinAttackTargetsCarriers) {
  ConstantDelay inner(100);
  CoinAttackConfig attack;
  attack.enabled = true;
  attack.bit = 1;
  attack.boost = 500;
  FaultyChannel ch(inner, LinkFaultConfig{}, attack);
  Rng rng(3);
  // Coin carriers: PHASE, round >= 2, phase 1, est == bit.
  EXPECT_EQ(ch.delay(0, 1, Message::phase_msg(2, Phase::One, Estimate::One),
                     0, rng),
            600);
  EXPECT_EQ(ch.delay(0, 1, Message::phase_msg(2, Phase::One, Estimate::Zero),
                     0, rng),
            100);
  EXPECT_EQ(ch.delay(0, 1, Message::phase_msg(1, Phase::One, Estimate::One),
                     0, rng),
            100);
  EXPECT_EQ(ch.delay(0, 1, Message::phase_msg(2, Phase::Two, Estimate::One),
                     0, rng),
            100);
  EXPECT_EQ(ch.delay(0, 1, Message::decide_msg(Estimate::One), 0, rng), 100);
}

TEST(FaultyChannel, SkewScalesDeliveryToTarget) {
  ConstantDelay inner(100);
  FaultyChannel ch(inner, LinkFaultConfig{}, CoinAttackConfig{});
  const std::vector<double> speed{1.0, 4.0, 0.5};
  ch.set_speed_factors(&speed);
  Rng rng(5);
  const Message m = Message::phase_msg(1, Phase::One, Estimate::One);
  EXPECT_EQ(ch.delay(1, 0, m, 0, rng), 100);  // nominal receiver untouched
  EXPECT_EQ(ch.delay(0, 1, m, 0, rng), 400);  // 4x slower receiver
  EXPECT_EQ(ch.delay(0, 2, m, 0, rng), 50);   // fast receiver
}

TEST(FaultyChannel, RejectsBadProbabilities) {
  ConstantDelay inner(10);
  LinkFaultConfig bad;
  bad.loss = 1.5;
  EXPECT_THROW(FaultyChannel(inner, bad, CoinAttackConfig{}),
               ContractViolation);
}

// ---- PartitionSchedule -------------------------------------------------------

TEST(PartitionSchedule, ReleaseTimes) {
  const auto layout = ClusterLayout::even(8, 4);  // {0,1},{2,3},{4,5},{6,7}
  const PartitionSpec spec = parse_partition_spec("cluster:0@100..200");
  const PartitionSchedule sched({spec}, layout);

  // Same side: never held.
  EXPECT_EQ(sched.release_time(0, 1, 150), 150);
  EXPECT_EQ(sched.release_time(2, 7, 150), 150);
  // Crossing before the cut opens or after it heals: unaffected.
  EXPECT_EQ(sched.release_time(0, 2, 50), 50);
  EXPECT_EQ(sched.release_time(0, 2, 200), 200);
  // Crossing during the cut (either direction): held until heal.
  EXPECT_EQ(sched.release_time(0, 2, 150), 200);
  EXPECT_EQ(sched.release_time(2, 0, 100), 200);
}

TEST(PartitionSchedule, PermanentCutBlocksForever) {
  const auto layout = ClusterLayout::even(8, 4);
  const PartitionSpec spec = parse_partition_spec("procs:0-1@50..never");
  const PartitionSchedule sched({spec}, layout);
  EXPECT_EQ(sched.release_time(0, 2, 60), kSimTimeNever);
  EXPECT_EQ(sched.release_time(0, 2, 40), 40);  // sent before the cut
  EXPECT_EQ(sched.release_time(0, 1, 60), 60);  // same side
}

TEST(PartitionSchedule, OverlappingCutsCascade) {
  const auto layout = ClusterLayout::even(8, 4);
  // First cut releases at 200, straight into the second, which holds 150..300.
  const PartitionSchedule sched(
      {parse_partition_spec("cluster:0@100..200"),
       parse_partition_spec("cluster:0-1@150..300")},
      layout);
  EXPECT_EQ(sched.release_time(0, 4, 120), 300);
}

TEST(PartitionSchedule, RejectsOutOfRangeIds) {
  const auto layout = ClusterLayout::even(8, 4);
  EXPECT_THROW(
      PartitionSchedule({parse_partition_spec("cluster:9@1..2")}, layout),
      ContractViolation);
  EXPECT_THROW(
      PartitionSchedule({parse_partition_spec("procs:8@1..2")}, layout),
      ContractViolation);
}

TEST(PartitionSchedule, FlappingSquareWave) {
  const auto layout = ClusterLayout::even(8, 4);
  // Cut during [0,100), [400,500), [800,900), … healed in between.
  const PartitionSchedule sched(
      {parse_partition_spec("cluster:0:flap=100:period=400@0..never")},
      layout);
  // Inside a pulse: held to its trailing edge.
  EXPECT_EQ(sched.release_time(0, 4, 0), 100);
  EXPECT_EQ(sched.release_time(0, 4, 99), 100);
  EXPECT_EQ(sched.release_time(0, 4, 450), 500);
  // Inside a healed gap: passes immediately.
  EXPECT_EQ(sched.release_time(0, 4, 100), 100);
  EXPECT_EQ(sched.release_time(0, 4, 250), 250);
  EXPECT_EQ(sched.release_time(0, 4, 399), 399);
  // Same side: never affected.
  EXPECT_EQ(sched.release_time(0, 1, 50), 50);
}

TEST(PartitionSchedule, FlappingWindowAndStartOffset) {
  const auto layout = ClusterLayout::even(8, 4);
  // Wave starts at 1000 and the whole schedule ends at 1850 — the last
  // pulse [1800, 1900) is truncated to heal at 1850.
  const PartitionSchedule sched(
      {parse_partition_spec("cluster:0:flap=100:period=400@1000..1850")},
      layout);
  EXPECT_EQ(sched.release_time(0, 4, 500), 500);    // before the schedule
  EXPECT_EQ(sched.release_time(0, 4, 1000), 1100);  // first pulse
  EXPECT_EQ(sched.release_time(0, 4, 1450), 1500);  // second pulse
  EXPECT_EQ(sched.release_time(0, 4, 1820), 1850);  // truncated last pulse
  EXPECT_EQ(sched.release_time(0, 4, 1900), 1900);  // after the schedule
}

TEST(PartitionSchedule, InterlockedFlappingThatNeverOpensIsPermanent) {
  const auto layout = ClusterLayout::even(8, 4);
  // Two waves in perfect anti-phase covering all time: cut A closed on
  // [0,200) of each 400, cut B closed on [200,400). Their joint gap never
  // opens, so the query must settle on "never" instead of hopping forever.
  const PartitionSchedule sched(
      {parse_partition_spec("cluster:0:flap=200:period=400@0..never"),
       parse_partition_spec("cluster:0:flap=200:period=400@200..never")},
      layout);
  EXPECT_EQ(sched.release_time(0, 4, 0), kSimTimeNever);
}

// ---- CrashTracker recovery ---------------------------------------------------

TEST(CrashRecovery, TrackerRoundTrips) {
  CrashTracker tracker(4);
  tracker.crash(2, 100);
  EXPECT_TRUE(tracker.is_crashed(2));
  EXPECT_EQ(tracker.crashed_count(), 1u);
  tracker.recover(2, 400);
  EXPECT_FALSE(tracker.is_crashed(2));
  EXPECT_EQ(tracker.crashed_count(), 0u);
  EXPECT_EQ(tracker.recovered_count(), 1u);
  EXPECT_EQ(tracker.recover_time(2), 400);
  EXPECT_EQ(tracker.crash_time(2), kSimTimeNever);
  EXPECT_TRUE(tracker.correct().test(2));
  EXPECT_THROW(tracker.recover(2, 500), ContractViolation);
}

// ---- end-to-end properties ----------------------------------------------------

RunConfig scenario_run(Algorithm alg, std::uint64_t seed,
                       const ScenarioConfig& scn, ProcId n = 16,
                       ClusterId m = 4) {
  RunConfig cfg(ClusterLayout::even(n, m));
  cfg.alg = alg;
  cfg.seed = seed;
  cfg.scenario = scn;
  return cfg;
}

TEST(ScenarioEndToEnd, PartitionThenHealLiveness) {
  // A healed cut is only asynchrony: every correct process must still decide,
  // for minority, half, and intra-cluster cuts alike.
  const char* cuts[] = {"cluster:0@0..3000", "cluster:0-1@0..3000",
                        "split:0@0..3000"};
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    for (const char* cut : cuts) {
      ScenarioConfig scn;
      scn.partitions.push_back(parse_partition_spec(cut));
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const RunResult r = run_consensus(scenario_run(alg, seed, scn));
        EXPECT_TRUE(r.success()) << to_cstring(alg) << " cut=" << cut
                                 << " seed=" << seed;
      }
    }
  }
}

TEST(ScenarioEndToEnd, FlappingPartitionStillTerminates) {
  // The ROADMAP livelock probe: a square-wave cut/heal cycle on one cluster
  // (and on a half cut) holds messages during every pulse but always heals —
  // that is repeated asynchrony, not loss, so every correct process must
  // still decide and safety must hold.
  const char* waves[] = {"cluster:0:flap=200us:period=500us",
                         "cluster:0-1:flap=100us:period=400us@0..3ms"};
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    for (const char* wave : waves) {
      ScenarioConfig scn;
      scn.partitions.push_back(parse_partition_spec(wave));
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const RunResult r = run_consensus(scenario_run(alg, seed, scn));
        EXPECT_TRUE(r.success()) << to_cstring(alg) << " wave=" << wave
                                 << " seed=" << seed;
      }
    }
  }
}

TEST(ScenarioEndToEnd, PermanentHalfCutBlocksButStaysSafe) {
  // 8-vs-8 cut with no heal: neither side covers > n/2, so nobody may
  // decide — and safety must hold anyway (indulgence under partition).
  ScenarioConfig scn;
  scn.partitions.push_back(parse_partition_spec("cluster:0-1@0..never"));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RunConfig cfg = scenario_run(Algorithm::HybridCommonCoin, seed, scn);
    cfg.max_rounds = 40;  // park quickly; the run can never terminate
    const RunResult r = run_consensus(cfg);
    EXPECT_TRUE(r.safe()) << "seed=" << seed;
    EXPECT_FALSE(r.decided_value.has_value()) << "seed=" << seed;
  }
}

TEST(ScenarioEndToEnd, LossAndDuplicationNeverViolateSafety) {
  ScenarioConfig scn;
  scn.link.loss = 0.2;
  scn.link.dup = 0.2;
  scn.link.reorder_max = 100;
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin,
        Algorithm::BenOr}) {
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      RunConfig cfg = scenario_run(alg, seed, scn, 8, 4);
      if (alg == Algorithm::BenOr) cfg.layout = ClusterLayout::singletons(8);
      cfg.max_rounds = 300;
      const RunResult r = run_consensus(cfg);
      EXPECT_TRUE(r.safe()) << to_cstring(alg) << " seed=" << seed << ": "
                            << (r.violations.empty() ? ""
                                                     : r.violations.front());
    }
  }
}

TEST(ScenarioEndToEnd, DuplicationAloneStillTerminates) {
  // Pure duplication keeps channels reliable — liveness must survive it.
  ScenarioConfig scn;
  scn.link.dup = 0.5;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult r =
        run_consensus(scenario_run(Algorithm::HybridCommonCoin, seed, scn));
    EXPECT_TRUE(r.success()) << "seed=" << seed;
    EXPECT_GT(r.net.duplicated, 0u);
  }
}

TEST(ScenarioEndToEnd, SkewedProcessLivenessAt10x) {
  // Clock skew is pure asynchrony: a process running 10x slower (and a
  // whole slow cluster) must not block termination or safety — the paper's
  // model lets processes run at arbitrary relative speeds.
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    for (const char* spec : {"proc:0:x10", "cluster:1:x10"}) {
      ScenarioConfig scn;
      scn.skews = {parse_skew_spec(spec)};
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const RunResult r = run_consensus(scenario_run(alg, seed, scn));
        EXPECT_TRUE(r.success()) << to_cstring(alg) << " skew=" << spec
                                 << " seed=" << seed;
      }
    }
  }
}

TEST(ScenarioEndToEnd, SkewResolvesAgainstLayout) {
  const ClusterLayout layout = ClusterLayout::even(8, 2);
  ScenarioConfig scn;
  scn.skews = {parse_skew_spec("cluster:1:x4"), parse_skew_spec("proc:0:x2")};
  const auto speed = resolve_skews(scn.skews, layout);
  ASSERT_EQ(speed.size(), 8u);
  EXPECT_DOUBLE_EQ(speed[0], 2.0);
  EXPECT_DOUBLE_EQ(speed[1], 1.0);
  EXPECT_DOUBLE_EQ(speed[4], 4.0);
  EXPECT_DOUBLE_EQ(speed[7], 4.0);

  ScenarioConfig bad_proc;
  bad_proc.skews = {parse_skew_spec("proc:8:x2")};
  EXPECT_THROW(validate_scenario(bad_proc, layout), ContractViolation);
  ScenarioConfig bad_cluster;
  bad_cluster.skews = {parse_skew_spec("cluster:2:x2")};
  EXPECT_THROW(validate_scenario(bad_cluster, layout), ContractViolation);
}

TEST(ScenarioEndToEnd, RecoveryRejoinDecides) {
  // p3 crashes early and rejoins long after the others decided: the rejoin
  // retransmit + decide-reply gossip must pull it to the same decision.
  ScenarioConfig scn;
  RecoverySpec rec;
  rec.id = 3;
  rec.down_at = 100;
  rec.up_at = 5000;
  scn.recoveries.push_back(rec);
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const RunResult r = run_consensus(scenario_run(alg, seed, scn));
      EXPECT_TRUE(r.success()) << to_cstring(alg) << " seed=" << seed;
      EXPECT_EQ(r.recovered, 1u);
      EXPECT_EQ(r.crashed, 0u);
      EXPECT_TRUE(r.decisions[3].has_value());
    }
  }
}

TEST(ScenarioEndToEnd, RecoveryBeforeStartProposesLate) {
  // Down from t=0 through everyone else's whole execution: the process only
  // proposes on rejoin and must still learn the decision.
  ScenarioConfig scn;
  RecoverySpec rec;
  rec.id = 0;
  rec.down_at = 0;
  rec.up_at = 4000;
  scn.recoveries.push_back(rec);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult r =
        run_consensus(scenario_run(Algorithm::HybridCommonCoin, seed, scn));
    EXPECT_TRUE(r.success()) << "seed=" << seed;
    EXPECT_TRUE(r.decisions[0].has_value());
  }
}

TEST(ScenarioEndToEnd, RejoinerNeededForMajorityStillCatchesUp) {
  // even(4, 2): clusters {0,1}, {2,3}. p2 is dead for good, so the
  // survivors p0/p1 cover only 2 of 4 processes (not > n/2) and CANNOT
  // decide while p3 is down — when p3 rejoins, nobody has decided and
  // decide replies alone can't help. p3 must replay the history it missed
  // via the catch-up replies, climb to the frontier, and unblock everyone.
  ScenarioConfig scn;
  RecoverySpec rec;
  rec.id = 3;
  rec.down_at = 100;
  rec.up_at = 5000;
  scn.recoveries.push_back(rec);
  for (const Algorithm alg :
       {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RunConfig cfg(ClusterLayout::even(4, 2));
      cfg.alg = alg;
      cfg.seed = seed;
      cfg.scenario = scn;
      cfg.crashes = CrashPlan::none(4);
      cfg.crashes.specs[2] = CrashSpec::at_time(1);  // p2 never comes back
      const RunResult r = run_consensus(cfg);
      EXPECT_TRUE(r.safe()) << to_cstring(alg) << " seed=" << seed;
      for (const ProcId p : {0, 1, 3}) {
        EXPECT_TRUE(r.decisions[static_cast<std::size_t>(p)].has_value())
            << to_cstring(alg) << " seed=" << seed << " p" << p;
      }
    }
  }
}

TEST(ScenarioValidation, RejectsOutOfRangeAndOverlappingRecoveries) {
  const auto layout = ClusterLayout::even(8, 4);

  ScenarioConfig bad_proc;
  bad_proc.recoveries.push_back(parse_recovery_spec("8@100..200"));
  EXPECT_THROW(validate_scenario(bad_proc, layout), ContractViolation);

  ScenarioConfig bad_cluster;
  bad_cluster.recoveries.push_back(parse_recovery_spec("cluster:4@100..200"));
  EXPECT_THROW(validate_scenario(bad_cluster, layout), ContractViolation);

  // p1 rides both the cluster-0 window and its own overlapping one.
  ScenarioConfig overlapping;
  overlapping.recoveries.push_back(
      parse_recovery_spec("cluster:0@100..3000"));
  overlapping.recoveries.push_back(parse_recovery_spec("1@200..1000"));
  EXPECT_THROW(validate_scenario(overlapping, layout), ContractViolation);

  // Disjoint windows for the same process are fine.
  ScenarioConfig sequential;
  sequential.recoveries.push_back(parse_recovery_spec("1@100..1000"));
  sequential.recoveries.push_back(parse_recovery_spec("1@1000..2000"));
  validate_scenario(sequential, layout);

  ScenarioConfig ok;
  ok.link.loss = 0.1;
  ok.partitions.push_back(parse_partition_spec("cluster:0@1..2"));
  ok.recoveries.push_back(parse_recovery_spec("7@100..200"));
  validate_scenario(ok, layout);
}

TEST(ScenarioEndToEnd, SequentialRecoveryWindowsCycleTwice) {
  ScenarioConfig scn;
  scn.recoveries.push_back(parse_recovery_spec("1@100..1500"));
  scn.recoveries.push_back(parse_recovery_spec("1@1500..4000"));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RunResult r =
        run_consensus(scenario_run(Algorithm::HybridCommonCoin, seed, scn));
    EXPECT_TRUE(r.success()) << "seed=" << seed;
    EXPECT_EQ(r.recovered, 2u);
  }
}

TEST(ScenarioEndToEnd, WholeClusterRecoveryCycles) {
  ScenarioConfig scn;
  RecoverySpec rec;
  rec.whole_cluster = true;
  rec.id = 1;
  rec.down_at = 150;
  rec.up_at = 4000;
  scn.recoveries.push_back(rec);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RunResult r =
        run_consensus(scenario_run(Algorithm::HybridCommonCoin, seed, scn));
    EXPECT_TRUE(r.success()) << "seed=" << seed;
    EXPECT_EQ(r.recovered, 4u);  // even(16, 4): cluster 1 has 4 members
  }
}

TEST(ScenarioEndToEnd, EmptyScenarioIsByteIdenticalToLegacyPath) {
  RunConfig cfg(ClusterLayout::even(8, 4));
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.seed = 0xFEED;
  cfg.enable_trace = true;
  const RunResult legacy = run_consensus(cfg);
  cfg.scenario = ScenarioConfig{};  // still empty — same path
  const RunResult again = run_consensus(cfg);
  EXPECT_EQ(legacy.trace_dump, again.trace_dump);
  EXPECT_EQ(legacy.events, again.events);
  EXPECT_EQ(legacy.net.unicasts_sent, again.net.unicasts_sent);
  EXPECT_EQ(legacy.net.dropped_lost, 0u);
  EXPECT_EQ(legacy.net.dropped_partitioned, 0u);
  EXPECT_EQ(legacy.net.duplicated, 0u);
}

// ---- grid determinism -----------------------------------------------------

std::string run_faulty_grid(std::int64_t threads) {
  ExperimentSpec spec;
  spec.name = "scenario-grid";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(8, 4)};

  ScenarioConfig faulty;
  faulty.link.loss = 0.1;
  faulty.link.dup = 0.1;
  faulty.link.reorder_max = 50;
  faulty.partitions.push_back(parse_partition_spec("cluster:0@100..900"));
  RecoverySpec rec;
  rec.id = 1;
  rec.down_at = 50;
  rec.up_at = 2000;
  faulty.recoveries.push_back(rec);

  spec.scenarios = {ScenarioAxis::none(), ScenarioAxis::of(faulty)};
  spec.runs_per_cell = 5;
  spec.max_rounds = 300;
  spec.base_seed = 0x5C3;

  ParallelExecutor::Options opts;
  opts.threads = threads;
  const ParallelExecutor exec(opts);
  const auto results = exec.run(spec);

  std::ostringstream csv, json;
  write_cell_csv(csv, results);
  write_cell_json(json, spec.name, results);
  return csv.str() + "\n---\n" + json.str();
}

TEST(ScenarioDeterminism, FaultyGridByteIdenticalAcrossThreadCounts) {
  const std::string one = run_faulty_grid(1);
  const std::string four = run_faulty_grid(4);
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace hyco
