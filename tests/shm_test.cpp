// Unit tests for the shared-memory substrate: registers, CAS and LL/SC
// cells, the two consensus-object constructions (both must satisfy the
// consensus spec: agreement on the first proposal, wait-freedom, and —
// critically for Algorithm 2 — ⊥ must be proposable), and cluster memory.
#include <gtest/gtest.h>

#include "runtime/atomic_memory.h"
#include "shm/atomic_register.h"
#include "shm/cas_cell.h"
#include "shm/cluster_memory.h"
#include "shm/consensus_object.h"
#include "shm/llsc_cell.h"
#include "util/assert.h"

namespace hyco {
namespace {

TEST(AtomicRegister, ReadsLastWrite) {
  ShmOpCounts counts;
  AtomicRegister<int> reg(&counts);
  EXPECT_FALSE(reg.read().has_value());
  reg.write(7);
  EXPECT_EQ(reg.read(), 7);
  reg.write(9);
  EXPECT_EQ(reg.read(), 9);
  EXPECT_TRUE(reg.written());
  EXPECT_EQ(counts.writes, 2u);
  EXPECT_EQ(counts.reads, 3u);
}

TEST(CasCell, SwapsOnlyOnExpectedMatch) {
  ShmOpCounts counts;
  CasCell<int> cell(&counts);
  EXPECT_TRUE(cell.compare_and_swap(std::nullopt, 1));
  EXPECT_FALSE(cell.compare_and_swap(std::nullopt, 2));  // already 1
  EXPECT_EQ(cell.read(), 1);
  EXPECT_TRUE(cell.compare_and_swap(1, 3));
  EXPECT_EQ(cell.read(), 3);
  EXPECT_EQ(counts.cas_attempts, 3u);
  EXPECT_EQ(counts.cas_successes, 2u);
}

TEST(LlScCell, StoreConditionalFailsAfterInterveningWrite) {
  ShmOpCounts counts;
  LlScCell<int> cell(3, &counts);
  // p0 links, p1 writes in between, p0's SC must fail.
  EXPECT_FALSE(cell.load_linked(0).has_value());
  (void)cell.load_linked(1);
  EXPECT_TRUE(cell.store_conditional(1, 5));
  EXPECT_FALSE(cell.store_conditional(0, 6));
  EXPECT_EQ(cell.read(), 5);
  EXPECT_EQ(counts.sc_attempts, 2u);
  EXPECT_EQ(counts.sc_successes, 1u);
}

TEST(LlScCell, ScWithoutLinkFails) {
  LlScCell<int> cell(2);
  EXPECT_FALSE(cell.store_conditional(0, 1));
}

// Both consensus constructions must satisfy the same object spec.
class ConsensusObjectContract : public ::testing::TestWithParam<ConsensusImpl> {
 protected:
  std::unique_ptr<IConsensusObject> make() {
    return make_consensus_object(GetParam(), 8, &counts_);
  }
  ShmOpCounts counts_;
};

TEST_P(ConsensusObjectContract, FirstProposalWins) {
  auto obj = make();
  EXPECT_FALSE(obj->decided().has_value());
  EXPECT_EQ(obj->propose(0, Estimate::One), Estimate::One);
  EXPECT_EQ(obj->propose(1, Estimate::Zero), Estimate::One);
  EXPECT_EQ(obj->propose(2, Estimate::One), Estimate::One);
  EXPECT_EQ(obj->decided(), Estimate::One);
  EXPECT_EQ(counts_.consensus_proposals, 3u);
}

TEST_P(ConsensusObjectContract, BotIsAProposableValue) {
  // Algorithm 2 proposes ⊥ to CONS_x[r,2]; the object must treat ⊥ as a
  // first-class value, not as "undecided".
  auto obj = make();
  EXPECT_EQ(obj->propose(0, Estimate::Bot), Estimate::Bot);
  EXPECT_EQ(obj->propose(1, Estimate::One), Estimate::Bot);
  EXPECT_EQ(obj->decided(), Estimate::Bot);
}

TEST_P(ConsensusObjectContract, IdempotentReProposal) {
  auto obj = make();
  EXPECT_EQ(obj->propose(3, Estimate::Zero), Estimate::Zero);
  EXPECT_EQ(obj->propose(3, Estimate::Zero), Estimate::Zero);
}

INSTANTIATE_TEST_SUITE_P(BothImpls, ConsensusObjectContract,
                         ::testing::Values(ConsensusImpl::Cas,
                                           ConsensusImpl::LlSc));

TEST(AtomicConsensus, SameContractOnStdAtomic) {
  AtomicConsensus obj;
  EXPECT_FALSE(obj.decided().has_value());
  EXPECT_EQ(obj.propose(0, Estimate::Bot), Estimate::Bot);
  EXPECT_EQ(obj.propose(1, Estimate::One), Estimate::Bot);
  EXPECT_EQ(obj.decided(), Estimate::Bot);
  EXPECT_EQ(obj.proposals(), 2u);
}

TEST(ClusterMemory, LazyCreationAndStableIdentity) {
  ClusterMemory mem(0, 4);
  auto& a = mem.cons(1, Phase::One);
  auto& b = mem.cons(1, Phase::One);
  EXPECT_EQ(&a, &b);
  auto& c = mem.cons(1, Phase::Two);
  EXPECT_NE(&a, &c);
  auto& d = mem.cons(2, Phase::One);
  EXPECT_NE(&a, &d);
  EXPECT_EQ(mem.objects_created(), 3u);
}

TEST(ClusterMemory, SinglePhaseAccessorIsPhaseOne) {
  ClusterMemory mem(1, 4);
  auto& a = mem.cons(3);
  auto& b = mem.cons(3, Phase::One);
  EXPECT_EQ(&a, &b);
}

TEST(ClusterMemory, RoundsStartAtOne) {
  ClusterMemory mem(0, 4);
  EXPECT_THROW(mem.cons(0, Phase::One), ContractViolation);
  EXPECT_THROW(mem.cons(-3, Phase::One), ContractViolation);
}

TEST(ClusterMemory, CountsAggregateAcrossObjects) {
  ClusterMemory mem(0, 4);
  mem.cons(1, Phase::One).propose(0, Estimate::Zero);
  mem.cons(1, Phase::Two).propose(0, Estimate::Bot);
  mem.cons(2, Phase::One).propose(1, Estimate::One);
  EXPECT_EQ(mem.counts().consensus_proposals, 3u);
}

TEST(ThreadClusterMemory, LazyAndStable) {
  ThreadClusterMemory mem(2);
  auto& a = mem.cons(1, Phase::One);
  auto& b = mem.cons(1, Phase::One);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(mem.objects_created(), 1u);
  EXPECT_EQ(mem.cluster(), 2);
}

TEST(OpCounts, Accumulate) {
  ShmOpCounts a, b;
  a.reads = 1;
  a.cas_attempts = 2;
  b.reads = 10;
  b.consensus_proposals = 5;
  a += b;
  EXPECT_EQ(a.reads, 11u);
  EXPECT_EQ(a.cas_attempts, 2u);
  EXPECT_EQ(a.consensus_proposals, 5u);
}

}  // namespace
}  // namespace hyco
