// Unit tests for the Algorithm 1 communication pattern: cluster-closure
// crediting ("one for all"), the majority-coverage wait predicate, and the
// phase-2 (value, ⊥) handling.
#include <gtest/gtest.h>

#include <vector>

#include "core/msg_exchange.h"
#include "util/assert.h"

namespace hyco {
namespace {

/// INetwork stub that records broadcasts instead of delivering them.
class RecordingNetwork final : public INetwork {
 public:
  explicit RecordingNetwork(ProcId n) : n_(n) {}
  void send(ProcId from, ProcId to, const Message& m) override {
    sends.push_back({from, to, m});
  }
  void broadcast(ProcId from, const Message& m) override {
    broadcasts.push_back({from, m});
  }
  [[nodiscard]] ProcId n() const override { return n_; }

  struct Send {
    ProcId from, to;
    Message m;
  };
  struct Broadcast {
    ProcId from;
    Message m;
  };
  std::vector<Send> sends;
  std::vector<Broadcast> broadcasts;

 private:
  ProcId n_;
};

TEST(MsgExchange, BeginBroadcastsThePhaseMessage) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 0);
  ex.begin(1, Phase::One, Estimate::One);
  ASSERT_EQ(net.broadcasts.size(), 1u);
  EXPECT_EQ(net.broadcasts[0].from, 0);
  EXPECT_EQ(net.broadcasts[0].m,
            Message::phase_msg(1, Phase::One, Estimate::One));
  EXPECT_TRUE(ex.active());
  EXPECT_EQ(ex.round(), 1);
  EXPECT_EQ(ex.exchanges_started(), 1u);
}

TEST(MsgExchange, OneMessageFromMajorityClusterSatisfiesPredicate) {
  // Layout {0},{1..4},{5,6}: one message from p2 credits all of P[1]
  // (4 of 7 processes) — the "one for all" closure.
  const auto layout = ClusterLayout::fig1_right();
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 0);
  ex.begin(1, Phase::One, Estimate::Zero);
  EXPECT_FALSE(ex.satisfied());
  EXPECT_TRUE(ex.credit(2, Estimate::One));
  EXPECT_EQ(ex.support(Estimate::One), 4);
  EXPECT_TRUE(ex.satisfied());
}

TEST(MsgExchange, SmallClustersMustAccumulate) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});  // n = 7
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 0);
  ex.begin(1, Phase::One, Estimate::Zero);
  EXPECT_FALSE(ex.credit(0, Estimate::Zero));  // covers {0,1}: 2
  EXPECT_FALSE(ex.credit(1, Estimate::Zero));  // same cluster: still 2
  EXPECT_TRUE(ex.credit(6, Estimate::One));    // + {5,6}: 4 > 3.5
  EXPECT_EQ(ex.support(Estimate::Zero), 2);
  EXPECT_EQ(ex.support(Estimate::One), 2);
}

TEST(MsgExchange, SingletonLayoutIsPlainCounting) {
  const auto layout = ClusterLayout::singletons(5);
  RecordingNetwork net(5);
  MsgExchange ex(layout, net, 0);
  ex.begin(2, Phase::One, Estimate::One);
  EXPECT_FALSE(ex.credit(0, Estimate::One));
  EXPECT_FALSE(ex.credit(1, Estimate::Zero));
  EXPECT_TRUE(ex.credit(2, Estimate::One));  // 3 distinct > 2.5
  EXPECT_EQ(ex.support(Estimate::One), 2);
}

TEST(MsgExchange, PhaseTwoCountsBotTowardCoverage) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 3);
  ex.begin(1, Phase::Two, Estimate::Bot);
  EXPECT_FALSE(ex.credit(0, Estimate::Bot));   // 2
  EXPECT_TRUE(ex.credit(2, Estimate::One));    // 2 + 3 = 5 > 3.5
  const auto vals = ex.values_received();
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], Estimate::One);
  EXPECT_EQ(vals[1], Estimate::Bot);
}

TEST(MsgExchange, PhaseOneIgnoresBotForCoverage) {
  // In phase 1 (a,b) = (0,1): ⊥ should never be sent, and the predicate
  // only unions the 0/1 supporter sets.
  const auto layout = ClusterLayout::from_sizes({4, 3});
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 0);
  ex.begin(1, Phase::One, Estimate::Zero);
  EXPECT_FALSE(ex.credit(5, Estimate::Bot));  // credited to sup[⊥], no cover
  EXPECT_FALSE(ex.satisfied());
  EXPECT_TRUE(ex.credit(0, Estimate::Zero));  // {0..3}: 4 > 3.5
}

TEST(MsgExchange, DuplicateCreditsFromSameClusterAreIdempotent) {
  const auto layout = ClusterLayout::from_sizes({4, 3});
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 0);
  ex.begin(1, Phase::One, Estimate::Zero);
  (void)ex.credit(1, Estimate::Zero);
  (void)ex.credit(2, Estimate::Zero);
  EXPECT_EQ(ex.support(Estimate::Zero), 4);  // cluster counted once
}

TEST(MsgExchange, BeginResetsState) {
  const auto layout = ClusterLayout::fig1_right();
  RecordingNetwork net(7);
  MsgExchange ex(layout, net, 0);
  ex.begin(1, Phase::One, Estimate::Zero);
  (void)ex.credit(2, Estimate::One);
  EXPECT_TRUE(ex.satisfied());
  ex.begin(1, Phase::Two, Estimate::Bot);
  EXPECT_FALSE(ex.satisfied());
  EXPECT_EQ(ex.support(Estimate::One), 0);
  EXPECT_EQ(ex.phase(), Phase::Two);
}

TEST(MsgExchange, CreditOutsideActiveExchangeThrows) {
  const auto layout = ClusterLayout::singletons(3);
  RecordingNetwork net(3);
  MsgExchange ex(layout, net, 0);
  EXPECT_THROW(ex.credit(1, Estimate::Zero), ContractViolation);
}

TEST(MsgExchange, RoundsStartAtOne) {
  const auto layout = ClusterLayout::singletons(3);
  RecordingNetwork net(3);
  MsgExchange ex(layout, net, 0);
  EXPECT_THROW(ex.begin(0, Phase::One, Estimate::Zero), ContractViolation);
}

}  // namespace
}  // namespace hyco
