// The paper's headline theorem (Section III-B, "Main scalability and
// fault-tolerance property"):
//
//   In all executions with k distinct clusters P[x1..xk] such that
//   |P[x1]| + ... + |P[xk]| > n/2 and each keeps >= 1 live process,
//   Algorithm 2 (and Algorithm 3) solves consensus.
//
// In particular consensus survives a MAJORITY of crashes whenever a majority
// cluster keeps one process — impossible in pure message passing. These
// tests sweep layouts, surviving-cluster choices, algorithms, and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

struct LayoutCase {
  const char* name;
  std::vector<ProcId> sizes;
  std::vector<ClusterId> survivors;  // clusters that keep one live process
};

std::vector<LayoutCase> covering_cases() {
  return {
      {"fig1_right_majority", {1, 4, 2}, {1}},
      {"two_big_clusters", {4, 4, 1}, {0, 1}},
      {"three_mid_clusters", {3, 3, 3}, {0, 2}},
      {"one_huge", {9, 1, 1}, {0}},
      {"pair_covers", {2, 3, 2, 2}, {1, 3}},  // 3 + 2 = 5 > 4.5
  };
}

class OneForAll
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(OneForAll, SurvivingCoveringClustersForceTermination) {
  const auto [case_idx, alg_idx, seed] = GetParam();
  const LayoutCase lc = covering_cases()[static_cast<std::size_t>(case_idx)];
  const auto layout = ClusterLayout::from_sizes(lc.sizes);

  Rng rng(mix64(seed, 0xFA11));
  const auto scenario = failure_patterns::one_survivor_per_cluster(
      layout, lc.survivors, rng, 400);
  ASSERT_TRUE(scenario.hybrid_should_terminate)
      << lc.name << ": chosen clusters must cover a majority";

  RunConfig cfg(layout);
  cfg.alg = alg_idx == 0 ? Algorithm::HybridLocalCoin
                         : Algorithm::HybridCommonCoin;
  cfg.inputs = split_inputs(layout.n());
  cfg.crashes = scenario.plan;
  cfg.seed = seed;
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.all_correct_decided)
      << lc.name << " alg=" << to_cstring(cfg.alg) << " seed=" << seed
      << " (crashed " << scenario.crash_count << "/" << layout.n() << ")";
  EXPECT_TRUE(r.safe()) << (r.violations.empty() ? "" : r.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OneForAll,
    ::testing::Combine(::testing::Range(0, 5),       // layout case
                       ::testing::Values(0, 1),      // algorithm
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

TEST(OneForAll, MajorityCrashBeatsBenOr) {
  // The same failure pattern applied to both models: hybrid terminates,
  // Ben-Or cannot. fig1_right, 6 of 7 crashed, survivor in P[1].
  const auto layout = ClusterLayout::fig1_right();
  Rng rng(2024);
  const auto scenario =
      failure_patterns::majority_crash_one_survivor(layout, rng, 300);
  ASSERT_EQ(scenario.crash_count, 6u);

  RunConfig hybrid(layout);
  hybrid.alg = Algorithm::HybridCommonCoin;
  hybrid.inputs = split_inputs(7);
  hybrid.crashes = scenario.plan;
  hybrid.seed = 1;
  const auto hr = run_consensus(hybrid);
  EXPECT_TRUE(hr.all_correct_decided);
  EXPECT_TRUE(hr.safe());

  RunConfig benor(ClusterLayout::singletons(7));
  benor.alg = Algorithm::BenOr;
  benor.inputs = split_inputs(7);
  benor.crashes = scenario.plan;
  benor.seed = 1;
  const auto br = run_consensus(benor);
  EXPECT_FALSE(br.all_correct_decided);
  EXPECT_FALSE(br.decided_value.has_value());
  EXPECT_TRUE(br.safe());
}

TEST(OneForAll, SurvivorDecidesEvenWhenAloneInWholeSystem) {
  // Single cluster (m = 1): everyone but p0 crashes instantly. The paper's
  // motto taken to the extreme — the lone survivor is "all" of its cluster,
  // which covers n > n/2.
  const auto layout = ClusterLayout::single(8);
  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(8);
  cfg.crashes = CrashPlan::none(8);
  for (ProcId p = 1; p < 8; ++p) {
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  cfg.seed = 3;
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
}

TEST(OneForAll, CrashedClusterValueStillCounts) {
  // A cluster whose members all crash AFTER one of them broadcast still
  // contributes its full weight through the closure: use mid-broadcast
  // crashes that deliver to at least one live process.
  const auto layout = ClusterLayout::fig1_right();
  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  cfg.crashes = CrashPlan::none(7);
  // p0 ({0} cluster) dies during its very first broadcast reaching 3 peers.
  cfg.crashes.specs[0] = CrashSpec::on_broadcast(0, 3);
  cfg.seed = 4;
  const auto r = run_consensus(cfg);
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_TRUE(r.safe());
}

}  // namespace
}  // namespace hyco
