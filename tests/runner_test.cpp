// Tests of the simulation runner itself: determinism, instrumentation
// bookkeeping, and the exact consensus-object accounting of the hybrid
// algorithms (the Section III-C hybrid-side counts).
#include <gtest/gtest.h>

#include <memory>

#include "core/runner.h"
#include "util/assert.h"

namespace hyco {
namespace {

TEST(Runner, SameSeedBitIdenticalResults) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  cfg.seed = 77;
  const auto a = run_consensus(cfg);
  const auto b = run_consensus(cfg);
  EXPECT_EQ(a.decided_value, b.decided_value);
  EXPECT_EQ(a.decision_rounds, b.decision_rounds);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.net.unicasts_sent, b.net.unicasts_sent);
  EXPECT_EQ(a.shm.consensus_proposals, b.shm.consensus_proposals);
}

TEST(Runner, DifferentSeedsUsuallyDiffer) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = split_inputs(7);
  int distinct_end_times = 0;
  SimTime prev = -1;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    cfg.seed = s;
    const auto r = run_consensus(cfg);
    if (r.end_time != prev) ++distinct_end_times;
    prev = r.end_time;
  }
  EXPECT_GE(distinct_end_times, 2);
}

TEST(Runner, HybridInvokesExactlyOneConsensusObjectPerProcessPerPhase) {
  // The hybrid-side Section III-C count: each process performs exactly one
  // consensus proposal per phase, i.e. 2 per round it completes (LC).
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = uniform_inputs(7, Estimate::One);
  cfg.seed = 5;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  for (const auto& ps : r.proc_stats) {
    EXPECT_EQ(ps.cons_invocations,
              2 * static_cast<std::uint64_t>(ps.rounds_entered));
  }
  // System-wide objects materialized per phase: m (one per cluster memory).
  // One round, two phases, m = 3 clusters -> 6 objects.
  EXPECT_EQ(r.consensus_objects, 6u);
}

TEST(Runner, CommonCoinInvokesOnePerRound) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.inputs = uniform_inputs(7, Estimate::Zero);
  cfg.seed = 6;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  for (const auto& ps : r.proc_stats) {
    EXPECT_EQ(ps.cons_invocations,
              static_cast<std::uint64_t>(ps.rounds_entered));
  }
}

TEST(Runner, MessageComplexityIsNSquaredPerPhase) {
  // Unanimous LC run: every process completes round 1 (2 phases) and then
  // gossips one DECIDE broadcast: 3 broadcasts of n messages each.
  RunConfig cfg(ClusterLayout::from_sizes({4, 4}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = uniform_inputs(8, Estimate::One);
  cfg.seed = 7;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.net.broadcasts, 3u * 8u);
  EXPECT_EQ(r.net.unicasts_sent, 3u * 8u * 8u);
}

TEST(Runner, LlScMemoryGivesSameDecisions) {
  RunConfig cas_cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cas_cfg.alg = Algorithm::HybridLocalCoin;
  cas_cfg.inputs = split_inputs(7);
  cas_cfg.seed = 1234;
  cas_cfg.shm_impl = ConsensusImpl::Cas;
  auto llsc_cfg = cas_cfg;
  llsc_cfg.shm_impl = ConsensusImpl::LlSc;
  const auto a = run_consensus(cas_cfg);
  const auto b = run_consensus(llsc_cfg);
  ASSERT_TRUE(a.success());
  ASSERT_TRUE(b.success());
  // Same seed, same schedule, both consensus constructions linearize the
  // same winning proposals -> identical outcomes.
  EXPECT_EQ(a.decided_value, b.decided_value);
  EXPECT_EQ(a.decision_rounds, b.decision_rounds);
}

TEST(Runner, EmptyInputsDefaultToSplit) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.seed = 9;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
}

TEST(Runner, InputSizeMismatchThrows) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.inputs = {Estimate::One};
  EXPECT_THROW(run_consensus(cfg), ContractViolation);
}

TEST(Runner, TraceCapturesDecisions) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = uniform_inputs(4, Estimate::One);
  cfg.enable_trace = true;
  cfg.seed = 10;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_NE(r.trace_dump.find("deliver"), std::string::npos);
}

TEST(Runner, LastDecisionTimeIsWithinRun) {
  RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.inputs = split_inputs(7);
  cfg.seed = 11;
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_GT(r.last_decision_time, 0);
  EXPECT_LE(r.last_decision_time, r.end_time);
}

TEST(Runner, DelayFactoryOverrideIsUsed) {
  // An adversarial factory with constant huge delays still terminates —
  // virtual time is free — but end_time must reflect the delays.
  RunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.inputs = uniform_inputs(4, Estimate::Zero);
  cfg.seed = 12;
  cfg.delay_factory = [] {
    return std::make_unique<ConstantDelay>(1'000'000);
  };
  const auto r = run_consensus(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_GE(r.end_time, 1'000'000);
}

TEST(Runner, AlgorithmNames) {
  EXPECT_STREQ(to_cstring(Algorithm::HybridLocalCoin), "hybrid-LC");
  EXPECT_STREQ(to_cstring(Algorithm::HybridCommonCoin), "hybrid-CC");
  EXPECT_STREQ(to_cstring(Algorithm::BenOr), "ben-or");
}

}  // namespace
}  // namespace hyco
