// Unit tests for the statistics toolkit (util/stats.h).
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.h"
#include "util/stats.h"

namespace hyco {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanMinMaxSum) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 6.0}) a.add(x);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Accumulator, SampleVariance) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Summary, PercentilesOnKnownData) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Summary, EmptyAndSingle) {
  Summary s;
  EXPECT_EQ(s.percentile(50), 0.0);
  s.add(7.0);
  EXPECT_EQ(s.percentile(0), 7.0);
  EXPECT_EQ(s.percentile(100), 7.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, PercentileRangeChecked) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), ContractViolation);
  EXPECT_THROW(s.percentile(101), ContractViolation);
}

TEST(Summary, AddAllAndToString) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count(), 3u);
  const auto str = s.to_string();
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3.0);  // clamps to bucket 0
  h.add(42.0);  // clamps to bucket 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, RendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
}

}  // namespace
}  // namespace hyco
