// Unit tests for the statistics toolkit (util/stats.h).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.h"
#include "util/stats.h"

namespace hyco {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanMinMaxSum) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 6.0}) a.add(x);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Accumulator, SampleVariance) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSingleStream) {
  Accumulator whole, left, right;
  for (int i = 1; i <= 50; ++i) {
    whole.add(i);
    (i % 3 == 0 ? left : right).add(i);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_NEAR(left.sum(), whole.sum(), 1e-9);

  Accumulator empty;
  left.merge(empty);  // no-op
  EXPECT_EQ(left.count(), whole.count());
  empty.merge(left);  // adopt
  EXPECT_EQ(empty.count(), whole.count());
  EXPECT_NEAR(empty.mean(), whole.mean(), 1e-12);
}

TEST(ExactMoments, MatchesNaiveAndMergesExactly) {
  ExactMoments whole;
  double naive_sum = 0.0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    whole.add(i * 7);
    naive_sum += static_cast<double>(i * 7);
  }
  EXPECT_EQ(whole.count(), 1000u);
  EXPECT_DOUBLE_EQ(whole.mean(), naive_sum / 1000.0);
  EXPECT_DOUBLE_EQ(whole.min(), 7.0);
  EXPECT_DOUBLE_EQ(whole.max(), 7000.0);

  // Any partition + any merge order reproduces the identical state (the
  // property the streaming executor's determinism rests on).
  ExactMoments a, b, c;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(i * 7);
  }
  ExactMoments abc = c;
  abc.merge(a);
  abc.merge(b);
  EXPECT_EQ(abc.count(), whole.count());
  EXPECT_TRUE(abc.raw_sum() == whole.raw_sum());
  EXPECT_TRUE(abc.raw_sumsq() == whole.raw_sumsq());
  EXPECT_DOUBLE_EQ(abc.variance(), whole.variance());
  EXPECT_DOUBLE_EQ(abc.stddev(), whole.stddev());
}

TEST(ExactMoments, VarianceIsExactForKnownData) {
  ExactMoments m;
  for (const std::uint64_t x : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u}) m.add(x);
  EXPECT_DOUBLE_EQ(m.variance(), 32.0 / 7.0);
}

TEST(ExactMoments, RawRoundTrip) {
  ExactMoments m;
  for (std::uint64_t i = 10; i < 20; ++i) m.add(i);
  const ExactMoments copy = ExactMoments::from_raw(
      m.count(), m.raw_sum(), m.raw_sumsq(), m.raw_min(), m.raw_max());
  EXPECT_DOUBLE_EQ(copy.mean(), m.mean());
  EXPECT_DOUBLE_EQ(copy.variance(), m.variance());
}

TEST(ReservoirSample, KeepsEverythingBelowCapacity) {
  ReservoirSample r(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    r.add(i * 2654435761u, static_cast<double>(i));
  }
  EXPECT_EQ(r.size(), 10u);
  const auto vals = r.sorted_values();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(i));
  }
}

TEST(ReservoirSample, BottomKIsOrderAndMergeInvariant) {
  // 1000 (priority, value) pairs fed (a) in order, (b) reversed, (c) split
  // across three reservoirs merged in a different order — identical kept
  // sets every time.
  std::vector<ReservoirSample::Entry> entries;
  std::uint64_t h = 0x9E3779B97F4A7C15;
  for (int i = 0; i < 1000; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    entries.push_back({h, static_cast<double>(i)});
  }

  ReservoirSample fwd(64), rev(64);
  for (const auto& e : entries) fwd.add(e.priority, e.value);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    rev.add(it->priority, it->value);
  }
  EXPECT_EQ(fwd.sorted_values(), rev.sorted_values());

  ReservoirSample a(64), b(64), c(64);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c))
        .add(entries[i].priority, entries[i].value);
  }
  ReservoirSample merged = b;
  merged.merge(c);
  merged.merge(a);
  EXPECT_EQ(merged.sorted_values(), fwd.sorted_values());
  EXPECT_EQ(merged.size(), 64u);
}

TEST(ReservoirSample, RejectsCapacityMismatchAndZero) {
  EXPECT_THROW(ReservoirSample(0), ContractViolation);
  ReservoirSample a(4), b(8);
  EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0);
  b.add(1.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(4), 1u);
  Histogram c(0.0, 10.0, 4);
  EXPECT_THROW(a.merge(c), ContractViolation);
  const Histogram rebuilt = Histogram::from_counts(0.0, 10.0, {2, 0, 0, 0, 1});
  EXPECT_EQ(rebuilt.total(), 3u);
  EXPECT_EQ(rebuilt.bucket(0), 2u);
}

TEST(Summary, PercentilesOnKnownData) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Summary, EmptyAndSingle) {
  Summary s;
  EXPECT_EQ(s.percentile(50), 0.0);
  s.add(7.0);
  EXPECT_EQ(s.percentile(0), 7.0);
  EXPECT_EQ(s.percentile(100), 7.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, PercentileRangeChecked) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), ContractViolation);
  EXPECT_THROW(s.percentile(101), ContractViolation);
}

TEST(Summary, AddAllAndToString) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count(), 3u);
  const auto str = s.to_string();
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3.0);  // clamps to bucket 0
  h.add(42.0);  // clamps to bucket 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, RendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
}

}  // namespace
}  // namespace hyco
