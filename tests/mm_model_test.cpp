// Tests of the m&m comparator: the Figure 2 domain must match the paper's
// appendix exactly, the per-process consensus-invocation count must be
// α_i + 1 per phase (the Section III-C comparison), and the algorithm must
// be safe and (crash-free) live.
#include <gtest/gtest.h>

#include "baseline/mm_domain.h"
#include "baseline/mm_runner.h"
#include "util/assert.h"

namespace hyco {
namespace {

TEST(MmDomain, Figure2MatchesPaperAppendix) {
  const auto d = MmDomain::fig2();
  ASSERT_EQ(d.n(), 5);
  // Paper (1-based): S1={p1,p2} S2={p1,p2,p3} S3={p2,p3,p4,p5}
  //                  S4={p3,p4,p5} S5={p3,p4,p5}.   0-based below.
  EXPECT_EQ(d.domain_of(0), (std::vector<ProcId>{0, 1}));
  EXPECT_EQ(d.domain_of(1), (std::vector<ProcId>{0, 1, 2}));
  EXPECT_EQ(d.domain_of(2), (std::vector<ProcId>{1, 2, 3, 4}));
  EXPECT_EQ(d.domain_of(3), (std::vector<ProcId>{2, 3, 4}));
  EXPECT_EQ(d.domain_of(4), (std::vector<ProcId>{2, 3, 4}));
}

TEST(MmDomain, DegreesMatchFigure2) {
  const auto d = MmDomain::fig2();
  EXPECT_EQ(d.degree(0), 1);
  EXPECT_EQ(d.degree(1), 2);
  EXPECT_EQ(d.degree(2), 3);
  EXPECT_EQ(d.degree(3), 2);
  EXPECT_EQ(d.degree(4), 2);
}

TEST(MmDomain, AdjacencyIsSymmetric) {
  const auto d = MmDomain::fig2();
  for (ProcId i = 0; i < d.n(); ++i) {
    for (ProcId j = 0; j < d.n(); ++j) {
      EXPECT_EQ(d.adjacent(i, j), d.adjacent(j, i));
    }
  }
  EXPECT_FALSE(d.adjacent(0, 0));
}

TEST(MmDomain, ValidatesConstruction) {
  EXPECT_THROW(MmDomain(3, {{0, 0}}), ContractViolation);          // loop
  EXPECT_THROW(MmDomain(3, {{0, 1}, {1, 0}}), ContractViolation);  // dup
  EXPECT_THROW(MmDomain(3, {{0, 5}}), ContractViolation);          // range
  EXPECT_THROW(MmDomain(0, {}), ContractViolation);                // empty
}

TEST(MmDomain, ToStringMentionsAllSets) {
  const auto s = MmDomain::fig2().to_string();
  EXPECT_NE(s.find("S0={0,1}"), std::string::npos);
  EXPECT_NE(s.find("S2={1,2,3,4}"), std::string::npos);
}

TEST(MmConsensus, CrashFreeTerminatesOnFig2) {
  MmRunConfig cfg(MmDomain::fig2());
  cfg.seed = 7;
  const auto r = run_mm(cfg);
  ASSERT_TRUE(r.success());
}

TEST(MmConsensus, UnanimousDecidesProposal) {
  MmRunConfig cfg(MmDomain::fig2());
  cfg.inputs = std::vector<Estimate>(5, Estimate::One);
  cfg.seed = 8;
  const auto r = run_mm(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decided_value, Estimate::One);
}

TEST(MmConsensus, InvocationsPerPhaseAreDegreePlusOne) {
  // The Section III-C count: per phase, p_i invokes α_i + 1 consensus
  // objects. Over R rounds of 2 phases: 2 * R * (α_i + 1) invocations.
  const auto d = MmDomain::fig2();
  MmRunConfig cfg(d);
  cfg.inputs = std::vector<Estimate>(5, Estimate::Zero);  // 1-round run
  cfg.seed = 9;
  const auto r = run_mm(cfg);
  ASSERT_TRUE(r.success());
  for (ProcId p = 0; p < 5; ++p) {
    const auto& st = r.proc_stats[static_cast<std::size_t>(p)];
    const auto rounds = static_cast<std::uint64_t>(st.rounds_entered);
    EXPECT_EQ(st.cons_invocations,
              2 * rounds * static_cast<std::uint64_t>(d.degree(p) + 1))
        << "p" << p;
  }
}

TEST(MmConsensus, SystemTouchesNMemoriesPerPhase) {
  // n distinct p_i-centered memories exist and all are touched (every
  // memory has at least its owner proposing to it).
  MmRunConfig cfg(MmDomain::fig2());
  cfg.inputs = std::vector<Estimate>(5, Estimate::Zero);
  cfg.seed = 10;
  const auto r = run_mm(cfg);
  ASSERT_TRUE(r.success());
  // Every phase proposes sum_i (α_i + 1) = n + 2|E| times in total.
  const std::uint64_t total_per_phase = 5 + 2 * 5;
  EXPECT_GE(r.shm.consensus_proposals, 2 * total_per_phase);  // >= 1 round
}

class MmSafetySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmSafetySweep, SplitInputsSafeOnFig2) {
  MmRunConfig cfg(MmDomain::fig2());
  cfg.seed = GetParam();
  const auto r = run_mm(cfg);
  EXPECT_TRUE(r.agreement_ok && r.validity_ok) << "seed " << GetParam();
  EXPECT_TRUE(r.all_correct_decided) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmSafetySweep,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(MmConsensus, NoOneForAllClosure) {
  // Contrast with the hybrid model: crash 3 of 5 processes (a majority).
  // Even though the m&m domain graph is connected, counting has no cluster
  // closure, so the run must block (quiesce undecided) — the hybrid model
  // with a majority cluster would terminate here.
  MmRunConfig cfg(MmDomain::fig2());
  cfg.crashes = CrashPlan::none(5);
  for (const ProcId p : {2, 3, 4}) {
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  cfg.seed = 11;
  const auto r = run_mm(cfg);
  EXPECT_FALSE(r.decided_value.has_value());
  EXPECT_TRUE(r.agreement_ok && r.validity_ok);
}

}  // namespace
}  // namespace hyco
