// Tests of the thread-per-process runtime: blocking Algorithms 2 and 3 over
// real mailboxes and std::atomic cluster memories. Interleavings are
// nondeterministic, so assertions target the algorithm guarantees
// (agreement, validity, termination under scheduled fairness), not exact
// round counts.
#include <gtest/gtest.h>

#include "runtime/threaded_runner.h"

namespace hyco {
namespace {

TEST(ThreadedCommonCoin, UnanimousDecidesProposedValue) {
  ThreadRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = ThreadAlgorithm::CommonCoin;
  cfg.inputs = std::vector<Estimate>(7, Estimate::One);
  cfg.seed = 17;
  const auto r = run_threaded(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decided_value, Estimate::One);
}

TEST(ThreadedCommonCoin, SplitInputsTerminate) {
  ThreadRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.alg = ThreadAlgorithm::CommonCoin;
  cfg.seed = 23;
  const auto r = run_threaded(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_TRUE(r.decided_value.has_value());
}

TEST(ThreadedLocalCoin, UnanimousDecidesFast) {
  ThreadRunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.alg = ThreadAlgorithm::LocalCoin;
  cfg.inputs = std::vector<Estimate>(4, Estimate::Zero);
  cfg.seed = 31;
  const auto r = run_threaded(cfg);
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.decided_value, Estimate::Zero);
}

TEST(ThreadedLocalCoin, SplitInputsTerminate) {
  ThreadRunConfig cfg(ClusterLayout::from_sizes({3, 3}));
  cfg.alg = ThreadAlgorithm::LocalCoin;
  cfg.seed = 37;
  const auto r = run_threaded(cfg);
  ASSERT_TRUE(r.success());
}

TEST(ThreadedCrash, SurvivorsOfMajorityClusterDecide) {
  // Layout {1,4,2}: cluster 1 = {1,2,3,4} is a majority cluster. Crash p0
  // and p5, p6 plus three members of the majority cluster at round 1; the
  // single survivor p1 (plus the one-for-all closure) must still decide.
  ThreadRunConfig cfg(ClusterLayout::from_sizes({1, 4, 2}));
  cfg.alg = ThreadAlgorithm::CommonCoin;
  cfg.seed = 41;
  cfg.crashes.assign(7, {});
  for (const ProcId p : {0, 2, 3, 4, 5, 6}) {
    cfg.crashes[static_cast<std::size_t>(p)].at_round = 1;
    cfg.crashes[static_cast<std::size_t>(p)].partial = 2;
  }
  const auto r = run_threaded(cfg);
  EXPECT_FALSE(r.deadline_hit);
  EXPECT_TRUE(r.agreement_ok);
  ASSERT_TRUE(r.outcomes[1].decision.has_value())
      << "the majority-cluster survivor must decide";
}

TEST(ThreadedScale, ManyProcessesManyClusters) {
  ThreadRunConfig cfg(ClusterLayout::even(16, 4));
  cfg.alg = ThreadAlgorithm::CommonCoin;
  cfg.seed = 53;
  const auto r = run_threaded(cfg);
  ASSERT_TRUE(r.success());
}

}  // namespace
}  // namespace hyco
