// Observability layer (src/obs/): the two determinism invariants — metrics
// collection is out of band (metrics-on and metrics-off sweeps emit
// byte-identical default artifacts at any thread count) and aggregation is
// merge-order-invariant — plus the pieces around them: phase-timing
// observer semantics against a fake clock, structured trace export
// round-trips (JSONL and binary), the health snapshot JSON schema,
// checkpoint "o"-line round-trips with tolerance for pre-observability
// files, and line-atomic concurrent logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/checkpoint.h"
#include "exp/executor.h"
#include "exp/report.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/phase_timings.h"
#include "obs/trace_export.h"
#include "sim/trace.h"
#include "util/log.h"

namespace hyco {
namespace {

ExperimentSpec obs_spec(bool collect) {
  ExperimentSpec spec;
  spec.name = "obs-test";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.runs_per_cell = 24;
  spec.base_seed = 5;
  spec.collect_obs = collect;
  return spec;
}

std::string run_and_render(const ExperimentSpec& spec, unsigned threads,
                           const ReportOptions& ropts) {
  const auto cells = spec.expand();
  CollectingSink sink(cells, {});
  ParallelExecutor::Options opts;
  opts.threads = threads;
  ParallelExecutor(opts).run(cells, sink);
  auto results = sink.take_results();
  std::ostringstream os;
  write_cell_csv(os, results, ropts);
  write_cell_json(os, spec.name, results, ropts);
  return os.str();
}

// ---- out-of-band invariant --------------------------------------------------

TEST(ObsInvariant, MetricsOnAndOffEmitIdenticalDefaultArtifacts) {
  // The tentpole contract: installing the phase-timing observer must not
  // perturb a single run (it never touches seeded RNG), so the *default*
  // artifact bytes are identical whether metrics are collected or not —
  // across thread counts too.
  const std::string off = run_and_render(obs_spec(false), 1, {});
  const std::string on = run_and_render(obs_spec(true), 8, {});
  EXPECT_EQ(off, on);
}

TEST(ObsInvariant, OptInColumnsAreThreadCountInvariant) {
  ReportOptions ropts;
  ropts.net_stats = true;
  ropts.phase_metrics = true;
  const std::string t1 = run_and_render(obs_spec(true), 1, ropts);
  const std::string t8 = run_and_render(obs_spec(true), 8, ropts);
  EXPECT_EQ(t1, t8);
  // The opt-in sections are actually there (strict append, base untouched).
  EXPECT_NE(t1.find("delivered_sum"), std::string::npos);
  EXPECT_NE(t1.find("phase1_ns_p95"), std::string::npos);
  EXPECT_NE(t1.find("\"coin_flips\""), std::string::npos);
  const std::string base = run_and_render(obs_spec(true), 1, {});
  EXPECT_EQ(t1.find(base.substr(0, 32)), 0u);  // same leading base header
  EXPECT_EQ(base.find("delivered_sum"), std::string::npos);
}

// ---- merge-order invariance -------------------------------------------------

TEST(LogHistogram, BucketsMergeAndPercentilesAreOrderInvariant) {
  obs::LogHistogram a;
  for (const std::uint64_t v : {0ull, 1ull, 1ull, 3ull, 8ull}) a.add(v);
  obs::LogHistogram b;
  for (const std::uint64_t v : {9ull, 1000ull, 1ull << 40}) b.add(v);

  EXPECT_EQ(a.bucket(0), 1u);  // the zero
  EXPECT_EQ(a.bucket(1), 2u);  // the ones (bit width 1)
  EXPECT_EQ(a.bucket(2), 1u);  // 3
  EXPECT_EQ(a.bucket(4), 1u);  // 8
  EXPECT_EQ(a.total(), 5u);

  obs::LogHistogram ab = a;
  ab.merge(b);
  obs::LogHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.total(), 8u);
  for (std::size_t i = 0; i < obs::LogHistogram::kBuckets; ++i) {
    EXPECT_EQ(ab.bucket(i), ba.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(ab.percentile(50), ba.percentile(50));
  EXPECT_EQ(ab.percentile(95), ba.percentile(95));
  EXPECT_EQ(ab.percentile(0), 0.0);   // the zero sample anchors p0
  EXPECT_GT(ab.percentile(100), 0.0);
  EXPECT_EQ(obs::LogHistogram{}.percentile(95), 0.0);  // empty = 0
}

TEST(ObsAccumulator, MergeGroupingNeverChangesAggregates) {
  // Three sample batches folded as ((a+b)+c) and (a+(c+b)) must agree on
  // every moment and every histogram bucket — the property the distributed
  // coordinator's arbitrary fold order rests on.
  const auto sample = [](std::uint64_t k) {
    obs::ObsSample s;
    s[obs::ObsId::kDelivered] = 10 * k;
    s[obs::ObsId::kCoinFlips] = k % 3;
    s[obs::ObsId::kPhase1Ns] = 1000 + 7 * k;
    s[obs::ObsId::kPhase2Ns] = k * k;
    s[obs::ObsId::kDecideSpreadNs] = k;
    return s;
  };
  obs::ObsAccumulator a, b, c;
  for (std::uint64_t k = 0; k < 5; ++k) a.add(sample(k));
  for (std::uint64_t k = 5; k < 9; ++k) b.add(sample(k));
  for (std::uint64_t k = 9; k < 17; ++k) c.add(sample(k));

  obs::ObsAccumulator left = a;
  left.merge(b);
  left.merge(c);
  obs::ObsAccumulator right = a;
  obs::ObsAccumulator cb = c;
  cb.merge(b);
  right.merge(cb);

  for (std::size_t i = 0; i < obs::kObsIdCount; ++i) {
    const auto id = static_cast<obs::ObsId>(i);
    EXPECT_EQ(left.moments(id).count(), right.moments(id).count());
    EXPECT_EQ(left.sum(id), right.sum(id));
    EXPECT_EQ(left.moments(id).raw_min(), right.moments(id).raw_min());
    EXPECT_EQ(left.moments(id).raw_max(), right.moments(id).raw_max());
    if (obs::obs_id_is_latency(id)) {
      for (std::size_t j = 0; j < obs::LogHistogram::kBuckets; ++j) {
        EXPECT_EQ(left.histogram(id).bucket(j), right.histogram(id).bucket(j));
      }
    }
  }
  EXPECT_EQ(left.sum(obs::ObsId::kDelivered), 10ull * (16 * 17 / 2));
}

// ---- phase-timing observer --------------------------------------------------

TEST(PhaseTimings, CreditsClosedSpansToTheirPhases) {
  SimTime now = 0;
  obs::PhaseTimings pt(2, [&now] { return now; });

  pt.on_phase_begin(0, 1, Phase::One);
  now = 10;
  pt.on_phase_begin(0, 1, Phase::Two);  // closes phase 1: +10
  now = 25;
  pt.on_phase_begin(0, 2, Phase::One);  // closes phase 2: +15
  now = 31;
  pt.on_decide(0, 2);  // closes phase 1: +6; first decision at 31

  pt.on_phase_begin(1, 1, Phase::One);  // p1 opens at 31...
  now = 40;
  pt.on_decide(1, 1);  // ...+9 to phase 1; last decision at 40

  EXPECT_EQ(pt.phase1_ns(), 10u + 6u + 9u);
  EXPECT_EQ(pt.phase2_ns(), 15u);
  EXPECT_EQ(pt.decided_count(), 2u);
  obs::ObsSample s;
  pt.fill(s);
  EXPECT_EQ(s[obs::ObsId::kPhase1Ns], 25u);
  EXPECT_EQ(s[obs::ObsId::kPhase2Ns], 15u);
  EXPECT_EQ(s[obs::ObsId::kDecideSpreadNs], 9u);  // 40 - 31
}

TEST(PhaseTimings, OpenPhaseAtEndOfRunIsDiscarded) {
  SimTime now = 0;
  obs::PhaseTimings pt(1, [&now] { return now; });
  pt.on_phase_begin(0, 1, Phase::One);
  now = 1000;  // never closed (parked/crashed process)
  obs::ObsSample s;
  pt.fill(s);
  EXPECT_EQ(s[obs::ObsId::kPhase1Ns], 0u);
  EXPECT_EQ(s[obs::ObsId::kDecideSpreadNs], 0u);  // nobody decided
}

// ---- structured trace export ------------------------------------------------

Trace sample_trace() {
  Trace t(16);
  t.enable(true);
  t.record(5, TraceKind::Send, 1, "PHASE(r=1,ph1,est=0) -> p2", 7);
  t.set_context(7);
  t.record(17, TraceKind::Deliver, 2, "with \"quotes\", a \\ and a\ttab", 7);
  t.record(230, TraceKind::Decide, 0, "");
  t.clear_context();
  return t;
}

obs::TraceMeta sample_meta() {
  obs::TraceMeta meta;
  meta.cell = 3;
  meta.run = 12;
  meta.seed = 0xDEADBEEFCAFEULL;
  meta.label = "hybrid-CC n=8 \"quoted\" label";
  return meta;
}

void expect_roundtrip(const obs::TraceMeta& meta,
                      const std::vector<TraceRecord>& records) {
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(meta.cell, 3u);
  EXPECT_EQ(meta.run, 12u);
  EXPECT_EQ(meta.seed, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(meta.label, "hybrid-CC n=8 \"quoted\" label");
  EXPECT_EQ(meta.recorded, 3u);
  EXPECT_FALSE(meta.truncated);
  EXPECT_EQ(records[0].at, 5);
  EXPECT_EQ(records[0].kind, TraceKind::Send);
  EXPECT_EQ(records[0].proc, 1);
  EXPECT_EQ(records[0].detail, "PHASE(r=1,ph1,est=0) -> p2");
  EXPECT_EQ(records[0].mid, 7u);
  EXPECT_EQ(records[0].parent, 0u);
  EXPECT_EQ(records[1].detail, "with \"quotes\", a \\ and a\ttab");
  EXPECT_EQ(records[1].mid, 7u);
  EXPECT_EQ(records[1].parent, 7u);
  EXPECT_EQ(records[2].kind, TraceKind::Decide);
  EXPECT_TRUE(records[2].detail.empty());
  EXPECT_EQ(records[2].mid, 0u);
  EXPECT_EQ(records[2].parent, 7u);
}

TEST(TraceExport, JsonlRoundTripsExactly) {
  std::stringstream ss;
  obs::write_trace_jsonl(ss, sample_meta(), sample_trace());
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"schema\":\"hyco-trace/2\""), std::string::npos);
  EXPECT_NE(text.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(text.find("\"truncated\":false"), std::string::npos);

  obs::TraceMeta meta;
  std::vector<TraceRecord> records;
  ASSERT_TRUE(obs::read_trace_jsonl(ss, meta, records));
  expect_roundtrip(meta, records);

  std::istringstream garbage("{\"schema\":\"wrong/9\"}\n");
  EXPECT_FALSE(obs::read_trace_jsonl(garbage, meta, records));
}

TEST(TraceExport, BinaryRoundTripsExactly) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  obs::write_trace_binary(ss, sample_meta(), sample_trace());

  obs::TraceMeta meta;
  std::vector<TraceRecord> records;
  ASSERT_TRUE(obs::read_trace_binary(ss, meta, records));
  expect_roundtrip(meta, records);

  std::istringstream garbage("HYTRCB9\nxxxxxxxx");
  EXPECT_FALSE(obs::read_trace_binary(garbage, meta, records));
}

TEST(TraceExport, RingWrapExportsTrailingWindowOldestFirst) {
  Trace t(4);
  t.enable(true);
  for (int i = 0; i < 10; ++i) t.record(i, TraceKind::Note, 0, "n");
  std::stringstream ss;
  obs::write_trace_jsonl(ss, {}, t);
  obs::TraceMeta meta;
  std::vector<TraceRecord> records;
  ASSERT_TRUE(obs::read_trace_jsonl(ss, meta, records));
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().at, 6);
  EXPECT_EQ(records.back().at, 9);
  EXPECT_EQ(meta.recorded, 10u);
  EXPECT_TRUE(meta.truncated);
}

TEST(TraceExport, KindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(kTraceKindLast); ++k) {
    const auto kind = static_cast<TraceKind>(k);
    TraceKind back = TraceKind::Send;
    ASSERT_TRUE(obs::trace_kind_from_name(to_cstring(kind), back));
    EXPECT_EQ(back, kind);
  }
  TraceKind out = TraceKind::Send;
  EXPECT_FALSE(obs::trace_kind_from_name("frobnicate", out));
}

// ---- health snapshot JSON ---------------------------------------------------

TEST(Health, JsonCarriesSchemaProgressAndWorkers) {
  obs::HealthSnapshot snap;
  snap.elapsed_ms = 1500;
  snap.runs_total = 800;
  snap.runs_folded = 200;
  snap.runs_resumed = 40;
  snap.cells_total = 4;
  snap.cells_completed = 1;
  snap.chunks_total = 20;
  snap.chunks_pending = 10;
  snap.chunks_leased = 5;
  snap.chunks_folded = 5;
  snap.fold_rate_per_sec = 133.25;
  snap.eta_sec = 4.5;
  snap.lease_expiries = 2;
  snap.requeued_chunks = 6;
  snap.worker_reconnects = 3;
  snap.checkpoint_flush_ms = 75;
  obs::WorkerHealth w;
  w.id = 7;
  w.welcomed = true;
  w.connected_ms = 1200;
  w.last_seen_ms = 30;
  w.active_leases = 2;
  w.folded_chunks = 3;
  w.folded_runs = 96;
  w.reconnects = 1;
  w.oldest_lease_ms = 420;
  snap.workers.push_back(w);

  const std::string json = obs::render_health_json(snap);
  EXPECT_NE(json.find("\"schema\":\"hyco-health/2\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":800"), std::string::npos);
  EXPECT_NE(json.find("\"folded\":200"), std::string::npos);
  EXPECT_NE(json.find("\"resumed\":40"), std::string::npos);
  EXPECT_NE(json.find("\"fold_rate_per_sec\":133.250"), std::string::npos);
  EXPECT_NE(json.find("\"eta_sec\":4.500"), std::string::npos);
  EXPECT_NE(json.find("\"recovery\":{\"lease_expiries\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"requeued_chunks\":6"), std::string::npos);
  EXPECT_NE(json.find("\"worker_reconnects\":3"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_flush_ms\":75"), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"welcomed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"folded_runs\":96"), std::string::npos);
  EXPECT_NE(json.find("\"reconnects\":1"), std::string::npos);
  EXPECT_NE(json.find("\"oldest_lease_ms\":420"), std::string::npos);

  const std::string http = obs::render_http_response(json);
  EXPECT_EQ(http.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(http.find("Content-Type: application/json\r\n"),
            std::string::npos);
  std::ostringstream want_len;
  want_len << "Content-Length: " << json.size() << "\r\n";
  EXPECT_NE(http.find(want_len.str()), std::string::npos);
  EXPECT_NE(http.find("\r\n\r\n" + json), std::string::npos);
}

// ---- checkpoint "o" lines ---------------------------------------------------

TEST(ObsCheckpoint, AccumulatorStateRoundTripsObsMetrics) {
  ExperimentSpec spec = obs_spec(true);
  const auto cells = spec.expand();
  CellAccumulator acc(MetricStats::kDefaultReservoir,
                      CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const RunConfig cfg = cells[0].run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }
  ASSERT_GT(acc.obs.sum(obs::ObsId::kDelivered), 0u);
  ASSERT_GT(acc.obs.sum(obs::ObsId::kPhase1Ns), 0u);

  std::stringstream state;
  write_accumulator_state(state, acc);
  EXPECT_NE(state.str().find("o delivered "), std::string::npos);
  EXPECT_NE(state.str().find("o phase1_ns "), std::string::npos);

  CellAccumulator back(MetricStats::kDefaultReservoir,
                       CellAccumulator::kDefaultFailureCap);
  ASSERT_TRUE(read_accumulator_state(state, back));
  for (std::size_t i = 0; i < obs::kObsIdCount; ++i) {
    const auto id = static_cast<obs::ObsId>(i);
    EXPECT_EQ(back.obs.moments(id).count(), acc.obs.moments(id).count());
    EXPECT_EQ(back.obs.sum(id), acc.obs.sum(id));
    EXPECT_EQ(back.obs.moments(id).raw_min(), acc.obs.moments(id).raw_min());
    EXPECT_EQ(back.obs.moments(id).raw_max(), acc.obs.moments(id).raw_max());
    if (obs::obs_id_is_latency(id)) {
      for (std::size_t j = 0; j < obs::LogHistogram::kBuckets; ++j) {
        EXPECT_EQ(back.obs.histogram(id).bucket(j),
                  acc.obs.histogram(id).bucket(j));
      }
    }
  }
}

TEST(ObsCheckpoint, LoadsPreObservabilityStateWithoutObsLines) {
  // A checkpoint written before the obs layer existed has no "o" lines; it
  // must still load (with zeroed obs metrics), so old checkpoints resume.
  const auto cells = obs_spec(false).expand();
  CellAccumulator acc(MetricStats::kDefaultReservoir,
                      CellAccumulator::kDefaultFailureCap);
  for (std::uint64_t k = 0; k < 6; ++k) {
    const RunConfig cfg = cells[0].run_config(k);
    acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
  }
  std::stringstream state;
  write_accumulator_state(state, acc);
  std::string stripped;
  std::string line;
  while (std::getline(state, line)) {
    if (line.rfind("o ", 0) == 0) continue;  // drop every obs line
    stripped += line;
    stripped += '\n';
  }
  std::istringstream old_format(stripped);
  CellAccumulator back(MetricStats::kDefaultReservoir,
                       CellAccumulator::kDefaultFailureCap);
  EXPECT_TRUE(read_accumulator_state(old_format, back));
  EXPECT_EQ(back.obs.moments(obs::ObsId::kDelivered).count(), 0u);
  EXPECT_EQ(back.runs, 0u);  // runs come from block headers, not state
}

// ---- line-atomic logging ----------------------------------------------------

TEST(Log, ConcurrentWritersNeverInterleaveLines) {
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  const LogLevel old_level = Log::level();
  Log::set_level(LogLevel::Info);

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        HYCO_INFO("thread=" << t << " line=" << i << " payload=" <<
                  std::string(64, static_cast<char>('a' + t)));
      }
    });
  }
  for (auto& w : writers) w.join();
  std::clog.rdbuf(old);
  Log::set_level(old_level);

  std::istringstream in(captured.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    // Every line is exactly one whole record: one prefix, one thread's
    // homogeneous payload, no fragments spliced together.
    EXPECT_EQ(line.rfind("[INFO] thread=", 0), 0u) << line;
    const auto payload = line.find("payload=");
    ASSERT_NE(payload, std::string::npos) << line;
    const std::string body = line.substr(payload + 8);
    ASSERT_EQ(body.size(), 64u) << line;
    EXPECT_EQ(std::count(body.begin(), body.end(), body[0]), 64) << line;
  }
  EXPECT_EQ(lines, kThreads * kLines);
}

TEST(Log, ParseLogLevelAcceptsNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::Error);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

}  // namespace
}  // namespace hyco
