// Calendar-specific tests for the event core (sim/event_queue.h): tiny
// Tuning geometries force the overflow heap, heap→calendar migration,
// window widening (bucket doubling, then coarsening), lazy bucket sorting,
// and push-below-window rebuilds — paths the default 2048-bucket window
// never hits in unit-sized tests. pop_tick()/commit_tick() spans are
// checked against the repeated-pop reference contract, including caps,
// partial commits, and pushes made while a tick is open. The generic
// (at, seq) ordering and slab-reuse properties live in event_queue_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/message.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace hyco {
namespace {

Message tagged(std::uint64_t tag) { return Message::value_msg(0, tag); }

/// Reference model entry: what the queue should eventually emit.
struct Expected {
  SimTime at = 0;
  std::uint64_t order = 0;  ///< push order — the tie-breaker contract
  std::uint64_t tag = 0;    ///< payload identity
};

bool model_less(const Expected& a, const Expected& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.order < b.order;
}

/// Drains `q` one pop at a time, checking every event against the model.
void drain_and_check(EventQueue& q, std::vector<Expected> pending) {
  std::sort(pending.begin(), pending.end(), model_less);
  for (const Expected& want : pending) {
    ASSERT_FALSE(q.empty());
    ASSERT_EQ(q.next_time(), want.at);
    const Event ev = q.pop();
    EXPECT_EQ(ev.at, want.at);
    ASSERT_EQ(ev.kind, Event::Kind::Deliver);
    EXPECT_EQ(ev.msg->value, want.tag);
  }
  EXPECT_TRUE(q.empty());
}

/// The tiny geometries that force every calendar path. Day width 1 and a
/// 2..4-slot window make almost any time spread overflow; shift 3 makes
/// buckets 8 ticks wide so in-bucket lazy sorting actually runs.
std::vector<EventQueue::Tuning> tiny_geometries() {
  std::vector<EventQueue::Tuning> out;
  {
    EventQueue::Tuning t;  // 2-bucket window, widens fast
    t.bucket_bits = 1;
    t.max_bucket_bits = 2;
    t.shift = 0;
    t.max_shift = 4;
    t.widen_threshold_mult = 1;
    out.push_back(t);
  }
  {
    EventQueue::Tuning t;  // coarse buckets from the start: dirty sorting
    t.bucket_bits = 2;
    t.max_bucket_bits = 3;
    t.shift = 3;
    t.max_shift = 6;
    t.widen_threshold_mult = 2;
    out.push_back(t);
  }
  {
    EventQueue::Tuning t;  // cannot add buckets, can only coarsen
    t.bucket_bits = 1;
    t.max_bucket_bits = 1;
    t.shift = 0;
    t.max_shift = 8;
    t.widen_threshold_mult = 1;
    out.push_back(t);
  }
  return out;
}

TEST(CalendarQueue, OverflowHeapPreservesGlobalOrder) {
  EventQueue::Tuning t;
  t.bucket_bits = 1;  // window of 2 one-tick days: nearly everything spills
  t.max_bucket_bits = 1;
  EventQueue q(t);
  std::vector<Expected> pending;
  // Interleaved far/near times, with equal-time collisions at both ends.
  const SimTime times[] = {500, 2, 900, 2, 500, 0, 901, 900, 3, 0};
  std::uint64_t tag = 0;
  for (const SimTime at : times) {
    q.push_deliver(at, 0, 1, tagged(tag));
    pending.push_back({at, tag, tag});
    ++tag;
  }
  EXPECT_GT(q.overflow_size(), 0u) << "geometry failed to force the heap";
  drain_and_check(q, std::move(pending));
}

TEST(CalendarQueue, WideningDoublesBucketsThenCoarsens) {
  EventQueue::Tuning t;
  t.bucket_bits = 1;
  t.max_bucket_bits = 2;
  t.shift = 0;
  t.max_shift = 2;
  t.widen_threshold_mult = 1;
  EventQueue q(t);
  ASSERT_EQ(q.bucket_count(), 2u);
  ASSERT_EQ(q.bucket_shift(), 0u);
  // Each round pushes a burst far beyond the live window (all overflow,
  // tripping the widen threshold) and drains it, which migrates — and
  // widening only happens at migration. Rounds are model-checked, so the
  // geometry changes are also shown not to disturb ordering.
  SimTime base = 0;
  std::uint64_t tag = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<Expected> pending;
    for (int j = 0; j < 8; ++j) {
      const SimTime at = base + 1000 * (j + 1);
      q.push_deliver(at, 0, 1, tagged(tag));
      pending.push_back({at, tag, tag});
      ++tag;
    }
    base += 9000;
    drain_and_check(q, std::move(pending));
  }
  // Fully widened: bucket doubling exhausted first, then coarsening.
  EXPECT_EQ(q.bucket_count(), 4u);
  EXPECT_EQ(q.bucket_shift(), 2u);
}

TEST(CalendarQueue, CoarseBucketsLazySortOnConsume) {
  EventQueue::Tuning t;
  t.bucket_bits = 2;
  t.shift = 3;  // 8-tick days: out-of-order intra-bucket appends
  t.max_bucket_bits = 2;
  t.max_shift = 3;
  EventQueue q(t);
  std::vector<Expected> pending;
  // All in day 0 (times < 8), deliberately unsorted with duplicate times.
  const SimTime times[] = {7, 3, 5, 3, 0, 7, 1, 3};
  std::uint64_t tag = 0;
  for (const SimTime at : times) {
    q.push_deliver(at, 0, 1, tagged(tag));
    pending.push_back({at, tag, tag});
    ++tag;
  }
  drain_and_check(q, std::move(pending));
}

TEST(CalendarQueue, PushBelowLiveWindowRebuilds) {
  EventQueue::Tuning t;
  t.bucket_bits = 1;
  t.max_bucket_bits = 1;
  EventQueue q(t);
  std::vector<Expected> pending;
  // Rebase the window far from zero, keep the queue non-empty, then push
  // strictly before the window base — the full-rebuild path.
  q.push_deliver(1000, 0, 1, tagged(0));
  pending.push_back({1000, 0, 0});
  q.push_deliver(5000, 0, 1, tagged(1));  // overflow
  pending.push_back({5000, 1, 1});
  q.push_deliver(3, 0, 1, tagged(2));  // below base day 1000
  pending.push_back({3, 2, 2});
  q.push_deliver(3, 0, 1, tagged(3));  // in the rebuilt window
  pending.push_back({3, 3, 3});
  drain_and_check(q, std::move(pending));
}

TEST(CalendarQueueProperty, FuzzMatchesModelAcrossGeometries) {
  // The wide random time range (relative to the tiny windows) keeps events
  // flowing calendar → heap → migrated calendar, across repeated widenings,
  // while pops must still match the stable-sort reference exactly.
  for (const EventQueue::Tuning& t : tiny_geometries()) {
    Rng rng(0xCA1E);
    for (int round = 0; round < 20; ++round) {
      EventQueue q(t);
      std::vector<Expected> pending;
      std::uint64_t tag = 0;
      for (int op = 0; op < 500; ++op) {
        const bool do_push = pending.empty() || rng.bounded(100) < 60;
        if (do_push) {
          const SimTime at = static_cast<SimTime>(rng.bounded(300));
          q.push_deliver(at, 0, 1, tagged(tag));
          pending.push_back({at, tag, tag});
          ++tag;
        } else {
          const auto front =
              std::min_element(pending.begin(), pending.end(), model_less);
          const Event ev = q.pop();
          EXPECT_EQ(ev.at, front->at);
          EXPECT_EQ(ev.msg->value, front->tag);
          pending.erase(front);
        }
      }
      drain_and_check(q, std::move(pending));
    }
  }
}

// --- pop_tick / commit_tick span contract ---------------------------------

TEST(CalendarQueueTick, SpanIsTheMinTimeRunInSeqOrder) {
  EventQueue q;
  q.push_deliver(7, 2, 3, tagged(10));
  q.push_deliver(9, 0, 1, tagged(99));  // later tick
  q.push_deliver(7, 4, 5, tagged(11));
  q.push_deliver(7, 6, 7, tagged(12));
  const TickSpan span = q.pop_tick(100);
  EXPECT_EQ(span.at, 7);
  ASSERT_EQ(span.count, 3u);
  for (std::size_t i = 0; i < span.count; ++i) {
    EXPECT_EQ(span.items[i].kind, Event::Kind::Deliver);
    EXPECT_EQ(span.items[i].msg->value, 10u + i);
  }
  EXPECT_EQ(span.items[0].from, 2);
  EXPECT_EQ(span.items[0].to, 3);
  q.commit_tick(span.count);
  const TickSpan next = q.pop_tick(100);
  EXPECT_EQ(next.at, 9);
  ASSERT_EQ(next.count, 1u);
  EXPECT_EQ(next.items[0].msg->value, 99u);
  q.commit_tick(1);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTick, CapTruncatesAndRemainderStaysQueued) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 5; ++i) q.push_deliver(4, 0, 1, tagged(i));
  const TickSpan first = q.pop_tick(2);
  ASSERT_EQ(first.count, 2u);
  EXPECT_EQ(first.items[0].msg->value, 0u);
  EXPECT_EQ(first.items[1].msg->value, 1u);
  q.commit_tick(2);
  const TickSpan rest = q.pop_tick(100);
  EXPECT_EQ(rest.at, 4);
  ASSERT_EQ(rest.count, 3u);
  EXPECT_EQ(rest.items[0].msg->value, 2u);
  q.commit_tick(3);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTick, PartialCommitLeavesTailPending) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 4; ++i) q.push_deliver(6, 0, 1, tagged(i));
  const TickSpan span = q.pop_tick(100);
  ASSERT_EQ(span.count, 4u);
  q.commit_tick(2);  // a halt consumed only the first two
  EXPECT_EQ(q.size(), 2u);
  // The uncommitted tail pops normally afterwards, order intact.
  EXPECT_EQ(q.pop().msg->value, 2u);
  EXPECT_EQ(q.pop().msg->value, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTick, CommitZeroReopensTheSameSpan) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 3; ++i) q.push_deliver(2, 0, 1, tagged(i));
  const TickSpan first = q.pop_tick(100);
  ASSERT_EQ(first.count, 3u);
  q.commit_tick(0);
  EXPECT_EQ(q.size(), 3u);
  const TickSpan again = q.pop_tick(100);
  ASSERT_EQ(again.count, 3u);
  EXPECT_EQ(again.items[0].msg->value, 0u);
  q.commit_tick(3);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTick, PushesDuringOpenTickDoNotInvalidateTheSpan) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 8; ++i) q.push_deliver(3, 0, 1, tagged(i));
  const TickSpan span = q.pop_tick(100);
  ASSERT_EQ(span.count, 8u);
  // Handler-style pushes into the SAME tick time: they append to the very
  // bucket the span was read from (forcing growth/reallocation) and must
  // not disturb the copied-out span.
  for (std::uint64_t i = 0; i < 4096; ++i) {
    q.push_deliver(3, 0, 1, tagged(100 + i));
  }
  for (std::size_t i = 0; i < span.count; ++i) {
    EXPECT_EQ(span.items[i].msg->value, i);
  }
  q.commit_tick(span.count);
  // The mid-tick pushes surface on the next tick, in push order.
  const TickSpan next = q.pop_tick(100000);
  EXPECT_EQ(next.at, 3);
  ASSERT_EQ(next.count, 4096u);
  EXPECT_EQ(next.items[0].msg->value, 100u);
  EXPECT_EQ(next.items[4095].msg->value, 100u + 4095u);
  q.commit_tick(next.count);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTick, MixedKindsKeepSeqOrderInsideTheSpan) {
  EventQueue q;
  int fired = 0;
  q.push_deliver(5, 0, 1, tagged(0));
  q.push(5, [&] { ++fired; });
  q.push_deliver(5, 0, 1, tagged(2));
  const TickSpan span = q.pop_tick(100);
  ASSERT_EQ(span.count, 3u);
  EXPECT_EQ(span.items[0].kind, Event::Kind::Deliver);
  EXPECT_EQ(span.items[1].kind, Event::Kind::Callback);
  EXPECT_EQ(span.items[2].kind, Event::Kind::Deliver);
  q.take_callback(span.items[1].slot)();
  EXPECT_EQ(fired, 1);
  q.commit_tick(3);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTickProperty, FuzzTickSpansMatchRepeatedPop) {
  // pop_tick's contract: the span holds exactly the events `cap` repeated
  // pops would return. Fuzzed over the tiny geometries with random caps,
  // random partial commits (the halt path), and pushes between ticks —
  // every span element and every leftover is checked against the model.
  for (const EventQueue::Tuning& t : tiny_geometries()) {
    Rng rng(0x71C4);
    for (int round = 0; round < 20; ++round) {
      EventQueue q(t);
      std::vector<Expected> pending;
      std::uint64_t tag = 0;
      for (int op = 0; op < 200; ++op) {
        const bool do_push = pending.empty() || rng.bounded(100) < 50;
        if (do_push) {
          const SimTime at = static_cast<SimTime>(rng.bounded(200));
          q.push_deliver(at, 0, 1, tagged(tag));
          pending.push_back({at, tag, tag});
          ++tag;
        } else {
          // Model: the (at, seq)-sorted prefix sharing the minimum time.
          std::sort(pending.begin(), pending.end(), model_less);
          std::size_t run = 1;
          while (run < pending.size() &&
                 pending[run].at == pending[0].at) {
            ++run;
          }
          const std::uint64_t cap = 1 + rng.bounded(8);
          const std::size_t want =
              std::min<std::size_t>(run, static_cast<std::size_t>(cap));
          const TickSpan span = q.pop_tick(cap);
          ASSERT_EQ(span.at, pending[0].at);
          ASSERT_EQ(span.count, want);
          for (std::size_t i = 0; i < span.count; ++i) {
            EXPECT_EQ(span.items[i].msg->value, pending[i].tag);
          }
          const std::size_t consumed = rng.bounded(span.count + 1);
          q.commit_tick(consumed);
          pending.erase(pending.begin(),
                        pending.begin() +
                            static_cast<std::ptrdiff_t>(consumed));
        }
      }
      drain_and_check(q, std::move(pending));
    }
  }
}

}  // namespace
}  // namespace hyco
