// Unit tests for the wire message struct and its binary codec
// (net/message.h), plus the execution trace (sim/trace.h).
#include <gtest/gtest.h>

#include <sstream>

#include "net/message.h"
#include "sim/trace.h"

namespace hyco {
namespace {

TEST(Message, FactoriesPopulateFields) {
  const auto p = Message::phase_msg(7, Phase::Two, Estimate::One);
  EXPECT_EQ(p.kind, MsgKind::Phase);
  EXPECT_EQ(p.round, 7);
  EXPECT_EQ(p.phase, Phase::Two);
  EXPECT_EQ(p.est, Estimate::One);

  const auto d = Message::decide_msg(Estimate::Zero);
  EXPECT_EQ(d.kind, MsgKind::Decide);
  EXPECT_EQ(d.est, Estimate::Zero);
}

TEST(Message, ToStringMentionsContents) {
  const auto p = Message::phase_msg(3, Phase::One, Estimate::Bot);
  EXPECT_NE(p.to_string().find("r=3"), std::string::npos);
  EXPECT_NE(p.to_string().find("bot"), std::string::npos);
  const auto d = Message::decide_msg(Estimate::One);
  EXPECT_NE(d.to_string().find("DECIDE"), std::string::npos);
}

// Codec roundtrip across the full message domain.
class MessageRoundtrip
    : public ::testing::TestWithParam<std::tuple<int, Round, int, int>> {};

TEST_P(MessageRoundtrip, EncodeDecodeIdentity) {
  const auto [kind, round, phase, est] = GetParam();
  Message m;
  m.kind = static_cast<MsgKind>(kind);
  m.round = round;
  m.phase = static_cast<Phase>(phase);
  m.est = static_cast<Estimate>(est);
  const auto bytes = encode(m);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, MessageRoundtrip,
    ::testing::Combine(::testing::Values(1, 2),            // kind
                       ::testing::Values(0, 1, 7, 100000,  // round
                                         2147483647),
                       ::testing::Values(1, 2),            // phase
                       ::testing::Values(0, 1, 2)));       // estimate

TEST(MessageCodec, RejectsWrongSize) {
  std::vector<std::uint8_t> small(kMessageWireSize - 1, 0);
  EXPECT_FALSE(decode(small).has_value());
  std::vector<std::uint8_t> big(kMessageWireSize + 1, 0);
  EXPECT_FALSE(decode(big).has_value());
}

TEST(MessageCodec, RejectsBadTags) {
  auto bytes = encode(Message::phase_msg(1, Phase::One, Estimate::Zero));
  bytes[0] = 9;  // bad kind
  EXPECT_FALSE(decode(bytes).has_value());
  bytes = encode(Message::phase_msg(1, Phase::One, Estimate::Zero));
  bytes[9] = 3;  // bad phase
  EXPECT_FALSE(decode(bytes).has_value());
  bytes = encode(Message::phase_msg(1, Phase::One, Estimate::Zero));
  bytes[10] = 7;  // bad estimate
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(MessageCodec, RoundtripsExtensionKinds) {
  const Message val = Message::value_msg(3, 0xDEADBEEFCAFEULL);
  const auto back_val = decode(encode(val));
  ASSERT_TRUE(back_val.has_value());
  EXPECT_EQ(*back_val, val);

  const Message md = Message::multi_decide_msg(42);
  const auto back_md = decode(encode(md));
  ASSERT_TRUE(back_md.has_value());
  EXPECT_EQ(*back_md, md);

  Message reg;
  reg.kind = MsgKind::RegAck;
  reg.instance = 77;
  reg.round = 12;
  reg.origin = 4;
  reg.value = 0xFFFFFFFFFFFFFFFFULL;
  const auto back_reg = decode(encode(reg));
  ASSERT_TRUE(back_reg.has_value());
  EXPECT_EQ(*back_reg, reg);
}

TEST(MessageCodec, InstanceStampSurvivesRoundtrip) {
  Message m = Message::phase_msg(5, Phase::Two, Estimate::One);
  m.instance = 13;
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->instance, 13);
}

TEST(Trace, DisabledRecordsNothing) {
  Trace t;
  t.record(1, TraceKind::Send, 0, "x");
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, EnabledRecordsAndDumps) {
  Trace t;
  t.enable(true);
  t.record(5, TraceKind::Decide, 2, "decided 1");
  t.record(9, TraceKind::Crash, 3, "bye");
  EXPECT_EQ(t.size(), 2u);
  std::ostringstream os;
  t.dump(os);
  const auto s = os.str();
  EXPECT_NE(s.find("decide"), std::string::npos);
  EXPECT_NE(s.find("p3"), std::string::npos);
}

TEST(Trace, CapacityBoundsMemory) {
  Trace t(3);
  t.enable(true);
  for (int i = 0; i < 10; ++i) t.record(i, TraceKind::Note, 0, "n");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.recorded(), 10u);
  // Oldest surviving record after the ring wrapped: run 7 of 0..9.
  SimTime first = -1;
  bool got_first = false;
  t.for_each([&](const TraceRecord& r) {
    if (!got_first) {
      first = r.at;
      got_first = true;
    }
  });
  EXPECT_EQ(first, 7);
}

TEST(Estimate, HelpersRoundtrip) {
  EXPECT_TRUE(is_binary(Estimate::Zero));
  EXPECT_TRUE(is_binary(Estimate::One));
  EXPECT_FALSE(is_binary(Estimate::Bot));
  EXPECT_EQ(estimate_from_bit(0), Estimate::Zero);
  EXPECT_EQ(estimate_from_bit(1), Estimate::One);
  EXPECT_EQ(estimate_to_bit(Estimate::Zero), 0);
  EXPECT_EQ(estimate_to_bit(Estimate::One), 1);
  EXPECT_EQ(estimate_index(Estimate::Bot), 2u);
}

}  // namespace
}  // namespace hyco
