// Unit tests for the failure-pattern generators: each generator must build
// plans matching its contract, and classify() must predict termination
// exactly per the paper's condition (live covering cluster set for hybrid,
// live majority for Ben-Or).
#include <gtest/gtest.h>

#include "util/assert.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

using namespace failure_patterns;

TEST(FailurePatterns, NoneKeepsEverybody) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  const auto s = none(layout);
  EXPECT_EQ(s.crash_count, 0u);
  EXPECT_TRUE(s.hybrid_should_terminate);
  EXPECT_TRUE(s.benor_should_terminate);
}

TEST(FailurePatterns, CrashSetTargetsExactProcesses) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  const auto s = crash_set(layout, {0, 4}, 100);
  EXPECT_EQ(s.crash_count, 2u);
  EXPECT_EQ(s.plan.specs[0].kind, CrashSpec::Kind::AtTime);
  EXPECT_EQ(s.plan.specs[4].time, 100);
  EXPECT_EQ(s.plan.specs[1].kind, CrashSpec::Kind::None);
  EXPECT_TRUE(s.hybrid_should_terminate);   // clusters 1,2 fully... cluster 0
                                            // keeps p1: full coverage anyway
  EXPECT_TRUE(s.benor_should_terminate);    // 5 of 7 alive
}

TEST(FailurePatterns, RandomMinorityNeverExceedsHalf) {
  const auto layout = ClusterLayout::even(9, 3);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto s = random_minority(layout, rng, 100);
    EXPECT_LT(2 * s.crash_count, 9u);
    EXPECT_TRUE(s.benor_should_terminate);
    EXPECT_TRUE(s.hybrid_should_terminate);  // minority crash always leaves
                                             // a live covering set
  }
}

TEST(FailurePatterns, OneSurvivorPerClusterKeepsExactlyOne) {
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  Rng rng(2);
  const auto s = one_survivor_per_cluster(layout, {0, 1}, rng, 100);
  // clusters 0 and 1 keep one live each; cluster 2 fully crashed.
  EXPECT_EQ(s.crash_count, 7u - 2u);
  // coverage = |P0| + |P1| = 5 > 3.5
  EXPECT_TRUE(s.hybrid_should_terminate);
  EXPECT_FALSE(s.benor_should_terminate);  // only 2 of 7 alive
  // exactly one survivor inside cluster 0 and one inside cluster 1
  int live0 = 0, live1 = 0, live2 = 0;
  for (ProcId p = 0; p < 7; ++p) {
    if (s.plan.specs[static_cast<std::size_t>(p)].kind !=
        CrashSpec::Kind::None) {
      continue;
    }
    const auto x = layout.cluster_of(p);
    (x == 0 ? live0 : (x == 1 ? live1 : live2))++;
  }
  EXPECT_EQ(live0, 1);
  EXPECT_EQ(live1, 1);
  EXPECT_EQ(live2, 0);
}

TEST(FailurePatterns, MajorityCrashNeedsMajorityCluster) {
  const auto good = ClusterLayout::fig1_right();
  Rng rng(3);
  const auto s = majority_crash_one_survivor(good, rng, 100);
  EXPECT_EQ(s.crash_count, 6u);
  EXPECT_TRUE(s.hybrid_should_terminate);
  EXPECT_FALSE(s.benor_should_terminate);

  const auto bad = ClusterLayout::from_sizes({2, 3, 2});
  EXPECT_THROW(majority_crash_one_survivor(bad, rng, 100),
               ContractViolation);
}

TEST(FailurePatterns, KillCoveringSetDropsCoverageBelowMajority) {
  Rng rng(4);
  for (const auto& sizes :
       {std::vector<ProcId>{2, 3, 2}, std::vector<ProcId>{1, 4, 2},
        std::vector<ProcId>{3, 3, 3, 3}}) {
    const auto layout = ClusterLayout::from_sizes(sizes);
    const auto s = kill_covering_set(layout, rng, 100);
    EXPECT_FALSE(s.hybrid_should_terminate) << layout.to_string();
  }
}

TEST(FailurePatterns, MidBroadcastMarksRequestedCount) {
  const auto layout = ClusterLayout::from_sizes({3, 3, 3});
  Rng rng(5);
  const auto s = mid_broadcast(layout, 4, 2, rng);
  EXPECT_EQ(s.crash_count, 4u);
  int on_broadcast = 0;
  for (const auto& spec : s.plan.specs) {
    if (spec.kind == CrashSpec::Kind::OnBroadcast) {
      ++on_broadcast;
      EXPECT_EQ(spec.broadcast_index, 2);
      EXPECT_GE(spec.deliver_count, 0);
      EXPECT_LT(spec.deliver_count, 9);
    }
  }
  EXPECT_EQ(on_broadcast, 4);
  EXPECT_THROW(mid_broadcast(layout, 99, 0, rng), ContractViolation);
}

TEST(FailurePatterns, ClassifyChecksPlanSize) {
  const auto layout = ClusterLayout::from_sizes({2, 2});
  EXPECT_THROW(classify("x", layout, CrashPlan::none(3)), ContractViolation);
}

TEST(FailurePatterns, ClassifyPredictsHybridAndBenOrIndependently) {
  // Layout {4,1,1,1}: kill the three singletons -> 3 crashes (< n/2 = 3.5,
  // so Ben-Or fine) and coverage 4 > 3.5 (hybrid fine).
  const auto layout = ClusterLayout::from_sizes({4, 1, 1, 1});
  auto plan = CrashPlan::none(7);
  for (const ProcId p : {4, 5, 6}) {
    plan.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  const auto s = classify("singletons-die", layout, plan);
  EXPECT_TRUE(s.hybrid_should_terminate);
  EXPECT_TRUE(s.benor_should_terminate);

  // Kill all of the big cluster instead: 4 crashes (> n/2: Ben-Or blocked);
  // coverage 3 <= 3.5 (hybrid blocked too).
  auto plan2 = CrashPlan::none(7);
  for (const ProcId p : {0, 1, 2, 3}) {
    plan2.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  const auto s2 = classify("big-cluster-dies", layout, plan2);
  EXPECT_FALSE(s2.hybrid_should_terminate);
  EXPECT_FALSE(s2.benor_should_terminate);
}

}  // namespace
}  // namespace hyco
