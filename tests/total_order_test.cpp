// Tests of the total-order broadcast extension: all correct processes
// deliver the same log, every payload from a correct submitter is
// delivered, crashes respecting the covering condition don't break
// anything, and the slot multiplexing machinery holds up under
// concurrent submissions.
#include <gtest/gtest.h>

#include "core/total_order_runner.h"
#include "util/assert.h"

namespace hyco {
namespace {

TEST(TotalOrder, SingleSubmissionDelivandEverywhere) {
  TobRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.submissions = {{0, 0, 101}};
  cfg.seed = 1;
  const auto r = run_tob(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "?" : r.violations[0]);
  for (const auto& log : r.logs) {
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], 101u);
  }
}

TEST(TotalOrder, ConcurrentSubmissionsSameOrderEverywhere) {
  TobRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.submissions = {{0, 0, 11}, {3, 0, 22}, {6, 0, 33},
                     {1, 5, 44}, {4, 5, 55}};
  cfg.seed = 2;
  const auto r = run_tob(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "?" : r.violations[0]);
  for (const auto& log : r.logs) {
    EXPECT_EQ(log.size(), 5u);
    EXPECT_EQ(log, r.logs[0]);  // identical, not merely prefix-compatible
  }
}

TEST(TotalOrder, StaggeredSubmissionsKeepOrdering) {
  TobRunConfig cfg(ClusterLayout::from_sizes({3, 3}));
  cfg.submissions = {{0, 0, 1000}, {5, 3000, 2000}, {2, 6000, 3000}};
  cfg.seed = 3;
  const auto r = run_tob(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "?" : r.violations[0]);
  // Well-separated submissions must deliver in real-time order.
  EXPECT_EQ(r.logs[0], (std::vector<std::uint64_t>{1000, 2000, 3000}));
}

TEST(TotalOrder, SurvivesMinorityCrash) {
  TobRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.submissions = {{1, 0, 7}, {4, 10, 8}, {5, 20, 9}};
  cfg.seed = 4;
  cfg.crashes = CrashPlan::none(7);
  cfg.crashes.specs[0] = CrashSpec::at_time(50);
  cfg.crashes.specs[6] = CrashSpec::at_time(60);
  const auto r = run_tob(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "?" : r.violations[0]);
}

TEST(TotalOrder, OneForAllMajorityCrash) {
  // 5 of 7 crash; survivors p2 (majority cluster) and p0. The covering
  // set {P[0], P[1]} = 5 > 3.5 keeps one live process each, so the log
  // must still grow and agree.
  const auto layout = ClusterLayout::fig1_right();  // {0},{1..4},{5,6}
  TobRunConfig cfg(layout);
  cfg.submissions = {{2, 0, 42}, {0, 10, 43}};
  cfg.seed = 5;
  cfg.crashes = CrashPlan::none(7);
  for (const ProcId p : {1, 3, 4, 5, 6}) {
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  const auto r = run_tob(cfg);
  ASSERT_TRUE(r.prefix_agreement);
  // Both survivors must have delivered both payloads.
  for (const ProcId p : {0, 2}) {
    EXPECT_EQ(r.logs[static_cast<std::size_t>(p)].size(), 2u) << "p" << p;
  }
}

TEST(TotalOrder, CrashedSubmitterPayloadMayOrMayNotArrive) {
  // p3 submits then crashes immediately: the payload may be lost (if the
  // gossip died with it) or delivered — either way logs must agree.
  TobRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.submissions = {{3, 0, 77}, {0, 100, 88}};
  cfg.seed = 6;
  cfg.crashes = CrashPlan::none(7);
  cfg.crashes.specs[3] = CrashSpec::at_time(1);
  const auto r = run_tob(cfg);
  EXPECT_TRUE(r.prefix_agreement);
  // 88 comes from a correct process: it must be everywhere.
  for (ProcId p = 0; p < 7; ++p) {
    if (p == 3) continue;
    const auto& log = r.logs[static_cast<std::size_t>(p)];
    EXPECT_NE(std::find(log.begin(), log.end(), 88u), log.end());
  }
}

class TobSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TobSweep, RandomizedRunsAgreeAndDeliver) {
  TobRunConfig cfg(ClusterLayout::even(8, 4));
  Rng rng(mix64(GetParam(), 0x70B));
  for (int i = 0; i < 6; ++i) {
    cfg.submissions.push_back(
        {static_cast<ProcId>(rng.bounded(8)),
         static_cast<SimTime>(rng.uniform(0, 2000)),
         static_cast<std::uint64_t>(1000 + i)});
  }
  cfg.seed = GetParam();
  const auto r = run_tob(cfg);
  ASSERT_TRUE(r.success())
      << "seed " << GetParam() << ": "
      << (r.violations.empty() ? "?" : r.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TobSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(TotalOrder, RejectsNoopPayload) {
  TobRunConfig cfg(ClusterLayout::from_sizes({2, 2}));
  cfg.submissions = {{0, 0, 0}};
  EXPECT_THROW(run_tob(cfg), ContractViolation);
}

}  // namespace
}  // namespace hyco
