// Unit tests for the deterministic PRNG (util/rng.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace hyco {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  const Rng forked = parent.fork(3);
  Rng forked_copy = forked;
  Rng parent2(7);
  const Rng forked_again = parent2.fork(3);
  Rng forked_again_copy = forked_again;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(forked_copy.next_u64(), forked_again_copy.next_u64());
  }
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(7);
  Rng s1 = parent.fork(1);
  Rng s2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s1.next_u64() == s2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBothBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDegenerateRange) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform(4, 4), 4);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[r.bounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 10 * 0.15);
  }
}

TEST(Rng, BoundedZeroAndOne) {
  Rng r(17);
  EXPECT_EQ(r.bounded(0), 0u);
  EXPECT_EQ(r.bounded(1), 0u);
}

TEST(Rng, CoinIsFairIsh) {
  Rng r(19);
  int ones = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ones += r.coin();
  EXPECT_NEAR(ones, trials / 2, 1000);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 30000, 1500);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(29);
  double sum = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / trials, 100.0, 2.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(31);
  EXPECT_THROW(r.exponential(0.0), ContractViolation);
  EXPECT_THROW(r.exponential(-1.0), ContractViolation);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  r.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PartialShufflePrefixIsDistinctSubset) {
  Rng rng(11);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  rng.partial_shuffle(v, 5);
  std::set<int> prefix(v.begin(), v.begin() + 5);
  EXPECT_EQ(prefix.size(), 5u);
  // The whole container is still a permutation of the universe.
  std::vector<int> all = v;
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Rng, PartialShuffleDrawOrderContract) {
  // Documented contract: draw i uses bounded(size - i), nothing else — so
  // the generator state after partial_shuffle(c, k) equals the state after
  // manually drawing that bound sequence.
  Rng a(77), b(77);
  std::vector<int> v(16);
  std::iota(v.begin(), v.end(), 0);
  a.partial_shuffle(v, 6);
  for (std::uint64_t i = 0; i < 6; ++i) b.bounded(16 - i);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(42, i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(Rng, SplitmixDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace hyco
