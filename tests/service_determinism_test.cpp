// Determinism tests for the replicated service layer: identical runs are
// bit-identical, executor artifacts are byte-identical at any thread count
// and chunk grain, latency histograms and service aggregates merge
// order-invariantly, and the checkpoint "s" block round-trips the service
// accumulator exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.h"
#include "exp/executor.h"
#include "exp/report.h"
#include "obs/metrics.h"
#include "service/service_runner.h"

namespace hyco {
namespace {

ExperimentSpec service_spec() {
  ExperimentSpec spec;
  spec.name = "svc-det";
  spec.algorithms = {Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(4, 2)};
  spec.runs_per_cell = 4;
  spec.base_seed = 77;
  spec.services = {ServiceAxis::of(60, 1, 16, 50'000, 0.0),
                   ServiceAxis::of(60, 1, 16, 0, 0.0)};  // batching on + off
  return spec;
}

std::string artifacts(const ExperimentSpec& spec, int threads,
                      std::uint64_t chunk) {
  ParallelExecutor::Options opts;
  opts.threads = threads;
  opts.chunk_size = chunk;
  const auto results = ParallelExecutor(opts).run(spec);
  ReportOptions ropts;
  ropts.service = true;
  ropts.net_stats = true;
  std::ostringstream out;
  write_cell_csv(out, results, ropts);
  write_cell_json(out, spec.name, results, ropts);
  return out.str();
}

TEST(ServiceDeterminism, SameConfigTwiceIsBitIdentical) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.seed = 9;
  cfg.clients = 50;
  cfg.ops_per_client = 2;
  const ServiceRunResult a = run_service(cfg);
  const ServiceRunResult b = run_service(cfg);

  ASSERT_EQ(a.slot_logs.size(), b.slot_logs.size());
  for (std::size_t p = 0; p < a.slot_logs.size(); ++p) {
    ASSERT_EQ(a.slot_logs[p].size(), b.slot_logs[p].size());
    for (std::size_t i = 0; i < a.slot_logs[p].size(); ++i) {
      EXPECT_EQ(a.slot_logs[p][i].slot, b.slot_logs[p][i].slot);
      EXPECT_EQ(a.slot_logs[p][i].batch, b.slot_logs[p][i].batch);
    }
  }
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.latency.raw_min(), b.latency.raw_min());
  EXPECT_EQ(a.latency.raw_max(), b.latency.raw_max());
  EXPECT_EQ(a.latency_hist.total(), b.latency_hist.total());
}

TEST(ServiceDeterminism, ArtifactsByteIdenticalAcrossThreadsAndGrain) {
  const ExperimentSpec spec = service_spec();
  // Batching on/off are cells of the same grid here, so this also pins
  // "threads 1 vs 4 byte-identical decided aggregates" for both policies.
  const std::string t1 = artifacts(spec, 1, 1024);
  const std::string t4 = artifacts(spec, 4, 1024);
  const std::string t4_fine = artifacts(spec, 4, 1);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t4_fine);
}

TEST(ServiceDeterminism, LatencyHistogramMergeIsOrderInvariant) {
  ServiceRunConfig cfg(ClusterLayout::even(4, 2));
  cfg.clients = 30;
  std::vector<obs::LogHistogram> shards;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    cfg.seed = seed;
    shards.push_back(run_service(cfg).latency_hist);
  }
  obs::LogHistogram fwd;
  for (const auto& h : shards) fwd.merge(h);
  obs::LogHistogram rev;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) rev.merge(*it);
  EXPECT_EQ(fwd.total(), rev.total());
  for (double q : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(fwd.percentile(q), rev.percentile(q));
  }
}

TEST(ServiceDeterminism, ServiceAggMergeIsOrderInvariant) {
  const ExperimentSpec spec = service_spec();
  const auto cells = spec.expand();
  std::vector<RunRecord> records;
  for (std::uint64_t k = 0; k < cells[0].runs; ++k) {
    const ServiceRunConfig cfg = cells[0].service_run_config(k);
    records.push_back(extract_service_record(k, cfg.seed, run_service(cfg)));
  }
  // One record per chunk, folded forward vs backward.
  ServiceAgg fwd, rev;
  for (const auto& r : records) {
    ServiceAgg chunk;
    chunk.add(r);
    fwd.merge(chunk);
  }
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    ServiceAgg chunk;
    chunk.add(*it);
    rev.merge(chunk);
  }
  EXPECT_EQ(fwd.active_runs, rev.active_runs);
  EXPECT_EQ(fwd.ops.mean(), rev.ops.mean());
  EXPECT_EQ(fwd.rate.percentile(50), rev.rate.percentile(50));
  EXPECT_EQ(fwd.latency.mean(), rev.latency.mean());
  EXPECT_EQ(fwd.latency_hist.percentile(99), rev.latency_hist.percentile(99));
}

TEST(ServiceDeterminism, CheckpointRoundTripsTheServiceBlock) {
  const ExperimentSpec spec = service_spec();
  const auto cells = spec.expand();
  ParallelExecutor::Options opts;
  opts.threads = 1;
  const std::uint64_t fingerprint = grid_fingerprint(
      cells, opts.reservoir_capacity, opts.failure_capacity);

  std::ostringstream ckpt;
  write_checkpoint_header(ckpt, fingerprint);
  const auto direct = ParallelExecutor(opts).run(spec);
  for (const auto& res : direct) {
    append_checkpoint_cell(ckpt, res.cell.index, res.acc);
  }

  std::istringstream in(ckpt.str());
  CheckpointData loaded = load_checkpoint_data(in, fingerprint);
  ASSERT_EQ(loaded.cells.size(), cells.size());
  std::vector<CellResult> restored;
  for (auto& [index, acc] : loaded.cells) {
    restored.emplace_back(cells[index], std::move(acc));
  }

  ReportOptions ropts;
  ropts.service = true;
  std::ostringstream a, b;
  write_cell_csv(a, direct, ropts);
  write_cell_csv(b, restored, ropts);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace hyco
