// Determinism regression suite guarding the event-core rewrite: the same
// consensus grid must produce byte-identical CSV/JSON artifacts when run
// twice, and when executed on 1 vs 4 worker threads (the bench/sweep path:
// ParallelExecutor + report emitters is exactly what the sweep CLI renders).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/runner.h"
#include "exp/executor.h"
#include "exp/report.h"
#include "exp/spec.h"
#include "scenario/scenario.h"
#include "workload/failure_patterns.h"

namespace hyco {
namespace {

/// A small but representative grid: both hybrid algorithms, two layouts,
/// crash-free and mid-broadcast-crash cells (the latter exercises the
/// partial-Fisher–Yates scripted-crash path inside SimNetwork::broadcast),
/// and a faulty scenario axis (loss, duplication, a healing cut — every
/// fault draw must come from the run's seeded Rng).
ExperimentSpec small_grid() {
  ExperimentSpec spec;
  spec.name = "determinism-grid";
  spec.algorithms = {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin};
  spec.layouts = {ClusterLayout::even(8, 4), ClusterLayout::even(12, 3)};
  spec.crashes = {CrashAxis::none(),
                  CrashAxis::of("mid-broadcast",
                                [](const ClusterLayout& l) {
                                  Rng rng(0xD5);
                                  return failure_patterns::mid_broadcast(
                                             l, 2, 1, rng)
                                      .plan;
                                })};
  ScenarioConfig faulty;
  faulty.link.loss = 0.05;
  faulty.link.dup = 0.05;
  faulty.partitions.push_back(parse_partition_spec("cluster:0@100..800"));
  spec.scenarios = {ScenarioAxis::none(), ScenarioAxis::of(faulty)};
  spec.runs_per_cell = 6;
  spec.max_rounds = 500;  // lossy cells may park instead of terminating
  spec.base_seed = 0xDE7;
  return spec;
}

/// Renders the sweep CLI's artifacts (CSV + JSON) for a finished grid.
std::string render(const std::vector<CellResult>& results) {
  std::ostringstream csv, json;
  write_cell_csv(csv, results);
  write_cell_json(json, "determinism-grid", results);
  return csv.str() + "\n---\n" + json.str();
}

std::string run_grid(std::int64_t threads, std::uint64_t lanes = 1) {
  ParallelExecutor::Options opts;
  opts.threads = threads;
  opts.lanes = lanes;
  const ParallelExecutor exec(opts);
  return render(exec.run(small_grid()));
}

TEST(Determinism, GridTwiceIsByteIdentical) {
  const std::string first = run_grid(2);
  const std::string second = run_grid(2);
  EXPECT_EQ(first, second);
}

TEST(Determinism, ThreadCountDoesNotChangeArtifacts) {
  const std::string one = run_grid(1);
  const std::string four = run_grid(4);
  EXPECT_EQ(one, four);
}

TEST(Determinism, LaneCountDoesNotChangeArtifacts) {
  // The multi-lane executor interleaves K ConsensusRuns tick-by-tick per
  // worker; each run's simulator is self-contained and cohort results fold
  // in run-index order, so artifacts must match the sequential path byte
  // for byte — including the scripted-crash and faulty-scenario cells.
  const std::string sequential = run_grid(1, 1);
  const std::string laned = run_grid(1, 4);
  EXPECT_EQ(sequential, laned);
  // Threads and lanes compose.
  const std::string both = run_grid(2, 3);
  EXPECT_EQ(sequential, both);
}

TEST(Determinism, SingleRunReplaysBitForBit) {
  RunConfig cfg(ClusterLayout::even(8, 4));
  cfg.alg = Algorithm::HybridCommonCoin;
  cfg.seed = 0xFEED;
  cfg.enable_trace = true;
  const RunResult a = run_consensus(cfg);
  const RunResult b = run_consensus(cfg);
  ASSERT_FALSE(a.trace_dump.empty());
  EXPECT_EQ(a.trace_dump, b.trace_dump);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.net.unicasts_sent, b.net.unicasts_sent);
  EXPECT_EQ(a.net.delivered, b.net.delivered);
}

TEST(Determinism, ScriptedMidBroadcastCrashReplaysBitForBit) {
  const auto layout = ClusterLayout::even(8, 4);
  Rng rng(0xC4A5);
  const CrashPlan plan =
      failure_patterns::mid_broadcast(layout, 3, 0, rng).plan;

  RunConfig cfg(layout);
  cfg.alg = Algorithm::HybridLocalCoin;
  cfg.seed = 0xAB;
  cfg.crashes = plan;
  cfg.enable_trace = true;
  const RunResult a = run_consensus(cfg);
  const RunResult b = run_consensus(cfg);
  EXPECT_EQ(a.trace_dump, b.trace_dump);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_TRUE(a.safe());
}

}  // namespace
}  // namespace hyco
