// Unit tests for delay models and the discrete-event network, including the
// crash semantics of Section II-A: reliable channels, unreliable broadcast
// under sender crash (arbitrary subset), no steps after a crash.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace hyco {
namespace {

Message msg() { return Message::phase_msg(1, Phase::One, Estimate::Zero); }

TEST(DelayModels, ConstantAlwaysFixed) {
  ConstantDelay d(42);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.delay(0, 1, msg(), 0, rng), 42);
  }
}

TEST(DelayModels, UniformWithinRange) {
  UniformDelay d(10, 20);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.delay(0, 1, msg(), 0, rng);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 20);
  }
}

TEST(DelayModels, UniformRejectsBadRange) {
  EXPECT_THROW(UniformDelay(20, 10), ContractViolation);
  EXPECT_THROW(UniformDelay(-5, 10), ContractViolation);
}

TEST(DelayModels, ExponentialRespectsFloor) {
  ExponentialDelay d(100.0, 7);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(d.delay(0, 1, msg(), 0, rng), 7);
  }
}

TEST(DelayModels, AdversarialSeesMessage) {
  AdversarialDelay d([](ProcId, ProcId, const Message& m, SimTime, Rng&) {
    return m.est == Estimate::Zero ? SimTime{1000} : SimTime{1};
  });
  Rng rng(4);
  EXPECT_EQ(d.delay(0, 1, msg(), 0, rng), 1000);
  EXPECT_EQ(d.delay(0, 1, Message::phase_msg(1, Phase::One, Estimate::One), 0,
                    rng),
            1);
}

TEST(DelayModels, AdversarialNegativeDelayRejected) {
  AdversarialDelay d(
      [](ProcId, ProcId, const Message&, SimTime, Rng&) { return SimTime{-1}; });
  Rng rng(5);
  EXPECT_THROW(d.delay(0, 1, msg(), 0, rng), ContractViolation);
}

TEST(DelayModels, FactoryBuildsConfiguredKind) {
  Rng rng(6);
  auto c = make_delay_model(DelayConfig::constant_of(9));
  EXPECT_EQ(c->delay(0, 1, msg(), 0, rng), 9);
  auto u = make_delay_model(DelayConfig::uniform(1, 2));
  const auto v = u->delay(0, 1, msg(), 0, rng);
  EXPECT_TRUE(v == 1 || v == 2);
  auto e = make_delay_model(DelayConfig::exponential(50));
  EXPECT_GE(e->delay(0, 1, msg(), 0, rng), 1);
}

struct NetFixture {
  explicit NetFixture(ProcId n, const CrashPlan* plan = nullptr)
      : sim(7), delay(10), tracker(static_cast<std::size_t>(n)),
        net(sim, delay, tracker, n, plan) {
    net.set_deliver([this](ProcId to, ProcId from, const Message& m) {
      deliveries.push_back({to, from, m});
    });
  }
  struct Delivery {
    ProcId to;
    ProcId from;
    Message m;
  };
  Simulator sim;
  ConstantDelay delay;
  CrashTracker tracker;
  SimNetwork net;
  std::vector<Delivery> deliveries;
};

TEST(SimNetwork, DeliversPointToPoint) {
  NetFixture f(3);
  f.net.send(0, 2, msg());
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].to, 2);
  EXPECT_EQ(f.deliveries[0].from, 0);
  EXPECT_EQ(f.net.stats().delivered, 1u);
}

TEST(SimNetwork, BroadcastReachesEveryoneIncludingSelf) {
  NetFixture f(4);
  f.net.broadcast(1, msg());
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 4u);
  bool self_delivery = false;
  for (const auto& d : f.deliveries) self_delivery |= (d.to == 1);
  EXPECT_TRUE(self_delivery);
  EXPECT_EQ(f.net.stats().broadcasts, 1u);
}

TEST(SimNetwork, CrashedSenderDropsTraffic) {
  NetFixture f(3);
  f.tracker.crash(0, 0);
  f.net.send(0, 1, msg());
  f.net.broadcast(0, msg());
  f.sim.run();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.net.stats().dropped_sender_crashed, 2u);
}

TEST(SimNetwork, CrashedReceiverDropsAtDeliveryTime) {
  NetFixture f(2);
  f.net.send(0, 1, msg());
  // Crash the receiver before the (t=10) delivery fires.
  f.sim.schedule_at(5, [&] { f.tracker.crash(1, 5); });
  f.sim.run();
  EXPECT_TRUE(f.deliveries.empty());
  EXPECT_EQ(f.net.stats().dropped_receiver_crashed, 1u);
}

TEST(SimNetwork, InFlightMessagesSurviveSenderCrash) {
  // A message sent BEFORE the crash is still delivered (crash stops future
  // steps, it does not retract messages in transit).
  NetFixture f(2);
  f.net.send(0, 1, msg());
  f.sim.schedule_at(1, [&] { f.tracker.crash(0, 1); });
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 1u);
}

TEST(SimNetwork, MidBroadcastCrashDeliversSubsetThenHalts) {
  CrashPlan plan = CrashPlan::none(5);
  plan.specs[2] = CrashSpec::on_broadcast(1, 2);  // 2nd broadcast, 2 receivers
  NetFixture f(5, &plan);
  f.net.broadcast(2, msg());  // broadcast #0: full
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 5u);
  f.deliveries.clear();

  f.net.broadcast(2, msg());  // broadcast #1: partial, then crash
  f.sim.run();
  // The arbitrary 2-element subset may include the (now crashed) sender
  // itself, whose self-delivery is then dropped — so 1 or 2 live deliveries.
  EXPECT_GE(f.deliveries.size(), 1u);
  EXPECT_LE(f.deliveries.size(), 2u);
  EXPECT_TRUE(f.tracker.is_crashed(2));

  const auto after_partial = f.deliveries.size();
  f.net.broadcast(2, msg());  // dead: nothing flows
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), after_partial);
}

TEST(SimNetwork, OutOfRangeIdsThrow) {
  NetFixture f(2);
  EXPECT_THROW(f.net.send(0, 5, msg()), ContractViolation);
  EXPECT_THROW(f.net.send(-1, 1, msg()), ContractViolation);
  EXPECT_THROW(f.net.broadcast(7, msg()), ContractViolation);
}

TEST(SimNetwork, StatsCountUnicasts) {
  NetFixture f(3);
  f.net.broadcast(0, msg());
  f.net.send(1, 2, msg());
  f.sim.run();
  EXPECT_EQ(f.net.stats().unicasts_sent, 4u);
  EXPECT_EQ(f.net.stats().delivered, 4u);
}

}  // namespace
}  // namespace hyco
