// Tests of the hybrid-model atomic register (one-for-all ABD emulation):
// atomicity across random workloads, the cluster-closure quorum property
// (a register op survives a majority crash with a live majority cluster),
// and the standalone history checker.
#include <gtest/gtest.h>

#include "util/assert.h"
#include "workload/register_harness.h"

namespace hyco {
namespace {

TEST(HybridRegister, SingleWriterSingleReaderBasics) {
  RegisterRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.ops_per_process = 4;
  cfg.seed = 1;
  const auto r = run_register_workload(cfg);
  ASSERT_TRUE(r.success()) << (r.violations.empty() ? "incomplete"
                                                    : r.violations[0]);
  EXPECT_EQ(r.history.size(), 7u * 4u);
}

TEST(HybridRegister, ReadsSeeCompletedWrites) {
  // With write_fraction 1.0 then a read-only pass we cannot easily
  // interleave via config; instead rely on mixed workload + checker rule:
  // any read after a completed write must return ts >= that write's.
  RegisterRunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
  cfg.ops_per_process = 8;
  cfg.write_fraction = 0.7;
  cfg.seed = 2;
  const auto r = run_register_workload(cfg);
  ASSERT_TRUE(r.atomicity_ok) << r.violations[0];
  // At least one read observed a non-initial value in a write-heavy run.
  bool read_saw_write = false;
  for (const auto& op : r.history) {
    if (!op.is_write && op.ts.seq > 0) read_saw_write = true;
  }
  EXPECT_TRUE(read_saw_write);
}

class RegisterSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RegisterSweep, RandomWorkloadsAreAtomic) {
  const auto [shape, seed] = GetParam();
  const auto layout = shape == 0   ? ClusterLayout::from_sizes({2, 3, 2})
                      : shape == 1 ? ClusterLayout::singletons(5)
                      : shape == 2 ? ClusterLayout::single(6)
                                   : ClusterLayout::even(12, 4);
  RegisterRunConfig cfg(layout);
  cfg.ops_per_process = 6;
  cfg.seed = seed;
  cfg.delays = (seed % 2 == 0) ? DelayConfig::uniform(1, 400)
                               : DelayConfig::exponential(90.0);
  const auto r = run_register_workload(cfg);
  ASSERT_TRUE(r.atomicity_ok)
      << "seed " << seed << ": " << r.violations[0];
  EXPECT_TRUE(r.all_correct_completed) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RegisterSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Range<std::uint64_t>(1, 11)));

TEST(HybridRegister, SurvivesMajorityCrashWithMajorityCluster) {
  // fig1_right: crash everything but p2 (member of the majority cluster)
  // at t=0; the survivor must still complete ALL its operations — the
  // one-for-all quorum at work. Pure-ABD over processes would block
  // (no process majority alive).
  const auto layout = ClusterLayout::fig1_right();
  RegisterRunConfig cfg(layout);
  cfg.ops_per_process = 5;
  cfg.seed = 3;
  cfg.crashes = CrashPlan::none(7);
  for (const ProcId p : {0, 1, 3, 4, 5, 6}) {
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(0);
  }
  const auto r = run_register_workload(cfg);
  ASSERT_TRUE(r.atomicity_ok) << r.violations[0];
  EXPECT_TRUE(r.all_correct_completed) << "the survivor must finish its ops";
  EXPECT_EQ(r.crashed, 6u);
}

TEST(HybridRegister, BlocksWithoutCoveringSetButHistoryStaysAtomic) {
  // Kill whole clusters covering a majority: pending ops cannot finish,
  // but everything that DID complete must still be atomic.
  const auto layout = ClusterLayout::from_sizes({2, 3, 2});
  RegisterRunConfig cfg(layout);
  cfg.ops_per_process = 50;  // far more than can finish before the crash
  cfg.seed = 4;
  cfg.crashes = CrashPlan::none(7);
  for (const ProcId p : {2, 3, 4, 5, 6}) {  // clusters 1 and 2 die at t=800
    cfg.crashes.specs[static_cast<std::size_t>(p)] = CrashSpec::at_time(800);
  }
  const auto r = run_register_workload(cfg);
  EXPECT_TRUE(r.atomicity_ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_FALSE(r.all_correct_completed);
}

TEST(RegisterChecker, AcceptsLegalHistory) {
  std::vector<RegOpRecord> h{
      {0, true, 100, {1, 0}, 0, 10},
      {1, false, 100, {1, 0}, 20, 30},
      {1, true, 200, {2, 1}, 40, 50},
      {0, false, 200, {2, 1}, 60, 70},
  };
  std::vector<std::string> v;
  EXPECT_TRUE(check_register_atomicity(h, v));
}

TEST(RegisterChecker, CatchesStaleReadAfterWrite) {
  std::vector<RegOpRecord> h{
      {0, true, 100, {1, 0}, 0, 10},
      {1, false, 0, {0, -1}, 20, 30},  // reads initial AFTER the write ended
  };
  std::vector<std::string> v;
  EXPECT_FALSE(check_register_atomicity(h, v));
}

TEST(RegisterChecker, CatchesNewOldInversion) {
  std::vector<RegOpRecord> h{
      {0, true, 100, {1, 0}, 0, 10},
      {1, true, 200, {2, 1}, 15, 25},
      {2, false, 200, {2, 1}, 30, 40},
      {3, false, 100, {1, 0}, 45, 55},  // older value read later
  };
  std::vector<std::string> v;
  EXPECT_FALSE(check_register_atomicity(h, v));
}

TEST(RegisterChecker, CatchesDuplicateWriteTimestamps) {
  std::vector<RegOpRecord> h{
      {0, true, 100, {1, 0}, 0, 10},
      {0, true, 101, {1, 0}, 20, 30},
  };
  std::vector<std::string> v;
  EXPECT_FALSE(check_register_atomicity(h, v));
}

TEST(RegisterChecker, CatchesValueMismatch) {
  std::vector<RegOpRecord> h{
      {0, true, 100, {1, 0}, 0, 10},
      {1, false, 999, {1, 0}, 20, 30},
  };
  std::vector<std::string> v;
  EXPECT_FALSE(check_register_atomicity(h, v));
}

TEST(HybridRegister, RejectsConcurrentOpsFromOneProcess) {
  const auto layout = ClusterLayout::from_sizes({2, 2});
  Simulator sim(1);
  ConstantDelay delay(10);
  CrashTracker tracker(4);
  SimNetwork net(sim, delay, tracker, 4);
  ClusterRegState state;
  RegisterProcess proc(0, layout, net, state);
  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    if (to == 0) proc.on_message(from, m);
  });
  proc.write(1, nullptr);
  EXPECT_TRUE(proc.op_in_flight());
  EXPECT_THROW(proc.read(nullptr), ContractViolation);
}

}  // namespace
}  // namespace hyco
