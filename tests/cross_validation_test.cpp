// Cross-validation of the paper's reduction claims (Section III-B):
//  * m = n (singleton clusters): Algorithm 2 IS Ben-Or — our independent
//    counting-based Ben-Or must behave statistically identically;
//  * m = 1 (one cluster): the cluster consensus object decides everything
//    in round 1;
//  * fewer clusters => fewer effective coins => faster expected convergence
//    for the local-coin algorithm.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "util/stats.h"

namespace hyco {
namespace {

double mean_decision_rounds(Algorithm alg, const ClusterLayout& layout,
                            int runs, std::uint64_t seed_base) {
  Summary rounds;
  for (int i = 0; i < runs; ++i) {
    RunConfig cfg(layout);
    cfg.alg = alg;
    cfg.inputs = split_inputs(layout.n());
    cfg.seed = mix64(seed_base, static_cast<std::uint64_t>(i));
    const auto r = run_consensus(cfg);
    EXPECT_TRUE(r.success());
    rounds.add(static_cast<double>(r.max_decision_round));
  }
  return rounds.mean();
}

TEST(CrossValidation, HybridWithSingletonsMatchesBenOrStatistically) {
  const ProcId n = 6;
  const int runs = 150;
  const double hybrid = mean_decision_rounds(
      Algorithm::HybridLocalCoin, ClusterLayout::singletons(n), runs, 101);
  const double benor = mean_decision_rounds(
      Algorithm::BenOr, ClusterLayout::singletons(n), runs, 202);
  // Identical algorithms, independent randomness: means within 35%.
  EXPECT_NEAR(hybrid, benor, 0.35 * std::max(hybrid, benor))
      << "hybrid(m=n)=" << hybrid << " ben-or=" << benor;
}

TEST(CrossValidation, SingleClusterAlwaysDecidesRoundOne) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RunConfig cfg(ClusterLayout::single(9));
    cfg.alg = Algorithm::HybridLocalCoin;
    cfg.inputs = split_inputs(9);
    cfg.seed = seed;
    const auto r = run_consensus(cfg);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.max_decision_round, 1) << "seed " << seed;
  }
}

TEST(CrossValidation, FewerClustersConvergeFasterWithLocalCoins) {
  // n = 12 split inputs: expected rounds should not increase as m shrinks
  // (per-cluster agreement collapses divergent estimates). Compare m = 1,
  // m = 2 vs m = 12 with generous sampling.
  const ProcId n = 12;
  const int runs = 120;
  const double m1 = mean_decision_rounds(Algorithm::HybridLocalCoin,
                                         ClusterLayout::single(n), runs, 11);
  const double m2 = mean_decision_rounds(Algorithm::HybridLocalCoin,
                                         ClusterLayout::even(n, 2), runs, 22);
  const double mn = mean_decision_rounds(
      Algorithm::HybridLocalCoin, ClusterLayout::singletons(n), runs, 33);
  EXPECT_EQ(m1, 1.0);
  EXPECT_LE(m2, mn * 1.10) << "m=2 should not be slower than m=n";
  EXPECT_LT(m1, mn);
}

TEST(CrossValidation, CommonCoinRoundsFlatInN) {
  // Algorithm 3's expected rounds are O(1): compare n = 4 vs n = 24 (same
  // m = 4 shape). Means should be within a small constant of each other.
  const int runs = 150;
  const double small = mean_decision_rounds(
      Algorithm::HybridCommonCoin, ClusterLayout::even(4, 4), runs, 44);
  const double large = mean_decision_rounds(
      Algorithm::HybridCommonCoin, ClusterLayout::even(24, 4), runs, 55);
  EXPECT_LT(small, 5.0);
  EXPECT_LT(large, 5.0);
  EXPECT_NEAR(small, large, 1.5);
}

TEST(CrossValidation, CommonCoinBeatsLocalCoinOnSplitInputs) {
  const ProcId n = 10;
  const int runs = 120;
  const auto layout = ClusterLayout::singletons(n);
  const double lc = mean_decision_rounds(Algorithm::HybridLocalCoin, layout,
                                         runs, 66);
  const double cc = mean_decision_rounds(Algorithm::HybridCommonCoin, layout,
                                         runs, 77);
  EXPECT_LT(cc, lc + 0.5) << "common coin should not be slower";
}

TEST(CrossValidation, BothHybridAlgorithmsAgreeOnUnanimousValue) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const auto alg :
         {Algorithm::HybridLocalCoin, Algorithm::HybridCommonCoin}) {
      RunConfig cfg(ClusterLayout::from_sizes({2, 3, 2}));
      cfg.alg = alg;
      cfg.inputs = uniform_inputs(7, Estimate::One);
      cfg.seed = seed;
      const auto r = run_consensus(cfg);
      ASSERT_TRUE(r.success());
      EXPECT_EQ(r.decided_value, Estimate::One);
    }
  }
}

}  // namespace
}  // namespace hyco
