// Optional execution tracing: a bounded ring of timestamped records that the
// runner can dump when a run misbehaves (safety violation, unexpected
// timeout). Tracing costs nothing when disabled.
//
// Causal identity: every record carries a message id (`mid`) and a parent
// event id (`parent`). A mid is derived from the event queue's insertion
// sequence of the scheduled Deliver event (seq + 1; 0 = no message), so the
// Send that schedules a delivery and the Deliver/Drop that consumes it share
// one id — a happens-before edge recoverable offline. The parent id is the
// mid of the delivery inside whose handler the record was made (the network
// opens a context window around each dispatch), so records caused by a
// delivery — the Sends the handler emits, phase starts, decides — chain back
// to it. Sequence numbers are assigned unconditionally by the event queue,
// tracing on or off, so recording them is strictly out of band: metrics-on
// and metrics-off runs stay byte-identical.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace hyco {

/// Categories of traced happenings. The enum order is the binary trace
/// serialization — append new kinds at the end, never reorder.
enum class TraceKind : std::uint8_t {
  Send,
  Deliver,
  Drop,
  Crash,
  ConsPropose,
  PhaseStart,
  Decide,
  Note,
  Quorum,      ///< a phase exchange crossed its quorum threshold
  SvcOp,       ///< service: client op submitted to its origin replica
  SvcFlush,    ///< service: a batch flushed into the consensus pipeline
  SvcSlot,     ///< service: a consensus slot started
  SvcDeliver,  ///< service: a decided batch delivered at a replica
};

/// Highest valid TraceKind — the serialization bound for readers/writers.
inline constexpr TraceKind kTraceKindLast = TraceKind::SvcDeliver;

const char* to_cstring(TraceKind k);

/// One trace record.
struct TraceRecord {
  SimTime at = 0;
  TraceKind kind = TraceKind::Note;
  ProcId proc = -1;
  std::uint64_t mid = 0;     ///< message id (event seq + 1); 0 = none
  std::uint64_t parent = 0;  ///< mid of the delivery this record ran under
  std::string detail;
};

/// Bounded in-memory trace. Disabled by default.
///
/// Storage is a preallocated ring of records whose detail strings are reused
/// in place (assign into the slot's retained capacity), so a warmed-up trace
/// records without allocating — enabling tracing does not distort the
/// timings it measures with deque node churn or per-record string
/// allocations.
class Trace {
 public:
  /// `capacity` bounds memory; older records are discarded first.
  explicit Trace(std::size_t capacity = 4096)
      : slots_(capacity == 0 ? 1 : capacity) {}

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime at, TraceKind kind, ProcId proc,
              std::string_view detail, std::uint64_t mid = 0);

  /// Causal context window: records made while a context is set inherit it
  /// as their parent id. The network sets the delivered message's mid around
  /// each handler dispatch; timer-originated records keep parent 0.
  void set_context(std::uint64_t mid) { context_ = mid; }
  void clear_context() { context_ = 0; }
  [[nodiscard]] std::uint64_t context() const { return context_; }

  /// Records currently held (<= capacity).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Total records ever recorded; recorded() > size() means the ring
  /// wrapped and the dump is the trailing window.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// Visits held records oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(slots_[(head_ + i) % slots_.size()]);
    }
  }

  /// Human-readable dump, one record per line.
  void dump(std::ostream& os) const;

  void clear();

 private:
  std::vector<TraceRecord> slots_;  ///< fixed ring; details pooled in place
  std::size_t head_ = 0;            ///< index of the oldest record
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t context_ = 0;  ///< mid of the delivery being dispatched
  bool enabled_ = false;
};

}  // namespace hyco
