// Optional execution tracing: a bounded ring of timestamped records that the
// runner can dump when a run misbehaves (safety violation, unexpected
// timeout). Tracing costs nothing when disabled.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace hyco {

/// Categories of traced happenings.
enum class TraceKind : std::uint8_t {
  Send,
  Deliver,
  Drop,
  Crash,
  ConsPropose,
  PhaseStart,
  Decide,
  Note,
};

const char* to_cstring(TraceKind k);

/// One trace record.
struct TraceRecord {
  SimTime at = 0;
  TraceKind kind = TraceKind::Note;
  ProcId proc = -1;
  std::string detail;
};

/// Bounded in-memory trace. Disabled by default.
///
/// Storage is a preallocated ring of records whose detail strings are reused
/// in place (assign into the slot's retained capacity), so a warmed-up trace
/// records without allocating — enabling tracing does not distort the
/// timings it measures with deque node churn or per-record string
/// allocations.
class Trace {
 public:
  /// `capacity` bounds memory; older records are discarded first.
  explicit Trace(std::size_t capacity = 4096)
      : slots_(capacity == 0 ? 1 : capacity) {}

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime at, TraceKind kind, ProcId proc,
              std::string_view detail);

  /// Records currently held (<= capacity).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Total records ever recorded; recorded() > size() means the ring
  /// wrapped and the dump is the trailing window.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// Visits held records oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(slots_[(head_ + i) % slots_.size()]);
    }
  }

  /// Human-readable dump, one record per line.
  void dump(std::ostream& os) const;

  void clear();

 private:
  std::vector<TraceRecord> slots_;  ///< fixed ring; details pooled in place
  std::size_t head_ = 0;            ///< index of the oldest record
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
};

}  // namespace hyco
