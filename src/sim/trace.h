// Optional execution tracing: a bounded ring of timestamped records that the
// runner can dump when a run misbehaves (safety violation, unexpected
// timeout). Tracing costs nothing when disabled.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "core/types.h"

namespace hyco {

/// Categories of traced happenings.
enum class TraceKind : std::uint8_t {
  Send,
  Deliver,
  Drop,
  Crash,
  ConsPropose,
  PhaseStart,
  Decide,
  Note,
};

const char* to_cstring(TraceKind k);

/// One trace record.
struct TraceRecord {
  SimTime at = 0;
  TraceKind kind = TraceKind::Note;
  ProcId proc = -1;
  std::string detail;
};

/// Bounded in-memory trace. Disabled by default.
class Trace {
 public:
  /// `capacity` bounds memory; older records are discarded first.
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime at, TraceKind kind, ProcId proc, std::string detail);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }

  /// Human-readable dump, one record per line.
  void dump(std::ostream& os) const;

  void clear() { records_.clear(); }

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::deque<TraceRecord> records_;
};

}  // namespace hyco
