#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace hyco {

Simulator::Simulator(std::uint64_t seed) : rng_(mix64(seed, 0x51C0DE)) {}

void Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  HYCO_CHECK_MSG(delay >= 0, "negative delay " << delay);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  HYCO_CHECK_MSG(at >= now_, "schedule_at(" << at << ") is in the past (now "
                                            << now_ << ")");
  queue_.push(at, std::move(fn));
}

std::uint64_t Simulator::schedule_deliver(SimTime delay, ProcId from,
                                          ProcId to, const Message& m) {
  HYCO_CHECK_MSG(delay >= 0, "negative delay " << delay);
  return queue_.push_deliver(now_ + delay, from, to, m);
}

void Simulator::set_deliver_sink(DeliverSink* sink) {
  HYCO_CHECK_MSG(sink != nullptr, "deliver sink must not be null");
  HYCO_CHECK_MSG(sink_ == nullptr || sink_ == sink,
                 "a different deliver sink is already registered");
  sink_ = sink;
}

void Simulator::clear_deliver_sink(const DeliverSink* sink) {
  if (sink_ == sink) sink_ = nullptr;
}

std::size_t DeliverSink::deliver_batch(const TickItem* items,
                                       std::size_t count,
                                       const bool& halted) {
  for (std::size_t i = 0; i < count; ++i) {
    deliver_event(items[i].from, items[i].to, *items[i].msg, items[i].seq);
    if (halted) return i + 1;
  }
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const Event ev = queue_.pop();
  now_ = ev.at;
  ++executed_;
  if (ev.kind == Event::Kind::Deliver) {
    HYCO_CHECK_MSG(sink_ != nullptr,
                   "Deliver event fired with no deliver sink registered");
    sink_->deliver_event(ev.from, ev.to, *ev.msg, ev.seq);
  } else {
    // Move the closure out before running it: the callback may schedule new
    // callbacks, which can recycle or grow the pool slot it came from.
    const std::function<void()> fn = queue_.take_callback(ev.slot);
    fn();
  }
  return true;
}

std::optional<StopReason> Simulator::run_tick(std::uint64_t max_events,
                                              SimTime time_limit) {
  // halt() is only observable from inside a dispatched event; a set flag
  // here is a leftover from a previous Halted return, matching run()'s old
  // on-entry reset.
  halted_ = false;
  if (queue_.empty()) return StopReason::Quiescent;
  if (executed_ >= max_events) return StopReason::EventLimit;
  // Open the tick before the time-limit check: pop_tick is two-phase, so a
  // beyond-limit tick commits as zero-consumed and everything stays queued.
  // This reads the minimum time off the already-activated bucket instead of
  // paying next_time()'s separate cursor walk on every tick.
  const TickSpan span = queue_.pop_tick(max_events - executed_);
  if (span.at > time_limit) {
    queue_.commit_tick(0);
    return StopReason::TimeLimit;
  }
  now_ = span.at;
  std::size_t done = 0;
  while (done < span.count) {
    const TickItem& it = span.items[done];
    if (it.kind == Event::Kind::Deliver) {
      // Maximal same-tick run of deliveries: one sink call for the whole
      // burst. The sink honors `halted_` mid-run and reports how far it got.
      std::size_t j = done + 1;
      while (j < span.count &&
             span.items[j].kind == Event::Kind::Deliver) {
        ++j;
      }
      HYCO_CHECK_MSG(sink_ != nullptr,
                     "Deliver event fired with no deliver sink registered");
      const std::size_t used =
          sink_->deliver_batch(span.items + done, j - done, halted_);
      executed_ += used;
      done += used;
    } else {
      const std::function<void()> fn = queue_.take_callback(it.slot);
      ++executed_;
      ++done;
      fn();
    }
    if (halted_) break;
  }
  // Unconsumed events (halt mid-tick, or an event-limit cap) stay queued:
  // a fresh run() resumes exactly where this one stopped.
  queue_.commit_tick(done);
  if (halted_) return StopReason::Halted;
  return std::nullopt;
}

StopReason Simulator::run(std::uint64_t max_events, SimTime time_limit) {
  for (;;) {
    const std::optional<StopReason> stop = run_tick(max_events, time_limit);
    if (stop) return *stop;
  }
}

}  // namespace hyco
