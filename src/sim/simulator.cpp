#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace hyco {

Simulator::Simulator(std::uint64_t seed) : rng_(mix64(seed, 0x51C0DE)) {}

void Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  HYCO_CHECK_MSG(delay >= 0, "negative delay " << delay);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  HYCO_CHECK_MSG(at >= now_, "schedule_at(" << at << ") is in the past (now "
                                            << now_ << ")");
  queue_.push(at, std::move(fn));
}

void Simulator::schedule_deliver(SimTime delay, ProcId from, ProcId to,
                                 const Message& m) {
  HYCO_CHECK_MSG(delay >= 0, "negative delay " << delay);
  queue_.push_deliver(now_ + delay, from, to, m);
}

void Simulator::set_deliver_sink(DeliverSink* sink) {
  HYCO_CHECK_MSG(sink != nullptr, "deliver sink must not be null");
  HYCO_CHECK_MSG(sink_ == nullptr || sink_ == sink,
                 "a different deliver sink is already registered");
  sink_ = sink;
}

void Simulator::clear_deliver_sink(const DeliverSink* sink) {
  if (sink_ == sink) sink_ = nullptr;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const Event ev = queue_.pop();
  now_ = ev.at;
  ++executed_;
  if (ev.kind == Event::Kind::Deliver) {
    HYCO_CHECK_MSG(sink_ != nullptr,
                   "Deliver event fired with no deliver sink registered");
    sink_->deliver_event(ev.from, ev.to, ev.msg);
  } else {
    // Move the closure out before running it: the callback may schedule new
    // callbacks, which can recycle or grow the pool slot it came from.
    const std::function<void()> fn = queue_.take_callback(ev.slot);
    fn();
  }
  return true;
}

StopReason Simulator::run(std::uint64_t max_events, SimTime time_limit) {
  halted_ = false;
  while (!queue_.empty()) {
    if (executed_ >= max_events) return StopReason::EventLimit;
    if (queue_.next_time() > time_limit) return StopReason::TimeLimit;
    step();
    if (halted_) return StopReason::Halted;
  }
  return StopReason::Quiescent;
}

}  // namespace hyco
