#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace hyco {

Simulator::Simulator(std::uint64_t seed) : rng_(mix64(seed, 0x51C0DE)) {}

void Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  HYCO_CHECK_MSG(delay >= 0, "negative delay " << delay);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  HYCO_CHECK_MSG(at >= now_, "schedule_at(" << at << ") is in the past (now "
                                            << now_ << ")");
  queue_.push(at, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

StopReason Simulator::run(std::uint64_t max_events, SimTime time_limit) {
  halted_ = false;
  while (!queue_.empty()) {
    if (executed_ >= max_events) return StopReason::EventLimit;
    if (queue_.next_time() > time_limit) return StopReason::TimeLimit;
    step();
    if (halted_) return StopReason::Halted;
  }
  return StopReason::Quiescent;
}

}  // namespace hyco
