// Crash-failure modeling.
//
// The paper's failure model: a crash is a premature halt; a process that
// crashes executes no more steps. The broadcast macro-operation is NOT
// reliable — if the sender crashes while executing it, an arbitrary subset
// of processes receives the message. CrashSpec expresses both flavors:
// crash at a virtual time (between steps) and crash during the k-th
// broadcast with only a prefix of destinations served.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/bitset.h"

namespace hyco {

/// Per-process crash instruction.
struct CrashSpec {
  enum class Kind : std::uint8_t {
    None,         ///< never crashes
    AtTime,       ///< halts at virtual time `time`
    OnBroadcast,  ///< halts during its `broadcast_index`-th broadcast (0-based),
                  ///< delivering to only `deliver_count` randomly chosen peers
  };

  Kind kind = Kind::None;
  SimTime time = 0;
  std::int32_t broadcast_index = 0;
  std::int32_t deliver_count = 0;

  static CrashSpec none() { return {}; }
  static CrashSpec at_time(SimTime t) {
    return {Kind::AtTime, t, 0, 0};
  }
  static CrashSpec on_broadcast(std::int32_t index, std::int32_t deliver) {
    return {Kind::OnBroadcast, 0, index, deliver};
  }
};

/// A full failure pattern: one CrashSpec per process.
struct CrashPlan {
  std::vector<CrashSpec> specs;

  static CrashPlan none(std::size_t n) {
    CrashPlan p;
    p.specs.assign(n, CrashSpec::none());
    return p;
  }

  [[nodiscard]] std::size_t crash_count() const {
    std::size_t c = 0;
    for (const auto& s : specs) c += (s.kind != CrashSpec::Kind::None);
    return c;
  }
};

/// Tracks which processes are down during a simulation, and when they went
/// down. Supports the crash-recovery extension (src/scenario/): recover()
/// brings a crashed process back — it counts as correct again and messages
/// flow to it once more, but everything delivered while it was down is lost.
class CrashTracker {
 public:
  explicit CrashTracker(std::size_t n)
      : crashed_(n), crash_time_(n, kSimTimeNever) {}

  [[nodiscard]] std::size_t n() const { return crashed_.size(); }

  void crash(ProcId p, SimTime at);

  /// Crash-recovery: marks a crashed process live again. `at` is recorded
  /// as the rejoin time (recover_time()). Recovering a live process is a
  /// contract violation.
  void recover(ProcId p, SimTime at);

  [[nodiscard]] bool is_crashed(ProcId p) const {
    return crashed_.test(static_cast<std::size_t>(p));
  }

  /// Virtual time of the (latest) crash, or kSimTimeNever when live.
  [[nodiscard]] SimTime crash_time(ProcId p) const {
    return crash_time_[static_cast<std::size_t>(p)];
  }

  /// Virtual time of the latest recovery, or kSimTimeNever.
  [[nodiscard]] SimTime recover_time(ProcId p) const {
    return recover_time_.empty()
               ? kSimTimeNever
               : recover_time_[static_cast<std::size_t>(p)];
  }

  /// Processes currently live ("correct"; a recovered process counts).
  [[nodiscard]] DynamicBitset correct() const;

  [[nodiscard]] std::size_t crashed_count() const { return crashed_.count(); }

  /// Number of recover() calls.
  [[nodiscard]] std::size_t recovered_count() const { return recovered_; }

 private:
  DynamicBitset crashed_;
  std::vector<SimTime> crash_time_;
  std::vector<SimTime> recover_time_;  ///< allocated on first recover()
  std::size_t recovered_ = 0;
};

}  // namespace hyco
