#include "sim/crash.h"

#include "util/assert.h"

namespace hyco {

void CrashTracker::crash(ProcId p, SimTime at) {
  const auto idx = static_cast<std::size_t>(p);
  HYCO_CHECK_MSG(idx < crashed_.size(), "crash of unknown process " << p);
  if (crashed_.test(idx)) return;  // crashing twice is a no-op
  crashed_.set(idx);
  crash_time_[idx] = at;
}

void CrashTracker::recover(ProcId p, SimTime at) {
  const auto idx = static_cast<std::size_t>(p);
  HYCO_CHECK_MSG(idx < crashed_.size(), "recovery of unknown process " << p);
  HYCO_CHECK_MSG(crashed_.test(idx),
                 "recovery of live process p" << p << " at " << at);
  crashed_.reset(idx);
  crash_time_[idx] = kSimTimeNever;
  if (recover_time_.empty()) {
    recover_time_.assign(crashed_.size(), kSimTimeNever);
  }
  recover_time_[idx] = at;
  ++recovered_;
}

DynamicBitset CrashTracker::correct() const {
  DynamicBitset live(crashed_.size());
  live.set_all();
  live -= crashed_;
  return live;
}

}  // namespace hyco
