#include "sim/crash.h"

#include "util/assert.h"

namespace hyco {

void CrashTracker::crash(ProcId p, SimTime at) {
  const auto idx = static_cast<std::size_t>(p);
  HYCO_CHECK_MSG(idx < crashed_.size(), "crash of unknown process " << p);
  if (crashed_.test(idx)) return;  // crashing twice is a no-op
  crashed_.set(idx);
  crash_time_[idx] = at;
}

DynamicBitset CrashTracker::correct() const {
  DynamicBitset live(crashed_.size());
  live.set_all();
  live -= crashed_;
  return live;
}

}  // namespace hyco
