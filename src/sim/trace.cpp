#include "sim/trace.h"

namespace hyco {

const char* to_cstring(TraceKind k) {
  switch (k) {
    case TraceKind::Send: return "send";
    case TraceKind::Deliver: return "deliver";
    case TraceKind::Drop: return "drop";
    case TraceKind::Crash: return "crash";
    case TraceKind::ConsPropose: return "cons";
    case TraceKind::PhaseStart: return "phase";
    case TraceKind::Decide: return "decide";
    case TraceKind::Note: return "note";
  }
  return "?";
}

void Trace::record(SimTime at, TraceKind kind, ProcId proc,
                   std::string_view detail) {
  if (!enabled_) return;
  std::size_t idx;
  if (size_ < slots_.size()) {
    idx = (head_ + size_) % slots_.size();
    ++size_;
  } else {
    idx = head_;  // overwrite the oldest slot, reusing its string capacity
    head_ = (head_ + 1) % slots_.size();
  }
  TraceRecord& slot = slots_[idx];
  slot.at = at;
  slot.kind = kind;
  slot.proc = proc;
  slot.detail.assign(detail.data(), detail.size());
  ++recorded_;
}

void Trace::dump(std::ostream& os) const {
  for_each([&](const TraceRecord& r) {
    os << r.at << "ns\t" << to_cstring(r.kind) << "\tp" << r.proc << '\t'
       << r.detail << '\n';
  });
}

void Trace::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

}  // namespace hyco
