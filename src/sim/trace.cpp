#include "sim/trace.h"

namespace hyco {

const char* to_cstring(TraceKind k) {
  switch (k) {
    case TraceKind::Send: return "send";
    case TraceKind::Deliver: return "deliver";
    case TraceKind::Drop: return "drop";
    case TraceKind::Crash: return "crash";
    case TraceKind::ConsPropose: return "cons";
    case TraceKind::PhaseStart: return "phase";
    case TraceKind::Decide: return "decide";
    case TraceKind::Note: return "note";
    case TraceKind::Quorum: return "quorum";
    case TraceKind::SvcOp: return "svc_op";
    case TraceKind::SvcFlush: return "svc_flush";
    case TraceKind::SvcSlot: return "svc_slot";
    case TraceKind::SvcDeliver: return "svc_deliver";
  }
  return "?";
}

void Trace::record(SimTime at, TraceKind kind, ProcId proc,
                   std::string_view detail, std::uint64_t mid) {
  if (!enabled_) return;
  std::size_t idx;
  if (size_ < slots_.size()) {
    idx = (head_ + size_) % slots_.size();
    ++size_;
  } else {
    idx = head_;  // overwrite the oldest slot, reusing its string capacity
    head_ = (head_ + 1) % slots_.size();
  }
  TraceRecord& slot = slots_[idx];
  slot.at = at;
  slot.kind = kind;
  slot.proc = proc;
  slot.mid = mid;
  slot.parent = context_;
  slot.detail.assign(detail.data(), detail.size());
  ++recorded_;
}

void Trace::dump(std::ostream& os) const {
  for_each([&](const TraceRecord& r) {
    os << r.at << "ns\t" << to_cstring(r.kind) << "\tp" << r.proc << '\t'
       << r.detail;
    if (r.mid != 0) os << "\t[m" << r.mid << ']';
    if (r.parent != 0) os << "\t[<m" << r.parent << ']';
    os << '\n';
  });
}

void Trace::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  context_ = 0;
}

}  // namespace hyco
