#include "sim/trace.h"

#include <utility>

namespace hyco {

const char* to_cstring(TraceKind k) {
  switch (k) {
    case TraceKind::Send: return "send";
    case TraceKind::Deliver: return "deliver";
    case TraceKind::Drop: return "drop";
    case TraceKind::Crash: return "crash";
    case TraceKind::ConsPropose: return "cons";
    case TraceKind::PhaseStart: return "phase";
    case TraceKind::Decide: return "decide";
    case TraceKind::Note: return "note";
  }
  return "?";
}

void Trace::record(SimTime at, TraceKind kind, ProcId proc,
                   std::string detail) {
  if (!enabled_) return;
  if (records_.size() >= capacity_) records_.pop_front();
  records_.push_back(TraceRecord{at, kind, proc, std::move(detail)});
}

void Trace::dump(std::ostream& os) const {
  for (const auto& r : records_) {
    os << r.at << "ns\t" << to_cstring(r.kind) << "\tp" << r.proc << '\t'
       << r.detail << '\n';
  }
}

}  // namespace hyco
