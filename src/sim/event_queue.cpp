#include "sim/event_queue.h"

#include <algorithm>

namespace hyco {

EventQueue::EventQueue(const Tuning& t)
    : bucket_bits_(t.bucket_bits),
      max_bucket_bits_(t.max_bucket_bits),
      shift_(t.shift),
      max_shift_(t.max_shift),
      widen_threshold_mult_(t.widen_threshold_mult) {
  HYCO_CHECK_MSG(t.bucket_bits >= 1 && t.bucket_bits <= 24,
                 "bucket_bits out of range: " << t.bucket_bits);
  HYCO_CHECK_MSG(t.max_bucket_bits >= t.bucket_bits &&
                     t.max_bucket_bits <= 24,
                 "max_bucket_bits out of range: " << t.max_bucket_bits);
  HYCO_CHECK_MSG(t.shift <= t.max_shift && t.max_shift < 63,
                 "shift out of range: " << t.shift << "/" << t.max_shift);
  HYCO_CHECK_MSG(t.widen_threshold_mult >= 1,
                 "widen_threshold_mult must be >= 1");
  nb_ = std::uint64_t{1} << bucket_bits_;
  mask_ = nb_ - 1;
  buckets_.resize(nb_);
}

void EventQueue::reserve(std::size_t events, std::size_t callbacks) {
  // Deliver payloads: pre-size the chunk pointer table (chunks themselves
  // materialize on demand — one allocation per 4096 slots, and existing
  // chunks never move) and the free lists that can grow to slab size.
  const std::size_t chunks = (events + kChunkSize - 1) >> kChunkBits;
  if (chunks > slab_.capacity()) slab_.reserve(chunks);
  if (events > free_deliveries_.capacity()) free_deliveries_.reserve(events);
  if (callbacks > pool_.capacity()) {
    pool_.reserve(callbacks);
    free_slots_.reserve(callbacks);
  }
}

TickSpan EventQueue::pop_tick(std::uint64_t cap) {
  HYCO_CHECK(!tick_open_);
  HYCO_CHECK(!empty());
  HYCO_CHECK_MSG(cap >= 1, "pop_tick needs a positive event budget");
  flush_pending_frees();
  Bucket& b = activate();
  const Entry* e = b.items.data() + b.head;
  const std::size_t avail = b.items.size() - b.head;
  const SimTime t = e[0].at;
  // Length of the minimum-time run. With shift 0 the whole bucket shares
  // one timestamp; coarser buckets scan the sorted prefix.
  std::size_t k;
  if (shift_ == 0) {
    k = avail;
  } else {
    k = 1;
    while (k < avail && e[k].at == t) ++k;
  }
  if (cap < k) k = static_cast<std::size_t>(cap);
  // Copy the run out: handler pushes during the tick may append to (and
  // reallocate) this very bucket, so the span must not alias it.
  tick_items_.resize(k);
  TickItem* out = tick_items_.data();
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t ref = e[i].ref;
    if (ref & kDeliverBit) {
      const std::uint32_t idx = ref & ~kDeliverBit;
      const DeliverPayload& p = payload(idx);
      out[i] =
          TickItem{&p.msg, e[i].seq, p.from, p.to, idx, Event::Kind::Deliver};
    } else {
      out[i] = TickItem{nullptr, e[i].seq, -1, -1, ref,
                        Event::Kind::Callback};
    }
  }
  tick_open_ = true;
  tick_day_ = cursor_day_;
  return TickSpan{t, out, k};
}

void EventQueue::commit_tick(std::size_t consumed) {
  HYCO_CHECK(tick_open_);
  HYCO_CHECK_MSG(consumed <= tick_items_.size(),
                 "commit_tick(" << consumed << ") exceeds span of "
                                << tick_items_.size());
  tick_open_ = false;
  Bucket& b = buckets_[tick_day_ & mask_];
  b.head += static_cast<std::uint32_t>(consumed);
  cal_count_ -= consumed;
  for (std::size_t i = 0; i < consumed; ++i) {
    const TickItem& it = tick_items_[i];
    if (it.kind == Event::Kind::Deliver) pending_frees_.push_back(it.slot);
  }
}

EventQueue::Bucket& EventQueue::activate_slow() {
  if (cal_count_ == 0) migrate_from_heap();
  for (std::uint64_t scanned = 0; scanned <= nb_; ++scanned) {
    Bucket& b = buckets_[cursor_day_ & mask_];
    if (b.head < b.items.size()) {
      if (b.dirty) {
        std::sort(b.items.begin() + b.head, b.items.end(),
                  [](const Entry& a, const Entry& c) {
                    return a.at != c.at ? a.at < c.at : a.seq < c.seq;
                  });
        b.dirty = false;
      }
      return b;
    }
    if (!b.items.empty()) release_bucket(b);
    ++cursor_day_;
  }
  HYCO_CHECK_MSG(false, "calendar cursor ran off the window (count "
                            << cal_count_ << ")");
  return buckets_.front();  // unreachable
}

void EventQueue::release_bucket(Bucket& b) {
  b.head = 0;
  b.dirty = false;
  if (b.items.capacity() > kMaxRetainedBucketEntries) {
    std::vector<Entry>().swap(b.items);  // don't pin burst-sized capacity
  } else {
    b.items.clear();
  }
}

void EventQueue::migrate_from_heap() {
  HYCO_CHECK_MSG(!heap_.empty(), "migrate with an empty overflow heap");
  maybe_widen();
  base_day_ = day(key_at(heap_.front()));
  cursor_day_ = base_day_;
  const std::uint64_t end_day = base_day_ + nb_;
  // Heap pops come out in increasing (at, seq), so per-bucket appends stay
  // sorted and never set `dirty`.
  while (!heap_.empty()) {
    const Key k = heap_.front();
    const SimTime at = key_at(k);
    const std::uint64_t d = day(at);
    if (d >= end_day) break;
    const std::uint32_t ref = refs_.front();
    heap_pop_top();
    append_to_bucket(buckets_[d & mask_], at, key_seq(k), ref);
  }
  overflow_pushes_ = 0;
}

void EventQueue::maybe_widen() {
  if (overflow_pushes_ < widen_threshold_mult_ * nb_) return;
  // The calendar is empty here (we only widen at migration time), so the
  // geometry can change freely: no entry needs remapping.
  if (bucket_bits_ < max_bucket_bits_) {
    ++bucket_bits_;
    nb_ <<= 1;
    mask_ = nb_ - 1;
    buckets_.resize(nb_);
  } else if (shift_ < max_shift_) {
    ++shift_;
  }
}

void EventQueue::rebuild_with(const Entry& extra) {
  // A push landed before the current window with other events still live —
  // raw-queue test workloads only (the simulator never schedules into the
  // past). Re-route everything around a window based at the new minimum.
  HYCO_CHECK_MSG(!tick_open_, "cannot push before the open tick's window");
  std::vector<Entry> all;
  all.reserve(cal_count_ + heap_.size() + 1);
  for (Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.items.size(); ++i) {
      all.push_back(b.items[i]);
    }
    b.items.clear();
    b.head = 0;
    b.dirty = false;
  }
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    all.push_back(Entry{key_at(heap_[i]), key_seq(heap_[i]), refs_[i]});
  }
  heap_.clear();
  refs_.clear();
  all.push_back(extra);
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& c) {
    return a.at != c.at ? a.at < c.at : a.seq < c.seq;
  });
  cal_count_ = 0;
  overflow_pushes_ = 0;
  base_day_ = cursor_day_ = day(all.front().at);
  const std::uint64_t end_day = base_day_ + nb_;
  for (const Entry& e : all) {
    const std::uint64_t d = day(e.at);
    if (d < end_day) {
      append_to_bucket(buckets_[d & mask_], e.at, e.seq, e.ref);
    } else {
      heap_push(make_key(e.at, e.seq), e.ref);
    }
  }
}

void EventQueue::heap_pop_top() {
  const std::size_t n = heap_.size() - 1;
  if (n > 0) {
    // Hole-sifting: walk the min-child chain down from the root, then drop
    // the detached back() element into the hole and bubble it up. In the
    // common bursty case (many events at one virtual time) the back element
    // belongs near the bottom, so each touched node moves exactly once.
    std::size_t hole = 0;
    std::size_t child = 1;
    while (child < n) {
      std::size_t best;
      if (child + kArity <= n) {
        // Full fan of four children: tournament of independent compares
        // (two pairs, then the winners) instead of a serial scan, so the
        // selects can retire as conditional moves off a short dep chain.
        const std::size_t b0 =
            child + (heap_[child + 1] < heap_[child] ? 1 : 0);
        const std::size_t b1 =
            child + 2 + (heap_[child + 3] < heap_[child + 2] ? 1 : 0);
        best = heap_[b1] < heap_[b0] ? b1 : b0;
      } else {
        best = child;
        for (std::size_t c = child + 1; c < n; ++c) {
          best = heap_[c] < heap_[best] ? c : best;
        }
      }
      heap_[hole] = heap_[best];
      refs_[hole] = refs_[best];
      hole = best;
      child = kArity * hole + 1;
    }
    heap_[hole] = heap_[n];  // hole < n always: best is < n at every step
    refs_[hole] = refs_[n];
    sift_up(hole);
  }
  heap_.pop_back();
  refs_.pop_back();
}

}  // namespace hyco
