#include "sim/event_queue.h"

namespace hyco {

void EventQueue::reserve(std::size_t events, std::size_t callbacks) {
  if (events > heap_.capacity()) {
    heap_.reserve(events);
    refs_.reserve(events);
    deliveries_.reserve(events);
    free_deliveries_.reserve(events);
  }
  if (callbacks > pool_.capacity()) {
    pool_.reserve(callbacks);
    free_slots_.reserve(callbacks);
  }
}

}  // namespace hyco
