#include "sim/event_queue.h"

#include <utility>

#include "util/assert.h"

namespace hyco {

void EventQueue::push(SimTime at, std::function<void()> fn) {
  HYCO_CHECK_MSG(at >= 0, "cannot schedule event at negative time " << at);
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  HYCO_CHECK(!heap_.empty());
  return heap_.top().at;
}

Event EventQueue::pop() {
  HYCO_CHECK(!heap_.empty());
  // priority_queue::top() returns const&; move via const_cast is the
  // standard idiom to avoid copying the std::function payload.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

}  // namespace hyco
