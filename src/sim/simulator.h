// Deterministic discrete-event simulator.
//
// This is the executable stand-in for the paper's pencil-and-paper
// asynchronous model: processes take atomic steps, message transit times are
// arbitrary-but-finite (drawn from a pluggable delay model), and a crashed
// process executes no further steps. Given a seed, a run is bit-for-bit
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "core/types.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace hyco {

/// Why Simulator::run returned.
enum class StopReason {
  Quiescent,   ///< event queue drained — nothing can ever happen again
  EventLimit,  ///< max_events executed
  TimeLimit,   ///< virtual clock passed the deadline
  Halted,      ///< halt() was called from inside an event
};

/// Single-threaded discrete-event engine with a virtual clock and a seeded
/// random number generator.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  void schedule_in(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute virtual time `at` (>= now()).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Runs until quiescence or a limit is hit.
  StopReason run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max(),
                 SimTime time_limit = std::numeric_limits<SimTime>::max());

  /// Executes exactly one event if one is pending; returns false otherwise.
  bool step();

  /// Requests run() to stop after the current event.
  void halt() { halted_ = true; }

  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.pushed(); }

  /// The simulation-wide RNG (delay draws, crash subsets, ...). Forked
  /// streams should be used for logically independent randomness.
  Rng& rng() { return rng_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  bool halted_ = false;
  Rng rng_;
};

}  // namespace hyco
