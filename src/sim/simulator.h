// Deterministic discrete-event simulator.
//
// This is the executable stand-in for the paper's pencil-and-paper
// asynchronous model: processes take atomic steps, message transit times are
// arbitrary-but-finite (drawn from a pluggable delay model), and a crashed
// process executes no further steps. Given a seed, a run is bit-for-bit
// reproducible.
//
// Message deliveries — the O(n²)-per-round hot path — travel as typed
// Deliver events dispatched straight to the registered DeliverSink (the
// network), so no closure is allocated per message. The run loop consumes
// whole ticks: every event sharing the minimum virtual time is popped as
// one span (EventQueue::pop_tick) and contiguous runs of Deliver events go
// to the sink as a single deliver_batch() call, so a broadcast burst of n²
// messages pays one virtual dispatch instead of n². schedule_in/schedule_at
// keep their std::function signature for the sparse timer/bookkeeping call
// sites; those closures are pool-backed inside the EventQueue.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "core/types.h"
#include "net/message.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace hyco {

/// Why Simulator::run returned.
enum class StopReason {
  Quiescent,   ///< event queue drained — nothing can ever happen again
  EventLimit,  ///< max_events executed
  TimeLimit,   ///< virtual clock passed the deadline
  Halted,      ///< halt() was called from inside an event
};

/// Receiver of typed Deliver events (implemented by the network). The
/// simulator calls deliver_batch() with same-tick runs of Deliver events;
/// the default implementation forwards to deliver_event() one at a time.
class DeliverSink {
 public:
  /// `seq` is the delivery event's insertion sequence — the stable identity
  /// assigned at schedule time (the trace layer derives message ids from it;
  /// non-tracing sinks may ignore it).
  virtual void deliver_event(ProcId from, ProcId to, const Message& m,
                             std::uint64_t seq) = 0;

  /// Delivers a contiguous same-tick run in span order. `halted` aliases
  /// the simulator's halt flag: implementations must stop after the event
  /// that sets it and return how many events they consumed (== count
  /// otherwise). Overrides must preserve per-event semantics exactly —
  /// receiver crash state may change mid-run.
  virtual std::size_t deliver_batch(const TickItem* items, std::size_t count,
                                    const bool& halted);

 protected:
  ~DeliverSink() = default;  // never deleted through this interface
};

/// Single-threaded discrete-event engine with a virtual clock and a seeded
/// random number generator.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Pre-sizes the event heap / callback pool (see EventQueue::reserve).
  void reserve(std::size_t events, std::size_t callbacks = 0) {
    queue_.reserve(events, callbacks);
  }

  /// Pre-sizing for an n-process all-to-all protocol: one phase keeps ~n²
  /// deliveries in flight, plus up to 2n start/crash timers. Every runner
  /// calls this right after construction so the hot path never reallocates
  /// mid-run.
  void reserve_all_to_all(ProcId n) {
    const auto nn = static_cast<std::size_t>(n);
    reserve(nn * nn + 2 * nn, 2 * nn);
  }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  void schedule_in(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute virtual time `at` (>= now()).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules a message delivery `delay` nanoseconds from now. The message
  /// is stored inline in the event node — no allocation — and dispatched to
  /// the deliver sink when it fires. Requires a sink by dispatch time.
  /// Returns the event's insertion sequence (assigned unconditionally, so
  /// observing it is free of side effects on the run).
  std::uint64_t schedule_deliver(SimTime delay, ProcId from, ProcId to,
                                 const Message& m);

  /// Registers the deliver sink (one per simulator; the network installs
  /// itself). Re-registering the same sink is a no-op; a different live sink
  /// is a contract violation.
  void set_deliver_sink(DeliverSink* sink);

  /// Deregisters `sink` if it is the current one (called from the network's
  /// destructor so a dangling simulator never dispatches into freed memory).
  void clear_deliver_sink(const DeliverSink* sink);

  /// Runs until quiescence or a limit is hit.
  StopReason run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max(),
                 SimTime time_limit = std::numeric_limits<SimTime>::max());

  /// Executes at most one virtual-time tick (all events at the minimum
  /// time, bounded by max_events) and returns the stop reason if the run
  /// is over, std::nullopt if there is more to do. run() is exactly this
  /// in a loop; multi-lane executors interleave several simulators by
  /// calling it round-robin.
  std::optional<StopReason> run_tick(
      std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max(),
      SimTime time_limit = std::numeric_limits<SimTime>::max());

  /// Executes exactly one event if one is pending; returns false otherwise.
  bool step();

  /// Requests run() to stop after the current event.
  void halt() { halted_ = true; }

  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.pushed(); }

  /// Peak number of concurrently pending events (perf instrumentation).
  [[nodiscard]] std::size_t peak_queue_depth() const {
    return queue_.peak_size();
  }

  /// The simulation-wide RNG (delay draws, crash subsets, ...). Forked
  /// streams should be used for logically independent randomness.
  Rng& rng() { return rng_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  bool halted_ = false;
  DeliverSink* sink_ = nullptr;
  Rng rng_;
};

}  // namespace hyco
