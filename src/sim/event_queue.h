// Time-ordered event queue for the discrete-event simulator.
//
// Ordering is (time, insertion sequence): events at equal times run in the
// order they were scheduled, which makes every simulation fully
// deterministic for a given seed. The (at, seq) key is a total order (seq is
// unique), so the pop sequence is independent of how events are stored —
// swapping the internal structure can never change simulation behavior.
//
// The queue is the hot path of every experiment: one all-to-all consensus
// round schedules O(n²) deliveries. The structure is a two-level calendar
// queue in front of a 4-ary heap:
//
//  * Calendar front end. A ring of 2^bucket_bits day buckets, each covering
//    a 2^shift-wide slice of virtual time, holds every event whose time
//    falls inside the current window [base_day, base_day + buckets). Pushing
//    is an O(1) append; popping walks a cursor over the ring. With the
//    default shift of 0 a bucket holds exactly one timestamp, so appends are
//    already in (at, seq) order (seq is monotonic) and no sorting ever
//    happens; with a coarser shift a bucket is lazily sorted the first time
//    the cursor consumes from it. The simulator's near-future, heavily tied
//    time distributions make this O(1) per event where a heap pays an
//    O(log n) sift against a 10^6-deep queue.
//  * Overflow heap. Events beyond the window land in the 4-ary implicit
//    min-heap (16-byte packed (at, seq) keys, parallel ref array, hole-sift
//    pop). When the calendar drains, the window rebases onto the heap's
//    minimum and near events migrate into buckets. Every heap time is
//    strictly later than every calendar time, so the merged pop order is
//    exactly the global (at, seq) order. If overflow pushes dominate between
//    migrations the window widens (more buckets, then coarser buckets).
//
// Same-tick batching: pop_tick() returns the whole run of events sharing
// the minimum time as one contiguous span, in seq order — bit-identical to
// repeated pop() — so the simulator can dispatch a broadcast burst without
// a virtual call per message. The span is two-phase: events stay queued
// until commit_tick() declares how many were actually consumed, which keeps
// halt()-mid-tick semantics exact.
//
// Payload rules for the n² path:
//
//  * No per-event heap allocation, and no per-pop Message copy. Deliver
//    payloads live in a chunked slab whose chunks never move, so pop() and
//    pop_tick() hand out stable `const Message*` references. A popped slot
//    is recycled only at the NEXT pop/pop_tick (deferred free list), so the
//    reference stays valid across any pushes the handler makes.
//  * Generic timer/callback events (the ~10 cold call sites in runners,
//    harnesses, and tests) park their std::function in a free-list slab;
//    pushing into a recycled slot performs no allocation as long as the
//    callable fits std::function's small-buffer optimization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/types.h"
#include "net/message.h"
#include "util/assert.h"

namespace hyco {

/// A scheduled occurrence, as handed out by EventQueue::pop(): either a
/// message delivery (payload referenced in the slab) or a generic callback
/// (closure parked in the pool, referenced by slot).
struct Event {
  enum class Kind : std::uint8_t {
    Callback,  ///< run the pooled closure in `slot`
    Deliver,   ///< hand `*msg` from `from` to `to` via the deliver sink
  };

  SimTime at = 0;
  std::uint64_t seq = 0;  ///< insertion order; tie-breaker for equal times
  Kind kind = Kind::Callback;
  ProcId from = -1;        ///< Deliver: sender
  ProcId to = -1;          ///< Deliver: receiver
  std::uint32_t slot = 0;  ///< Callback: index into the closure pool
  /// Deliver: the payload, in the slab. Valid until the next pop()/
  /// pop_tick() — pushes never invalidate it (deferred slot recycling,
  /// chunked slab storage).
  const Message* msg = nullptr;
};

/// One event inside a same-tick span (see EventQueue::pop_tick).
struct TickItem {
  /// Deliver: payload in the slab, stable for the whole tick. Callback:
  /// nullptr.
  const Message* msg = nullptr;
  std::uint64_t seq = 0;   ///< insertion sequence (the event's identity)
  ProcId from = -1;        ///< Deliver: sender
  ProcId to = -1;          ///< Deliver: receiver
  std::uint32_t slot = 0;  ///< Callback: closure slot; Deliver: slab index
  Event::Kind kind = Event::Kind::Callback;
};

/// All events sharing the minimum virtual time, in seq order. The items
/// pointer is owned by the queue and valid until commit_tick(); handler
/// pushes during the tick never invalidate it.
struct TickSpan {
  SimTime at = 0;
  const TickItem* items = nullptr;
  std::size_t count = 0;
};

/// Calendar-fronted priority queue of events ordered by (at, seq), with
/// free-list slabs for both payload kinds. Not thread-safe (the simulator
/// is single-threaded).
class EventQueue {
 public:
  /// Calendar geometry. The defaults suit the simulator's workloads (dense
  /// near-future times); tests pin tiny windows to force the overflow heap,
  /// migration, and widening paths.
  struct Tuning {
    unsigned bucket_bits = 11;      ///< initial ring size = 2^bucket_bits
    unsigned max_bucket_bits = 14;  ///< widen by doubling up to this
    unsigned shift = 0;             ///< log2 bucket width in time units
    unsigned max_shift = 20;        ///< then widen by coarsening up to this
    /// Widen when overflow pushes since the last migration exceed
    /// `widen_threshold_mult * bucket_count`.
    std::size_t widen_threshold_mult = 2;
  };

  EventQueue() : EventQueue(Tuning{}) {}
  explicit EventQueue(const Tuning& t);

  /// Pre-sizes the deliver slab index space and the closure pool for
  /// `events` / `callbacks` concurrent events. Never shrinks.
  void reserve(std::size_t events, std::size_t callbacks = 0);

  /// Schedules a generic callback. Returns the event's insertion sequence.
  std::uint64_t push(SimTime at, std::function<void()> fn) {
    HYCO_CHECK_MSG(at >= 0, "cannot schedule event at negative time " << at);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      pool_[slot] = std::move(fn);
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(fn));
    }
    return route_new(at, slot);
  }

  /// Schedules a message delivery. Allocation-free in steady state: the
  /// message is copied into a recycled slab slot, never onto the heap.
  /// Returns the event's insertion sequence — a stable identity for the
  /// scheduled delivery that the trace layer uses as its message id.
  std::uint64_t push_deliver(SimTime at, ProcId from, ProcId to,
                             const Message& m) {
    HYCO_CHECK_MSG(at >= 0, "cannot schedule event at negative time " << at);
    std::uint32_t idx;
    if (!free_deliveries_.empty()) {
      idx = free_deliveries_.back();
      free_deliveries_.pop_back();
    } else {
      idx = slab_used_++;
      if ((idx >> kChunkBits) >= slab_.size()) {
        slab_.emplace_back(new DeliverPayload[kChunkSize]);
      }
    }
    payload(idx) = DeliverPayload{from, to, m};
    return route_new(at, idx | kDeliverBit);
  }

  [[nodiscard]] bool empty() const { return cal_count_ == 0 && heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return cal_count_ + heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty() and no open
  /// tick. May advance the calendar cursor / migrate from the heap.
  [[nodiscard]] SimTime next_time() {
    HYCO_CHECK(!tick_open_);
    HYCO_CHECK(!empty());
    Bucket& b = activate();
    return b.items[b.head].at;
  }

  /// Removes and returns the earliest event. Precondition: !empty() and no
  /// open tick. For a Kind::Callback event the caller MUST follow up with
  /// take_callback(ev.slot) to obtain the closure and recycle the slot. For
  /// a Kind::Deliver event `ev.msg` stays valid until the next
  /// pop()/pop_tick().
  Event pop() {
    HYCO_CHECK(!tick_open_);
    HYCO_CHECK(!empty());
    flush_pending_frees();
    Bucket& b = activate();
    const Entry en = b.items[b.head];
    ++b.head;
    --cal_count_;
    Event ev;
    ev.at = en.at;
    ev.seq = en.seq;
    if (en.ref & kDeliverBit) {
      const std::uint32_t idx = en.ref & ~kDeliverBit;
      const DeliverPayload& p = payload(idx);
      ev.kind = Event::Kind::Deliver;
      ev.from = p.from;
      ev.to = p.to;
      ev.msg = &p.msg;
      pending_frees_.push_back(idx);  // recycled at the NEXT pop
    } else {
      ev.kind = Event::Kind::Callback;
      ev.slot = en.ref;
    }
    return ev;
  }

  /// Opens a tick: returns every pending event at the minimum virtual time
  /// (at most `cap` of them), in seq order — the exact events `cap` repeated
  /// pop() calls would return. The events STAY QUEUED until commit_tick().
  /// During the open tick the caller may push new events (at times >= the
  /// tick time) and must call take_callback for each consumed Callback
  /// item; it must not call pop()/next_time() until the commit.
  TickSpan pop_tick(std::uint64_t cap);

  /// Closes the tick opened by pop_tick: the first `consumed` items of the
  /// span leave the queue (their deliver slots recycle at the next
  /// pop/pop_tick); the rest remain pending. 0 <= consumed <= span.count.
  void commit_tick(std::size_t consumed);

  /// Moves the pooled closure out of `slot` and returns the slot to the
  /// free list. Call exactly once per popped/consumed Kind::Callback event,
  /// before running the closure (the closure may push new events, which can
  /// recycle or grow the pool slot it came from).
  std::function<void()> take_callback(std::uint32_t slot) {
    HYCO_CHECK_MSG(slot < pool_.size(), "bad callback slot " << slot);
    std::function<void()> fn = std::move(pool_[slot]);
    HYCO_CHECK_MSG(static_cast<bool>(fn), "callback slot " << slot
                                          << " taken twice or never filled");
    pool_[slot] = nullptr;  // drop any residual captured state now
    free_slots_.push_back(slot);
    return fn;
  }

  /// Total number of events ever pushed.
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

  /// High-water mark of size() — the peak number of concurrently pending
  /// events (feeds the perf snapshot's queue-depth metric).
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

  // Pool introspection for tests and benchmarks: total slots ever
  // materialized, and how many of them are currently in use. A deliver slot
  // awaiting its deferred recycle counts as free (its event is gone).
  [[nodiscard]] std::size_t pool_capacity() const { return pool_.size(); }
  [[nodiscard]] std::size_t pool_in_use() const {
    return pool_.size() - free_slots_.size();
  }
  [[nodiscard]] std::size_t deliver_pool_capacity() const {
    return slab_used_;
  }
  [[nodiscard]] std::size_t deliver_pool_in_use() const {
    return slab_used_ - free_deliveries_.size() - pending_frees_.size();
  }

  // Calendar introspection for tests: current ring size / bucket-width
  // shift (they change when the window widens) and how many events sit in
  // the overflow heap right now.
  [[nodiscard]] std::size_t bucket_count() const { return nb_; }
  [[nodiscard]] unsigned bucket_shift() const { return shift_; }
  [[nodiscard]] std::size_t overflow_size() const { return heap_.size(); }

 private:
  // 4-ary implicit heap: children of i are 4i+1 … 4i+4, parent (i-1)/4.
  static constexpr std::size_t kArity = 4;

  /// High bit of an event's ref distinguishes the two payload slabs; low 31
  /// bits index into the corresponding one.
  static constexpr std::uint32_t kDeliverBit = 0x8000'0000u;

  /// Deliver slab chunking: fixed-size chunks that never move once
  /// allocated, so `const Message*` references survive slab growth.
  static constexpr std::uint32_t kChunkBits = 12;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

  /// A consumed bucket keeps its capacity for ring reuse (steady-state
  /// pushes never reallocate) unless it grew past this — big-burst buckets
  /// release their memory instead of pinning it on every ring slot.
  static constexpr std::size_t kMaxRetainedBucketEntries = 4096;

  /// What the overflow heap orders: (at, seq) packed into one 128-bit
  /// integer, high half `at` (non-negative by contract, so unsigned compare
  /// is exact), low half `seq`. One register-pair compare replaces the
  /// two-field lexicographic compare, and four 16-byte keys share a cache
  /// line. Payload refs ride in a parallel array (refs_[i] belongs to
  /// heap_[i]) so the sift only drags 4 extra bytes per moved node.
  using Key = unsigned __int128;

  static Key make_key(SimTime at, std::uint64_t seq) {
    return (Key{static_cast<std::uint64_t>(at)} << 64) | seq;
  }
  static SimTime key_at(Key k) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(k >> 64));
  }
  static std::uint64_t key_seq(Key k) {
    return static_cast<std::uint64_t>(k);
  }

  /// A calendar entry: explicit (at, seq) plus the payload ref. 24 bytes —
  /// packing into a 16-byte Key would pad the struct to 32.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t ref;
  };

  /// One day of the calendar ring. `head` is the consumed prefix; entries
  /// in [head, items.size()) are pending, kept in (at, seq) order (lazily
  /// sorted when `dirty`, which only a shift > 0 geometry can set).
  struct Bucket {
    std::vector<Entry> items;
    std::uint32_t head = 0;
    bool dirty = false;
  };

  /// A parked Deliver payload, in a stable slab chunk.
  struct DeliverPayload {
    ProcId from;
    ProcId to;
    Message msg;
  };

  [[nodiscard]] std::uint64_t day(SimTime at) const {
    return static_cast<std::uint64_t>(at) >> shift_;
  }

  DeliverPayload& payload(std::uint32_t idx) {
    return slab_[idx >> kChunkBits][idx & (kChunkSize - 1)];
  }

  /// Files a freshly pushed event into the calendar window, the overflow
  /// heap, or (cold, raw-queue tests only) a full rebuild when it lands
  /// before the current window. Returns the assigned insertion sequence.
  std::uint64_t route_new(SimTime at, std::uint32_t ref) {
    const std::uint64_t seq = next_seq_++;
    const std::uint64_t d = day(at);
    if (d - base_day_ < nb_) {  // unsigned: d < base_day_ wraps, fails
      append_to_bucket(buckets_[d & mask_], at, seq, ref);
      if (d < cursor_day_) cursor_day_ = d;
    } else if (cal_count_ == 0 && heap_.empty()) {
      base_day_ = cursor_day_ = d;  // empty queue: rebase the window here
      append_to_bucket(buckets_[d & mask_], at, seq, ref);
    } else if (d >= base_day_ + nb_) {
      heap_push(make_key(at, seq), ref);
      ++overflow_pushes_;
    } else {
      rebuild_with(Entry{at, seq, ref});
    }
    const std::size_t sz = cal_count_ + heap_.size();
    if (sz > peak_) peak_ = sz;
    return seq;
  }

  void append_to_bucket(Bucket& b, SimTime at, std::uint64_t seq,
                        std::uint32_t ref) {
    if (b.head != 0 && b.head == b.items.size()) {
      // Fully consumed leftovers (possibly from an earlier window sharing
      // this ring slot): reset before reuse.
      b.items.clear();
      b.head = 0;
      b.dirty = false;
    }
    if (shift_ != 0 && !b.dirty && b.items.size() > b.head &&
        at < b.items.back().at) {
      b.dirty = true;  // same-at appends keep order (seq is monotonic)
    }
    b.items.push_back(Entry{at, seq, ref});
    ++cal_count_;
  }

  /// The bucket the cursor should consume from, sorted and non-empty.
  /// Precondition: !empty(). Advances the cursor / migrates as needed.
  Bucket& activate() {
    Bucket& b = buckets_[cursor_day_ & mask_];
    if (b.head < b.items.size() && !b.dirty) return b;
    return activate_slow();
  }

  Bucket& activate_slow();
  void migrate_from_heap();
  void maybe_widen();
  void rebuild_with(const Entry& extra);
  void release_bucket(Bucket& b);

  void flush_pending_frees() {
    if (pending_frees_.empty()) return;
    free_deliveries_.insert(free_deliveries_.end(), pending_frees_.begin(),
                            pending_frees_.end());
    pending_frees_.clear();
  }

  void heap_push(Key k, std::uint32_t ref) {
    heap_.push_back(k);
    refs_.push_back(ref);
    sift_up(heap_.size() - 1);
  }

  /// Removes the heap minimum (caller has already read front()).
  void heap_pop_top();

  void sift_up(std::size_t i) {
    const Key k = heap_[i];
    const std::uint32_t r = refs_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (k >= heap_[parent]) break;
      heap_[i] = heap_[parent];
      refs_[i] = refs_[parent];
      i = parent;
    }
    heap_[i] = k;
    refs_[i] = r;
  }

  // Calendar window.
  std::vector<Bucket> buckets_;
  std::uint64_t nb_;             ///< ring size, power of two
  std::uint64_t mask_;           ///< nb_ - 1
  std::uint64_t base_day_ = 0;   ///< first day of the window
  std::uint64_t cursor_day_ = 0; ///< next day to consume; >= base_day_
  std::size_t cal_count_ = 0;    ///< pending entries in the calendar
  unsigned bucket_bits_;
  unsigned max_bucket_bits_;
  unsigned shift_;
  unsigned max_shift_;
  std::size_t widen_threshold_mult_;
  std::uint64_t overflow_pushes_ = 0;  ///< heap pushes since last migration

  // Overflow heap (times strictly beyond the window).
  std::vector<Key> heap_;            ///< (at, seq) sort keys
  std::vector<std::uint32_t> refs_;  ///< parallel payload refs

  // Deliver payload slab: chunks never move, so popped refs stay valid.
  std::vector<std::unique_ptr<DeliverPayload[]>> slab_;
  std::uint32_t slab_used_ = 0;  ///< high-water of materialized slots
  std::vector<std::uint32_t> free_deliveries_;
  std::vector<std::uint32_t> pending_frees_;  ///< recycle at next pop

  // Callback closure pool.
  std::vector<std::function<void()>> pool_;
  std::vector<std::uint32_t> free_slots_;

  // Open-tick state (pop_tick .. commit_tick).
  std::vector<TickItem> tick_items_;
  std::uint64_t tick_day_ = 0;
  bool tick_open_ = false;

  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace hyco
