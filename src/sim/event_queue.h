// Time-ordered event queue for the discrete-event simulator.
//
// Ordering is (time, insertion sequence): events at equal times run in the
// order they were scheduled, which makes every simulation fully
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"

namespace hyco {

/// A scheduled callback.
struct Event {
  SimTime at = 0;
  std::uint64_t seq = 0;  // insertion order; tie-breaker for equal times
  std::function<void()> fn;
};

/// Min-heap of events ordered by (at, seq).
class EventQueue {
 public:
  void push(SimTime at, std::function<void()> fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest event. Precondition: !empty().
  Event pop();

  /// Total number of events ever pushed.
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hyco
