// Time-ordered event queue for the discrete-event simulator.
//
// Ordering is (time, insertion sequence): events at equal times run in the
// order they were scheduled, which makes every simulation fully
// deterministic for a given seed. The (at, seq) key is a total order (seq is
// unique), so the pop sequence is independent of the heap's internal shape —
// swapping the heap implementation can never change simulation behavior.
//
// The queue is the hot path of every experiment: one all-to-all consensus
// round schedules O(n²) deliveries. Design rules for that path:
//
//  * No per-event heap allocation. A popped Event is a tagged value node;
//    the Deliver variant — the n² case — carries {from, to, Message} by
//    value, no closure. Internally Deliver payloads wait in a free-list
//    slab that recycles slots on pop, so steady-state churn re-uses the
//    same storage instead of allocating.
//  * Generic timer/callback events (the ~10 cold call sites in runners,
//    harnesses, and tests) park their std::function in a second free-list
//    slab; pushing into a recycled slot performs no allocation as long as
//    the callable fits std::function's small-buffer optimization.
//  * The heap orders 16-byte packed (at, seq) keys — payload refs ride in
//    a parallel array — not full events: a sift step on a 4-ary heap scans
//    up to four children, and four keys share one cache line where four
//    64-byte event nodes span four lines. The queue is memory-bound under
//    broadcast bursts, so key size directly sets throughput.
//
// The heap itself is a 4-ary implicit min-heap in one contiguous vector:
// shallower than a binary heap (fewer levels per sift) and reservable
// up-front via reserve() so bursty broadcasts never reallocate. Pop uses
// hole-sifting (walk the min-child chain down, then bubble the detached
// back element up), which moves each touched node once in the common
// bursty case of many events at one virtual time. The push/pop bodies live
// in this header: they run once per message, and cross-TU call overhead at
// that frequency is measurable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"
#include "net/message.h"
#include "util/assert.h"

namespace hyco {

/// A scheduled occurrence, as handed out by EventQueue::pop(): either a
/// message delivery (payload carried by value) or a generic callback
/// (closure parked in the pool, referenced by slot).
struct Event {
  enum class Kind : std::uint8_t {
    Callback,  ///< run the pooled closure in `slot`
    Deliver,   ///< hand `msg` from `from` to `to` via the deliver sink
  };

  SimTime at = 0;
  std::uint64_t seq = 0;  ///< insertion order; tie-breaker for equal times
  Kind kind = Kind::Callback;
  ProcId from = -1;          ///< Deliver: sender
  ProcId to = -1;            ///< Deliver: receiver
  std::uint32_t slot = 0;    ///< Callback: index into the closure pool
  Message msg;               ///< Deliver: the payload, by value
};

/// Min-heap of events ordered by (at, seq), with free-list slabs for both
/// payload kinds. Not thread-safe (the simulator is single-threaded).
class EventQueue {
 public:
  /// Pre-sizes the heap + deliver slab for `events` concurrent events and
  /// the closure pool for `callbacks` concurrent callback events. Never
  /// shrinks.
  void reserve(std::size_t events, std::size_t callbacks = 0);

  /// Schedules a generic callback.
  void push(SimTime at, std::function<void()> fn) {
    HYCO_CHECK_MSG(at >= 0, "cannot schedule event at negative time " << at);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      pool_[slot] = std::move(fn);
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(fn));
    }
    push_key(make_key(at, next_seq_++), slot);
  }

  /// Schedules a message delivery. Allocation-free in steady state: the
  /// message is copied into a recycled slab slot, never onto the heap.
  void push_deliver(SimTime at, ProcId from, ProcId to, const Message& m) {
    HYCO_CHECK_MSG(at >= 0, "cannot schedule event at negative time " << at);
    std::uint32_t idx;
    if (!free_deliveries_.empty()) {
      idx = free_deliveries_.back();
      free_deliveries_.pop_back();
      deliveries_[idx] = DeliverPayload{from, to, m};
    } else {
      idx = static_cast<std::uint32_t>(deliveries_.size());
      deliveries_.push_back(DeliverPayload{from, to, m});
    }
    push_key(make_key(at, next_seq_++), idx | kDeliverBit);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const {
    HYCO_CHECK(!heap_.empty());
    return key_at(heap_.front());
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  /// For a Kind::Callback event the caller MUST follow up with
  /// take_callback(ev.slot) to obtain the closure and recycle the slot.
  Event pop() {
    HYCO_CHECK(!heap_.empty());
    const Key top = heap_.front();
    const std::uint32_t top_ref = refs_.front();
    const std::size_t n = heap_.size() - 1;
    if (n > 0) {
      // Hole-sifting: walk the min-child chain down from the root, then
      // drop the detached back() element into the hole and bubble it up.
      // In the common bursty case (many events at one virtual time) the
      // back element belongs near the bottom, so each touched node moves
      // exactly once.
      std::size_t hole = 0;
      std::size_t child = 1;
      while (child < n) {
        std::size_t best;
        if (child + kArity <= n) {
          // Full fan of four children: tournament of independent compares
          // (two pairs, then the winners) instead of a serial scan, so the
          // selects can retire as conditional moves off a short dep chain.
          const std::size_t b0 =
              child + (heap_[child + 1] < heap_[child] ? 1 : 0);
          const std::size_t b1 =
              child + 2 + (heap_[child + 3] < heap_[child + 2] ? 1 : 0);
          best = heap_[b1] < heap_[b0] ? b1 : b0;
        } else {
          best = child;
          for (std::size_t c = child + 1; c < n; ++c) {
            best = heap_[c] < heap_[best] ? c : best;
          }
        }
        heap_[hole] = heap_[best];
        refs_[hole] = refs_[best];
        hole = best;
        child = kArity * hole + 1;
      }
      heap_[hole] = heap_[n];  // hole < n always: best is < n at every step
      refs_[hole] = refs_[n];
      sift_up(hole);
    }
    heap_.pop_back();
    refs_.pop_back();

    Event ev;
    ev.at = key_at(top);
    ev.seq = key_seq(top);
    if (top_ref & kDeliverBit) {
      const std::uint32_t idx = top_ref & ~kDeliverBit;
      const DeliverPayload& p = deliveries_[idx];
      ev.kind = Event::Kind::Deliver;
      ev.from = p.from;
      ev.to = p.to;
      ev.msg = p.msg;
      free_deliveries_.push_back(idx);  // recycle; ev holds its own copy
    } else {
      ev.kind = Event::Kind::Callback;
      ev.slot = top_ref;
    }
    return ev;
  }

  /// Moves the pooled closure out of `slot` and returns the slot to the
  /// free list. Call exactly once per popped Kind::Callback event, before
  /// running the closure (the closure may push new events, which can grow
  /// the pool).
  std::function<void()> take_callback(std::uint32_t slot) {
    HYCO_CHECK_MSG(slot < pool_.size(), "bad callback slot " << slot);
    std::function<void()> fn = std::move(pool_[slot]);
    HYCO_CHECK_MSG(static_cast<bool>(fn), "callback slot " << slot
                                          << " taken twice or never filled");
    pool_[slot] = nullptr;  // drop any residual captured state now
    free_slots_.push_back(slot);
    return fn;
  }

  /// Total number of events ever pushed.
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

  /// High-water mark of size() — the peak number of concurrently pending
  /// events (feeds the perf snapshot's queue-depth metric).
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

  // Pool introspection for tests and benchmarks: total slots ever
  // materialized, and how many of them are currently in use.
  [[nodiscard]] std::size_t pool_capacity() const { return pool_.size(); }
  [[nodiscard]] std::size_t pool_in_use() const {
    return pool_.size() - free_slots_.size();
  }
  [[nodiscard]] std::size_t deliver_pool_capacity() const {
    return deliveries_.size();
  }
  [[nodiscard]] std::size_t deliver_pool_in_use() const {
    return deliveries_.size() - free_deliveries_.size();
  }

 private:
  // 4-ary implicit heap: children of i are 4i+1 … 4i+4, parent (i-1)/4.
  static constexpr std::size_t kArity = 4;

  /// High bit of an event's ref distinguishes the two payload slabs; low 31
  /// bits index into the corresponding one.
  static constexpr std::uint32_t kDeliverBit = 0x8000'0000u;

  /// What the heap orders: (at, seq) packed into one 128-bit integer, high
  /// half `at` (non-negative by contract, so unsigned compare is exact),
  /// low half `seq`. One register-pair compare replaces the two-field
  /// lexicographic compare, and four 16-byte keys share a cache line — the
  /// sift loops are bound by exactly these two costs. Payload refs ride in
  /// a parallel array (refs_[i] belongs to heap_[i]) so the sift only drags
  /// 4 extra bytes per moved node.
  using Key = unsigned __int128;

  static Key make_key(SimTime at, std::uint64_t seq) {
    return (Key{static_cast<std::uint64_t>(at)} << 64) | seq;
  }
  static SimTime key_at(Key k) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(k >> 64));
  }
  static std::uint64_t key_seq(Key k) {
    return static_cast<std::uint64_t>(k);
  }

  /// A parked Deliver payload, by value, in a recycled slab slot.
  struct DeliverPayload {
    ProcId from;
    ProcId to;
    Message msg;
  };

  void push_key(Key k, std::uint32_t ref) {
    heap_.push_back(k);
    refs_.push_back(ref);
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_) peak_ = heap_.size();
  }

  void sift_up(std::size_t i) {
    const Key k = heap_[i];
    const std::uint32_t r = refs_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (k >= heap_[parent]) break;
      heap_[i] = heap_[parent];
      refs_[i] = refs_[parent];
      i = parent;
    }
    heap_[i] = k;
    refs_[i] = r;
  }

  std::vector<Key> heap_;                      ///< (at, seq) sort keys
  std::vector<std::uint32_t> refs_;            ///< parallel payload refs
  std::vector<DeliverPayload> deliveries_;     ///< deliver payload slab
  std::vector<std::uint32_t> free_deliveries_;
  std::vector<std::function<void()>> pool_;    ///< closure slab
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace hyco
