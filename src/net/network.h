// Point-to-point network abstraction (Section II-A of the paper) and its
// discrete-event implementation.
//
// Channels are reliable (no corruption, duplication, or loss) but
// asynchronous (arbitrary finite transit). broadcast(m) is the paper's
// macro-operation "for each j in {1..n} do send(m) to p_j" — it is NOT
// reliable: a sender crashing mid-broadcast reaches an arbitrary subset.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"
#include "net/delay_model.h"
#include "net/message.h"
#include "sim/crash.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace hyco {

class ScenarioEngine;

/// Transport counters, aggregated per run.
struct NetStats {
  std::uint64_t unicasts_sent = 0;      ///< individual send() deliveries scheduled
  std::uint64_t broadcasts = 0;         ///< broadcast() invocations
  std::uint64_t delivered = 0;          ///< messages handed to a live receiver
  std::uint64_t dropped_sender_crashed = 0;
  std::uint64_t dropped_receiver_crashed = 0;
  // Scenario faults (src/scenario/; all zero without a scenario):
  std::uint64_t dropped_partitioned = 0;  ///< blocked by a never-healing cut
  std::uint64_t dropped_lost = 0;         ///< per-link loss draws
  std::uint64_t duplicated = 0;           ///< extra copies scheduled
  std::uint64_t held_partitioned = 0;     ///< delayed by a healing cut
};

/// Abstract message-passing system shared by algorithms and substrates.
class INetwork {
 public:
  virtual ~INetwork() = default;

  /// Sends m from `from` to `to` over the reliable asynchronous channel.
  virtual void send(ProcId from, ProcId to, const Message& m) = 0;

  /// The paper's broadcast macro: sends m to every process (including the
  /// sender itself). Unreliable under sender crash.
  virtual void broadcast(ProcId from, const Message& m) = 0;

  /// Number of processes n.
  [[nodiscard]] virtual ProcId n() const = 0;
};

/// Discrete-event network: delays from a DelayModel, crash semantics from a
/// CrashTracker + CrashPlan (for scripted mid-broadcast crashes).
///
/// Deliveries ride the simulator's typed Deliver events (the network
/// registers itself as the DeliverSink), so sending a message allocates
/// nothing: the payload travels inline in the event node and comes straight
/// back through deliver_event() when it fires.
class SimNetwork final : public INetwork, private DeliverSink {
 public:
  /// Called for each delivery to a live process.
  using DeliverFn = std::function<void(ProcId to, ProcId from, const Message&)>;

  /// All references must outlive the network. `plan` may be nullptr (no
  /// scripted broadcast crashes).
  SimNetwork(Simulator& sim, DelayModel& delays, CrashTracker& crashes,
             ProcId n, const CrashPlan* plan = nullptr,
             Trace* trace = nullptr);
  ~SimNetwork() override;

  /// Must be called before any traffic flows (the runner wires processes in
  /// after constructing the network).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Installs the run's fault-injection engine (nullptr = none). When set,
  /// every scheduled delivery consults the engine: partitioned messages are
  /// held until the cut heals (or dropped when it never does) and each send
  /// draws a copy count (loss/duplication). The engine must outlive the
  /// network. Delay shaping (reordering, coin attack) rides the engine's
  /// FaultyChannel, which the runner passes as this network's DelayModel.
  void set_scenario(ScenarioEngine* scenario) { scenario_ = scenario; }

  void send(ProcId from, ProcId to, const Message& m) override;
  void broadcast(ProcId from, const Message& m) override;
  [[nodiscard]] ProcId n() const override { return n_; }

  [[nodiscard]] const NetStats& stats() const { return stats_; }

 private:
  void schedule_delivery(ProcId from, ProcId to, const Message& m);

  /// DeliverSink: a Deliver event fired — apply receiver-crash semantics and
  /// hand the message to the wired-in deliver function. When tracing, the
  /// message id (seq + 1) is recorded and set as the trace's causal context
  /// for the duration of the handler, so records the handler makes (Sends,
  /// phase starts, decides) chain back to this delivery.
  void deliver_event(ProcId from, ProcId to, const Message& m,
                     std::uint64_t seq) override;

  /// DeliverSink: a same-tick run of deliveries in one call. Semantically
  /// identical to deliver_event per item — the crash check stays per item
  /// (a mid-broadcast crash fired from a handler can down a receiver midway
  /// through the run) — but hoists the trace branch and the deliver-fn load
  /// out of the n² loop. Falls back to the per-event path when tracing.
  std::size_t deliver_batch(const TickItem* items, std::size_t count,
                            const bool& halted) override;

  Simulator& sim_;
  DelayModel& delays_;
  CrashTracker& crashes_;
  ProcId n_;
  const CrashPlan* plan_;
  Trace* trace_;
  ScenarioEngine* scenario_ = nullptr;
  DeliverFn deliver_;
  std::vector<std::int32_t> broadcast_counts_;
  std::vector<ProcId> scratch_;  ///< reusable mid-broadcast target buffer
  NetStats stats_;
};

}  // namespace hyco
