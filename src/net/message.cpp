#include "net/message.h"

#include <sstream>

namespace hyco {

std::string Message::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case MsgKind::Phase:
      os << "PHASE(r=" << round << ',' << phase << ",est=" << est;
      if (instance != 0) os << ",inst=" << instance;
      os << ')';
      break;
    case MsgKind::Decide:
      os << "DECIDE(" << est;
      if (instance != 0) os << ",inst=" << instance;
      os << ')';
      break;
    case MsgKind::Value:
      os << "VALUE(origin=p" << origin << ",v=" << value << ')';
      break;
    case MsgKind::MultiDecide:
      os << "MULTIDECIDE(v=" << value << ')';
      break;
    case MsgKind::RegQuery:
      os << "REGQUERY(op=" << instance << ')';
      break;
    case MsgKind::RegStore:
      os << "REGSTORE(op=" << instance << ",ts=" << round << '.' << origin
         << ",v=" << value << ')';
      break;
    case MsgKind::RegAck:
      os << "REGACK(op=" << instance << ",ts=" << round << '.' << origin
         << ",v=" << value << ')';
      break;
    case MsgKind::TobSubmit:
      os << "TOBSUBMIT(origin=p" << origin << ",payload=" << value << ')';
      break;
  }
  return os.str();
}

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v & 0xFF);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, kMessageWireSize> encode(const Message& m) {
  std::array<std::uint8_t, kMessageWireSize> out{};
  out[0] = static_cast<std::uint8_t>(m.kind);
  put_u32(&out[1], static_cast<std::uint32_t>(m.instance));
  put_u32(&out[5], static_cast<std::uint32_t>(m.round));
  out[9] = static_cast<std::uint8_t>(m.phase);
  out[10] = static_cast<std::uint8_t>(m.est);
  put_u32(&out[11], static_cast<std::uint32_t>(m.origin));
  for (int i = 0; i < 8; ++i) {
    out[15 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((m.value >> (8 * i)) & 0xFF);
  }
  return out;
}

std::optional<Message> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kMessageWireSize) return std::nullopt;
  const auto kind = bytes[0];
  if (kind < 1 || kind > 8) return std::nullopt;
  const auto phase = bytes[9];
  if (phase != 1 && phase != 2) return std::nullopt;
  const auto est = bytes[10];
  if (est > 2) return std::nullopt;
  Message m;
  m.kind = static_cast<MsgKind>(kind);
  m.instance = static_cast<InstanceId>(get_u32(&bytes[1]));
  m.round = static_cast<Round>(get_u32(&bytes[5]));
  m.phase = static_cast<Phase>(phase);
  m.est = static_cast<Estimate>(est);
  m.origin = static_cast<ProcId>(get_u32(&bytes[11]));
  m.value = 0;
  for (int i = 0; i < 8; ++i) {
    m.value |= static_cast<std::uint64_t>(bytes[15 + static_cast<std::size_t>(i)])
               << (8 * i);
  }
  return m;
}

}  // namespace hyco
