// Wire messages of the consensus algorithms.
//
// The binary algorithms exchange two message kinds:
//  * PHASE(r, ph, est) — the payload of Algorithm 1's msg_exchange pattern.
//    Algorithm 3 has one phase per round and always uses ph = Phase::One.
//  * DECIDE(v) — decision gossip (Algorithm 2 lines 12/17, Algorithm 3
//    lines 9/13), which prevents deadlocks once deciders stop participating.
//
// The multivalued extension (src/core/multivalued.h) adds:
//  * VALUE(origin, value) — uniform-reliable-broadcast of a W-bit proposal;
//  * MULTIDECIDE(value)   — decision gossip for the multivalued layer;
// and stamps every message with an `instance` id so one network can carry
// many embedded binary consensus instances (one per decided bit).
//
// A fixed-width binary codec is provided so the same structs could travel
// over a real transport; the simulator passes them by value.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/types.h"

namespace hyco {

/// Kind tag of a wire message.
enum class MsgKind : std::uint8_t {
  Phase = 1,
  Decide = 2,
  Value = 3,        ///< multivalued layer: URB of a proposal
  MultiDecide = 4,  ///< multivalued layer: decision gossip
  RegQuery = 5,     ///< hybrid register: read/collect query
  RegStore = 6,     ///< hybrid register: store (ts, value)
  RegAck = 7,       ///< hybrid register: reply carrying cluster-latest state
  TobSubmit = 8,    ///< total-order broadcast: payload gossip
};

/// Sub-consensus instance id (bit index of the multivalued reduction); the
/// plain binary algorithms always use instance 0.
using InstanceId = std::int32_t;

/// A consensus protocol message.
struct Message {
  MsgKind kind = MsgKind::Phase;
  InstanceId instance = 0;       ///< embedded binary instance (bit index);
                                 ///< the register layer stores its op id here
  Round round = 0;               ///< r (PHASE); timestamp seq (register)
  Phase phase = Phase::One;      ///< ph (PHASE only)
  Estimate est = Estimate::Bot;  ///< est for PHASE; decided value for DECIDE
  ProcId origin = -1;            ///< original proposer (VALUE);
                                 ///< timestamp writer id (register)
  std::uint64_t value = 0;       ///< payload (VALUE / MULTIDECIDE / register)

  static Message phase_msg(Round r, Phase ph, Estimate e) {
    Message m;
    m.kind = MsgKind::Phase;
    m.round = r;
    m.phase = ph;
    m.est = e;
    return m;
  }
  static Message decide_msg(Estimate v) {
    Message m;
    m.kind = MsgKind::Decide;
    m.est = v;
    return m;
  }
  static Message value_msg(ProcId origin, std::uint64_t value) {
    Message m;
    m.kind = MsgKind::Value;
    m.origin = origin;
    m.value = value;
    return m;
  }
  static Message multi_decide_msg(std::uint64_t value) {
    Message m;
    m.kind = MsgKind::MultiDecide;
    m.value = value;
    return m;
  }

  bool operator==(const Message&) const = default;

  [[nodiscard]] std::string to_string() const;
};

/// Number of bytes of the fixed-width encoding.
inline constexpr std::size_t kMessageWireSize = 23;

/// Encodes `m` into exactly kMessageWireSize bytes (little-endian fields).
std::array<std::uint8_t, kMessageWireSize> encode(const Message& m);

/// Decodes bytes produced by encode(); returns nullopt on malformed input
/// (bad kind/phase/estimate tags or wrong size).
std::optional<Message> decode(std::span<const std::uint8_t> bytes);

}  // namespace hyco
