#include "net/network.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "scenario/engine.h"
#include "util/assert.h"

namespace hyco {

SimNetwork::SimNetwork(Simulator& sim, DelayModel& delays,
                       CrashTracker& crashes, ProcId n, const CrashPlan* plan,
                       Trace* trace)
    : sim_(sim),
      delays_(delays),
      crashes_(crashes),
      n_(n),
      plan_(plan),
      trace_(trace),
      broadcast_counts_(static_cast<std::size_t>(n), 0),
      scratch_(static_cast<std::size_t>(n)) {
  HYCO_CHECK_MSG(n > 0, "network needs at least one process");
  if (plan_ != nullptr) {
    HYCO_CHECK_MSG(plan_->specs.size() == static_cast<std::size_t>(n),
                   "crash plan size mismatch");
  }
  sim_.set_deliver_sink(this);
}

SimNetwork::~SimNetwork() { sim_.clear_deliver_sink(this); }

void SimNetwork::schedule_delivery(ProcId from, ProcId to, const Message& m) {
  SimTime hold = 0;
  int copies = 1;
  if (scenario_ != nullptr) {
    // Partition: a finite cut holds the message until it heals (reliable,
    // adversarially slow); a permanent cut drops it.
    const SimTime release = scenario_->release_time(from, to, sim_.now());
    if (release == kSimTimeNever) {
      ++stats_.dropped_partitioned;
      if (trace_ != nullptr) {
        trace_->record(sim_.now(), TraceKind::Drop, from,
                       "partitioned; " + m.to_string() + " -> p" +
                           std::to_string(to));
      }
      return;
    }
    hold = release - sim_.now();
    if (hold > 0) ++stats_.held_partitioned;
    copies = scenario_->draw_copies(m, sim_.rng());
    if (copies == 0) {
      ++stats_.dropped_lost;
      if (trace_ != nullptr) {
        trace_->record(sim_.now(), TraceKind::Drop, from,
                       "lost; " + m.to_string() + " -> p" +
                           std::to_string(to));
      }
      return;
    }
    stats_.duplicated += static_cast<std::uint64_t>(copies - 1);
  }
  for (int c = 0; c < copies; ++c) {
    const SimTime d = delays_.delay(from, to, m, sim_.now(), sim_.rng());
    ++stats_.unicasts_sent;
    // The scheduled event's seq is the message identity: the Send record
    // here and the Deliver/Drop record when it fires share mid = seq + 1,
    // giving the offline DAG its send->deliver edges. seq assignment is
    // unconditional in the queue, so reading it never perturbs the run.
    const std::uint64_t seq = sim_.schedule_deliver(hold + d, from, to, m);
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), TraceKind::Send, from,
                     m.to_string() + " -> p" + std::to_string(to), seq + 1);
    }
  }
}

void SimNetwork::deliver_event(ProcId from, ProcId to, const Message& m,
                               std::uint64_t seq) {
  if (crashes_.is_crashed(to)) {
    ++stats_.dropped_receiver_crashed;
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), TraceKind::Drop, to,
                     "receiver crashed; " + m.to_string(), seq + 1);
    }
    return;
  }
  ++stats_.delivered;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceKind::Deliver, to,
                   m.to_string() + " from p" + std::to_string(from), seq + 1);
    // Causal context window: everything the handler records — the Sends it
    // emits, phase starts, decides — is a consequence of this delivery.
    trace_->set_context(seq + 1);
  }
  HYCO_CHECK_MSG(static_cast<bool>(deliver_), "network deliver fn not set");
  deliver_(to, from, m);
  if (trace_ != nullptr) trace_->clear_context();
}

std::size_t SimNetwork::deliver_batch(const TickItem* items,
                                      std::size_t count,
                                      const bool& halted) {
  if (trace_ != nullptr) {
    // Tracing wants a record per message; the cold per-event path already
    // does exactly that.
    return DeliverSink::deliver_batch(items, count, halted);
  }
  HYCO_CHECK_MSG(static_cast<bool>(deliver_), "network deliver fn not set");
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::size_t i = 0;
  for (; i < count; ++i) {
    const TickItem& it = items[i];
    if (crashes_.is_crashed(it.to)) {
      ++dropped;
    } else {
      ++delivered;
      deliver_(it.to, it.from, *it.msg);
    }
    if (halted) {
      ++i;
      break;
    }
  }
  stats_.delivered += delivered;
  stats_.dropped_receiver_crashed += dropped;
  return i;
}

void SimNetwork::send(ProcId from, ProcId to, const Message& m) {
  HYCO_CHECK_MSG(from >= 0 && from < n_ && to >= 0 && to < n_,
                 "send with out-of-range process id");
  if (crashes_.is_crashed(from)) {
    ++stats_.dropped_sender_crashed;
    return;
  }
  schedule_delivery(from, to, m);
}

void SimNetwork::broadcast(ProcId from, const Message& m) {
  HYCO_CHECK_MSG(from >= 0 && from < n_, "broadcast from unknown process");
  if (crashes_.is_crashed(from)) {
    ++stats_.dropped_sender_crashed;
    return;
  }
  ++stats_.broadcasts;
  const auto idx = static_cast<std::size_t>(from);
  const std::int32_t my_broadcast = broadcast_counts_[idx]++;

  // Scripted mid-broadcast crash: deliver to a random subset, then halt.
  if (plan_ != nullptr) {
    const CrashSpec& spec = plan_->specs[idx];
    if (spec.kind == CrashSpec::Kind::OnBroadcast &&
        spec.broadcast_index == my_broadcast) {
      // Only the k delivery targets are drawn (k RNG draws, not n-1; see
      // Rng::partial_shuffle for the draw-order contract), over the
      // reusable scratch buffer — no allocation on the crash path.
      const auto k = static_cast<std::size_t>(
          std::clamp<std::int32_t>(spec.deliver_count, 0, n_));
      std::iota(scratch_.begin(), scratch_.end(), 0);
      sim_.rng().partial_shuffle(scratch_, k);
      for (std::size_t i = 0; i < k; ++i) {
        schedule_delivery(from, scratch_[i], m);
      }
      crashes_.crash(from, sim_.now());
      if (trace_ != nullptr) {
        trace_->record(sim_.now(), TraceKind::Crash, from,
                       "mid-broadcast, delivered to " + std::to_string(k) +
                           " of " + std::to_string(n_));
      }
      return;
    }
  }

  for (ProcId to = 0; to < n_; ++to) {
    schedule_delivery(from, to, m);
  }
}

}  // namespace hyco
