// Message-delay models: the semantics of "asynchronous but reliable"
// channels. Transit times are arbitrary-but-finite; each model draws the
// delay of one message. The adversarial model lets experiments hand the
// scheduler to an adversary that inspects message contents (e.g. to try to
// keep the system split between 0-supporters and 1-supporters — the attack
// randomized consensus defeats).
#pragma once

#include <functional>
#include <memory>

#include "core/types.h"
#include "net/message.h"
#include "util/rng.h"

namespace hyco {

/// Strategy interface for drawing per-message transit delays.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delay (>= 0) for a message from `from` to `to` sent at time `now`.
  virtual SimTime delay(ProcId from, ProcId to, const Message& m, SimTime now,
                        Rng& rng) = 0;
};

/// Every message takes exactly `fixed` time units.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(SimTime fixed) : fixed_(fixed) {}
  SimTime delay(ProcId, ProcId, const Message&, SimTime, Rng&) override {
    return fixed_;
  }

 private:
  SimTime fixed_;
};

/// Uniformly random transit in [lo, hi].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(SimTime lo, SimTime hi);
  SimTime delay(ProcId, ProcId, const Message&, SimTime, Rng& rng) override;

 private:
  SimTime lo_;
  SimTime hi_;
};

/// Exponentially distributed transit with the given mean (heavy-ish tail —
/// a common model for asynchronous networks), plus a small floor so delays
/// are never zero.
class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(double mean_ns, SimTime floor_ns = 1);
  SimTime delay(ProcId, ProcId, const Message&, SimTime, Rng& rng) override;

 private:
  double mean_;
  SimTime floor_;
};

/// Fully programmable delay: the strategy sees everything the model sees.
class AdversarialDelay final : public DelayModel {
 public:
  using Strategy =
      std::function<SimTime(ProcId from, ProcId to, const Message&, SimTime now, Rng&)>;
  explicit AdversarialDelay(Strategy strategy);
  SimTime delay(ProcId from, ProcId to, const Message& m, SimTime now,
                Rng& rng) override;

 private:
  Strategy strategy_;
};

/// Declarative configuration for building a delay model (used by RunConfig
/// so experiment grids stay plain data).
struct DelayConfig {
  enum class Kind { Constant, Uniform, Exponential } kind = Kind::Uniform;
  SimTime constant = 100;
  SimTime uniform_lo = 50;
  SimTime uniform_hi = 150;
  double exp_mean = 100.0;

  static DelayConfig constant_of(SimTime t) {
    DelayConfig c;
    c.kind = Kind::Constant;
    c.constant = t;
    return c;
  }
  static DelayConfig uniform(SimTime lo, SimTime hi) {
    DelayConfig c;
    c.kind = Kind::Uniform;
    c.uniform_lo = lo;
    c.uniform_hi = hi;
    return c;
  }
  static DelayConfig exponential(double mean) {
    DelayConfig c;
    c.kind = Kind::Exponential;
    c.exp_mean = mean;
    return c;
  }
};

/// Instantiates the configured model.
std::unique_ptr<DelayModel> make_delay_model(const DelayConfig& cfg);

}  // namespace hyco
