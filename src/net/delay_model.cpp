#include "net/delay_model.h"

#include <cmath>

#include "util/assert.h"

namespace hyco {

UniformDelay::UniformDelay(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
  HYCO_CHECK_MSG(lo >= 0 && hi >= lo, "bad uniform delay range [" << lo << ','
                                                                  << hi << ']');
}

SimTime UniformDelay::delay(ProcId, ProcId, const Message&, SimTime,
                            Rng& rng) {
  return rng.uniform(lo_, hi_);
}

ExponentialDelay::ExponentialDelay(double mean_ns, SimTime floor_ns)
    : mean_(mean_ns), floor_(floor_ns) {
  HYCO_CHECK_MSG(mean_ns > 0.0, "exponential delay mean must be positive");
  HYCO_CHECK_MSG(floor_ns >= 0, "delay floor must be non-negative");
}

SimTime ExponentialDelay::delay(ProcId, ProcId, const Message&, SimTime,
                                Rng& rng) {
  const double d = rng.exponential(mean_);
  return floor_ + static_cast<SimTime>(std::llround(d));
}

AdversarialDelay::AdversarialDelay(Strategy strategy)
    : strategy_(std::move(strategy)) {
  HYCO_CHECK_MSG(static_cast<bool>(strategy_),
                 "adversarial delay needs a strategy");
}

SimTime AdversarialDelay::delay(ProcId from, ProcId to, const Message& m,
                                SimTime now, Rng& rng) {
  const SimTime d = strategy_(from, to, m, now, rng);
  HYCO_CHECK_MSG(d >= 0, "adversarial strategy produced negative delay " << d);
  return d;
}

std::unique_ptr<DelayModel> make_delay_model(const DelayConfig& cfg) {
  switch (cfg.kind) {
    case DelayConfig::Kind::Constant:
      return std::make_unique<ConstantDelay>(cfg.constant);
    case DelayConfig::Kind::Uniform:
      return std::make_unique<UniformDelay>(cfg.uniform_lo, cfg.uniform_hi);
    case DelayConfig::Kind::Exponential:
      return std::make_unique<ExponentialDelay>(cfg.exp_mean);
  }
  return nullptr;
}

}  // namespace hyco
