// Coin oracles (Section II-B).
//
//  * LocalCoin — per-process independent fair coin: local_coin() returns 0
//    or 1 with probability 1/2; coins of distinct processes are independent.
//  * CommonCoin — common_coin() delivers the SAME random bit sequence
//    b_1, b_2, ... to every process: the r-th invocation by p_i and the r-th
//    invocation by p_j return the same bit. Implemented as a seeded hash of
//    the round number, which every process can evaluate locally — a perfect
//    common coin with zero communication (the paper defers constructions to
//    textbooks).
//  * BiasedCommonCoin — ablation oracle: with probability epsilon the "coin"
//    returns an adversary-chosen bit instead of the fair bit, still common
//    to all processes. Models an imperfect coin; used by experiment T-ADV.
#pragma once

#include <cstdint>
#include <functional>

#include "core/types.h"
#include "util/rng.h"

namespace hyco {

/// Independent fair coin of one process.
class LocalCoin {
 public:
  /// Each process must get its own stream (fork the run seed by process id).
  explicit LocalCoin(std::uint64_t seed) : rng_(seed) {}

  /// Returns 0 or 1 with probability 1/2 each.
  int flip() { return rng_.coin(); }

  [[nodiscard]] std::uint64_t flips() const { return count_; }

  /// flip() with instrumentation.
  int flip_counted() {
    ++count_;
    return flip();
  }

 private:
  Rng rng_;
  std::uint64_t count_ = 0;
};

/// Oracle returning the common bit b_r for round r.
class ICommonCoin {
 public:
  virtual ~ICommonCoin() = default;

  /// The r-th bit of the common sequence; identical for every caller.
  virtual int bit(Round r) = 0;
};

/// Perfect common coin: b_r = hash(seed, r) & 1.
class CommonCoin final : public ICommonCoin {
 public:
  explicit CommonCoin(std::uint64_t seed) : seed_(seed) {}
  int bit(Round r) override {
    return static_cast<int>(mix64(seed_, static_cast<std::uint64_t>(r)) & 1U);
  }

 private:
  std::uint64_t seed_;
};

/// ε-biased common coin: with probability epsilon the adversary substitutes
/// its own bit for round r. Deterministic in (seed, r), hence still common.
class BiasedCommonCoin final : public ICommonCoin {
 public:
  /// `adversary_bit(r)` chooses the substituted bit for round r.
  BiasedCommonCoin(std::uint64_t seed, double epsilon,
                   std::function<int(Round)> adversary_bit);

  int bit(Round r) override;

 private:
  std::uint64_t seed_;
  double epsilon_;
  std::function<int(Round)> adversary_bit_;
};

}  // namespace hyco
