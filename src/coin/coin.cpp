#include "coin/coin.h"

#include "util/assert.h"

namespace hyco {

BiasedCommonCoin::BiasedCommonCoin(std::uint64_t seed, double epsilon,
                                   std::function<int(Round)> adversary_bit)
    : seed_(seed), epsilon_(epsilon), adversary_bit_(std::move(adversary_bit)) {
  HYCO_CHECK_MSG(epsilon >= 0.0 && epsilon <= 1.0,
                 "epsilon " << epsilon << " out of [0,1]");
  HYCO_CHECK_MSG(static_cast<bool>(adversary_bit_),
                 "biased coin needs an adversary strategy");
}

int BiasedCommonCoin::bit(Round r) {
  // Two independent derivations from (seed, r): one for the fair bit, one
  // for the "is this round corrupted" trial. Both are pure functions of
  // (seed, r), so every process computes the same outcome.
  const std::uint64_t h1 = mix64(seed_, static_cast<std::uint64_t>(r));
  const std::uint64_t h2 = mix64(h1, 0xAD7E);
  const double u =
      static_cast<double>(h2 >> 11) * 0x1.0p-53;  // uniform in [0,1)
  if (u < epsilon_) {
    const int b = adversary_bit_(r);
    HYCO_CHECK_MSG(b == 0 || b == 1, "adversary bit must be 0/1");
    return b;
  }
  return static_cast<int>(h1 & 1U);
}

}  // namespace hyco
