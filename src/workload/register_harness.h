// Workload driver + atomicity checker for the hybrid-model register
// emulation: every process issues a randomized sequence of reads and
// uniquely-valued writes; the recorded history is then checked against the
// observable conditions of MWMR atomicity (real-time order respected by
// linearization timestamps, reads return actually-written values, no
// new/old inversion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "core/hybrid_register.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/crash.h"
#include "sim/simulator.h"

namespace hyco {

/// One completed operation in the history.
struct RegOpRecord {
  ProcId proc = -1;
  bool is_write = false;
  std::uint64_t value = 0;  ///< written value, or value returned by the read
  RegTimestamp ts;          ///< linearization timestamp
  SimTime invoked = 0;
  SimTime responded = 0;
};

/// Description of one register workload run.
struct RegisterRunConfig {
  explicit RegisterRunConfig(ClusterLayout l) : layout(std::move(l)) {}

  ClusterLayout layout;
  int ops_per_process = 6;
  double write_fraction = 0.5;
  std::uint64_t seed = 1;
  DelayConfig delays = DelayConfig::uniform(50, 150);
  CrashPlan crashes;
  std::uint64_t max_events = 100'000'000;
};

/// Outcome of a register workload run.
struct RegisterRunResult {
  std::vector<RegOpRecord> history;  ///< completed operations only
  bool atomicity_ok = true;
  std::vector<std::string> violations;
  bool all_correct_completed = false;  ///< every live process ran all its ops
  NetStats net;
  SimTime end_time = 0;
  std::size_t crashed = 0;

  [[nodiscard]] bool success() const {
    return atomicity_ok && all_correct_completed;
  }
};

/// Runs the workload and checks the history.
RegisterRunResult run_register_workload(const RegisterRunConfig& cfg);

/// Standalone history checker (exposed for direct unit testing): appends
/// human-readable violations and returns true iff the history is atomic.
bool check_register_atomicity(const std::vector<RegOpRecord>& history,
                              std::vector<std::string>& violations);

}  // namespace hyco
