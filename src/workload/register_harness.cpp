#include "workload/register_harness.h"

#include <map>
#include <memory>
#include <sstream>

#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

bool check_register_atomicity(const std::vector<RegOpRecord>& history,
                              std::vector<std::string>& violations) {
  const std::size_t before = violations.size();
  const auto note = [&](const std::string& s) { violations.push_back(s); };

  // 1. Write timestamps are unique, and each read's timestamp maps to an
  //    actual write with the same value (or the initial record (0,-1)/0).
  std::map<std::pair<std::int64_t, ProcId>, const RegOpRecord*> writes;
  for (const auto& op : history) {
    if (!op.is_write) continue;
    const auto key = std::make_pair(op.ts.seq, op.ts.writer);
    if (writes.count(key) > 0) {
      std::ostringstream os;
      os << "duplicate write timestamp (" << op.ts.seq << ',' << op.ts.writer
         << ')';
      note(os.str());
    }
    writes[key] = &op;
    if (op.ts.writer != op.proc) {
      std::ostringstream os;
      os << "write by p" << op.proc << " carries foreign writer id "
         << op.ts.writer;
      note(os.str());
    }
  }
  for (const auto& op : history) {
    if (op.is_write) continue;
    if (op.ts == RegTimestamp{0, -1}) {
      if (op.value != 0) note("read of initial record returned nonzero");
      continue;
    }
    const auto it = writes.find({op.ts.seq, op.ts.writer});
    if (it == writes.end()) {
      std::ostringstream os;
      os << "read by p" << op.proc << " returned timestamp (" << op.ts.seq
         << ',' << op.ts.writer << ") that no completed write produced";
      // The write may have crashed mid-store: that is legal (the value was
      // proposed); only flag when the VALUE was never written by anyone.
      // Without the write record we cannot cross-check the value, so only
      // check values for completed writes below.
      (void)os;
      continue;
    }
    if (it->second->value != op.value) {
      std::ostringstream os;
      os << "read returned value " << op.value << " but write ("
         << op.ts.seq << ',' << op.ts.writer << ") wrote "
         << it->second->value;
      note(os.str());
    }
  }

  // 2. Real-time order: if op1 responded before op2 was invoked, op2's
  //    linearization timestamp must not precede op1's. For two writes the
  //    order must be strict (timestamps are unique).
  for (const auto& a : history) {
    for (const auto& b : history) {
      if (&a == &b || a.responded >= b.invoked) continue;
      if (b.ts < a.ts) {
        std::ostringstream os;
        os << (a.is_write ? "write" : "read") << " by p" << a.proc
           << " (ts " << a.ts.seq << ',' << a.ts.writer << ") finished "
              "before "
           << (b.is_write ? "write" : "read") << " by p" << b.proc
           << " (ts " << b.ts.seq << ',' << b.ts.writer
           << ") started, but linearizes after it";
        note(os.str());
      }
      if (a.is_write && b.is_write && a.ts == b.ts) {
        note("two sequential writes share a timestamp");
      }
    }
  }
  return violations.size() == before;
}

RegisterRunResult run_register_workload(const RegisterRunConfig& cfg) {
  const ProcId n = cfg.layout.n();
  Simulator sim(cfg.seed);
  sim.reserve_all_to_all(n);
  CrashPlan plan = cfg.crashes;
  if (plan.specs.empty()) plan = CrashPlan::none(static_cast<std::size_t>(n));
  CrashTracker tracker(static_cast<std::size_t>(n));
  auto delays = make_delay_model(cfg.delays);
  SimNetwork net(sim, *delays, tracker, n, &plan, nullptr);

  std::vector<std::unique_ptr<ClusterRegState>> cluster_state;
  for (ClusterId x = 0; x < cfg.layout.m(); ++x) {
    (void)x;
    cluster_state.push_back(std::make_unique<ClusterRegState>());
  }
  std::vector<std::unique_ptr<RegisterProcess>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<RegisterProcess>(
        p, cfg.layout, net,
        *cluster_state[static_cast<std::size_t>(cfg.layout.cluster_of(p))]));
  }

  RegisterRunResult result;
  std::vector<int> ops_done(static_cast<std::size_t>(n), 0);
  std::vector<SimTime> op_invoked(static_cast<std::size_t>(n), 0);
  Rng wl_rng(mix64(cfg.seed, 0x4E6));

  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    procs[static_cast<std::size_t>(to)]->on_message(from, m);
  });

  // Each process issues its next operation as soon as the previous one
  // completes (plus a small think time drawn from the workload stream).
  std::function<void(ProcId)> issue_next = [&](ProcId p) {
    const auto idx = static_cast<std::size_t>(p);
    if (tracker.is_crashed(p) || ops_done[idx] >= cfg.ops_per_process) return;
    const bool is_write = wl_rng.bernoulli(cfg.write_fraction);
    op_invoked[idx] = sim.now();
    const auto completion = [&, p, is_write](ProcId self, std::uint64_t value,
                                             RegTimestamp ts) {
      const auto i = static_cast<std::size_t>(self);
      result.history.push_back(RegOpRecord{self, is_write, value, ts,
                                           op_invoked[i], sim.now()});
      ++ops_done[i];
      sim.schedule_in(wl_rng.uniform(1, 40), [&, p] { issue_next(p); });
    };
    if (is_write) {
      // Globally unique value: (proc, per-proc op counter).
      const std::uint64_t v =
          (static_cast<std::uint64_t>(p) << 32) |
          static_cast<std::uint64_t>(ops_done[idx] + 1);
      procs[idx]->write(v, completion);
    } else {
      procs[idx]->read(completion);
    }
  };

  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      if (spec.time <= 0) {
        tracker.crash(p, 0);
      } else {
        sim.schedule_at(spec.time, [&tracker, p, t = spec.time] {
          tracker.crash(p, t);
        });
      }
    }
  }
  for (ProcId p = 0; p < n; ++p) {
    sim.schedule_at(0, [&, p] { issue_next(p); });
  }

  sim.run(cfg.max_events);
  result.end_time = sim.now();
  result.crashed = tracker.crashed_count();
  result.net = net.stats();

  result.all_correct_completed = true;
  for (ProcId p = 0; p < n; ++p) {
    if (!tracker.is_crashed(p) &&
        ops_done[static_cast<std::size_t>(p)] < cfg.ops_per_process) {
      result.all_correct_completed = false;
    }
  }
  result.atomicity_ok =
      check_register_atomicity(result.history, result.violations);
  return result;
}

}  // namespace hyco
