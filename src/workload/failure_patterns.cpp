#include "workload/failure_patterns.h"

#include <algorithm>
#include <numeric>

#include "util/assert.h"

namespace hyco::failure_patterns {

FailureScenario classify(std::string name, const ClusterLayout& layout,
                         CrashPlan plan) {
  const auto n = static_cast<std::size_t>(layout.n());
  HYCO_CHECK_MSG(plan.specs.size() == n, "plan size mismatch");
  DynamicBitset live(n);
  for (std::size_t p = 0; p < n; ++p) {
    if (plan.specs[p].kind == CrashSpec::Kind::None) live.set(p);
  }
  FailureScenario s;
  s.name = std::move(name);
  s.crash_count = n - live.count();
  s.hybrid_should_terminate = layout.covering_set_alive(live);
  s.benor_should_terminate = 2 * live.count() > n;
  s.plan = std::move(plan);
  return s;
}

FailureScenario none(const ClusterLayout& layout) {
  return classify("none", layout,
                  CrashPlan::none(static_cast<std::size_t>(layout.n())));
}

FailureScenario crash_set(const ClusterLayout& layout,
                          const std::vector<ProcId>& procs, SimTime at) {
  CrashPlan plan = CrashPlan::none(static_cast<std::size_t>(layout.n()));
  for (const ProcId p : procs) {
    plan.specs.at(static_cast<std::size_t>(p)) = CrashSpec::at_time(at);
  }
  return classify("crash_set", layout, std::move(plan));
}

FailureScenario random_minority(const ClusterLayout& layout, Rng& rng,
                                SimTime horizon) {
  const ProcId n = layout.n();
  const ProcId max_crashes = (n - 1) / 2;  // strictly fewer than n/2
  const auto k = static_cast<ProcId>(rng.bounded(
      static_cast<std::uint64_t>(max_crashes) + 1));
  std::vector<ProcId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  CrashPlan plan = CrashPlan::none(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < k; ++i) {
    const SimTime t = rng.uniform(0, horizon);
    plan.specs[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        CrashSpec::at_time(t);
  }
  return classify("random_minority", layout, std::move(plan));
}

FailureScenario one_survivor_per_cluster(
    const ClusterLayout& layout,
    const std::vector<ClusterId>& surviving_clusters, Rng& rng,
    SimTime horizon) {
  CrashPlan plan = CrashPlan::none(static_cast<std::size_t>(layout.n()));
  DynamicBitset survivor_cluster(static_cast<std::size_t>(layout.m()));
  for (const ClusterId x : surviving_clusters) {
    survivor_cluster.set(static_cast<std::size_t>(x));
  }
  for (ClusterId x = 0; x < layout.m(); ++x) {
    const auto& members = layout.members(x);
    if (survivor_cluster.test(static_cast<std::size_t>(x))) {
      // keep exactly one random member alive
      const auto keep = static_cast<std::size_t>(
          rng.bounded(members.size()));
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i == keep) continue;
        plan.specs[static_cast<std::size_t>(members[i])] =
            CrashSpec::at_time(rng.uniform(0, horizon));
      }
    } else {
      for (const ProcId p : members) {
        plan.specs[static_cast<std::size_t>(p)] =
            CrashSpec::at_time(rng.uniform(0, horizon));
      }
    }
  }
  return classify("one_survivor_per_cluster", layout, std::move(plan));
}

FailureScenario majority_crash_one_survivor(const ClusterLayout& layout,
                                            Rng& rng, SimTime horizon) {
  ClusterId majority = -1;
  for (ClusterId x = 0; x < layout.m(); ++x) {
    if (2 * layout.cluster_size(x) > layout.n()) {
      majority = x;
      break;
    }
  }
  HYCO_CHECK_MSG(majority >= 0,
                 "layout has no majority cluster: " << layout.to_string());
  auto s = one_survivor_per_cluster(layout, {majority}, rng, horizon);
  s.name = "majority_crash_one_survivor";
  return s;
}

FailureScenario kill_covering_set(const ClusterLayout& layout, Rng& rng,
                                  SimTime horizon) {
  // Kill whole clusters, largest first, until live coverage <= n/2.
  std::vector<ClusterId> by_size(static_cast<std::size_t>(layout.m()));
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(), [&](ClusterId a, ClusterId b) {
    return layout.cluster_size(a) > layout.cluster_size(b);
  });
  CrashPlan plan = CrashPlan::none(static_cast<std::size_t>(layout.n()));
  DynamicBitset live(static_cast<std::size_t>(layout.n()));
  live.set_all();
  for (const ClusterId x : by_size) {
    if (!layout.covering_set_alive(live)) break;
    for (const ProcId p : layout.members(x)) {
      plan.specs[static_cast<std::size_t>(p)] =
          CrashSpec::at_time(rng.uniform(0, horizon));
      live.reset(static_cast<std::size_t>(p));
    }
  }
  HYCO_CHECK_MSG(!layout.covering_set_alive(live),
                 "failed to kill a covering set");
  return classify("kill_covering_set", layout, std::move(plan));
}

FailureScenario mid_broadcast(const ClusterLayout& layout, ProcId count,
                              std::int32_t broadcast_index, Rng& rng) {
  const ProcId n = layout.n();
  HYCO_CHECK_MSG(count >= 0 && count <= n, "bad mid-broadcast count");
  std::vector<ProcId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  CrashPlan plan = CrashPlan::none(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < count; ++i) {
    // Deliver to a random strict subset of the n destinations.
    const auto deliver = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(n)));
    plan.specs[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        CrashSpec::on_broadcast(broadcast_index, deliver);
  }
  return classify("mid_broadcast", layout, std::move(plan));
}

}  // namespace hyco::failure_patterns
