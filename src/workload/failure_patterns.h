// Failure-pattern generators for the fault-tolerance experiments (T-FT) and
// the property-test sweeps. Each generator produces a CrashPlan plus the
// paper-predicted outcome: the hybrid algorithms terminate iff a set of
// clusters that (a) covers a majority of processes and (b) keeps at least
// one live process each, survives (Section III-B, "Main scalability and
// fault-tolerance property"); pure message passing terminates iff a
// majority of processes survive.
#pragma once

#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "sim/crash.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace hyco {

/// A named crash plan with its predicted outcomes.
struct FailureScenario {
  std::string name;
  CrashPlan plan;
  std::size_t crash_count = 0;
  bool hybrid_should_terminate = false;  ///< covering cluster set survives
  bool benor_should_terminate = false;   ///< a majority of processes survives
};

namespace failure_patterns {

/// Computes the predicted outcomes for `plan` under `layout` and wraps them
/// up. Any process with a non-None spec counts as (eventually) crashed —
/// conservative for OnBroadcast specs, which is the right direction for
/// "should terminate" predictions.
FailureScenario classify(std::string name, const ClusterLayout& layout,
                         CrashPlan plan);

/// Nobody crashes.
FailureScenario none(const ClusterLayout& layout);

/// The given processes crash at the given virtual time.
FailureScenario crash_set(const ClusterLayout& layout,
                          const std::vector<ProcId>& procs, SimTime at);

/// A uniformly random set of fewer than n/2 processes crash at random times
/// in [0, horizon].
FailureScenario random_minority(const ClusterLayout& layout, Rng& rng,
                                SimTime horizon);

/// The paper's headline scenario: every process crashes EXCEPT one randomly
/// chosen survivor in each cluster of `surviving_clusters`. When the chosen
/// clusters cover a majority, the hybrid algorithms must still terminate —
/// even though far more than n/2 processes may be down.
FailureScenario one_survivor_per_cluster(
    const ClusterLayout& layout, const std::vector<ClusterId>& surviving_clusters,
    Rng& rng, SimTime horizon);

/// Majority-crash variant for layouts with a majority cluster: crash all
/// processes outside the majority cluster and all but one inside it.
FailureScenario majority_crash_one_survivor(const ClusterLayout& layout,
                                            Rng& rng, SimTime horizon);

/// Kills whole clusters (every member) until the live coverage drops to
/// <= n/2: the hybrid algorithms must NOT terminate, but must stay safe
/// (indulgence).
FailureScenario kill_covering_set(const ClusterLayout& layout, Rng& rng,
                                  SimTime horizon);

/// `count` random processes crash mid-broadcast: during their k-th
/// broadcast, delivering to a random strict subset (the paper's "arbitrary
/// subset" clause).
FailureScenario mid_broadcast(const ClusterLayout& layout, ProcId count,
                              std::int32_t broadcast_index, Rng& rng);

}  // namespace failure_patterns

}  // namespace hyco
