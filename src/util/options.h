// Minimal command-line option parsing for bench/example binaries.
// Accepts "--key=value" and "--flag" forms; anything else is positional.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hyco {

/// Parsed command-line options with typed, defaulted accessors.
class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key,
                              bool fallback = false) const;

  /// Comma-separated integer list ("--n=8,16,32"). Returns `fallback` when
  /// the key is absent; throws ContractViolation naming the key and the
  /// offending token on malformed input (empty items, non-numeric text,
  /// trailing junk).
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key, std::vector<std::int64_t> fallback = {}) const;

  /// Comma-separated double list ("--eps=0,0.1,0.5"); same error contract.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, std::vector<double> fallback = {}) const;

  /// Comma-separated string list ("--alg=local_coin,common_coin"); empty
  /// items are rejected.
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& key, std::vector<std::string> fallback = {}) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Every --key seen on the command line, sorted (map order). Lets a
  /// binary reject flags outside its documented registry.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace hyco
