#include "util/bitset.h"

#include <bit>
#include <sstream>

#include "util/assert.h"

namespace hyco {

DynamicBitset::DynamicBitset(std::size_t universe_size)
    : size_(universe_size), words_((universe_size + kBits - 1) / kBits, 0) {}

void DynamicBitset::check_pos(std::size_t pos) const {
  HYCO_CHECK_MSG(pos < size_, "bit index " << pos << " out of range (size "
                                           << size_ << ")");
}

void DynamicBitset::check_same_universe(const DynamicBitset& other) const {
  HYCO_CHECK_MSG(size_ == other.size_, "bitset universe mismatch: "
                                           << size_ << " vs " << other.size_);
}

void DynamicBitset::set(std::size_t pos) {
  check_pos(pos);
  words_[pos / kBits] |= (std::uint64_t{1} << (pos % kBits));
}

void DynamicBitset::reset(std::size_t pos) {
  check_pos(pos);
  words_[pos / kBits] &= ~(std::uint64_t{1} << (pos % kBits));
}

void DynamicBitset::assign(std::size_t pos, bool value) {
  if (value) {
    set(pos);
  } else {
    reset(pos);
  }
}

bool DynamicBitset::test(std::size_t pos) const {
  check_pos(pos);
  return (words_[pos / kBits] >> (pos % kBits)) & 1U;
}

void DynamicBitset::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  // Clear the bits past the end of the universe in the last word.
  const std::size_t tail = size_ % kBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

void DynamicBitset::clear_all() {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) out.push_back(i);
  }
  return out;
}

std::string DynamicBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto i : to_indices()) {
    if (!first) os << ',';
    os << i;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace hyco
