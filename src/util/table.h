// ASCII table rendering for the paper-reproduction harnesses: every bench
// binary prints its results as an aligned table with a title, mirroring how
// the paper's claims are presented in EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace hyco {

/// Collects rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_columns(const std::vector<std::string>& names);

  void add_row(const std::vector<std::string>& cells);

  /// Convenience: converts each value with operator<<.
  template <typename... Ts>
  void add_row_values(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(stringify(vals)), ...);
    add_row(cells);
  }

  /// Renders the full table (title, rule, header, rows).
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string stringify(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (no trailing
/// locale-dependent surprises; used for table cells).
std::string fixed(double v, int decimals = 2);

}  // namespace hyco
