// A dynamically-sized bitset used for process sets, cluster sets, and crash
// masks. std::bitset is fixed-size and std::vector<bool> lacks popcount and
// set-algebra, hence this small dedicated type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyco {

/// Fixed-universe dynamic bitset with set algebra and population count.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset over the universe {0, ..., universe_size-1}, all clear.
  explicit DynamicBitset(std::size_t universe_size);

  /// Number of positions in the universe (not the number of set bits).
  [[nodiscard]] std::size_t size() const { return size_; }

  void set(std::size_t pos);
  void reset(std::size_t pos);
  void assign(std::size_t pos, bool value);
  [[nodiscard]] bool test(std::size_t pos) const;

  /// Sets or clears every bit.
  void set_all();
  void clear_all();

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  [[nodiscard]] bool any() const { return count() > 0; }
  [[nodiscard]] bool none() const { return count() == 0; }
  [[nodiscard]] bool all() const { return count() == size_; }

  /// In-place set union / intersection / difference. Operands must share the
  /// same universe size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  bool operator==(const DynamicBitset& other) const = default;

  /// True iff every set bit of this set is also set in `other`.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  /// Indices of set bits in increasing order.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  /// E.g. "{0,3,4}" — for logs and test failure messages.
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::size_t kBits = 64;
  void check_pos(std::size_t pos) const;
  void check_same_universe(const DynamicBitset& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hyco
