#include "util/csv.h"

#include <sstream>

#include "util/assert.h"

namespace hyco {

void CsvWriter::header(std::initializer_list<std::string> names) {
  header(std::vector<std::string>(names));
}

void CsvWriter::header(const std::vector<std::string>& names) {
  HYCO_CHECK_MSG(!header_written_, "CSV header written twice");
  HYCO_CHECK_MSG(!names.empty(), "CSV header must have at least one column");
  columns_ = names.size();
  header_written_ = true;
  write_line(names);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (header_written_) {
    HYCO_CHECK_MSG(fields.size() == columns_,
                   "CSV row has " << fields.size() << " fields, expected "
                                  << columns_);
  }
  ++rows_;
  write_line(fields);
}

void CsvWriter::write_line(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) (*out_) << ',';
    (*out_) << escape(f);
    first = false;
  }
  (*out_) << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace hyco
