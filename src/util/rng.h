// Deterministic pseudo-random number generation for reproducible experiments.
//
// The whole repository derives every random choice (message delays, coin
// flips, crash subsets, workload inputs) from a single 64-bit run seed via
// SplitMix64-based stream derivation, so any run can be replayed exactly.
#pragma once

#include <array>
#include <cstdint>

namespace hyco {

/// SplitMix64 step; also used as a mixing/finalizing function.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values into one; used to derive independent
/// stream seeds (e.g. per-process local-coin streams) from a run seed.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** generator (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush; plenty for simulation workloads. Not cryptographic.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64 (the procedure
  /// recommended by the xoshiro authors).
  explicit Rng(std::uint64_t seed = 0xD1B54A32D192ED03ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Derives an independent generator for a named substream.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    return Rng(mix64(s_[0] ^ s_[3], stream_id));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform integer in [0, bound); bound == 0 yields 0.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // Unbiased modulo with rejection: discard draws below 2^64 mod bound.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// A fair coin flip in {0, 1}.
  int coin() { return static_cast<int>(next_u64() >> 63); }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle of a random-access container. Draw order: one
  /// bounded(i) per position for i = size() … 2 (bounded(1) is never
  /// drawn), finalizing positions back to front.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Partial Fisher–Yates: after the call, c[0 … k-1] is a uniform random
  /// k-subset of the container's elements in uniform random order; the
  /// tail is unspecified. Draw order: draw i (0-based) uses
  /// bounded(size - i) — the same bound sequence as the first k draws of
  /// shuffle() — so selecting k elements consumes exactly k draws
  /// (bounded(1) consumes none) instead of size-1. Requires k <= size.
  template <typename Container>
  void partial_shuffle(Container& c, std::size_t k) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(bounded(c.size() - i));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  // UniformRandomBitGenerator interface (for interop with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace hyco
