#include "util/options.h"

#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "util/assert.h"

namespace hyco {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        kv_.emplace(std::string(arg.substr(2)), "true");
      } else {
        kv_.emplace(std::string(arg.substr(2, eq - 2)),
                    std::string(arg.substr(eq + 1)));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

namespace {

std::vector<std::string> split_list(const std::string& key,
                                    const std::string& value) {
  std::vector<std::string> items;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::string item = value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    HYCO_CHECK_MSG(!item.empty(),
                   "--" << key << ": empty item in list \"" << value << '"');
    items.push_back(item);
    if (comma == std::string::npos) return items;
    start = comma + 1;
  }
}

}  // namespace

std::vector<std::int64_t> Options::get_int_list(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::vector<std::int64_t> out;
  for (const auto& item : split_list(key, it->second)) {
    char* end = nullptr;
    errno = 0;
    const std::int64_t v = std::strtoll(item.c_str(), &end, 10);
    HYCO_CHECK_MSG(end != item.c_str() && *end == '\0' && errno != ERANGE,
                   "--" << key << ": \"" << item
                        << "\" is not an in-range integer (in \""
                        << it->second << "\")");
    out.push_back(v);
  }
  return out;
}

std::vector<double> Options::get_double_list(
    const std::string& key, std::vector<double> fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::vector<double> out;
  for (const auto& item : split_list(key, it->second)) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(item.c_str(), &end);
    HYCO_CHECK_MSG(end != item.c_str() && *end == '\0' && errno != ERANGE,
                   "--" << key << ": \"" << item
                        << "\" is not an in-range number (in \"" << it->second
                        << "\")");
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> Options::get_string_list(
    const std::string& key, std::vector<std::string> fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return split_list(key, it->second);
}

}  // namespace hyco
