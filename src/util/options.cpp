#include "util/options.h"

#include <cstdlib>
#include <string_view>

#include "util/assert.h"

namespace hyco {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        kv_.emplace(std::string(arg.substr(2)), "true");
      } else {
        kv_.emplace(std::string(arg.substr(2, eq - 2)),
                    std::string(arg.substr(eq + 1)));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace hyco
