// Lightweight runtime contract checking.
//
// HYCO_CHECK throws hyco::ContractViolation (derived from std::logic_error)
// instead of aborting, so that tests can assert on violated preconditions and
// long-running experiment harnesses can report, skip, and continue.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hyco {

/// Thrown when a HYCO_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failed(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace hyco

/// Check a precondition/invariant; throws hyco::ContractViolation on failure.
#define HYCO_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) ::hyco::detail::contract_failed(#expr, __FILE__, __LINE__, \
                                                 std::string{});             \
  } while (0)

/// Check with an explanatory message (streamed into the exception text).
#define HYCO_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream hyco_os_;                                           \
      hyco_os_ << msg;                                                       \
      ::hyco::detail::contract_failed(#expr, __FILE__, __LINE__,             \
                                      hyco_os_.str());                       \
    }                                                                        \
  } while (0)
