// Small statistics toolkit for experiment harnesses: online accumulators,
// percentile summaries, and fixed-width histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyco {

/// Online mean/variance accumulator (Welford), plus min/max.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile summary over a retained sample vector.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// One-line rendering: "n=100 mean=2.31 sd=0.88 p50=2 p95=4 max=7".
  [[nodiscard]] std::string to_string() const;

 private:
  // Samples are sorted in place on demand (order carries no information
  // here), so the summary holds one copy of the data, not two — large
  // sweeps retain millions of samples across their cells.
  void ensure_sorted() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket. Used for round-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// ASCII bar rendering, one bucket per line.
  [[nodiscard]] std::string to_string(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hyco
