// Small statistics toolkit for experiment harnesses: online accumulators,
// percentile summaries, and fixed-width histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyco {

/// Online mean/variance accumulator (Welford), plus min/max.
class Accumulator {
 public:
  void add(double x);

  /// Folds another accumulator in (Chan et al. parallel Welford combine).
  /// Note floating-point merge is grouping-sensitive: merge partials in a
  /// fixed order when bit-stable output matters (or use ExactMoments).
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile summary over a retained sample vector.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// One-line rendering: "n=100 mean=2.31 sd=0.88 p50=2 p95=4 max=7".
  [[nodiscard]] std::string to_string() const;

 private:
  // Samples are sorted in place on demand (order carries no information
  // here), so the summary holds one copy of the data, not two — large
  // sweeps retain millions of samples across their cells.
  void ensure_sorted() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Exact first/second moments over non-negative integer samples. Sums are
/// held in 128-bit integers, so mean/variance are pure functions of the
/// sample *multiset* — merging partial accumulators in any order or
/// grouping yields bit-identical results, which is what makes streaming
/// grid execution byte-stable at any thread count. Safe for values < 2^40
/// and counts < 2^24 (sum of squares then stays below 2^124).
class ExactMoments {
 public:
  using U128 = unsigned __int128;

  void add(std::uint64_t x);
  void merge(const ExactMoments& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  // Raw state, for checkpoint serialization.
  [[nodiscard]] U128 raw_sum() const { return sum_; }
  [[nodiscard]] U128 raw_sumsq() const { return sumsq_; }
  [[nodiscard]] std::uint64_t raw_min() const { return min_; }
  [[nodiscard]] std::uint64_t raw_max() const { return max_; }
  static ExactMoments from_raw(std::uint64_t count, U128 sum, U128 sumsq,
                               std::uint64_t min, std::uint64_t max);

 private:
  std::uint64_t n_ = 0;
  U128 sum_ = 0;
  U128 sumsq_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Deterministic mergeable reservoir: bottom-k selection by a caller-supplied
/// 64-bit priority (Efraimidis–Spirakis style). When priorities are a pure
/// hash of each sample's identity (e.g. its run seed), the kept set is a
/// uniform random sample that does not depend on arrival order, merge
/// grouping, or thread count — and while the stream is no longer than
/// `capacity`, it is the complete sample set, so quantiles are exact.
/// Ties on priority break on value, keeping the result a pure function of
/// the input multiset.
class ReservoirSample {
 public:
  struct Entry {
    std::uint64_t priority = 0;
    double value = 0.0;
  };

  explicit ReservoirSample(std::size_t capacity);

  void add(std::uint64_t priority, double value);
  void merge(const ReservoirSample& other);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Kept values sorted ascending (the quantile estimator's input).
  /// Cached between mutations: report emission asks for several quantiles
  /// per metric, and re-sorting 1024 entries per call would dominate
  /// emission on large grids.
  [[nodiscard]] const std::vector<double>& sorted_values() const;
  /// Kept entries in unspecified order, for checkpoint serialization.
  [[nodiscard]] const std::vector<Entry>& entries() const { return heap_; }

 private:
  std::size_t capacity_;
  std::vector<Entry> heap_;  ///< max-heap on (priority, value)
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_valid_ = false;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket. Used for round-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Folds another histogram in; both must share [lo, hi) and bucket count.
  void merge(const Histogram& other);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// ASCII bar rendering, one bucket per line.
  [[nodiscard]] std::string to_string(std::size_t max_width = 40) const;

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  /// Reconstructs a histogram from serialized bucket counts (checkpoints).
  static Histogram from_counts(double lo, double hi,
                               std::vector<std::uint64_t> counts);

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hyco
