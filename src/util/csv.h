// Minimal CSV emitter used by the experiment harnesses so results can be
// post-processed (plotting, regression diffing) outside the binary.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace hyco {

/// Streams rows of a CSV document with RFC-4180 quoting.
class CsvWriter {
 public:
  /// The writer does not own the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row; must be called at most once, before any row.
  void header(std::initializer_list<std::string> names);
  void header(const std::vector<std::string>& names);

  /// Writes one data row. Field counts are checked against the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: converts arithmetic fields with operator<<.
  template <typename... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(stringify(vals)), ...);
    row(fields);
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Quotes a field if it contains separators, quotes, or newlines.
  static std::string escape(const std::string& field);

 private:
  template <typename T>
  static std::string stringify(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return to_string_via_stream(v);
    }
  }
  template <typename T>
  static std::string to_string_via_stream(const T& v);

  void write_line(const std::vector<std::string>& fields);

  std::ostream* out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

template <typename T>
std::string CsvWriter::to_string_via_stream(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace hyco
