#include "util/rng.h"

#include <cmath>

#include "util/assert.h"

namespace hyco {

double Rng::exponential(double mean) {
  HYCO_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
  // Inverse-CDF sampling; 1 - u avoids log(0).
  const double u = next_double();
  return -mean * std::log1p(-u);
}

}  // namespace hyco
