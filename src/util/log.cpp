#include "util/log.h"

#include <cctype>
#include <mutex>

namespace hyco {

const char* Log::level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

void Log::write(LogLevel lvl, const std::string& msg) {
  // One formatted string, one locked insertion: concurrent workers (the
  // executor pool, the dist coordinator/worker loops) emit whole lines,
  // never interleaved fragments.
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += level_name(lvl);
  line += "] ";
  line += msg;
  line += '\n';
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::clog << line;
}

std::optional<LogLevel> parse_log_level(const std::string& name) {
  std::string low;
  low.reserve(name.size());
  for (const char c : name) {
    low += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (low == "trace") return LogLevel::Trace;
  if (low == "debug") return LogLevel::Debug;
  if (low == "info") return LogLevel::Info;
  if (low == "warn") return LogLevel::Warn;
  if (low == "error") return LogLevel::Error;
  return std::nullopt;
}

}  // namespace hyco
