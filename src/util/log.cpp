#include "util/log.h"

namespace hyco {

const char* Log::level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

void Log::write(LogLevel lvl, const std::string& msg) {
  std::clog << '[' << level_name(lvl) << "] " << msg << '\n';
}

}  // namespace hyco
