#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.h"

namespace hyco {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Summary::add(double x) {
  // Appending in sorted position would be O(n); instead just note that the
  // order is no longer sorted and defer to the next percentile query.
  if (sorted_ && !xs_.empty() && x < xs_.back()) sorted_ = false;
  xs_.push_back(x);
}

void Summary::add_all(const std::vector<double>& xs) {
  for (const double x : xs) add(x);
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Summary::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Summary::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Summary::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Summary::percentile(double q) const {
  HYCO_CHECK_MSG(q >= 0.0 && q <= 100.0, "percentile " << q << " out of range");
  ensure_sorted();
  if (xs_.empty()) return 0.0;
  if (xs_.size() == 1) return xs_[0];
  const double rank = q / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << std::setprecision(4) << "n=" << count() << " mean=" << mean()
     << " sd=" << stddev() << " p50=" << percentile(50) << " p95="
     << percentile(95) << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  HYCO_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  HYCO_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((x - lo_) / span *
                                       static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + width * static_cast<double>(i);
    os << std::setw(8) << std::fixed << std::setprecision(1) << b_lo << " | ";
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace hyco
