#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.h"

namespace hyco {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Summary::add(double x) {
  // Appending in sorted position would be O(n); instead just note that the
  // order is no longer sorted and defer to the next percentile query.
  if (sorted_ && !xs_.empty() && x < xs_.back()) sorted_ = false;
  xs_.push_back(x);
}

void Summary::add_all(const std::vector<double>& xs) {
  for (const double x : xs) add(x);
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Summary::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Summary::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Summary::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Summary::percentile(double q) const {
  HYCO_CHECK_MSG(q >= 0.0 && q <= 100.0, "percentile " << q << " out of range");
  ensure_sorted();
  if (xs_.empty()) return 0.0;
  if (xs_.size() == 1) return xs_[0];
  const double rank = q / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << std::setprecision(4) << "n=" << count() << " mean=" << mean()
     << " sd=" << stddev() << " p50=" << percentile(50) << " p95="
     << percentile(95) << " max=" << max();
  return os.str();
}

void ExactMoments::add(std::uint64_t x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sumsq_ += static_cast<U128>(x) * x;
}

void ExactMoments::merge(const ExactMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  n_ += other.n_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double ExactMoments::mean() const {
  return n_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(n_);
}

double ExactMoments::variance() const {
  if (n_ < 2) return 0.0;
  // n*sumsq - sum^2 >= 0 (Cauchy–Schwarz over exact integers), so the
  // subtraction is exact and cancellation-free.
  const U128 num = static_cast<U128>(n_) * sumsq_ - sum_ * sum_;
  return static_cast<double>(num) /
         (static_cast<double>(n_) * static_cast<double>(n_ - 1));
}

double ExactMoments::stddev() const { return std::sqrt(variance()); }

double ExactMoments::min() const {
  return n_ == 0 ? 0.0 : static_cast<double>(min_);
}

double ExactMoments::max() const {
  return n_ == 0 ? 0.0 : static_cast<double>(max_);
}

ExactMoments ExactMoments::from_raw(std::uint64_t count, U128 sum, U128 sumsq,
                                    std::uint64_t min, std::uint64_t max) {
  ExactMoments m;
  m.n_ = count;
  m.sum_ = sum;
  m.sumsq_ = sumsq;
  m.min_ = min;
  m.max_ = max;
  return m;
}

namespace {

/// Heap order for the reservoir: the *largest* key sits at the top so it is
/// the one evicted when a smaller key arrives.
bool reservoir_less(const ReservoirSample::Entry& a,
                    const ReservoirSample::Entry& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.value < b.value;
}

}  // namespace

ReservoirSample::ReservoirSample(std::size_t capacity) : capacity_(capacity) {
  HYCO_CHECK_MSG(capacity >= 1, "reservoir capacity must be >= 1");
  heap_.reserve(capacity);
}

void ReservoirSample::add(std::uint64_t priority, double value) {
  const Entry e{priority, value};
  if (heap_.size() < capacity_) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), reservoir_less);
    cache_valid_ = false;
    return;
  }
  if (!reservoir_less(e, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), reservoir_less);
  heap_.back() = e;
  std::push_heap(heap_.begin(), heap_.end(), reservoir_less);
  cache_valid_ = false;
}

void ReservoirSample::merge(const ReservoirSample& other) {
  HYCO_CHECK_MSG(capacity_ == other.capacity_,
                 "cannot merge reservoirs of capacity "
                     << capacity_ << " and " << other.capacity_);
  for (const Entry& e : other.heap_) add(e.priority, e.value);
}

const std::vector<double>& ReservoirSample::sorted_values() const {
  if (!cache_valid_) {
    sorted_cache_.clear();
    sorted_cache_.reserve(heap_.size());
    for (const Entry& e : heap_) sorted_cache_.push_back(e.value);
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }
  return sorted_cache_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  HYCO_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  HYCO_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((x - lo_) / span *
                                       static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

Histogram Histogram::from_counts(double lo, double hi,
                                 std::vector<std::uint64_t> counts) {
  Histogram h(lo, hi, counts.size());
  h.counts_ = std::move(counts);
  h.total_ = 0;
  for (const auto c : h.counts_) h.total_ += c;
  return h;
}

void Histogram::merge(const Histogram& other) {
  HYCO_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                     counts_.size() == other.counts_.size(),
                 "cannot merge histograms with different bucket layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + width * static_cast<double>(i);
    os << std::setw(8) << std::fixed << std::setprecision(1) << b_lo << " | ";
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace hyco
