#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.h"

namespace hyco {

void Table::set_columns(const std::vector<std::string>& names) {
  HYCO_CHECK_MSG(rows_.empty(), "set_columns after rows were added");
  columns_ = names;
}

void Table::add_row(const std::vector<std::string>& cells) {
  HYCO_CHECK_MSG(columns_.empty() || cells.size() == columns_.size(),
                 "row width " << cells.size() << " != header width "
                              << columns_.size());
  rows_.push_back(cells);
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    widths.resize(std::max(widths.size(), row.size()), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
    for (const auto w : widths) total += w;
    return std::string(total, '-');
  }();

  out << "== " << title_ << " ==\n";
  if (!columns_.empty()) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) out << " | ";
      out << std::left << std::setw(static_cast<int>(widths[c])) << columns_[c];
    }
    out << '\n' << rule << '\n';
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << " | ";
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  }
  out << '\n';
}

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace hyco
