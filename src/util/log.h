// Tiny leveled logger. Logging is off (Warn) by default so simulations stay
// quiet; examples and debugging sessions raise the level explicitly.
#pragma once

#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace hyco {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Process-wide log configuration.
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel lvl) { level_ = lvl; }
  static bool enabled(LogLevel lvl) { return lvl >= level_; }

  /// Emits one complete line. Safe to call from concurrent executor/worker
  /// threads: the prefix + message + newline are assembled into a single
  /// string and written under a lock, so lines never interleave.
  static void write(LogLevel lvl, const std::string& msg);

  static const char* level_name(LogLevel lvl);

 private:
  static inline LogLevel level_ = LogLevel::Warn;
};

/// Parses a level name ("trace", "debug", "info", "warn", "error",
/// case-insensitive); nullopt for anything else. For --log-level flags.
std::optional<LogLevel> parse_log_level(const std::string& name);

}  // namespace hyco

#define HYCO_LOG(lvl, expr)                                       \
  do {                                                            \
    if (::hyco::Log::enabled(lvl)) {                              \
      std::ostringstream hyco_log_os_;                            \
      hyco_log_os_ << expr;                                       \
      ::hyco::Log::write(lvl, hyco_log_os_.str());                \
    }                                                             \
  } while (0)

#define HYCO_TRACE(expr) HYCO_LOG(::hyco::LogLevel::Trace, expr)
#define HYCO_DEBUG(expr) HYCO_LOG(::hyco::LogLevel::Debug, expr)
#define HYCO_INFO(expr) HYCO_LOG(::hyco::LogLevel::Info, expr)
#define HYCO_WARN(expr) HYCO_LOG(::hyco::LogLevel::Warn, expr)
#define HYCO_ERROR(expr) HYCO_LOG(::hyco::LogLevel::Error, expr)
