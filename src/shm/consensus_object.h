// Cluster-local deterministic consensus objects (the CONS_x[r, ph] of
// Algorithms 2 and 3).
//
// Because each cluster memory is enriched with a consensus-number-infinite
// primitive, wait-free deterministic consensus is solvable inside a cluster
// for any number of crashes (Herlihy 1991). Two constructions are provided:
//  * CasConsensus  — propose = CAS(empty -> v); read the winner.
//  * LlScConsensus — propose = LL; if empty SC(v); read the winner.
// Both are wait-free and linearizable; in the discrete-event simulator every
// propose() runs inside one atomic event, and in the threaded runtime the
// AtomicConsensus variant (src/runtime) runs on std::atomic.
#pragma once

#include <memory>
#include <optional>

#include "core/types.h"
#include "shm/cas_cell.h"
#include "shm/llsc_cell.h"
#include "shm/op_counts.h"

namespace hyco {

/// One-shot binary consensus object over the estimate domain {0, 1, ⊥}.
/// Note: ⊥ (Estimate::Bot) is a legitimate *proposable* value — Algorithm 2
/// proposes ⊥ to CONS_x[r,2] when no value reached a majority — so the
/// object's "undecided" state is distinct from ⊥.
class IConsensusObject {
 public:
  virtual ~IConsensusObject() = default;

  /// Proposes v on behalf of `proposer`; returns the object's decided value
  /// (the first proposal to win). Wait-free: always returns.
  virtual Estimate propose(ProcId proposer, Estimate v) = 0;

  /// The decided value, if any proposal has been made yet.
  [[nodiscard]] virtual std::optional<Estimate> decided() const = 0;
};

/// Consensus from compare&swap.
class CasConsensus final : public IConsensusObject {
 public:
  explicit CasConsensus(ShmOpCounts* counts = nullptr)
      : counts_(counts), cell_(counts) {}

  Estimate propose(ProcId proposer, Estimate v) override;
  [[nodiscard]] std::optional<Estimate> decided() const override {
    return cell_.read();
  }

 private:
  ShmOpCounts* counts_;
  CasCell<Estimate> cell_;
};

/// Consensus from load-linked / store-conditional.
class LlScConsensus final : public IConsensusObject {
 public:
  LlScConsensus(ProcId n, ShmOpCounts* counts = nullptr)
      : counts_(counts), cell_(n, counts) {}

  Estimate propose(ProcId proposer, Estimate v) override;
  [[nodiscard]] std::optional<Estimate> decided() const override {
    return cell_.read();
  }

 private:
  ShmOpCounts* counts_;
  LlScCell<Estimate> cell_;
};

/// Which primitive a memory builds its consensus objects from.
enum class ConsensusImpl { Cas, LlSc };

/// Factory for a fresh one-shot consensus object.
std::unique_ptr<IConsensusObject> make_consensus_object(ConsensusImpl impl,
                                                        ProcId n,
                                                        ShmOpCounts* counts);

}  // namespace hyco
