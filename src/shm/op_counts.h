// Instrumentation counters for shared-memory operations. The Section III-C
// reproduction (experiment T-INV) relies on these to count consensus-object
// invocations per process and per phase.
#pragma once

#include <cstdint>

namespace hyco {

/// Aggregate operation counts of one shared memory (one cluster's MEM_x, or
/// one m&m per-process memory).
struct ShmOpCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cas_attempts = 0;
  std::uint64_t cas_successes = 0;
  std::uint64_t ll_ops = 0;
  std::uint64_t sc_attempts = 0;
  std::uint64_t sc_successes = 0;
  std::uint64_t consensus_proposals = 0;

  ShmOpCounts& operator+=(const ShmOpCounts& o) {
    reads += o.reads;
    writes += o.writes;
    cas_attempts += o.cas_attempts;
    cas_successes += o.cas_successes;
    ll_ops += o.ll_ops;
    sc_attempts += o.sc_attempts;
    sc_successes += o.sc_successes;
    consensus_proposals += o.consensus_proposals;
    return *this;
  }
};

}  // namespace hyco
