#include "shm/cluster_memory.h"

#include "util/assert.h"

namespace hyco {

IConsensusObject& ClusterMemory::cons(Round r, Phase ph) {
  HYCO_CHECK_MSG(r >= 1, "round numbers start at 1, got " << r);
  const auto key = std::make_pair(r, static_cast<int>(ph));
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    it = objects_
             .emplace(key, make_consensus_object(impl_, n_, &counts_))
             .first;
  }
  return *it->second;
}

}  // namespace hyco
