// Compare&swap cell — the consensus-number-infinite synchronization
// primitive the paper assumes each cluster memory provides (Section II-A,
// "Memory operations").
#pragma once

#include <optional>

#include "shm/op_counts.h"

namespace hyco {

/// A register supporting read, write, and compare&swap, initialized empty.
/// In the simulator each call runs inside one atomic event; the threaded
/// runtime uses AtomicConsensus (std::atomic) instead.
template <typename T>
class CasCell {
 public:
  explicit CasCell(ShmOpCounts* counts = nullptr) : counts_(counts) {}

  [[nodiscard]] std::optional<T> read() const {
    if (counts_ != nullptr) ++counts_->reads;
    return value_;
  }

  void write(std::optional<T> v) {
    if (counts_ != nullptr) ++counts_->writes;
    value_ = std::move(v);
  }

  /// Atomically: if current == expected, set to desired and return true.
  bool compare_and_swap(const std::optional<T>& expected,
                        const std::optional<T>& desired) {
    if (counts_ != nullptr) ++counts_->cas_attempts;
    if (value_ != expected) return false;
    value_ = desired;
    if (counts_ != nullptr) ++counts_->cas_successes;
    return true;
  }

 private:
  std::optional<T> value_;
  ShmOpCounts* counts_;
};

}  // namespace hyco
