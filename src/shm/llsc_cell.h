// Load-linked / store-conditional cell — the other consensus-number-infinite
// primitive named by the paper (Section I). Provided as an alternative
// foundation for the cluster consensus objects; the ablation bench compares
// CAS- and LL/SC-based memories.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "shm/op_counts.h"
#include "util/assert.h"

namespace hyco {

/// LL/SC cell for up to `n` processes. load_linked(p) records a link for p;
/// store_conditional(p, v) succeeds iff no write happened since p's link.
template <typename T>
class LlScCell {
 public:
  explicit LlScCell(ProcId n, ShmOpCounts* counts = nullptr)
      : links_(static_cast<std::size_t>(n), kNoLink), counts_(counts) {}

  std::optional<T> load_linked(ProcId p) {
    if (counts_ != nullptr) ++counts_->ll_ops;
    links_.at(static_cast<std::size_t>(p)) = version_;
    return value_;
  }

  bool store_conditional(ProcId p, std::optional<T> v) {
    if (counts_ != nullptr) ++counts_->sc_attempts;
    auto& link = links_.at(static_cast<std::size_t>(p));
    if (link != version_) {
      link = kNoLink;
      return false;
    }
    value_ = std::move(v);
    ++version_;
    link = kNoLink;
    if (counts_ != nullptr) ++counts_->sc_successes;
    return true;
  }

  [[nodiscard]] std::optional<T> read() const {
    if (counts_ != nullptr) ++counts_->reads;
    return value_;
  }

 private:
  static constexpr std::int64_t kNoLink = -1;
  std::optional<T> value_;
  std::int64_t version_ = 0;
  std::vector<std::int64_t> links_;
  ShmOpCounts* counts_;
};

}  // namespace hyco
