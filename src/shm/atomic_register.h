// Multi-writer multi-reader atomic register (the base objects of each
// cluster memory MEM_x, Section II-A). In the discrete-event simulator each
// operation executes inside one atomic event, so linearizability holds by
// construction; the class exists to model the memory interface faithfully
// and to count operations.
#pragma once

#include <optional>

#include "shm/op_counts.h"

namespace hyco {

/// MWMR atomic register holding an optional value (empty = never written).
template <typename T>
class AtomicRegister {
 public:
  /// `counts` may be nullptr; otherwise reads/writes are tallied there.
  explicit AtomicRegister(ShmOpCounts* counts = nullptr) : counts_(counts) {}

  [[nodiscard]] std::optional<T> read() const {
    if (counts_ != nullptr) ++counts_->reads;
    return value_;
  }

  void write(T v) {
    if (counts_ != nullptr) ++counts_->writes;
    value_ = std::move(v);
  }

  /// True iff the register was ever written.
  [[nodiscard]] bool written() const { return value_.has_value(); }

 private:
  std::optional<T> value_;
  ShmOpCounts* counts_;
};

}  // namespace hyco
