#include "shm/consensus_object.h"

#include "util/assert.h"

namespace hyco {

Estimate CasConsensus::propose(ProcId /*proposer*/, Estimate v) {
  if (counts_ != nullptr) ++counts_->consensus_proposals;
  cell_.compare_and_swap(std::nullopt, v);
  const auto winner = cell_.read();
  HYCO_CHECK(winner.has_value());  // our own CAS guarantees non-empty
  return *winner;
}

Estimate LlScConsensus::propose(ProcId proposer, Estimate v) {
  if (counts_ != nullptr) ++counts_->consensus_proposals;
  // LL; if still empty, attempt SC. On SC failure some other proposal won
  // in between, which is exactly what consensus needs.
  const auto seen = cell_.load_linked(proposer);
  if (!seen.has_value()) {
    cell_.store_conditional(proposer, v);
  }
  const auto winner = cell_.read();
  HYCO_CHECK(winner.has_value());
  return *winner;
}

std::unique_ptr<IConsensusObject> make_consensus_object(ConsensusImpl impl,
                                                        ProcId n,
                                                        ShmOpCounts* counts) {
  switch (impl) {
    case ConsensusImpl::Cas:
      return std::make_unique<CasConsensus>(counts);
    case ConsensusImpl::LlSc:
      return std::make_unique<LlScConsensus>(n, counts);
  }
  return nullptr;
}

}  // namespace hyco
