// The shared memory MEM_x of one cluster P[x] (Section II-A / III-B).
//
// MEM_x is composed of arrays of consensus objects indexed by round and
// phase: CONS_x[r, 1] and CONS_x[r, 2] for Algorithm 2, and CONS_x[r] for
// Algorithm 3 (accessed here as phase One). Objects are materialized lazily,
// since the number of rounds is unbounded a priori.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "core/types.h"
#include "shm/consensus_object.h"
#include "shm/op_counts.h"

namespace hyco {

/// Lazily-grown array of cluster-local consensus objects plus instrumentation.
/// Only the processes of cluster x may touch their MEM_x; the runner enforces
/// this wiring, and the object records which memory it is for diagnostics.
class ClusterMemory {
 public:
  explicit ClusterMemory(ClusterId cluster, ProcId n,
                         ConsensusImpl impl = ConsensusImpl::Cas)
      : cluster_(cluster), n_(n), impl_(impl) {}

  ClusterMemory(const ClusterMemory&) = delete;
  ClusterMemory& operator=(const ClusterMemory&) = delete;

  /// CONS_x[r, ph]; created on first touch.
  IConsensusObject& cons(Round r, Phase ph);

  /// CONS_x[r] — Algorithm 3's single-phase array.
  IConsensusObject& cons(Round r) { return cons(r, Phase::One); }

  [[nodiscard]] ClusterId cluster() const { return cluster_; }
  [[nodiscard]] const ShmOpCounts& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t objects_created() const {
    return objects_.size();
  }

 private:
  ClusterId cluster_;
  ProcId n_;
  ConsensusImpl impl_;
  ShmOpCounts counts_;
  std::map<std::pair<Round, int>, std::unique_ptr<IConsensusObject>> objects_;
};

}  // namespace hyco
