// Closed-loop client traffic engine: a fixed population of simulated
// clients, each with at most one outstanding op, submitting to the replica
// it is attached to (client c -> replica c mod n) and thinking an
// exponential time between ops.
//
// Arrival-rate control: with `load` > 0 the per-client mean think time is
// clients / load seconds, so the population's offered load is `load`
// ops/sec; load == 0 means no think time (every client resubmits as soon
// as its previous op completes — the saturation workload). Each client
// submits `ops_per_client` ops in total, which bounds the run: once the
// last op is decided and delivered the simulation goes quiescent.
//
// All randomness comes from one Rng forked off the run seed and is drawn
// in simulator event order (the simulator is single-threaded), so traffic
// is deterministic per seed like everything else.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "service/types.h"
#include "sim/crash.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hyco {

struct TrafficConfig {
  std::uint64_t clients = 1000;
  std::uint64_t ops_per_client = 1;
  double load = 0.0;  ///< target offered load, ops/sec; 0 = no think time
  /// First arrivals spread uniformly over this window when load == 0 (a
  /// burst at t=0 would be a determinism artifact, like start_jitter).
  SimTime arrival_spread = 1000;
};

class TrafficEngine {
 public:
  using SubmitFn = std::function<void(ProcId origin, std::uint64_t op_id)>;

  TrafficEngine(Simulator& sim, const CrashTracker& tracker,
                TrafficConfig cfg, std::uint64_t seed, ProcId n,
                SubmitFn submit);

  TrafficEngine(const TrafficEngine&) = delete;
  TrafficEngine& operator=(const TrafficEngine&) = delete;

  /// Schedules every client's first arrival.
  void start();

  /// Marks an op completed at time `now` (idempotent), records its latency,
  /// and schedules the client's next op if it has any left. Returns true
  /// when this call is the one that completed the op (first delivery).
  bool on_op_completed(std::uint64_t op_id, SimTime now);

  [[nodiscard]] const std::vector<ClientOp>& ops() const { return ops_; }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] const ExactMoments& latency() const { return latency_; }
  [[nodiscard]] const obs::LogHistogram& latency_hist() const {
    return latency_hist_;
  }

 private:
  void schedule_submit(std::uint64_t client, SimTime at);
  [[nodiscard]] SimTime think_time();

  Simulator& sim_;
  const CrashTracker& tracker_;
  TrafficConfig cfg_;
  ProcId n_;
  SubmitFn submit_;
  Rng rng_;
  double think_mean_ns_ = 0.0;

  std::vector<std::uint32_t> remaining_;  ///< ops left, per client
  std::vector<ClientOp> ops_;             ///< index = op id - 1
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  ExactMoments latency_;
  obs::LogHistogram latency_hist_;
};

}  // namespace hyco
