#include "service/service_runner.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <string>

#include "coin/coin.h"
#include "core/multivalued.h"
#include "scenario/engine.h"
#include "service/replica.h"
#include "service/traffic.h"
#include "sim/trace.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

ServiceRunResult run_service(const ServiceRunConfig& cfg) {
  const ProcId n = cfg.layout.n();
  HYCO_CHECK_MSG(cfg.clients >= 1, "service runs need at least one client");

  Simulator sim(cfg.seed);
  sim.reserve_all_to_all(n);
  CrashPlan plan = cfg.crashes;
  if (plan.specs.empty()) plan = CrashPlan::none(static_cast<std::size_t>(n));
  HYCO_CHECK_MSG(plan.specs.size() == static_cast<std::size_t>(n),
                 "crash plan size mismatch");
  CrashTracker tracker(static_cast<std::size_t>(n));

  std::unique_ptr<DelayModel> delays =
      cfg.delay_factory ? cfg.delay_factory() : make_delay_model(cfg.delays);
  std::unique_ptr<ScenarioEngine> scenario;
  DelayModel* channel = delays.get();
  if (!cfg.scenario.empty()) {
    scenario = std::make_unique<ScenarioEngine>(cfg.scenario, cfg.layout,
                                                std::move(delays));
    channel = &scenario->channel();
  }
  Trace* trace =
      (cfg.enable_trace && cfg.trace_sink != nullptr) ? cfg.trace_sink
                                                      : nullptr;
  if (trace != nullptr) trace->enable(true);
  SimNetwork net(sim, *channel, tracker, n, &plan, trace);
  if (scenario != nullptr) net.set_scenario(scenario.get());

  MemoryPool pool(n, ConsensusImpl::Cas);

  // The service always runs the Algorithm 3 common-coin core (the TOB's
  // embedded instances need the shared coin); same seed stream and
  // imperfect-coin ablation as run_consensus.
  std::unique_ptr<ICommonCoin> coin;
  const std::uint64_t coin_seed = mix64(cfg.seed, 0xC01C01);
  if (cfg.coin_epsilon > 0.0) {
    coin = std::make_unique<BiasedCommonCoin>(
        coin_seed, cfg.coin_epsilon,
        [bit = cfg.adversary_bit](Round) { return bit; });
  } else {
    coin = std::make_unique<CommonCoin>(coin_seed);
  }

  // Consensus orders compact batch ids, so the multivalued width only needs
  // to cover the largest possible id (every batch holds >= 1 op). Narrow
  // widths keep per-slot cost down: a slot runs width embedded binary
  // instances.
  const std::uint64_t total_ops = cfg.clients * cfg.ops_per_client;
  const int width = std::clamp(
      static_cast<int>(std::bit_width(total_ops)), 1, 64);

  BatchRegistry registry;
  std::vector<std::unique_ptr<ServiceReplica>> replicas;
  replicas.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    replicas.push_back(std::make_unique<ServiceReplica>(
        p, cfg.layout, net, pool, *coin, sim, tracker, registry,
        cfg.max_rounds_per_bit, width, cfg.batch_max, cfg.batch_delay));
  }
  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    replicas[static_cast<std::size_t>(to)]->on_message(from, m);
  });

  TrafficConfig tcfg;
  tcfg.clients = cfg.clients;
  tcfg.ops_per_client = cfg.ops_per_client;
  tcfg.load = cfg.load;
  TrafficEngine traffic(
      sim, tracker, tcfg, cfg.seed, n,
      [&replicas, &sim, trace](ProcId origin, std::uint64_t op_id) {
        if (trace != nullptr) {
          trace->record(sim.now(), TraceKind::SvcOp, origin,
                        "op=" + std::to_string(op_id));
        }
        replicas[static_cast<std::size_t>(origin)]->submit_op(op_id);
      });

  // An op completes for its client when the origin replica delivers the
  // batch containing it (every replica delivers every batch; the client is
  // attached to one). Delivery also closes the attribution chain: the op's
  // latency splits exactly into batching wait (submit -> flush), slot
  // queueing (flush -> the deciding slot's consensus start at the
  // completing replica), and consensus/delivery (slot start -> now).
  ExactMoments batch_wait;
  obs::LogHistogram batch_wait_hist;
  ExactMoments seq_wait;
  obs::LogHistogram seq_wait_hist;
  ExactMoments consensus;
  obs::LogHistogram consensus_hist;
  for (ProcId p = 0; p < n; ++p) {
    ServiceReplica& rep = *replicas[static_cast<std::size_t>(p)];
    rep.set_on_deliver([&, p](const Batch& batch, int slot) {
      if (trace != nullptr) {
        trace->record(sim.now(), TraceKind::SvcDeliver, p,
                      "slot=" + std::to_string(slot) +
                          " batch=" + std::to_string(batch.id) +
                          " ops=" + std::to_string(batch.ops.size()));
      }
      for (const std::uint64_t op_id : batch.ops) {
        if (!traffic.on_op_completed(op_id, sim.now())) continue;
        const ClientOp& op = traffic.ops()[op_id - 1];
        // slot_started_at is -1 when this replica never ran the slot
        // (e.g. it learned the decision from peers); the max() clamps the
        // span to start no earlier than the batch existed.
        const SimTime started =
            replicas[static_cast<std::size_t>(p)]->slot_started_at(slot);
        const SimTime s = std::max(started, batch.flushed_at);
        batch_wait.add(
            static_cast<std::uint64_t>(batch.flushed_at - op.submit_time));
        batch_wait_hist.add(
            static_cast<std::uint64_t>(batch.flushed_at - op.submit_time));
        seq_wait.add(static_cast<std::uint64_t>(s - batch.flushed_at));
        seq_wait_hist.add(static_cast<std::uint64_t>(s - batch.flushed_at));
        consensus.add(static_cast<std::uint64_t>(sim.now() - s));
        consensus_hist.add(static_cast<std::uint64_t>(sim.now() - s));
      }
    });
    if (trace != nullptr) {
      rep.set_on_flush([trace, &sim, p](const Batch& batch) {
        trace->record(sim.now(), TraceKind::SvcFlush, p,
                      "batch=" + std::to_string(batch.id) +
                          " ops=" + std::to_string(batch.ops.size()));
      });
      rep.set_on_slot_start([trace, &sim, p](int slot) {
        trace->record(sim.now(), TraceKind::SvcSlot, p,
                      "slot=" + std::to_string(slot));
      });
    }
  }

  // Scripted AtTime crashes; `ever_crashed` feeds the termination verdict.
  std::vector<char> ever_crashed(static_cast<std::size_t>(n), 0);
  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      ever_crashed[static_cast<std::size_t>(p)] = 1;
      if (spec.time <= 0) {
        tracker.crash(p, 0);
      } else {
        sim.schedule_at(spec.time, [&tracker, p, t = spec.time] {
          tracker.crash(p, t);
        });
      }
    } else {
      HYCO_CHECK_MSG(spec.kind == CrashSpec::Kind::None,
                     "service runs support AtTime crash specs only");
    }
  }

  // Scenario crash-recovery cycles: the replica's state survives (crash-
  // recovery with stable storage); messages sent into the down window are
  // lost, so a recovered replica may stall on in-flight slots — safety is
  // the guarantee, termination returns when enough traffic flows again.
  if (scenario != nullptr) {
    for (const ScenarioEngine::Rejoin& rj : scenario->rejoins()) {
      const ProcId p = rj.proc;
      ever_crashed[static_cast<std::size_t>(p)] = 1;
      if (rj.down_at <= 0) {
        tracker.crash(p, 0);
      } else {
        sim.schedule_at(rj.down_at, [&tracker, p, t = rj.down_at] {
          tracker.crash(p, t);
        });
      }
      if (rj.up_at == kSimTimeNever) continue;
      sim.schedule_at(rj.up_at, [&tracker, p, t = rj.up_at] {
        tracker.recover(p, t);
      });
    }
  }

  traffic.start();

  ServiceRunResult result;
  result.stop = sim.run(cfg.max_events);
  result.end_time = sim.now();
  result.events = sim.events_executed();
  result.crashed = tracker.crashed_count();
  result.net = net.stats();
  result.shm = pool.total();
  result.consensus_objects = pool.objects_created();

  result.ops_submitted = traffic.submitted();
  result.ops_completed = traffic.completed();
  result.batches = registry.count();
  result.latency = traffic.latency();
  result.latency_hist = traffic.latency_hist();
  result.batch_wait = batch_wait;
  result.batch_wait_hist = batch_wait_hist;
  result.seq_wait = seq_wait;
  result.seq_wait_hist = seq_wait_hist;
  result.consensus = consensus;
  result.consensus_hist = consensus_hist;

  result.slot_logs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    const auto& log = replicas[static_cast<std::size_t>(p)]->slot_log();
    result.slots = std::max<std::uint64_t>(result.slots, log.size());
    result.slot_logs.push_back(log);
  }

  ServiceCheckReport check = check_service_logs(result.slot_logs);
  result.safe_ok = check.ok;
  result.violations = std::move(check.violations);

  // Terminated = the closed loop drained: every op submitted at a replica
  // that never crashed completed at that replica.
  result.terminated = true;
  for (const ClientOp& op : traffic.ops()) {
    if (ever_crashed[static_cast<std::size_t>(op.origin)]) continue;
    if (!op.completed) {
      result.terminated = false;
      break;
    }
  }
  return result;
}

}  // namespace hyco
