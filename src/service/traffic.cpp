#include "service/traffic.h"

#include <cmath>
#include <utility>

#include "util/assert.h"

namespace hyco {

TrafficEngine::TrafficEngine(Simulator& sim, const CrashTracker& tracker,
                             TrafficConfig cfg, std::uint64_t seed, ProcId n,
                             SubmitFn submit)
    : sim_(sim),
      tracker_(tracker),
      cfg_(cfg),
      n_(n),
      submit_(std::move(submit)),
      rng_(mix64(seed, 0x5EC1)) {
  HYCO_CHECK_MSG(n_ > 0, "traffic needs at least one replica");
  HYCO_CHECK_MSG(cfg_.ops_per_client >= 1, "ops_per_client must be >= 1");
  if (cfg_.load > 0.0) {
    think_mean_ns_ =
        static_cast<double>(cfg_.clients) * 1e9 / cfg_.load;
  }
  remaining_.assign(cfg_.clients,
                    static_cast<std::uint32_t>(cfg_.ops_per_client));
  ops_.reserve(cfg_.clients * cfg_.ops_per_client);
}

SimTime TrafficEngine::think_time() {
  if (think_mean_ns_ <= 0.0) return 0;
  const double t = rng_.exponential(think_mean_ns_);
  return static_cast<SimTime>(std::llround(t));
}

void TrafficEngine::start() {
  for (std::uint64_t c = 0; c < cfg_.clients; ++c) {
    SimTime at = 0;
    if (think_mean_ns_ > 0.0) {
      at = think_time();
    } else if (cfg_.arrival_spread > 0) {
      at = rng_.uniform(0, cfg_.arrival_spread);
    }
    schedule_submit(c, at);
  }
}

void TrafficEngine::schedule_submit(std::uint64_t client, SimTime at) {
  sim_.schedule_at(at, [this, client] {
    const ProcId origin = static_cast<ProcId>(client % static_cast<std::uint64_t>(n_));
    // A client of a dead replica halts: nothing to fail over to in this
    // model, and its in-flight op never completes.
    if (tracker_.is_crashed(origin)) return;
    ClientOp op;
    op.id = ops_.size() + 1;
    op.client = client;
    op.origin = origin;
    op.submit_time = sim_.now();
    ops_.push_back(op);
    ++submitted_;
    submit_(origin, op.id);
  });
}

bool TrafficEngine::on_op_completed(std::uint64_t op_id, SimTime now) {
  ClientOp& op = ops_.at(op_id - 1);
  if (op.completed) return false;
  op.completed = true;
  op.complete_time = now;
  ++completed_;
  const auto lat = static_cast<std::uint64_t>(now - op.submit_time);
  latency_.add(lat);
  latency_hist_.add(lat);
  std::uint32_t& left = remaining_.at(op.client);
  HYCO_CHECK(left > 0);
  --left;
  if (left > 0) schedule_submit(op.client, now + think_time());
  return true;
}

}  // namespace hyco
