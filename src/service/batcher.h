// Proposal batching: many client ops per decided consensus value.
//
// A batch flushes when it reaches `batch_max` ops or when `batch_delay` sim
// time has passed since its first op, whichever comes first — the standard
// size-or-deadline policy. With batch_delay == 0 every op flushes alone
// (batching effectively off), which is the baseline the batching-throughput
// comparison in the README runs against.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"

namespace hyco {

class Batcher {
 public:
  /// Receives the flushed ops (ClientOp ids, submission order).
  using FlushFn = std::function<void(std::vector<std::uint64_t> ops)>;

  Batcher(Simulator& sim, std::size_t batch_max, SimTime batch_delay,
          FlushFn flush);

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Buffers one op; may flush synchronously (size reached or delay 0).
  void add(std::uint64_t op_id);

  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }

 private:
  void flush();

  Simulator& sim_;
  std::size_t batch_max_;
  SimTime batch_delay_;
  FlushFn flush_fn_;
  std::vector<std::uint64_t> buf_;
  // Each flush bumps the epoch; a deadline timer only fires for the batch
  // that scheduled it (stale timers from already-flushed batches are no-ops).
  std::uint64_t epoch_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace hyco
