#include "service/replica.h"

#include <utility>

namespace hyco {

ServiceReplica::ServiceReplica(ProcId self, const ClusterLayout& layout,
                               INetwork& net, MemoryPool& pool,
                               ICommonCoin& coin, Simulator& sim,
                               const CrashTracker& tracker,
                               BatchRegistry& registry,
                               Round max_rounds_per_bit, int width,
                               std::size_t batch_max, SimTime batch_delay)
    : self_(self),
      sim_(sim),
      tracker_(tracker),
      registry_(registry),
      tob_(self, layout, net, pool, coin, max_rounds_per_bit, width),
      batcher_(sim, batch_max, batch_delay,
               [this](std::vector<std::uint64_t> ops) {
                 // A deadline timer may fire after this replica crashed;
                 // a dead replica must not originate proposals.
                 if (tracker_.is_crashed(self_)) return;
                 const std::uint64_t id =
                     registry_.mint(self_, std::move(ops), sim_.now());
                 tob_.submit(id);
                 if (on_flush_) on_flush_(registry_.get(id));
               }) {
  tob_.set_deliver_hook([this](int slot, std::uint64_t payload) {
    slots_.push_back(SlotRecord{slot, payload});
    if (payload != TobProcess::kNoop && on_deliver_) {
      on_deliver_(registry_.get(payload), slot);
    }
  });
  // Slot-start times feed the latency attribution (batching wait vs slot
  // queueing vs consensus); recorded unconditionally, they are cheap and
  // strictly observational.
  tob_.set_slot_start_hook([this](int slot) {
    const auto i = static_cast<std::size_t>(slot);
    if (slot_started_.size() <= i) slot_started_.resize(i + 1, -1);
    slot_started_[i] = sim_.now();
    if (on_slot_start_) on_slot_start_(slot);
  });
}

void ServiceReplica::submit_op(std::uint64_t op_id) {
  if (tracker_.is_crashed(self_)) return;
  batcher_.add(op_id);
}

void ServiceReplica::on_message(ProcId from, const Message& m) {
  tob_.on_message(from, m);
}

}  // namespace hyco
