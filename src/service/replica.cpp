#include "service/replica.h"

#include <utility>

namespace hyco {

ServiceReplica::ServiceReplica(ProcId self, const ClusterLayout& layout,
                               INetwork& net, MemoryPool& pool,
                               ICommonCoin& coin, Simulator& sim,
                               const CrashTracker& tracker,
                               BatchRegistry& registry,
                               Round max_rounds_per_bit, int width,
                               std::size_t batch_max, SimTime batch_delay)
    : self_(self),
      tracker_(tracker),
      registry_(registry),
      tob_(self, layout, net, pool, coin, max_rounds_per_bit, width),
      batcher_(sim, batch_max, batch_delay,
               [this](std::vector<std::uint64_t> ops) {
                 // A deadline timer may fire after this replica crashed;
                 // a dead replica must not originate proposals.
                 if (tracker_.is_crashed(self_)) return;
                 const std::uint64_t id =
                     registry_.mint(self_, std::move(ops));
                 tob_.submit(id);
               }) {
  tob_.set_deliver_hook([this](int slot, std::uint64_t payload) {
    slots_.push_back(SlotRecord{slot, payload});
    if (payload != TobProcess::kNoop && on_deliver_) {
      on_deliver_(registry_.get(payload));
    }
  });
}

void ServiceReplica::submit_op(std::uint64_t op_id) {
  if (tracker_.is_crashed(self_)) return;
  batcher_.add(op_id);
}

void ServiceReplica::on_message(ProcId from, const Message& m) {
  tob_.on_message(from, m);
}

}  // namespace hyco
