#include "service/batcher.h"

#include <utility>

#include "util/assert.h"

namespace hyco {

Batcher::Batcher(Simulator& sim, std::size_t batch_max, SimTime batch_delay,
                 FlushFn flush)
    : sim_(sim),
      batch_max_(batch_max),
      batch_delay_(batch_delay),
      flush_fn_(std::move(flush)) {
  HYCO_CHECK_MSG(batch_max_ >= 1, "batch_max must be >= 1");
}

void Batcher::add(std::uint64_t op_id) {
  buf_.push_back(op_id);
  if (buf_.size() >= batch_max_ || batch_delay_ <= 0) {
    flush();
    return;
  }
  if (buf_.size() == 1) {
    sim_.schedule_in(batch_delay_, [this, epoch = epoch_] {
      if (epoch == epoch_ && !buf_.empty()) flush();
    });
  }
}

void Batcher::flush() {
  ++epoch_;
  ++flushes_;
  std::vector<std::uint64_t> out;
  out.swap(buf_);
  flush_fn_(std::move(out));
}

}  // namespace hyco
