#include "service/checker.h"

#include <cstdint>
#include <map>
#include <sstream>

#include "core/total_order.h"

namespace hyco {

ServiceCheckReport check_service_logs(
    const std::vector<std::vector<SlotRecord>>& logs) {
  ServiceCheckReport report;
  auto fail = [&report](const std::string& what) {
    report.ok = false;
    report.violations.push_back(what);
  };

  // batch id -> slot it was first seen at (across all replicas).
  std::map<std::uint64_t, int> batch_slot;

  for (std::size_t r = 0; r < logs.size(); ++r) {
    const auto& log = logs[r];
    std::map<std::uint64_t, int> local;  // batch -> slot within this log
    for (std::size_t i = 0; i < log.size(); ++i) {
      const SlotRecord& rec = log[i];
      if (rec.slot != static_cast<int>(i)) {
        std::ostringstream os;
        os << "GAP: replica " << r << " delivered slot " << rec.slot
           << " at log position " << i;
        fail(os.str());
      }
      if (rec.batch == TobProcess::kNoop) continue;
      const auto [it, inserted] = local.emplace(rec.batch, rec.slot);
      if (!inserted) {
        std::ostringstream os;
        os << "DUPLICATE: replica " << r << " sequenced batch " << rec.batch
           << " at slots " << it->second << " and " << rec.slot;
        fail(os.str());
      }
      const auto [git, ginserted] = batch_slot.emplace(rec.batch, rec.slot);
      if (!ginserted && git->second != rec.slot) {
        std::ostringstream os;
        os << "DIVERGENT SLOT: batch " << rec.batch << " sequenced at slot "
           << git->second << " and at slot " << rec.slot << " (replica " << r
           << ")";
        fail(os.str());
      }
    }
  }

  // Prefix agreement between every pair of logs.
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t k = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < k; ++i) {
        if (logs[a][i].batch != logs[b][i].batch) {
          std::ostringstream os;
          os << "AGREEMENT violated at slot " << i << ": replica " << a
             << " decided " << logs[a][i].batch << ", replica " << b
             << " decided " << logs[b][i].batch;
          fail(os.str());
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace hyco
