// Decided-log safety checker for the replicated service: the standalone
// post-hoc verifier (in the style of check_register_atomicity) that every
// service e2e path runs over the replicas' slot logs.
//
// Checks, per replica and across replicas:
//  * no gaps or reordering — slots are exactly 0, 1, ..., k-1 in delivery
//    order (the TOB deliver hook reports NOOP slots too, so a skipped slot
//    is visible);
//  * no duplicate sequencing — a (non-NOOP) batch id appears at most once
//    per log, and at the same slot in every log that contains it;
//  * agreement — any two logs decide the same batch id at every slot both
//    have reached (prefix agreement).
#pragma once

#include <string>
#include <vector>

#include "service/types.h"

namespace hyco {

struct ServiceCheckReport {
  bool ok = true;
  std::vector<std::string> violations;
};

ServiceCheckReport check_service_logs(
    const std::vector<std::vector<SlotRecord>>& logs);

}  // namespace hyco
