// One replica of the replicated state machine: a batcher feeding a
// total-order broadcast process, plus the per-slot decided log.
//
// Client ops submitted here buffer in the batcher; each flush mints a batch
// id from the run's registry and submits it to the TOB, whose per-slot
// deliver hook appends to this replica's slot log (NOOPs included, so the
// safety checker can verify gap-free sequencing) and surfaces delivered
// batches to the runner for op completion.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/total_order.h"
#include "service/batcher.h"
#include "service/types.h"
#include "sim/crash.h"
#include "sim/simulator.h"

namespace hyco {

class ServiceReplica {
 public:
  /// Fired when this replica delivers a (non-NOOP) batch, in slot order.
  /// `slot` is the log position, so callers can attribute the delivery to
  /// this replica's consensus span for that slot (slot_started_at).
  using DeliverBatchFn = std::function<void(const Batch& batch, int slot)>;
  /// Fired after this replica's batcher flushes a batch into the TOB.
  using FlushFn = std::function<void(const Batch& batch)>;
  /// Fired when this replica starts participating in a slot's consensus.
  using SlotStartFn = std::function<void(int slot)>;

  ServiceReplica(ProcId self, const ClusterLayout& layout, INetwork& net,
                 MemoryPool& pool, ICommonCoin& coin, Simulator& sim,
                 const CrashTracker& tracker, BatchRegistry& registry,
                 Round max_rounds_per_bit, int width, std::size_t batch_max,
                 SimTime batch_delay);

  ServiceReplica(const ServiceReplica&) = delete;
  ServiceReplica& operator=(const ServiceReplica&) = delete;

  /// Buffers one client op for batching (dropped if this replica crashed).
  void submit_op(std::uint64_t op_id);

  void on_message(ProcId from, const Message& m);

  void set_on_deliver(DeliverBatchFn fn) { on_deliver_ = std::move(fn); }
  void set_on_flush(FlushFn fn) { on_flush_ = std::move(fn); }
  void set_on_slot_start(SlotStartFn fn) { on_slot_start_ = std::move(fn); }

  /// Sim time this replica started slot `slot`'s consensus; -1 if it never
  /// participated in that slot.
  [[nodiscard]] SimTime slot_started_at(int slot) const {
    const auto i = static_cast<std::size_t>(slot);
    return i < slot_started_.size() ? slot_started_[i] : -1;
  }

  /// Decided slots in order, NOOPs included.
  [[nodiscard]] const std::vector<SlotRecord>& slot_log() const {
    return slots_;
  }
  [[nodiscard]] std::uint64_t batches_proposed() const {
    return batcher_.flushes();
  }

 private:
  ProcId self_;
  Simulator& sim_;
  const CrashTracker& tracker_;
  BatchRegistry& registry_;
  TobProcess tob_;
  Batcher batcher_;
  std::vector<SlotRecord> slots_;
  std::vector<SimTime> slot_started_;  ///< indexed by slot; -1 = never
  DeliverBatchFn on_deliver_;
  FlushFn on_flush_;
  SlotStartFn on_slot_start_;
};

}  // namespace hyco
