// One replica of the replicated state machine: a batcher feeding a
// total-order broadcast process, plus the per-slot decided log.
//
// Client ops submitted here buffer in the batcher; each flush mints a batch
// id from the run's registry and submits it to the TOB, whose per-slot
// deliver hook appends to this replica's slot log (NOOPs included, so the
// safety checker can verify gap-free sequencing) and surfaces delivered
// batches to the runner for op completion.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/total_order.h"
#include "service/batcher.h"
#include "service/types.h"
#include "sim/crash.h"
#include "sim/simulator.h"

namespace hyco {

class ServiceReplica {
 public:
  /// Fired when this replica delivers a (non-NOOP) batch, in slot order.
  using DeliverBatchFn = std::function<void(const Batch& batch)>;

  ServiceReplica(ProcId self, const ClusterLayout& layout, INetwork& net,
                 MemoryPool& pool, ICommonCoin& coin, Simulator& sim,
                 const CrashTracker& tracker, BatchRegistry& registry,
                 Round max_rounds_per_bit, int width, std::size_t batch_max,
                 SimTime batch_delay);

  ServiceReplica(const ServiceReplica&) = delete;
  ServiceReplica& operator=(const ServiceReplica&) = delete;

  /// Buffers one client op for batching (dropped if this replica crashed).
  void submit_op(std::uint64_t op_id);

  void on_message(ProcId from, const Message& m);

  void set_on_deliver(DeliverBatchFn fn) { on_deliver_ = std::move(fn); }

  /// Decided slots in order, NOOPs included.
  [[nodiscard]] const std::vector<SlotRecord>& slot_log() const {
    return slots_;
  }
  [[nodiscard]] std::uint64_t batches_proposed() const {
    return batcher_.flushes();
  }

 private:
  ProcId self_;
  const CrashTracker& tracker_;
  BatchRegistry& registry_;
  TobProcess tob_;
  Batcher batcher_;
  std::vector<SlotRecord> slots_;
  DeliverBatchFn on_deliver_;
};

}  // namespace hyco
