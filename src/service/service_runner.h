// One-call driver for the replicated service: builds the simulator,
// network, scenario faults, coin, replicas, batchers, and the closed-loop
// traffic engine for a configuration; runs to quiescence (or a limit); and
// returns the decided slot logs plus throughput/latency instrumentation.
// The service analogue of run_consensus() — every service test and the
// experiment engine's service cells go through run_service().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "service/checker.h"
#include "service/types.h"
#include "shm/op_counts.h"
#include "sim/crash.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace hyco {

class Trace;

/// Plain-data description of one replicated-service run.
struct ServiceRunConfig {
  explicit ServiceRunConfig(ClusterLayout l) : layout(std::move(l)) {}

  ClusterLayout layout;
  std::uint64_t seed = 1;
  DelayConfig delays = DelayConfig::uniform(50, 150);
  /// Optional override: build a custom delay model; `delays` is then ignored.
  std::function<std::unique_ptr<DelayModel>()> delay_factory;
  CrashPlan crashes;  ///< empty specs = nobody crashes (AtTime kinds only)
  /// Adversarial scenario (partitions, link faults, crash-recovery, skew).
  /// Safety must hold under any of them; termination only when the fault
  /// heals (indulgence, as for single-instance consensus).
  ScenarioConfig scenario;
  Round max_rounds_per_bit = 2000;
  std::uint64_t max_events = 800'000'000;
  /// Common-coin imperfection, as in RunConfig (the service always runs on
  /// the Algorithm 3 common-coin core).
  double coin_epsilon = 0.0;
  int adversary_bit = 0;

  // Workload: closed-loop clients and the batching policy.
  std::uint64_t clients = 1000;
  std::uint64_t ops_per_client = 1;
  std::size_t batch_max = 64;
  SimTime batch_delay = 50'000;  ///< ns; 0 = flush every op (batching off)
  double load = 0.0;  ///< offered load, ops/sec; 0 = no think time

  /// Event tracing, as in RunConfig: with enable_trace and a caller-owned
  /// sink, the network records Send/Deliver/Drop with causal ids and the
  /// service layer records SvcOp/SvcFlush/SvcSlot/SvcDeliver milestones.
  /// Strictly out of band — traced runs are byte-identical to untraced.
  bool enable_trace = false;
  Trace* trace_sink = nullptr;
};

/// Everything observable about a finished service run.
struct ServiceRunResult {
  std::vector<std::vector<SlotRecord>> slot_logs;  ///< per replica
  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t batches = 0;  ///< batches minted (== proposals submitted)
  std::uint64_t slots = 0;    ///< most slots decided by any replica
  /// Every op submitted at a never-crashed replica completed.
  bool terminated = false;
  bool safe_ok = true;  ///< the gap/duplicate/agreement checker passed
  std::vector<std::string> violations;
  ExactMoments latency;            ///< per-op client latency, sim ns
  obs::LogHistogram latency_hist;  ///< same samples, log-bucketed
  /// Latency attribution, one sample set per completed op, decomposing the
  /// client-visible latency exactly: batching wait (submit -> batch flush)
  /// + slot queueing (flush -> deciding slot's consensus start at the
  /// completing replica) + consensus/delivery (slot start -> delivery).
  ExactMoments batch_wait;
  obs::LogHistogram batch_wait_hist;
  ExactMoments seq_wait;
  obs::LogHistogram seq_wait_hist;
  ExactMoments consensus;
  obs::LogHistogram consensus_hist;
  NetStats net;
  ShmOpCounts shm;
  std::uint64_t consensus_objects = 0;
  std::uint64_t events = 0;
  SimTime end_time = 0;
  std::size_t crashed = 0;
  StopReason stop = StopReason::Quiescent;

  [[nodiscard]] bool success() const { return terminated && safe_ok; }
  /// Decided ops per second of sim time, as an exact integer (ops * 1e9 /
  /// end_time) so aggregation stays merge-order-invariant.
  [[nodiscard]] std::uint64_t ops_per_sec() const {
    if (end_time <= 0) return 0;
    return ops_completed * 1'000'000'000ULL /
           static_cast<std::uint64_t>(end_time);
  }
};

/// Builds and runs one replicated-service simulation.
ServiceRunResult run_service(const ServiceRunConfig& cfg);

}  // namespace hyco
