// Shared value types of the replicated service layer: client operations,
// batches (the unit sequenced by consensus), and the run-scoped registry
// that maps the small integer batch ids the consensus core decides back to
// their operation payloads.
//
// The split mirrors the classic agreement/dissemination separation of
// atomic-broadcast systems: consensus orders compact batch *ids* (a few
// bits each, so the bit-by-bit multivalued instances stay cheap), while the
// ops behind an id are disseminated out of band — here, trivially, through
// the shared registry, since all replicas live in one simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "sim/simulator.h"

namespace hyco {

/// One client operation, from submission at its origin replica to
/// completion when that replica delivers the batch containing it.
struct ClientOp {
  std::uint64_t id = 0;      ///< 1-based, globally sequential
  std::uint64_t client = 0;  ///< submitting client
  ProcId origin = 0;         ///< replica the client is attached to
  SimTime submit_time = 0;
  bool completed = false;
  SimTime complete_time = 0;
};

/// A batch of client ops proposed as one consensus value (its id).
struct Batch {
  std::uint64_t id = 0;  ///< 1-based, globally sequential; 0 is the TOB NOOP
  ProcId origin = 0;     ///< replica whose batcher flushed it
  SimTime flushed_at = 0;  ///< when the origin's batcher flushed it
  std::vector<std::uint64_t> ops;  ///< ClientOp ids, submission order
};

/// Run-scoped mint and lookup for batches. Ids are handed out sequentially
/// in event order, which the single-threaded simulator makes deterministic.
class BatchRegistry {
 public:
  std::uint64_t mint(ProcId origin, std::vector<std::uint64_t> ops,
                     SimTime flushed_at = 0) {
    Batch b;
    b.id = batches_.size() + 1;
    b.origin = origin;
    b.flushed_at = flushed_at;
    b.ops = std::move(ops);
    batches_.push_back(std::move(b));
    return batches_.back().id;
  }

  [[nodiscard]] const Batch& get(std::uint64_t id) const {
    return batches_.at(id - 1);
  }
  [[nodiscard]] std::uint64_t count() const { return batches_.size(); }

 private:
  std::vector<Batch> batches_;
};

/// One decided slot of a replica's log, NOOP fillers included — the raw
/// material of the gap/duplicate safety checker.
struct SlotRecord {
  int slot = 0;
  std::uint64_t batch = 0;  ///< 0 = NOOP

  bool operator==(const SlotRecord&) const = default;
};

}  // namespace hyco
