#include "dist/ledger.h"

#include <algorithm>

#include "util/assert.h"

namespace hyco::dist {

WorkLedger::WorkLedger(std::size_t n_cells, std::uint64_t grain)
    : grain_(grain), cell_outstanding_(n_cells, 0) {
  HYCO_CHECK_MSG(grain >= 1, "ledger grain must be >= 1, got " << grain);
}

void WorkLedger::add_span(std::uint64_t cell_pos, std::uint64_t begin,
                          std::uint64_t end) {
  HYCO_CHECK_MSG(cell_pos < cell_outstanding_.size(),
                 "ledger span cell " << cell_pos << " out of range");
  HYCO_CHECK_MSG(begin < end, "ledger span [" << begin << ", " << end
                                              << ") is empty");
  // Reject overlap with any chunk already registered for this cell: the
  // successor chunk must start at or after `end`, the predecessor must end
  // at or before `begin`.
  const auto next = index_.lower_bound(std::make_pair(cell_pos, begin));
  const bool next_clash = next != index_.end() &&
                          next->first.first == cell_pos &&
                          next->first.second < end;
  bool prev_clash = false;
  if (next != index_.begin()) {
    const auto prev = std::prev(next);
    prev_clash = prev->first.first == cell_pos &&
                 chunks_[static_cast<std::size_t>(prev->second)].end > begin;
  }
  HYCO_CHECK_MSG(!next_clash && !prev_clash,
                 "ledger spans overlap at cell " << cell_pos << " range ["
                                                 << begin << ", " << end
                                                 << ')');
  for (std::uint64_t b = begin; b < end; b += grain_) {
    const std::uint64_t e = std::min(b + grain_, end);
    const std::uint64_t id = chunks_.size();
    index_.emplace(std::make_pair(cell_pos, b), id);
    chunks_.push_back({cell_pos, b, e, State::kPending, 0, {}});
    queue_.push_back(id);
    cell_outstanding_[static_cast<std::size_t>(cell_pos)] += e - b;
    total_runs_ += e - b;
  }
}

std::optional<WorkLedger::Lease> WorkLedger::acquire(std::uint64_t owner,
                                                     Clock::time_point now,
                                                     Clock::duration ttl,
                                                     std::uint64_t max_len) {
  while (!queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    Chunk& c = chunks_[static_cast<std::size_t>(id)];
    if (c.state != State::kPending) continue;  // stale queue entry
    if (max_len > 0 && c.end - c.begin > max_len) {
      // Split: lease the head, re-queue the tail at the front so the cell's
      // run range keeps going out in order. fold() looks chunks up by their
      // exact [begin, end), so both halves stay individually foldable.
      const std::uint64_t cut = c.begin + max_len;
      const std::uint64_t rest = chunks_.size();
      index_.emplace(std::make_pair(c.cell_pos, cut), rest);
      chunks_.push_back({c.cell_pos, cut, c.end, State::kPending, 0, {}, {}});
      queue_.push_front(rest);
      // chunks_.push_back may have reallocated; re-resolve the head chunk.
      Chunk& head = chunks_[static_cast<std::size_t>(id)];
      head.end = cut;
      head.state = State::kLeased;
      head.owner = owner;
      head.issued_at = now;
      head.deadline = now + ttl;
      ++leased_count_;
      return Lease{id, head.cell_pos, head.begin, head.end};
    }
    c.state = State::kLeased;
    c.owner = owner;
    c.issued_at = now;
    c.deadline = now + ttl;
    ++leased_count_;
    return Lease{id, c.cell_pos, c.begin, c.end};
  }
  return std::nullopt;
}

WorkLedger::FoldResult WorkLedger::fold(std::uint64_t cell_pos,
                                        std::uint64_t begin,
                                        std::uint64_t end) {
  const auto it = index_.find(std::make_pair(cell_pos, begin));
  if (it == index_.end()) return {FoldOutcome::kUnknown, false};
  Chunk& c = chunks_[static_cast<std::size_t>(it->second)];
  if (c.end != end) return {FoldOutcome::kUnknown, false};
  if (c.state == State::kFolded) return {FoldOutcome::kDuplicate, false};
  if (c.state == State::kLeased) --leased_count_;
  c.state = State::kFolded;
  const std::uint64_t len = end - begin;
  cell_outstanding_[static_cast<std::size_t>(cell_pos)] -= len;
  folded_runs_ += len;
  return {FoldOutcome::kAccepted,
          cell_outstanding_[static_cast<std::size_t>(cell_pos)] == 0};
}

std::size_t WorkLedger::release_owner(std::uint64_t owner) {
  std::size_t released = 0;
  for (std::uint64_t id = 0; id < chunks_.size(); ++id) {
    Chunk& c = chunks_[static_cast<std::size_t>(id)];
    if (c.state == State::kLeased && c.owner == owner) {
      c.state = State::kPending;
      --leased_count_;
      queue_.push_back(id);
      ++released;
    }
  }
  return released;
}

std::size_t WorkLedger::expire(Clock::time_point now) {
  std::size_t expired = 0;
  for (std::uint64_t id = 0; id < chunks_.size(); ++id) {
    Chunk& c = chunks_[static_cast<std::size_t>(id)];
    if (c.state == State::kLeased && c.deadline <= now) {
      c.state = State::kPending;
      --leased_count_;
      queue_.push_back(id);
      ++expired;
    }
  }
  return expired;
}

std::size_t WorkLedger::pending_chunks() const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.state == State::kPending ? 1 : 0;
  return n;
}

std::size_t WorkLedger::folded_chunks() const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.state == State::kFolded ? 1 : 0;
  return n;
}

std::size_t WorkLedger::leased_to(std::uint64_t owner) const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) {
    n += (c.state == State::kLeased && c.owner == owner) ? 1 : 0;
  }
  return n;
}

std::int64_t WorkLedger::oldest_lease_age_ms(std::uint64_t owner,
                                             Clock::time_point now) const {
  std::int64_t oldest = 0;
  for (const Chunk& c : chunks_) {
    if (c.state != State::kLeased || c.owner != owner) continue;
    const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - c.issued_at)
                         .count();
    oldest = std::max<std::int64_t>(oldest, age);
  }
  return oldest;
}

std::uint64_t adaptive_lease_cap(std::uint64_t grain, std::uint64_t floor,
                                 std::uint64_t remaining_runs,
                                 std::size_t active_workers) {
  if (floor < 1) floor = 1;
  if (grain <= floor) return grain;
  const std::uint64_t workers =
      active_workers == 0 ? 1 : static_cast<std::uint64_t>(active_workers);
  std::uint64_t cap = grain;
  // Halve until every active worker has ~2 cap-sized chunks of remainder
  // left (or the floor stops us): the last leases then finish together
  // instead of one straggler holding the whole tail.
  while (cap > floor && cap * workers * 2 > remaining_runs) cap /= 2;
  return std::max(cap, floor);
}

}  // namespace hyco::dist
