// Chunk-granular work ledger — the coordinator's single source of truth
// about which runs of which cells are pending, leased, or folded.
//
// The grid's run-index space is cut into fixed-grain chunks (never crossing
// a cell or an input span). Each chunk walks a small state machine:
//
//     Pending ──acquire──▶ Leased ──fold──▶ Folded        (exactly once)
//        ▲                   │
//        └──expire / release─┘
//
// fold() is exactly-once by construction: the first result for a chunk is
// accepted (whether its lease is live, expired, or was re-issued — the
// executing worker did real work either way), every later one reports
// Duplicate and is dropped. Combined with merge-order-invariant
// accumulators this is what makes the coordinator's output byte-identical
// to a single-machine run at any worker count, lease grain, or arrival
// order — and identical even when a worker dies mid-chunk and its lease is
// re-executed elsewhere.
//
// The ledger is transport-agnostic plain state (owners are opaque ids,
// time is injected), so the same machine backs the TCP coordinator and the
// single-machine chunk checkpoint, and tests can drive every transition
// without sockets or sleeps.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "exp/sink.h"

namespace hyco::dist {

class WorkLedger {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State : std::uint8_t { kPending, kLeased, kFolded };

  struct Lease {
    std::uint64_t chunk_id = 0;
    std::uint64_t cell_pos = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  enum class FoldOutcome : std::uint8_t {
    kAccepted,   ///< first result for this chunk — merge it
    kDuplicate,  ///< chunk already folded — drop the result
    kUnknown,    ///< no such chunk range — protocol violation
  };

  struct FoldResult {
    FoldOutcome outcome = FoldOutcome::kUnknown;
    bool cell_completed = false;  ///< this fold drained the cell
  };

  /// A ledger over `n_cells` cells with chunks of at most `grain` runs.
  WorkLedger(std::size_t n_cells, std::uint64_t grain);

  /// Registers runs [begin, end) of `cell_pos` as pending work, split into
  /// grain-sized chunks. Spans of one cell must be disjoint (the caller
  /// derives them from a checkpoint complement, which guarantees it).
  void add_span(std::uint64_t cell_pos, std::uint64_t begin,
                std::uint64_t end);

  /// Leases the next pending chunk to `owner` until now + ttl; nullopt when
  /// nothing is pending (work may still be leased out — check all_folded()
  /// to distinguish "wait" from "done").
  ///
  /// `max_len` (0 = uncapped) bounds the lease length: a pending chunk
  /// longer than the cap is *split* — the first `max_len` runs go out as
  /// the lease, the remainder re-registers as a fresh pending chunk at the
  /// front of the queue so the range stays contiguous in issue order. This
  /// is how the adaptive lease tail shrinks grains as the pending pool
  /// drains; splitting re-partitions the same run ranges and therefore
  /// never changes output bytes.
  [[nodiscard]] std::optional<Lease> acquire(std::uint64_t owner,
                                             Clock::time_point now,
                                             Clock::duration ttl,
                                             std::uint64_t max_len = 0);

  /// Records the result for chunk [begin, end) of `cell_pos` — see the
  /// state machine above for the exactly-once contract.
  [[nodiscard]] FoldResult fold(std::uint64_t cell_pos, std::uint64_t begin,
                                std::uint64_t end);

  /// Re-queues every chunk leased to `owner` (worker disconnect). Returns
  /// the number of chunks released.
  std::size_t release_owner(std::uint64_t owner);

  /// Re-queues every lease whose deadline has passed. Returns the number
  /// expired.
  std::size_t expire(Clock::time_point now);

  [[nodiscard]] bool all_folded() const {
    return folded_runs_ == total_runs_;
  }
  /// True when every registered run of the cell has folded. Cells with no
  /// registered spans are trivially complete (their runs live in a
  /// checkpoint).
  [[nodiscard]] bool cell_folded(std::uint64_t cell_pos) const {
    return cell_outstanding_.at(static_cast<std::size_t>(cell_pos)) == 0;
  }

  [[nodiscard]] std::uint64_t total_runs() const { return total_runs_; }
  [[nodiscard]] std::uint64_t folded_runs() const { return folded_runs_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t pending_chunks() const;
  [[nodiscard]] std::size_t leased_chunks() const { return leased_count_; }
  [[nodiscard]] std::size_t folded_chunks() const;
  /// Chunks currently leased to `owner` (health reporting).
  [[nodiscard]] std::size_t leased_to(std::uint64_t owner) const;
  /// Age in ms of the oldest live lease held by `owner`; 0 when it holds
  /// none (health reporting — a lease aging toward its TTL flags a wedged
  /// or mis-sized worker before expiry fires).
  [[nodiscard]] std::int64_t oldest_lease_age_ms(std::uint64_t owner,
                                                 Clock::time_point now) const;

 private:
  struct Chunk {
    std::uint64_t cell_pos;
    std::uint64_t begin;
    std::uint64_t end;
    State state = State::kPending;
    std::uint64_t owner = 0;
    Clock::time_point issued_at{};
    Clock::time_point deadline{};
  };

  std::uint64_t grain_;
  std::vector<Chunk> chunks_;
  /// (cell_pos, begin) → chunk id, for result lookup by range.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> index_;
  /// Chunk ids in issue order; entries whose state is no longer Pending are
  /// skipped lazily on acquire (re-queued chunks are appended).
  std::deque<std::uint64_t> queue_;
  std::vector<std::uint64_t> cell_outstanding_;  ///< unfolded runs per cell
  std::uint64_t total_runs_ = 0;
  std::uint64_t folded_runs_ = 0;
  std::size_t leased_count_ = 0;
};

/// The adaptive lease grain: the largest power-of-two fraction of `grain`
/// (halving, never below `floor`) such that the unfolded remainder still
/// spreads at least ~2 chunks over every active worker. Early in a sweep
/// this returns `grain` unchanged; as the pending pool drains it shrinks
/// so the tail evens out across workers instead of waiting on one monster
/// lease. Pure so tests can pin the shrink schedule without a coordinator.
[[nodiscard]] std::uint64_t adaptive_lease_cap(std::uint64_t grain,
                                               std::uint64_t floor,
                                               std::uint64_t remaining_runs,
                                               std::size_t active_workers);

}  // namespace hyco::dist
