#include "dist/proto.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "exp/checkpoint.h"
#include "util/assert.h"

namespace hyco::dist {

namespace {

/// Parses one unsigned decimal token; false on anything else.
bool eat_u64(std::istringstream& in, std::uint64_t& out) {
  std::string tok;
  if (!(in >> tok) || tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(tok.c_str(), &end, 10);
  return errno == 0 && end != tok.c_str() && *end == '\0';
}

bool expect_keyword(std::istringstream& in, const char* want) {
  std::string kw;
  return (in >> kw) && kw == want;
}

}  // namespace

std::string encode_hello(const HelloMsg& m) {
  std::ostringstream os;
  os << "hello " << m.version << ' ' << m.fingerprint << ' ' << m.cells
     << ' ' << m.reservoir_capacity << ' ' << m.failure_capacity << ' '
     << m.reconnect << '\n';
  return os.str();
}

bool decode_hello(const std::string& payload, HelloMsg& out) {
  std::istringstream is(payload);
  std::uint64_t version = 0;
  if (!expect_keyword(is, "hello") || !eat_u64(is, version) ||
      !eat_u64(is, out.fingerprint) || !eat_u64(is, out.cells) ||
      !eat_u64(is, out.reservoir_capacity) ||
      !eat_u64(is, out.failure_capacity) || !eat_u64(is, out.reconnect)) {
    return false;
  }
  out.version = static_cast<std::uint32_t>(version);
  return true;
}

std::string encode_lease(const LeaseMsg& m) {
  std::ostringstream os;
  os << "lease " << m.cell_index << ' ' << m.begin << ' ' << m.end << '\n';
  return os.str();
}

bool decode_lease(const std::string& payload, LeaseMsg& out) {
  std::istringstream is(payload);
  return expect_keyword(is, "lease") && eat_u64(is, out.cell_index) &&
         eat_u64(is, out.begin) && eat_u64(is, out.end) &&
         out.begin < out.end;
}

std::string encode_wait(std::uint32_t millis) {
  std::ostringstream os;
  os << "wait " << millis << '\n';
  return os.str();
}

bool decode_wait(const std::string& payload, std::uint32_t& millis) {
  std::istringstream is(payload);
  std::uint64_t ms = 0;
  if (!expect_keyword(is, "wait") || !eat_u64(is, ms) || ms > 3'600'000) {
    return false;
  }
  millis = static_cast<std::uint32_t>(ms);
  return true;
}

std::string encode_reject(const std::string& reason) {
  return "reject " + reason + "\n";
}

std::string encode_result(const ResultMsg& m) {
  std::ostringstream os;
  os << "result " << m.cell_index << ' ' << m.begin << ' ' << m.end << ' '
     << m.acc.runs << ' ' << m.acc.terminated << ' ' << m.acc.violations
     << '\n';
  write_accumulator_state(os, m.acc);
  return os.str();
}

bool decode_result(const std::string& payload, ResultMsg& out) {
  std::istringstream is(payload);
  std::string header;
  if (!std::getline(is, header)) return false;
  std::istringstream hs(header);
  std::uint64_t runs = 0, term = 0, viol = 0;
  if (!expect_keyword(hs, "result") || !eat_u64(hs, out.cell_index) ||
      !eat_u64(hs, out.begin) || !eat_u64(hs, out.end) ||
      !eat_u64(hs, runs) || !eat_u64(hs, term) || !eat_u64(hs, viol) ||
      out.begin >= out.end || runs != out.end - out.begin) {
    return false;
  }
  if (!read_accumulator_state(is, out.acc)) return false;
  out.acc.runs = runs;
  out.acc.terminated = term;
  out.acc.violations = viol;
  return true;
}

bool send_frame(int fd, MsgType type, const std::string& payload) {
  if (payload.size() >= kMaxFrameBytes) return false;
  std::string wire;
  wire.reserve(5 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size() + 1);
  wire.push_back(static_cast<char>((len >> 24) & 0xFF));
  wire.push_back(static_cast<char>((len >> 16) & 0xFF));
  wire.push_back(static_cast<char>((len >> 8) & 0xFF));
  wire.push_back(static_cast<char>(len & 0xFF));
  wire.push_back(static_cast<char>(type));
  wire += payload;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

bool recv_exact(int fd, char* buf, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(fd, buf + got, want - got, 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool recv_frame(int fd, Frame& out) {
  char hdr[4];
  if (!recv_exact(fd, hdr, 4)) return false;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[3]));
  if (len == 0 || len > kMaxFrameBytes) return false;
  char type = 0;
  if (!recv_exact(fd, &type, 1)) return false;
  out.type = static_cast<MsgType>(type);
  out.payload.resize(len - 1);
  return len == 1 || recv_exact(fd, out.payload.data(), len - 1);
}

std::optional<Frame> FrameBuffer::next() {
  if (error_) return std::nullopt;
  // Reclaim consumed prefix lazily so repeated small frames don't memmove
  // the tail on every call.
  if (consumed_ > 0 && consumed_ * 2 >= buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 5) return std::nullopt;
  const char* p = buf_.data() + consumed_;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
  if (len == 0 || len > kMaxFrameBytes) {
    error_ = true;
    return std::nullopt;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  Frame f;
  f.type = static_cast<MsgType>(p[4]);
  f.payload.assign(p + 5, len - 1);
  consumed_ += 4 + static_cast<std::size_t>(len);
  return f;
}

HostPort parse_host_port(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  HYCO_CHECK_MSG(colon != std::string::npos,
                 "--connect: \"" << text
                     << "\" is missing \":PORT\" (want HOST:PORT, e.g."
                        " 127.0.0.1:7600)");
  HostPort hp;
  hp.host = text.substr(0, colon);
  HYCO_CHECK_MSG(!hp.host.empty(),
                 "--connect: empty host in \"" << text
                     << "\" (want HOST:PORT, e.g. 127.0.0.1:7600)");
  const std::string port_s = text.substr(colon + 1);
  char* end = nullptr;
  const long long port = std::strtoll(port_s.c_str(), &end, 10);
  HYCO_CHECK_MSG(!port_s.empty() && end != port_s.c_str() && *end == '\0',
                 "--connect: \"" << port_s << "\" is not a port number in \""
                                 << text << '"');
  hp.port = validate_port(port, "--connect");
  return hp;
}

std::uint16_t validate_port(long long value, const char* flag) {
  HYCO_CHECK_MSG(value >= 1 && value <= 65535,
                 flag << ": port must be in [1, 65535], got " << value);
  return static_cast<std::uint16_t>(value);
}

int listen_on(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HYCO_CHECK_MSG(fd >= 0, "--serve: socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    HYCO_CHECK_MSG(false, "--serve: cannot bind port " << port << ": "
                          << std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    HYCO_CHECK_MSG(false, "--serve: listen() failed: " << std::strerror(err));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    HYCO_CHECK_MSG(
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0,
        "--serve: getsockname() failed: " << std::strerror(errno));
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int connect_once(const HostPort& target) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::ostringstream port_s;
  port_s << target.port;
  if (::getaddrinfo(target.host.c_str(), port_s.str().c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return -1;
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return -1;
  }
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace hyco::dist
