// Coordinator — owns one grid execution and farms its chunks to TCP
// workers (src/dist/worker.h), folding their accumulators through the
// chunk-granular WorkLedger.
//
// Determinism contract: the per-cell accumulator the coordinator emits is
// the merge of exactly-once chunk accumulators over the cell's full run
// range (plus any checkpoint-resumed prior chunks). Because every
// accumulator component is merge-order-invariant (exp/sink.h), the merged
// result — and every CSV/JSON byte rendered from it — is identical to a
// single-machine `--stream` run at any worker count, lease grain, arrival
// order, or worker failure pattern.
//
// Fault handling: a worker disconnect re-queues its leased chunks; a lease
// older than lease_ttl is re-queued even without a disconnect (a wedged
// worker); a result arriving for an already-folded chunk (the original
// worker raced its re-issued lease) is dropped as a duplicate. The
// coordinator is single-threaded (one poll loop) — no locks, and the
// on_chunk/on_cell_complete hooks (checkpoint appends) run serialized.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dist/ledger.h"
#include "dist/proto.h"
#include "exp/sink.h"
#include "exp/spec.h"
#include "obs/health.h"

namespace hyco::dist {

struct CoordinatorOptions {
  /// TCP port to listen on; 0 = kernel-assigned (query with port()).
  std::uint16_t port = 0;
  /// Runs per lease chunk. Smaller = finer failure granularity and better
  /// load balance; larger = less protocol overhead. Never changes output
  /// bytes.
  std::uint64_t lease_grain = 4096;
  /// Adaptive-tail floor: as the pending pool drains, lease sizes shrink
  /// (halving) from lease_grain down to this so the final chunks land on
  /// all workers instead of one straggler (ledger.h adaptive_lease_cap).
  /// Never changes output bytes. Set equal to lease_grain to disable.
  std::uint64_t lease_floor = 32;
  /// A lease not folded within this window is re-queued for other workers.
  std::chrono::milliseconds lease_ttl{60'000};
  /// Poll-loop tick (lease expiry + progress cadence), and the retry hint
  /// sent with Wait replies.
  std::chrono::milliseconds poll_interval{100};
  /// Hard deadline for serve(); 0 = wait forever. Tests set it so a
  /// regression fails loudly instead of hanging CI.
  std::chrono::milliseconds max_wait{0};
  std::size_t reservoir_capacity = MetricStats::kDefaultReservoir;
  std::size_t failure_capacity = CellAccumulator::kDefaultFailureCap;
  /// Accepted-chunk hook (cell, begin, end, chunk accumulator) — the chunk
  /// checkpoint append.
  std::function<void(const ExperimentCell&, std::uint64_t, std::uint64_t,
                     const CellAccumulator&)>
      on_chunk;
  /// Completed-cell hook with the final, finalized accumulator.
  std::function<void(const ExperimentCell&, const CellAccumulator&)>
      on_cell_complete;
  /// Progress hook, called at most once per poll tick:
  /// (folded runs, total runs incl. nothing-to-do cells, connected workers).
  std::function<void(std::uint64_t, std::uint64_t, std::size_t)> progress;
  /// Read-only HTTP health/progress endpoint: -1 = disabled, 0 =
  /// kernel-assigned (query with health_port()), else the TCP port to bind.
  /// Each request is answered with one "hyco-health/2" JSON document
  /// (obs/health.h) on the coordinator's own poll loop — no extra thread,
  /// and no interaction with the worker protocol.
  int health_port = -1;
  /// Chaos hook for crash tests: after this many accepted chunk folds the
  /// coordinator abruptly closes every socket (no Done broadcast — the
  /// moral equivalent of SIGKILL) and serve() throws ChaosKill. Whatever
  /// the on_chunk hook checkpointed so far is exactly what a restarted
  /// --resume coordinator picks up. 0 = disabled (production).
  std::uint64_t crash_after_chunks = 0;
};

/// Thrown by serve() when crash_after_chunks fires. Deliberately not a
/// ContractViolation: tests catch this precise type to distinguish the
/// injected crash from a real failure.
struct ChaosKill {
  std::uint64_t folded_chunks = 0;  ///< accepted folds before the kill
};

class Coordinator {
 public:
  /// `cells` are the cells this execution must produce (typically the
  /// not-yet-completed subset of a grid); `spans` the run ranges still to
  /// execute (cells absent from spans are fully covered by `prior`);
  /// `prior` holds per-cell-position accumulators resumed from a chunk
  /// checkpoint, merged under the emitted results. `fingerprint` is the
  /// full grid's identity that worker Hellos must match.
  Coordinator(std::vector<ExperimentCell> cells, std::vector<RunSpan> spans,
              std::map<std::size_t, CellAccumulator> prior,
              std::uint64_t fingerprint, CoordinatorOptions opts);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds + listens; after this port() is valid (call before starting
  /// workers). Throws ContractViolation when the port is unavailable.
  void bind();
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }
  /// Bound health-endpoint port; 0 until bind() (or when disabled).
  [[nodiscard]] std::uint16_t health_port() const { return health_port_; }

  /// Runs the accept/lease/fold loop until every run has folded (or
  /// max_wait expires → ContractViolation). Returns the finalized results
  /// in cell order. Call bind() first.
  [[nodiscard]] std::vector<CellResult> serve();

 private:
  struct Conn;

  void complete_cell(std::size_t cell_pos);
  /// Returns false when the connection must be dropped.
  [[nodiscard]] bool handle_frame(Conn& conn, const Frame& frame);
  /// Point-in-time progress snapshot for the health endpoint.
  [[nodiscard]] obs::HealthSnapshot snapshot(
      WorkLedger::Clock::time_point started) const;
  /// Accepts one health request and answers it (blocking, short timeouts).
  void serve_health_request(WorkLedger::Clock::time_point started);

  std::vector<ExperimentCell> cells_;
  std::map<std::uint64_t, std::size_t> index_to_pos_;  ///< cell.index → pos
  CoordinatorOptions opts_;
  std::uint64_t fingerprint_;
  WorkLedger ledger_;
  std::vector<CellAccumulator> slots_;
  std::vector<char> completed_;
  std::uint64_t resumed_runs_ = 0;  ///< runs carried by `prior`

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int health_fd_ = -1;
  std::uint16_t health_port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_owner_ = 1;

  // Recovery counters (surfaced on the health endpoint, hyco-health/2):
  std::uint64_t lease_expiries_ = 0;
  std::uint64_t requeued_chunks_ = 0;
  std::uint64_t worker_reconnects_ = 0;
  std::uint64_t accepted_folds_ = 0;
  /// Last time an on_chunk/on_cell_complete hook returned (i.e. the
  /// checkpoint writer flushed); unset until the first flush.
  std::optional<WorkLedger::Clock::time_point> last_flush_;
};

}  // namespace hyco::dist
