// Worker side of the distributed sweep engine: connects to a coordinator,
// leases chunk-sized run ranges, executes them through the exact same
// run_consensus()/CellAccumulator pipeline a local sweep uses, and ships
// the accumulator state back over the wire.
//
// A worker is launched with the *same grid flags* as the coordinator (the
// grid itself never crosses the wire); the Hello handshake compares grid
// fingerprints so a mismatched worker is rejected before any run executes.
// `sessions` independent connections give a worker process N-way
// parallelism — each session is its own socket + thread with a strictly
// request/response protocol, which keeps the coordinator trivially
// single-threaded.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/proto.h"
#include "exp/sink.h"
#include "exp/spec.h"

namespace hyco::dist {

struct WorkerOptions {
  HostPort target;
  /// Parallel protocol sessions (threads). Each leases and executes
  /// independently.
  unsigned sessions = 1;
  /// How long to keep retrying the initial connect (the coordinator may
  /// still be starting).
  std::chrono::milliseconds connect_timeout{10'000};
  std::size_t reservoir_capacity = MetricStats::kDefaultReservoir;
  std::size_t failure_capacity = CellAccumulator::kDefaultFailureCap;
};

struct WorkerReport {
  std::uint64_t runs_executed = 0;
  std::uint64_t chunks_executed = 0;
  /// True when the grid completed from this worker's point of view: at
  /// least one session received the coordinator's Done, and no session hit
  /// a protocol or mid-work failure. A session that never managed to
  /// *connect* is tolerated when a sibling saw Done — a fast grid can
  /// drain and tear the coordinator down before every session joins.
  bool completed = false;
  /// First failure (empty when completed).
  std::string error;
};

/// Runs worker sessions against a coordinator until the grid is done (or a
/// session fails). `cells` must be the full grid expansion; `fingerprint`
/// its grid_fingerprint() with the same capacities the coordinator uses.
WorkerReport run_worker(const std::vector<ExperimentCell>& cells,
                        std::uint64_t fingerprint,
                        const WorkerOptions& opts);

}  // namespace hyco::dist
