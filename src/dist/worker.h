// Worker side of the distributed sweep engine: connects to a coordinator,
// leases chunk-sized run ranges, executes them through the exact same
// run_consensus()/CellAccumulator pipeline a local sweep uses, and ships
// the accumulator state back over the wire.
//
// A worker is launched with the *same grid flags* as the coordinator (the
// grid itself never crosses the wire); the Hello handshake compares grid
// fingerprints so a mismatched worker is rejected before any run executes.
// `sessions` independent connections give a worker process N-way
// parallelism — each session is its own socket + thread with a strictly
// request/response protocol, which keeps the coordinator trivially
// single-threaded.
//
// Sessions self-heal: a connection lost mid-sweep (network sever, or the
// coordinator itself crashing and being restarted with --resume) is
// redialed with jittered exponential backoff and a fresh Hello carrying a
// bumped reconnect count. The un-shipped chunk in flight is abandoned —
// the coordinator's disconnect/TTL machinery re-queues it — so recovery
// never changes output bytes, only who executes what.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/proto.h"
#include "exp/sink.h"
#include "exp/spec.h"

namespace hyco::dist {

struct WorkerOptions {
  HostPort target;
  /// Parallel protocol sessions (threads). Each leases and executes
  /// independently.
  unsigned sessions = 1;
  /// How long to keep retrying the initial connect (the coordinator may
  /// still be starting).
  std::chrono::milliseconds connect_timeout{10'000};
  std::size_t reservoir_capacity = MetricStats::kDefaultReservoir;
  std::size_t failure_capacity = CellAccumulator::kDefaultFailureCap;
  /// Mid-sweep recovery budget: after losing a live connection (worker-side
  /// sever, coordinator crash/restart) a session redials with jittered
  /// exponential backoff and re-Hellos; this caps *consecutive* failed
  /// recovery attempts before the session gives up. The counter resets on
  /// every accepted re-handshake, so a flaky link that keeps coming back is
  /// tolerated indefinitely. 0 = a mid-sweep disconnect is fatal (the
  /// pre-recovery behavior). Any un-shipped local chunk is abandoned on
  /// reconnect — the coordinator re-leases it, so output bytes never change.
  unsigned reconnect_attempts = 5;
  /// First-retry backoff; doubles per consecutive failure (jittered to
  /// 0.5–1.5× so severed siblings don't redial in lockstep).
  std::chrono::milliseconds reconnect_base{250};
  /// Backoff ceiling.
  std::chrono::milliseconds reconnect_cap{4'000};
};

struct WorkerReport {
  std::uint64_t runs_executed = 0;
  std::uint64_t chunks_executed = 0;
  /// Successful mid-sweep re-handshakes across all sessions.
  std::uint64_t reconnects = 0;
  /// True when the grid completed from this worker's point of view: at
  /// least one session received the coordinator's Done, and no session hit
  /// a protocol or mid-work failure. A session that never managed to
  /// *connect* is tolerated when a sibling saw Done — a fast grid can
  /// drain and tear the coordinator down before every session joins.
  bool completed = false;
  /// First failure (empty when completed).
  std::string error;
};

/// Runs worker sessions against a coordinator until the grid is done (or a
/// session fails). `cells` must be the full grid expansion; `fingerprint`
/// its grid_fingerprint() with the same capacities the coordinator uses.
WorkerReport run_worker(const std::vector<ExperimentCell>& cells,
                        std::uint64_t fingerprint,
                        const WorkerOptions& opts);

}  // namespace hyco::dist
