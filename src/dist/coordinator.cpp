#include "dist/coordinator.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <utility>

#include "util/assert.h"
#include "util/log.h"

namespace hyco::dist {

struct Coordinator::Conn {
  int fd = -1;
  std::uint64_t owner = 0;
  bool welcomed = false;
  FrameBuffer buf;
  // Health-endpoint bookkeeping (observability only — never drives the
  // lease/fold protocol):
  WorkLedger::Clock::time_point connected_at{};
  WorkLedger::Clock::time_point last_seen{};
  std::uint64_t folded_chunks = 0;
  std::uint64_t folded_runs = 0;
  std::uint64_t reconnects = 0;  ///< re-hello count the Hello carried
};

Coordinator::Coordinator(std::vector<ExperimentCell> cells,
                         std::vector<RunSpan> spans,
                         std::map<std::size_t, CellAccumulator> prior,
                         std::uint64_t fingerprint, CoordinatorOptions opts)
    : cells_(std::move(cells)),
      opts_(std::move(opts)),
      fingerprint_(fingerprint),
      ledger_(cells_.size(), opts_.lease_grain),
      completed_(cells_.size(), 0) {
  slots_.reserve(cells_.size());
  for (std::size_t pos = 0; pos < cells_.size(); ++pos) {
    index_to_pos_.emplace(cells_[pos].index, pos);
    const auto it = prior.find(pos);
    if (it != prior.end()) {
      resumed_runs_ += it->second.runs;
      slots_.push_back(std::move(it->second));
    } else {
      slots_.emplace_back(opts_.reservoir_capacity, opts_.failure_capacity);
    }
  }
  for (const RunSpan& s : spans) {
    ledger_.add_span(s.cell_pos, s.begin, s.end);
  }
}

Coordinator::~Coordinator() {
  for (const auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (health_fd_ >= 0) ::close(health_fd_);
}

void Coordinator::bind() {
  HYCO_CHECK_MSG(listen_fd_ < 0, "coordinator already bound");
  listen_fd_ = listen_on(opts_.port, &bound_port_);
  if (opts_.health_port >= 0) {
    HYCO_CHECK_MSG(opts_.health_port <= 65535,
                   "health port " << opts_.health_port << " out of range");
    health_fd_ = listen_on(static_cast<std::uint16_t>(opts_.health_port),
                           &health_port_);
  }
}

obs::HealthSnapshot Coordinator::snapshot(
    WorkLedger::Clock::time_point started) const {
  const auto now = WorkLedger::Clock::now();
  const auto ms_since = [&now](WorkLedger::Clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - t)
        .count();
  };
  obs::HealthSnapshot snap;
  snap.elapsed_ms = ms_since(started);
  snap.runs_total = resumed_runs_ + ledger_.total_runs();
  snap.runs_folded = resumed_runs_ + ledger_.folded_runs();
  snap.runs_resumed = resumed_runs_;
  snap.cells_total = cells_.size();
  for (const char c : completed_) snap.cells_completed += c != 0 ? 1 : 0;
  snap.chunks_total = ledger_.chunk_count();
  snap.chunks_pending = ledger_.pending_chunks();
  snap.chunks_leased = ledger_.leased_chunks();
  snap.chunks_folded = ledger_.folded_chunks();
  // Fold rate over this serve()'s own folds (resumed runs were not earned
  // in this session); ETA extrapolates it over the unfolded remainder.
  const double elapsed_sec =
      static_cast<double>(snap.elapsed_ms) / 1000.0;
  if (elapsed_sec > 0.0 && ledger_.folded_runs() > 0) {
    snap.fold_rate_per_sec =
        static_cast<double>(ledger_.folded_runs()) / elapsed_sec;
    snap.eta_sec =
        static_cast<double>(ledger_.total_runs() - ledger_.folded_runs()) /
        snap.fold_rate_per_sec;
  }
  snap.lease_expiries = lease_expiries_;
  snap.requeued_chunks = requeued_chunks_;
  snap.worker_reconnects = worker_reconnects_;
  if (last_flush_.has_value()) {
    snap.checkpoint_flush_ms = ms_since(*last_flush_);
  }
  snap.workers.reserve(conns_.size());
  for (const auto& c : conns_) {
    obs::WorkerHealth w;
    w.id = c->owner;
    w.welcomed = c->welcomed;
    w.connected_ms = ms_since(c->connected_at);
    w.last_seen_ms = ms_since(c->last_seen);
    w.active_leases = ledger_.leased_to(c->owner);
    w.folded_chunks = c->folded_chunks;
    w.folded_runs = c->folded_runs;
    w.reconnects = c->reconnects;
    w.oldest_lease_ms = ledger_.oldest_lease_age_ms(c->owner, now);
    snap.workers.push_back(w);
  }
  return snap;
}

void Coordinator::serve_health_request(
    WorkLedger::Clock::time_point started) {
  const int fd = ::accept(health_fd_, nullptr, nullptr);
  if (fd < 0) return;
  // Short timeouts: a stalled client must not wedge the poll loop (the
  // endpoint is read-only and the response is one small buffer).
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  char req[1024];
  (void)::recv(fd, req, sizeof(req), 0);  // request contents are irrelevant
  const std::string resp =
      obs::render_http_response(obs::render_health_json(snapshot(started)));
  (void)::send(fd, resp.data(), resp.size(), 0);
  ::close(fd);
}

void Coordinator::complete_cell(std::size_t cell_pos) {
  CellAccumulator& acc = slots_[cell_pos];
  acc.finalize();
  completed_[cell_pos] = 1;
  if (opts_.on_cell_complete) {
    opts_.on_cell_complete(cells_[cell_pos], acc);
    last_flush_ = WorkLedger::Clock::now();
  }
}

bool Coordinator::handle_frame(Conn& conn, const Frame& frame) {
  if (!conn.welcomed) {
    if (frame.type != MsgType::kHello) return false;
    HelloMsg hello;
    if (!decode_hello(frame.payload, hello)) return false;
    std::ostringstream why;
    if (hello.version != kProtocolVersion) {
      why << "protocol version " << hello.version << " != "
          << kProtocolVersion;
    } else if (hello.fingerprint != fingerprint_) {
      why << "grid fingerprint mismatch (worker " << hello.fingerprint
          << ", coordinator " << fingerprint_
          << ") — start the worker with the same grid flags";
    } else if (hello.reservoir_capacity != opts_.reservoir_capacity ||
               hello.failure_capacity != opts_.failure_capacity) {
      why << "accumulator capacities differ";
    }
    const std::string reason = why.str();
    if (!reason.empty()) {
      (void)send_frame(conn.fd, MsgType::kReject, encode_reject(reason));
      return false;
    }
    conn.welcomed = true;
    conn.reconnects = hello.reconnect;
    if (hello.reconnect > 0) ++worker_reconnects_;
    return send_frame(conn.fd, MsgType::kWelcome, "");
  }

  switch (frame.type) {
    case MsgType::kLeaseReq: {
      if (ledger_.all_folded()) {
        return send_frame(conn.fd, MsgType::kDone, "");
      }
      // Shrink leases toward lease_floor as the pending pool drains so the
      // sweep's tail lands on every connected worker at once.
      const std::uint64_t cap = adaptive_lease_cap(
          opts_.lease_grain, opts_.lease_floor,
          ledger_.total_runs() - ledger_.folded_runs(),
          std::max<std::size_t>(conns_.size(), 1));
      const auto lease = ledger_.acquire(
          conn.owner, WorkLedger::Clock::now(), opts_.lease_ttl, cap);
      if (!lease.has_value()) {
        // Everything is leased out; the worker retries after a tick.
        return send_frame(
            conn.fd, MsgType::kWait,
            encode_wait(static_cast<std::uint32_t>(
                opts_.poll_interval.count() * 2)));
      }
      LeaseMsg msg;
      msg.cell_index = cells_[static_cast<std::size_t>(lease->cell_pos)].index;
      msg.begin = lease->begin;
      msg.end = lease->end;
      return send_frame(conn.fd, MsgType::kLease, encode_lease(msg));
    }
    case MsgType::kResult: {
      ResultMsg result;
      if (!decode_result(frame.payload, result)) return false;
      const auto it = index_to_pos_.find(result.cell_index);
      if (it == index_to_pos_.end()) return false;
      const std::size_t pos = it->second;
      // An accumulator built with foreign capacities would merge into a
      // different statistic — refuse it (the handshake pinned these).
      if (result.acc.failure_cap != opts_.failure_capacity ||
          result.acc.rounds.reservoir().capacity() !=
              opts_.reservoir_capacity) {
        return false;
      }
      const auto fold = ledger_.fold(pos, result.begin, result.end);
      switch (fold.outcome) {
        case WorkLedger::FoldOutcome::kUnknown:
          return false;  // never leased that range — protocol violation
        case WorkLedger::FoldOutcome::kDuplicate:
          return true;  // raced an expired lease; first result won
        case WorkLedger::FoldOutcome::kAccepted:
          break;
      }
      ++conn.folded_chunks;
      conn.folded_runs += result.end - result.begin;
      ++accepted_folds_;
      if (opts_.on_chunk) {
        opts_.on_chunk(cells_[pos], result.begin, result.end, result.acc);
        last_flush_ = WorkLedger::Clock::now();
      }
      slots_[pos].merge(result.acc);
      if (fold.cell_completed) complete_cell(pos);
      if (opts_.crash_after_chunks > 0 &&
          accepted_folds_ >= opts_.crash_after_chunks) {
        // Injected crash: die the way SIGKILL would — every socket torn
        // down with no Done broadcast, nothing flushed beyond what the
        // hooks above already wrote. Tests restart from the checkpoint.
        for (const auto& c : conns_) {
          if (c->fd >= 0) ::close(c->fd);
        }
        conns_.clear();
        if (listen_fd_ >= 0) {
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        if (health_fd_ >= 0) {
          ::close(health_fd_);
          health_fd_ = -1;
        }
        throw ChaosKill{accepted_folds_};
      }
      return true;
    }
    default:
      return false;
  }
}

std::vector<CellResult> Coordinator::serve() {
  HYCO_CHECK_MSG(listen_fd_ >= 0, "coordinator: call bind() before serve()");

  // Cells whose whole run range came out of the checkpoint have nothing to
  // execute; complete them up front so their cell blocks/results exist even
  // though no worker will ever touch them.
  for (std::size_t pos = 0; pos < cells_.size(); ++pos) {
    if (!completed_[pos] && ledger_.cell_folded(pos)) complete_cell(pos);
  }

  const auto started = WorkLedger::Clock::now();
  std::vector<pollfd> pfds;
  std::vector<char> rdbuf(1 << 16);
  while (!ledger_.all_folded()) {
    if (opts_.max_wait.count() > 0) {
      HYCO_CHECK_MSG(WorkLedger::Clock::now() - started < opts_.max_wait,
                     "coordinator: grid incomplete after "
                         << opts_.max_wait.count() << " ms ("
                         << ledger_.folded_runs() << '/'
                         << ledger_.total_runs() << " runs folded)");
    }
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    if (health_fd_ >= 0) pfds.push_back({health_fd_, POLLIN, 0});
    // Worker connections start after the listeners.
    const std::size_t conn_base = health_fd_ >= 0 ? 2 : 1;
    for (const auto& c : conns_) pfds.push_back({c->fd, POLLIN, 0});
    const int rc = ::poll(pfds.data(), pfds.size(),
                          static_cast<int>(opts_.poll_interval.count()));
    if (rc < 0) {
      HYCO_CHECK_MSG(errno == EINTR,
                     "coordinator: poll() failed: " << errno);
      continue;
    }

    if (health_fd_ >= 0 && (pfds[1].revents & POLLIN) != 0) {
      serve_health_request(started);
    }

    // One accept per readiness; further backlog surfaces on the next tick
    // (the listener stays blocking, so accept() is only safe when poll
    // reported it readable).
    if ((pfds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        // Bounded sends: a peer that writes requests without ever reading
        // replies would otherwise block the single-threaded loop forever
        // once its receive window fills. After the timeout send_frame
        // fails and the connection is dropped like any other dead worker.
        timeval tv{};
        tv.tv_sec = 10;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->owner = next_owner_++;
        conn->connected_at = WorkLedger::Clock::now();
        conn->last_seen = conn->connected_at;
        conns_.push_back(std::move(conn));
      }
    }

    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i + conn_base < pfds.size(); ++i) {
      Conn& conn = *conns_[i];
      const short re = pfds[i + conn_base].revents;
      if (re == 0) continue;
      bool ok = (re & (POLLERR | POLLNVAL)) == 0;
      if (ok && (re & (POLLIN | POLLHUP)) != 0) {
        const ssize_t n = ::recv(conn.fd, rdbuf.data(), rdbuf.size(), 0);
        if (n <= 0) {
          ok = false;
        } else {
          conn.last_seen = WorkLedger::Clock::now();
          conn.buf.feed(rdbuf.data(), static_cast<std::size_t>(n));
          while (ok) {
            const auto frame = conn.buf.next();
            if (!frame.has_value()) {
              ok = !conn.buf.error();
              break;
            }
            ok = handle_frame(conn, *frame);
          }
        }
      }
      if (!ok) dead.push_back(i);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      Conn& conn = *conns_[*it];
      requeued_chunks_ += ledger_.release_owner(conn.owner);
      ::close(conn.fd);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(*it));
    }

    const std::size_t expired = ledger_.expire(WorkLedger::Clock::now());
    if (expired > 0) {
      lease_expiries_ += expired;
      requeued_chunks_ += expired;
      // Expiry cannot tell a wedged worker from a healthy-but-slow one;
      // the re-executed work is dropped as a duplicate either way, but
      // recurring expiries mean the lease is mis-sized — say so.
      HYCO_WARN("coordinator: " << expired
                << " lease(s) expired and re-queued (if workers are healthy,"
                   " raise --lease-ttl or lower --lease so a chunk finishes"
                   " within its lease)");
    }
    if (opts_.progress) {
      opts_.progress(resumed_runs_ + ledger_.folded_runs(),
                     resumed_runs_ + ledger_.total_runs(), conns_.size());
    }
  }

  // Unsolicited Done so workers parked on a Wait disconnect cleanly. Then
  // half-close and *drain* until each peer closes (bounded): closing with
  // a worker's final Result/LeaseReq still unread would send an RST that
  // can discard the Done out of the worker's receive buffer, turning a
  // successful grid into a spurious worker-side failure.
  for (const auto& c : conns_) {
    (void)send_frame(c->fd, MsgType::kDone, "");
    ::shutdown(c->fd, SHUT_WR);
  }
  const auto drain_deadline =
      WorkLedger::Clock::now() + std::chrono::seconds(2);
  while (!conns_.empty() && WorkLedger::Clock::now() < drain_deadline) {
    pfds.clear();
    for (const auto& c : conns_) pfds.push_back({c->fd, POLLIN, 0});
    if (::poll(pfds.data(), pfds.size(), 100) <= 0) continue;
    for (std::size_t i = pfds.size(); i-- > 0;) {
      if (pfds[i].revents == 0) continue;
      const ssize_t n =
          ::recv(conns_[i]->fd, rdbuf.data(), rdbuf.size(), 0);
      if (n <= 0) {
        ::close(conns_[i]->fd);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      }  // else: discard — the grid is complete, frames no longer matter
    }
  }
  for (const auto& c : conns_) ::close(c->fd);
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (health_fd_ >= 0) {
    ::close(health_fd_);
    health_fd_ = -1;
  }

  std::vector<CellResult> results;
  results.reserve(cells_.size());
  for (std::size_t pos = 0; pos < cells_.size(); ++pos) {
    results.emplace_back(std::move(cells_[pos]), std::move(slots_[pos]));
  }
  return results;
}

}  // namespace hyco::dist
