// Chaos-injection harness for the distributed sweep engine: a TCP proxy
// that sits between workers and the coordinator and injures connections on
// a *seeded* schedule, so fault-tolerance tests are deterministic enough
// to run in CI.
//
// Each accepted client connection is paired with a fresh upstream
// connection to the real coordinator and assigned a byte budget drawn from
// Rng(seed) (uniform in [sever_min_bytes, sever_max_bytes]). The proxy
// forwards traffic both ways, charging every forwarded byte against the
// budget; when it runs out the proxy optionally stalls (to simulate a
// wedged link while the worker's lease ages), then severs both sides of
// the pair mid-stream. After `max_severs` injuries the proxy turns into a
// transparent forwarder, so a bounded test always drains.
//
// The schedule is deterministic in *bytes*, not wall-clock: the same seed
// against the same traffic severs at the same stream offsets, which is
// what makes "worker reconnects mid-chunk and output bytes don't change"
// a reproducible assertion rather than a flake. (Which side is mid-frame
// at the cut still depends on scheduling, but the recovery contract —
// abandon, redial, re-lease — is exercised either way.)
//
// Runs on one background thread (start()/stop()); all counters are safe to
// read from the test thread while the proxy is live. bench/chaos_proxy.cpp
// wraps this in a standalone binary for the nightly chaos CI job.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "dist/proto.h"
#include "util/rng.h"

namespace hyco::dist {

struct ChaosProxyOptions {
  /// Port to accept worker connections on; 0 = kernel-assigned.
  std::uint16_t listen_port = 0;
  /// The real coordinator.
  HostPort target;
  /// Seeds the per-connection budget draws.
  std::uint64_t seed = 1;
  /// Budget range (inclusive) for bytes forwarded before the sever.
  std::uint64_t sever_min_bytes = 64u << 10;
  std::uint64_t sever_max_bytes = 256u << 10;
  /// Pause between exhausting a budget and cutting the pair — simulates a
  /// wedged link (the coordinator sees silence, not a disconnect).
  std::chrono::milliseconds stall{0};
  /// Injuries to inject before becoming a transparent forwarder.
  std::uint64_t max_severs = UINT64_MAX;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions opts);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listener (port() is valid afterwards) and starts the
  /// forwarding thread. Throws ContractViolation when the port is taken.
  void start();
  /// Tears down every live pair and joins the thread. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return bound_port_; }
  /// Connections injured so far.
  [[nodiscard]] std::uint64_t severed() const {
    return severed_.load(std::memory_order_relaxed);
  }
  /// Connections accepted so far.
  [[nodiscard]] std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Pair {
    int client = -1;
    int upstream = -1;
    std::uint64_t budget = 0;
  };

  void loop();
  void close_pair(Pair& p);

  ChaosProxyOptions opts_;
  Rng rng_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<Pair> pairs_;  ///< owned by the proxy thread after start()
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> severed_{0};
  std::atomic<std::uint64_t> accepted_{0};
};

}  // namespace hyco::dist
