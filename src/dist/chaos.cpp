#include "dist/chaos.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "util/assert.h"

namespace hyco::dist {

namespace {

/// Forwards whatever is readable on `from` to `to`. Returns the bytes
/// moved, or -1 when the pair is finished (EOF or a socket error on
/// either side).
std::int64_t pump(int from, int to) {
  char buf[1 << 16];
  const ssize_t n = ::recv(from, buf, sizeof(buf), 0);
  if (n <= 0) return -1;
  std::size_t sent = 0;
  while (sent < static_cast<std::size_t>(n)) {
    const ssize_t m = ::send(to, buf + sent,
                             static_cast<std::size_t>(n) - sent, MSG_NOSIGNAL);
    if (m < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    sent += static_cast<std::size_t>(m);
  }
  return n;
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions opts)
    : opts_(opts), rng_(opts.seed) {
  HYCO_CHECK_MSG(opts_.sever_min_bytes <= opts_.sever_max_bytes,
                 "chaos proxy: sever byte range ["
                     << opts_.sever_min_bytes << ", " << opts_.sever_max_bytes
                     << "] is inverted");
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  HYCO_CHECK_MSG(listen_fd_ < 0, "chaos proxy already started");
  listen_fd_ = listen_on(opts_.listen_port, &bound_port_);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void ChaosProxy::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ChaosProxy::close_pair(Pair& p) {
  if (p.client >= 0) ::close(p.client);
  if (p.upstream >= 0) ::close(p.upstream);
  p.client = p.upstream = -1;
}

void ChaosProxy::loop() {
  std::vector<pollfd> pfds;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Pair& p : pairs_) {
      pfds.push_back({p.client, POLLIN, 0});
      pfds.push_back({p.upstream, POLLIN, 0});
    }
    if (::poll(pfds.data(), pfds.size(), 50) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        const int upstream = connect_once(opts_.target);
        if (upstream < 0) {
          // Coordinator unreachable (e.g. mid-restart in a crash test):
          // drop the client, who redials with backoff.
          ::close(client);
        } else {
          Pair p;
          p.client = client;
          p.upstream = upstream;
          p.budget = opts_.sever_min_bytes +
                     rng_.bounded(opts_.sever_max_bytes -
                                  opts_.sever_min_bytes + 1);
          pairs_.push_back(p);
          accepted_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    for (std::size_t i = pairs_.size(); i-- > 0;) {
      Pair& p = pairs_[i];
      const pollfd& cpf = pfds[1 + i * 2];
      const pollfd& upf = pfds[2 + i * 2];
      bool dead = false;
      std::int64_t moved = 0;
      if ((cpf.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const std::int64_t n = pump(p.client, p.upstream);
        if (n < 0) dead = true;
        moved += std::max<std::int64_t>(n, 0);
      }
      if (!dead && (upf.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const std::int64_t n = pump(p.upstream, p.client);
        if (n < 0) dead = true;
        moved += std::max<std::int64_t>(n, 0);
      }
      if (!dead &&
          severed_.load(std::memory_order_relaxed) < opts_.max_severs) {
        const auto m = static_cast<std::uint64_t>(moved);
        if (m >= p.budget) {
          // Budget exhausted: optionally play dead for a while, then cut
          // both sides mid-stream. The stall blocks the whole proxy
          // thread — deliberate, it starves *every* pair the way a
          // wedged link starves everything behind it.
          if (opts_.stall.count() > 0) {
            std::this_thread::sleep_for(opts_.stall);
          }
          severed_.fetch_add(1, std::memory_order_relaxed);
          dead = true;
        } else {
          p.budget -= m;
        }
      }
      if (dead) {
        close_pair(p);
        pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  for (Pair& p : pairs_) close_pair(p);
  pairs_.clear();
}

}  // namespace hyco::dist
