// Wire protocol of the distributed sweep engine (src/dist/).
//
// Transport: length-prefixed frames over TCP — a 4-byte big-endian payload
// length, a 1-byte message type, then the payload. Payloads are plain text
// (the same debuggable style as the checkpoint file); the heavyweight one,
// a chunk result, embeds the accumulator exactly as the checkpoint's
// write_accumulator_state() lines, so the wire encoding and the on-disk
// chunk-checkpoint encoding are one format.
//
// Session shape (worker side):
//   connect → Hello{version, grid fingerprint, cell count, capacities,
//                   reconnect count}
//   ← Welcome (or Reject{reason} + close)
//   loop: LeaseReq → ← Lease{cell, begin, end} | Wait{ms} | Done
//         execute the lease, → Result{cell, begin, end, accumulator}
// The coordinator never initiates messages except a final unsolicited Done
// broadcast when the grid completes; workers therefore poll the socket
// while honoring a Wait so the Done is seen promptly.
//
// Recovery is a *re-hello*, not a new frame kind: a session that loses its
// connection mid-sweep (worker sever, coordinator crash/restart) dials in
// again and sends a fresh Hello with `reconnect` bumped. The coordinator
// treats every connection as new — the dead session's leases were already
// re-queued on disconnect (or by lease-TTL expiry), so the worker abandons
// any un-folded local chunk and simply leases afresh; the reconnect count
// only feeds the health endpoint's recovery counters.
//
// Everything here is defensive against a misbehaving peer: decode functions
// return false instead of throwing, and frame lengths are capped. The only
// throwing entry points are the CLI-facing validators (parse_host_port) and
// the local socket constructors, which fail on *our* end of the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "exp/sink.h"

namespace hyco::dist {

inline constexpr std::uint32_t kProtocolVersion = 2;

/// Upper bound on a frame payload. A chunk result is bounded by the
/// accumulator state (reservoir entries × metrics), far below this; a
/// length field beyond it means a garbage/hostile peer, and the connection
/// is dropped instead of allocating.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,   ///< worker → coordinator: identity handshake
  kWelcome = 2, ///< coordinator → worker: handshake accepted
  kReject = 3,  ///< coordinator → worker: handshake refused (reason text)
  kLeaseReq = 4,///< worker → coordinator: give me a chunk
  kLease = 5,   ///< coordinator → worker: runs [begin, end) of one cell
  kWait = 6,    ///< coordinator → worker: nothing leasable now, retry in ms
  kDone = 7,    ///< coordinator → worker: grid complete, disconnect
  kResult = 8,  ///< worker → coordinator: executed chunk accumulator
};

struct Frame {
  MsgType type = MsgType::kHello;
  std::string payload;
};

/// Worker identity handshake. The grid itself never crosses the wire
/// (crash/delay axes hold closures): workers are launched with the same
/// grid flags as the coordinator, and the fingerprint — the same one the
/// checkpoint uses — proves both sides expanded the identical grid.
struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t fingerprint = 0;
  std::uint64_t cells = 0;
  std::uint64_t reservoir_capacity = 0;
  std::uint64_t failure_capacity = 0;
  /// 0 on a session's first connect; on a re-hello after a mid-sweep
  /// disconnect, how many times this session has reconnected so far.
  std::uint64_t reconnect = 0;
};

struct LeaseMsg {
  std::uint64_t cell_index = 0;  ///< spec-expansion index (shared identity)
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// One executed chunk coming home: identity plus the accumulator (runs,
/// terminated and violations counts ride the header line; the rest is the
/// shared accumulator-state encoding).
struct ResultMsg {
  std::uint64_t cell_index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  CellAccumulator acc;
};

[[nodiscard]] std::string encode_hello(const HelloMsg& m);
[[nodiscard]] bool decode_hello(const std::string& payload, HelloMsg& out);
[[nodiscard]] std::string encode_lease(const LeaseMsg& m);
[[nodiscard]] bool decode_lease(const std::string& payload, LeaseMsg& out);
[[nodiscard]] std::string encode_wait(std::uint32_t millis);
[[nodiscard]] bool decode_wait(const std::string& payload,
                               std::uint32_t& millis);
[[nodiscard]] std::string encode_reject(const std::string& reason);
[[nodiscard]] std::string encode_result(const ResultMsg& m);
[[nodiscard]] bool decode_result(const std::string& payload, ResultMsg& out);

/// Writes one frame, looping until every byte is on the wire. Returns false
/// on any socket error (the peer is gone; no errno inspection needed).
bool send_frame(int fd, MsgType type, const std::string& payload);

/// Blocking read of one complete frame. Returns false on EOF, socket error,
/// or an oversized/malformed length prefix.
bool recv_frame(int fd, Frame& out);

/// Incremental frame decoder for the coordinator's poll loop: feed() raw
/// bytes as they arrive, next() yields complete frames. Once error() turns
/// true (oversized frame) the connection must be dropped.
class FrameBuffer {
 public:
  void feed(const char* data, std::size_t len) { buf_.append(data, len); }
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] bool error() const { return error_; }

 private:
  std::string buf_;
  std::size_t consumed_ = 0;
  bool error_ = false;
};

/// A validated endpoint. parse_host_port accepts "HOST:PORT" with a
/// non-empty host and a port in [1, 65535]; it throws ContractViolation
/// with an actionable message otherwise — the CLI calls it on the main
/// thread before any socket or worker thread exists.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

[[nodiscard]] HostPort parse_host_port(const std::string& text);

/// Validates a CLI port number (throws ContractViolation outside
/// [1, 65535]). The coordinator additionally accepts 0 internally
/// (ephemeral, for tests) but the flag surface does not.
[[nodiscard]] std::uint16_t validate_port(long long value, const char* flag);

/// Binds and listens on `port` (0 = kernel-assigned); stores the bound port
/// in *bound_port when non-null. Returns the listening fd; throws
/// ContractViolation when the address is unavailable.
int listen_on(std::uint16_t port, std::uint16_t* bound_port = nullptr);

/// One blocking connect attempt. Returns the fd, or -1 (with no throw —
/// workers retry while the coordinator is still starting).
int connect_once(const HostPort& target);

}  // namespace hyco::dist
