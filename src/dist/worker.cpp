#include "dist/worker.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/runner.h"
#include "service/service_runner.h"
#include "util/rng.h"

namespace hyco::dist {

namespace {

struct SessionResult {
  std::uint64_t runs = 0;
  std::uint64_t chunks = 0;
  std::uint64_t reconnects = 0;  ///< successful mid-sweep re-handshakes
  bool done = false;
  /// Never reached the coordinator at all. Benign when a sibling session
  /// saw the grid complete (a fast grid can drain and tear down before
  /// every session connects); fatal when nobody did.
  bool connect_failed = false;
  std::string error;
};

/// One last look for the coordinator's final Done after a socket hiccup
/// mid-protocol (bounded by a 2 s receive timeout): the grid finishing
/// concurrently with our send is success, not failure, and the Done may
/// already sit in our receive buffer.
bool drain_for_done(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  Frame f;
  while (recv_frame(fd, f)) {
    if (f.type == MsgType::kDone) return true;
  }
  return false;
}

int connect_with_retry(const HostPort& target,
                       std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int fd = connect_once(target);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

/// How one connection epoch ended.
enum class EpochEnd {
  kDone,   ///< grid complete — the session is finished
  kLost,   ///< connection severed mid-protocol — redial and re-hello
  kFatal,  ///< rejection or protocol violation — retrying cannot help
};

struct Epoch {
  EpochEnd end = EpochEnd::kLost;
  bool welcomed = false;  ///< the handshake completed this epoch
  std::string error;
};

/// One connection epoch: handshake, then the lease/execute/result loop,
/// on an already-connected socket (takes ownership of `fd`, always closes
/// it). Executed work accumulates into `out` across epochs; `reconnect`
/// is the re-hello count this epoch's Hello carries.
Epoch run_epoch(int fd, const std::vector<ExperimentCell>& cells,
                std::uint64_t fingerprint, const WorkerOptions& opts,
                std::uint64_t reconnect, SessionResult& out) {
  Epoch ep;
  const auto finish = [&](EpochEnd end, const std::string& why) {
    ep.end = end;
    ep.error = why;
    ::close(fd);
    return ep;
  };

  HelloMsg hello;
  hello.fingerprint = fingerprint;
  hello.cells = cells.size();
  hello.reservoir_capacity = opts.reservoir_capacity;
  hello.failure_capacity = opts.failure_capacity;
  hello.reconnect = reconnect;
  if (!send_frame(fd, MsgType::kHello, encode_hello(hello))) {
    return finish(EpochEnd::kLost, "connection lost during handshake");
  }
  Frame frame;
  if (!recv_frame(fd, frame)) {
    return finish(EpochEnd::kLost, "connection lost during handshake");
  }
  if (frame.type == MsgType::kReject) {
    return finish(EpochEnd::kFatal,
                  "coordinator rejected us: " + frame.payload);
  }
  if (frame.type == MsgType::kDone) {
    // The grid drained before our Hello was processed — the coordinator
    // broadcasts its final Done to every connection. Nothing to do.
    return finish(EpochEnd::kDone, "");
  }
  if (frame.type != MsgType::kWelcome) {
    return finish(EpochEnd::kFatal, "unexpected handshake reply");
  }
  ep.welcomed = true;

  for (;;) {
    if (!send_frame(fd, MsgType::kLeaseReq, "")) {
      if (drain_for_done(fd)) return finish(EpochEnd::kDone, "");
      return finish(EpochEnd::kLost, "connection lost requesting a lease");
    }
  receive:
    if (!recv_frame(fd, frame)) {
      return finish(EpochEnd::kLost, "connection lost awaiting a lease");
    }
    switch (frame.type) {
      case MsgType::kDone:
        return finish(EpochEnd::kDone, "");
      case MsgType::kWait: {
        std::uint32_t ms = 0;
        if (!decode_wait(frame.payload, ms)) {
          return finish(EpochEnd::kFatal, "malformed wait frame");
        }
        // Park on the socket instead of sleeping blind: the coordinator's
        // final unsolicited Done must interrupt the wait.
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, static_cast<int>(ms));
        if (rc > 0) goto receive;  // Done (or any reply) arrived
        continue;                  // timeout — ask again
      }
      case MsgType::kLease: {
        LeaseMsg lease;
        if (!decode_lease(frame.payload, lease)) {
          return finish(EpochEnd::kFatal, "malformed lease frame");
        }
        if (lease.cell_index >= cells.size()) {
          return finish(EpochEnd::kFatal,
                        "lease names a cell outside the grid");
        }
        const ExperimentCell& cell =
            cells[static_cast<std::size_t>(lease.cell_index)];
        if (lease.end > cell.runs) {
          return finish(EpochEnd::kFatal,
                        "lease range exceeds the cell's run count");
        }
        ResultMsg result;
        result.cell_index = lease.cell_index;
        result.begin = lease.begin;
        result.end = lease.end;
        result.acc = CellAccumulator(opts.reservoir_capacity,
                                     opts.failure_capacity);
        for (std::uint64_t k = lease.begin; k < lease.end; ++k) {
          if (cell.service.enabled) {
            const ServiceRunConfig cfg = cell.service_run_config(k);
            result.acc.add(
                extract_service_record(k, cfg.seed, run_service(cfg)));
          } else {
            const RunConfig cfg = cell.run_config(k);
            result.acc.add(extract_record(k, cfg.seed, run_consensus(cfg)));
          }
        }
        if (!send_frame(fd, MsgType::kResult, encode_result(result))) {
          // The grid may have completed without this chunk (an expired
          // lease re-executed elsewhere): a Done sitting in our receive
          // buffer means flawless participation, not failure.
          if (drain_for_done(fd)) {
            out.runs += lease.end - lease.begin;
            out.chunks += 1;
            return finish(EpochEnd::kDone, "");
          }
          // The chunk is abandoned, not counted: the coordinator never
          // folded it, and after the redial someone re-executes it.
          return finish(EpochEnd::kLost, "connection lost shipping a result");
        }
        out.runs += lease.end - lease.begin;
        out.chunks += 1;
        continue;
      }
      default:
        return finish(EpochEnd::kFatal, "unexpected frame from coordinator");
    }
  }
}

SessionResult run_session(const std::vector<ExperimentCell>& cells,
                          std::uint64_t fingerprint,
                          const WorkerOptions& opts, unsigned session_id) {
  SessionResult out;
  int fd = connect_with_retry(opts.target, opts.connect_timeout);
  if (fd < 0) {
    std::ostringstream os;
    os << "cannot connect to " << opts.target.host << ':' << opts.target.port
       << " within " << opts.connect_timeout.count() << " ms";
    out.error = os.str();
    out.connect_failed = true;
    return out;
  }

  // Backoff jitter stream: per-process *and* per-session so sessions (and
  // sibling worker processes) severed by the same fault don't redial in
  // lockstep. Jitter never touches run seeds, so output bytes are immune.
  Rng jitter = Rng(mix64(static_cast<std::uint64_t>(::getpid()),
                         0x7E11A5ECULL))
                   .fork(session_id);
  bool ever_welcomed = false;
  unsigned failures = 0;  // consecutive recovery attempts without a Welcome
  for (;;) {
    const Epoch ep =
        run_epoch(fd, cells, fingerprint, opts, out.reconnects, out);
    ever_welcomed = ever_welcomed || ep.welcomed;
    if (ep.welcomed) failures = 0;
    if (ep.end == EpochEnd::kDone) {
      out.done = true;
      return out;
    }
    if (ep.end == EpochEnd::kFatal) {
      out.error = ep.error;
      return out;
    }
    // kLost: redial with jittered exponential backoff within the budget.
    fd = -1;
    while (fd < 0) {
      if (failures >= opts.reconnect_attempts) {
        out.error = ep.error.empty() ? "connection lost" : ep.error;
        out.connect_failed = !ever_welcomed;
        return out;
      }
      ++failures;
      const unsigned shift = std::min(failures - 1, 10u);
      const auto base = std::min<std::int64_t>(
          opts.reconnect_cap.count(), opts.reconnect_base.count() << shift);
      const auto delay = static_cast<std::int64_t>(
          static_cast<double>(std::max<std::int64_t>(base, 1)) *
          (0.5 + jitter.next_double()));
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      fd = connect_once(opts.target);
    }
    ++out.reconnects;
  }
}

}  // namespace

WorkerReport run_worker(const std::vector<ExperimentCell>& cells,
                        std::uint64_t fingerprint,
                        const WorkerOptions& opts) {
  const unsigned sessions = opts.sessions == 0 ? 1 : opts.sessions;
  std::vector<SessionResult> results(sessions);
  if (sessions == 1) {
    results[0] = run_session(cells, fingerprint, opts, 0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (unsigned s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        results[s] = run_session(cells, fingerprint, opts, s);
      });
    }
    for (auto& t : threads) t.join();
  }

  WorkerReport report;
  bool any_done = false;
  bool hard_error = false;
  for (const SessionResult& r : results) {
    report.runs_executed += r.runs;
    report.chunks_executed += r.chunks;
    report.reconnects += r.reconnects;
    any_done = any_done || r.done;
    hard_error = hard_error || (!r.done && !r.connect_failed);
  }
  // A session that merely failed to connect is benign when a sibling saw
  // the grid complete — on a fast grid the coordinator can finish and
  // tear down before every session joins. With no sibling success it is
  // indistinguishable from a wrong address and stays fatal.
  report.completed = any_done && !hard_error;
  if (!report.completed) {
    for (const SessionResult& r : results) {
      if (!r.error.empty()) {
        report.error = r.error;
        break;
      }
    }
  }
  return report;
}

}  // namespace hyco::dist
