#include "scenario/scenario.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/assert.h"

namespace hyco {

namespace {

/// Splits on a single-character separator; empty pieces are preserved so
/// callers can reject them with a named error.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    parts.push_back(
        s.substr(start, pos == std::string::npos ? std::string::npos
                                                 : pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

/// "A..B" -> (A, B); B may be "never" when allow_never.
std::pair<SimTime, SimTime> parse_window(const std::string& text,
                                         const char* what) {
  const std::size_t dots = text.find("..");
  HYCO_CHECK_MSG(dots != std::string::npos,
                 what << ": missing \"..\" in time window \"" << text << '"');
  const std::string lo = text.substr(0, dots);
  const std::string hi = text.substr(dots + 2);
  const SimTime start = parse_sim_time(lo);
  const SimTime end = hi == "never" ? kSimTimeNever : parse_sim_time(hi);
  HYCO_CHECK_MSG(end == kSimTimeNever || end > start,
                 what << ": window \"" << text << "\" must end after it"
                         " starts (or end with \"never\")");
  return {start, end};
}

std::vector<std::int32_t> parse_ids(const std::string& text,
                                    const char* what) {
  std::vector<std::int32_t> ids;
  for (const std::string& piece : split(text, '-')) {
    char* end = nullptr;
    const long v = std::strtol(piece.c_str(), &end, 10);
    HYCO_CHECK_MSG(!piece.empty() && end != piece.c_str() && *end == '\0' &&
                       v >= 0,
                   what << ": \"" << piece << "\" is not a non-negative id"
                        << " in \"" << text << '"');
    ids.push_back(static_cast<std::int32_t>(v));
  }
  return ids;
}

std::string window_to_string(SimTime start, SimTime heal) {
  std::ostringstream os;
  os << start << "..";
  if (heal == kSimTimeNever) {
    os << "never";
  } else {
    os << heal;
  }
  return os.str();
}

}  // namespace

SimTime parse_sim_time(const std::string& text) {
  HYCO_CHECK_MSG(!text.empty(), "duration: empty string");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  HYCO_CHECK_MSG(end != text.c_str(),
                 "duration: \"" << text << "\" does not start with a number");
  HYCO_CHECK_MSG(v >= 0, "duration: \"" << text << "\" is negative");
  const std::string unit(end);
  double scale = 1.0;
  if (unit.empty() || unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    HYCO_CHECK_MSG(false, "duration: unknown unit \"" << unit << "\" in \""
                          << text << "\" (want ns | us | ms | s)");
  }
  const double ns = v * scale;
  // Casting an out-of-range double to SimTime is UB; reject first.
  HYCO_CHECK_MSG(std::isfinite(ns) &&
                     ns < static_cast<double>(
                              std::numeric_limits<SimTime>::max()),
                 "duration: \"" << text << "\" overflows the virtual clock");
  return static_cast<SimTime>(ns);
}

PartitionSpec parse_partition_spec(const std::string& text) {
  // Split off the optional "@START..HEAL" window first; what precedes it is
  // "KIND:IDS" optionally followed by ":flap=DUR:period=DUR" segments.
  const std::size_t at = text.find('@');
  const std::string head =
      at == std::string::npos ? text : text.substr(0, at);
  const std::vector<std::string> segs = split(head, ':');
  HYCO_CHECK_MSG(segs.size() >= 2,
                 "--partition: missing \":\" in \"" << text
                 << "\" (want KIND:IDS[:flap=..:period=..][@START..HEAL])");
  const std::string& kind = segs[0];

  PartitionSpec spec;
  if (kind == "cluster" || kind == "clusters") {
    spec.kind = PartitionSpec::Kind::Clusters;
  } else if (kind == "procs" || kind == "proc") {
    spec.kind = PartitionSpec::Kind::Procs;
  } else if (kind == "split") {
    spec.kind = PartitionSpec::Kind::SplitCluster;
  } else {
    HYCO_CHECK_MSG(false, "--partition: unknown kind \"" << kind
                          << "\" (want cluster | procs | split)");
  }
  spec.ids = parse_ids(segs[1], "--partition");
  HYCO_CHECK_MSG(!spec.ids.empty(), "--partition: no ids in \"" << text << '"');
  HYCO_CHECK_MSG(spec.kind != PartitionSpec::Kind::SplitCluster ||
                     spec.ids.size() == 1,
                 "--partition: split takes exactly one cluster id, got \""
                     << text << '"');

  for (std::size_t i = 2; i < segs.size(); ++i) {
    const std::size_t eq = segs[i].find('=');
    HYCO_CHECK_MSG(eq != std::string::npos,
                   "--partition: expected key=value segment, got \""
                       << segs[i] << "\" in \"" << text << '"');
    const std::string key = segs[i].substr(0, eq);
    const std::string val = segs[i].substr(eq + 1);
    if (key == "flap") {
      spec.flap = parse_sim_time(val);
      HYCO_CHECK_MSG(spec.flap > 0, "--partition: flap duration must be > 0"
                                    " in \"" << text << '"');
    } else if (key == "period") {
      spec.period = parse_sim_time(val);
    } else {
      HYCO_CHECK_MSG(false, "--partition: unknown key \""
                                << key << "\" in \"" << text
                                << "\" (want flap | period)");
    }
  }
  HYCO_CHECK_MSG((spec.flap > 0) == (spec.period > 0),
                 "--partition: flap and period must be given together in \""
                     << text << '"');
  HYCO_CHECK_MSG(spec.flap == 0 || spec.period > spec.flap,
                 "--partition: period must exceed flap (the cut must heal"
                 " within each cycle) in \"" << text << '"');

  if (at == std::string::npos) {
    HYCO_CHECK_MSG(spec.flapping(),
                   "--partition: missing \"@START..HEAL\" window in \""
                       << text << "\" (only flapping cuts may omit it)");
    spec.start = 0;
    spec.heal = kSimTimeNever;
  } else {
    const auto [start, heal] =
        parse_window(text.substr(at + 1), "--partition");
    spec.start = start;
    spec.heal = heal;
  }
  return spec;
}

RecoverySpec parse_recovery_spec(const std::string& text) {
  const std::size_t at = text.find('@');
  HYCO_CHECK_MSG(at != std::string::npos,
                 "--recover: missing \"@\" in \"" << text
                 << "\" (want PID@DOWN..UP or cluster:X@DOWN..UP)");
  RecoverySpec spec;
  std::string target = text.substr(0, at);
  const std::size_t colon = target.find(':');
  if (colon != std::string::npos) {
    const std::string kind = target.substr(0, colon);
    HYCO_CHECK_MSG(kind == "cluster", "--recover: unknown target kind \""
                                          << kind << "\" (want cluster)");
    spec.whole_cluster = true;
    target = target.substr(colon + 1);
  }
  const auto ids = parse_ids(target, "--recover");
  HYCO_CHECK_MSG(ids.size() == 1,
                 "--recover: exactly one target id expected in \"" << text
                                                                   << '"');
  spec.id = ids[0];
  const auto [down, up] = parse_window(text.substr(at + 1), "--recover");
  spec.down_at = down;
  spec.up_at = up;
  return spec;
}

SkewSpec parse_skew_spec(const std::string& text) {
  const std::vector<std::string> segs = split(text, ':');
  HYCO_CHECK_MSG(segs.size() == 3,
                 "--skew: want proc:ID:xFACTOR or cluster:ID:xFACTOR, got \""
                     << text << '"');
  SkewSpec spec;
  if (segs[0] == "proc" || segs[0] == "procs") {
    spec.whole_cluster = false;
  } else if (segs[0] == "cluster") {
    spec.whole_cluster = true;
  } else {
    HYCO_CHECK_MSG(false, "--skew: unknown target kind \"" << segs[0]
                          << "\" in \"" << text
                          << "\" (want proc | cluster)");
  }
  const auto ids = parse_ids(segs[1], "--skew");
  HYCO_CHECK_MSG(ids.size() == 1,
                 "--skew: exactly one target id expected in \"" << text
                                                                << '"');
  spec.id = ids[0];
  HYCO_CHECK_MSG(!segs[2].empty() && segs[2][0] == 'x',
                 "--skew: factor must start with \"x\" (e.g. x4) in \""
                     << text << '"');
  const std::string num = segs[2].substr(1);
  char* end = nullptr;
  spec.factor = std::strtod(num.c_str(), &end);
  HYCO_CHECK_MSG(!num.empty() && end != num.c_str() && *end == '\0',
                 "--skew: \"" << num << "\" is not a number in \"" << text
                              << '"');
  HYCO_CHECK_MSG(std::isfinite(spec.factor) && spec.factor > 0.0 &&
                     spec.factor <= 1024.0,
                 "--skew: factor must be in (0, 1024], got \"" << text
                                                               << '"');
  return spec;
}

std::string PartitionSpec::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::Clusters: os << "cluster:"; break;
    case Kind::Procs: os << "procs:"; break;
    case Kind::SplitCluster: os << "split:"; break;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    os << (i > 0 ? "-" : "") << ids[i];
  }
  if (flapping()) os << ":flap=" << flap << ":period=" << period;
  os << '@' << window_to_string(start, heal);
  return os.str();
}

std::string RecoverySpec::to_string() const {
  std::ostringstream os;
  if (whole_cluster) os << "cluster:";
  os << id << '@' << window_to_string(down_at, up_at);
  return os.str();
}

std::string SkewSpec::to_string() const {
  std::ostringstream os;
  os << (whole_cluster ? "cluster:" : "proc:") << id << ":x" << factor;
  return os.str();
}

std::string CoinAttackConfig::to_string() const {
  std::ostringstream os;
  os << bit << '+' << boost;
  return os.str();
}

std::string ScenarioConfig::label() const {
  if (empty()) return "none";
  std::ostringstream os;
  const char* sep = "";
  if (link.loss > 0.0) {
    os << sep << "loss=" << link.loss;
    sep = ",";
  }
  if (link.dup > 0.0) {
    os << sep << "dup=" << link.dup;
    sep = ",";
  }
  if (link.reorder_max > 0) {
    os << sep << "reorder=" << link.reorder_max;
    sep = ",";
  }
  for (const PartitionSpec& p : partitions) {
    os << sep << "part=" << p.to_string();
    sep = ",";
  }
  for (const RecoverySpec& r : recoveries) {
    os << sep << "rec=" << r.to_string();
    sep = ",";
  }
  if (coin_attack.enabled) {
    os << sep << "coin-attack=" << coin_attack.to_string();
    sep = ",";
  }
  for (const SkewSpec& s : skews) {
    os << sep << "skew=" << s.to_string();
    sep = ",";
  }
  return os.str();
}

}  // namespace hyco
