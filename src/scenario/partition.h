// PartitionSchedule — resolved, queryable network cuts.
//
// Resolves declarative PartitionSpecs against a concrete ClusterLayout into
// bitset cuts and answers the one question the network asks: starting from
// `now`, when may a message from `from` to `to` cross? A cut with a finite
// heal time holds crossing messages until it heals (asynchrony, not loss);
// a cut that never heals blocks them forever (the network drops and counts
// them). A *flapping* cut (spec.flap > 0) is a square wave: closed for
// `flap` at the top of every `period` from `start` until `heal`; each pulse
// heals, so messages are held to the pulse's trailing edge, never dropped.
// Overlapping cuts cascade: a message released by one cut can be captured
// by a later one (or a later pulse).
#pragma once

#include <vector>

#include "core/cluster_layout.h"
#include "core/types.h"
#include "scenario/scenario.h"
#include "util/bitset.h"

namespace hyco {

class PartitionSchedule {
 public:
  /// Throws ContractViolation when a spec names an out-of-range cluster or
  /// process id for this layout.
  PartitionSchedule(const std::vector<PartitionSpec>& specs,
                    const ClusterLayout& layout);

  /// Earliest virtual time >= now at which a from->to message may be in
  /// transit; kSimTimeNever when a permanent cut separates them at (or
  /// after) now.
  [[nodiscard]] SimTime release_time(ProcId from, ProcId to,
                                     SimTime now) const;

  [[nodiscard]] bool empty() const { return cuts_.empty(); }

 private:
  struct Cut {
    DynamicBitset side_a;
    SimTime start = 0;
    SimTime heal = kSimTimeNever;
    SimTime flap = 0;  ///< > 0: square-wave pulse width within `period`
    SimTime period = 0;

    [[nodiscard]] bool crosses(ProcId from, ProcId to) const {
      return side_a.test(static_cast<std::size_t>(from)) !=
             side_a.test(static_cast<std::size_t>(to));
    }
  };

  std::vector<Cut> cuts_;
};

}  // namespace hyco
