#include "scenario/partition.h"

#include "util/assert.h"

namespace hyco {

PartitionSchedule::PartitionSchedule(const std::vector<PartitionSpec>& specs,
                                     const ClusterLayout& layout) {
  cuts_.reserve(specs.size());
  for (const PartitionSpec& spec : specs) {
    Cut cut;
    cut.side_a = DynamicBitset(static_cast<std::size_t>(layout.n()));
    cut.start = spec.start;
    cut.heal = spec.heal;
    cut.flap = spec.flap;
    cut.period = spec.period;
    HYCO_CHECK_MSG((spec.flap > 0) == (spec.period > 0),
                   "partition " << spec.to_string()
                                << ": flap and period must be set together");
    HYCO_CHECK_MSG(spec.flap == 0 || spec.period > spec.flap,
                   "partition " << spec.to_string()
                                << ": period must exceed flap");
    switch (spec.kind) {
      case PartitionSpec::Kind::Clusters:
        for (const std::int32_t x : spec.ids) {
          HYCO_CHECK_MSG(x >= 0 && x < layout.m(),
                         "partition " << spec.to_string() << ": cluster " << x
                                      << " out of range (m=" << layout.m()
                                      << ')');
          for (const ProcId p : layout.members(static_cast<ClusterId>(x))) {
            cut.side_a.set(static_cast<std::size_t>(p));
          }
        }
        break;
      case PartitionSpec::Kind::Procs:
        for (const std::int32_t p : spec.ids) {
          HYCO_CHECK_MSG(p >= 0 && p < layout.n(),
                         "partition " << spec.to_string() << ": process " << p
                                      << " out of range (n=" << layout.n()
                                      << ')');
          cut.side_a.set(static_cast<std::size_t>(p));
        }
        break;
      case PartitionSpec::Kind::SplitCluster: {
        HYCO_CHECK_MSG(spec.ids.size() == 1,
                       "split partition takes exactly one cluster id");
        const std::int32_t x = spec.ids[0];
        HYCO_CHECK_MSG(x >= 0 && x < layout.m(),
                       "partition " << spec.to_string() << ": cluster " << x
                                    << " out of range (m=" << layout.m()
                                    << ')');
        const auto& members = layout.members(static_cast<ClusterId>(x));
        const std::size_t half = (members.size() + 1) / 2;
        for (std::size_t i = 0; i < half; ++i) {
          cut.side_a.set(static_cast<std::size_t>(members[i]));
        }
        break;
      }
    }
    cuts_.push_back(std::move(cut));
  }
}

SimTime PartitionSchedule::release_time(ProcId from, ProcId to,
                                        SimTime now) const {
  SimTime release = now;
  // Fixed point: a message released by one healing cut (or pulse) may
  // immediately be captured by another whose window contains the new
  // release time. One-shot cuts advance `release` at most once each, but
  // interleaved flapping cuts can hand a message back and forth across
  // many pulses, and pathological schedules (pulses whose union covers all
  // time) never open a joint gap — bound the hops and treat overflow as a
  // permanent cut. The bound keeps the query deterministic and total.
  constexpr int kMaxHops = 1024;
  int hops = 0;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Cut& cut : cuts_) {
      if (!cut.crosses(from, to)) continue;
      if (release < cut.start) continue;
      if (cut.flap > 0) {
        // Square wave: cut during [start + k*period, start + k*period + flap).
        if (cut.heal != kSimTimeNever && release >= cut.heal) continue;
        const SimTime phase = (release - cut.start) % cut.period;
        if (phase >= cut.flap) continue;  // inside the healed gap
        SimTime edge = release - phase + cut.flap;
        // A pulse truncated by the end of the schedule heals there instead.
        if (cut.heal != kSimTimeNever && edge > cut.heal) edge = cut.heal;
        release = edge;
        moved = true;
        if (++hops >= kMaxHops) return kSimTimeNever;
        continue;
      }
      if (cut.heal == kSimTimeNever) return kSimTimeNever;
      if (release < cut.heal) {
        release = cut.heal;
        moved = true;
        if (++hops >= kMaxHops) return kSimTimeNever;
      }
    }
  }
  return release;
}

}  // namespace hyco
