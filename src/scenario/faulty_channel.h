// FaultyChannel — a DelayModel decorator that makes any delay model lossy.
//
// Wraps an inner model and adds, per message:
//  * bounded reordering: an extra uniform delay in [0, reorder_max], so a
//    later message can overtake an earlier one by at most reorder_max;
//  * the adversarial coin-attack boost for coin-carrying messages (PHASE,
//    round >= 2, phase 1 — the messages championing the previous round's
//    coin-derived estimates) whose estimate matches the targeted bit;
//  * a copy count per send (copies()): 0 = lost, 2 = duplicated. The
//    network draws the copy count once per send and then draws one delay
//    per surviving copy, all from the run's seeded Rng.
#pragma once

#include <vector>

#include "net/delay_model.h"
#include "scenario/scenario.h"

namespace hyco {

class FaultyChannel final : public DelayModel {
 public:
  /// `inner` must outlive the channel. Throws ContractViolation when loss
  /// or dup are outside [0, 1] or reorder_max/boost are negative.
  FaultyChannel(DelayModel& inner, const LinkFaultConfig& link,
                const CoinAttackConfig& coin_attack);

  /// Inner delay + reorder jitter + coin-attack boost, the sum scaled by
  /// the receiver's step-speed factor when clock skew is installed.
  SimTime delay(ProcId from, ProcId to, const Message& m, SimTime now,
                Rng& rng) override;

  /// Installs per-process step-speed multipliers (clock skew): the total
  /// transit of every message to process p is scaled by (*factors)[p] — a
  /// slow process finishes handling each delivery that much later. The
  /// vector must outlive the channel and hold one entry per process;
  /// nullptr (the default) disables skew.
  void set_speed_factors(const std::vector<double>* factors) {
    speed_ = factors;
  }

  /// Delivery copies for one send: 0 (lost), 1, or 2 (duplicated). Loss
  /// wins over duplication when both fire.
  [[nodiscard]] int copies(const Message& m, Rng& rng) const;

  /// True iff the coin attack targets m (see file comment).
  [[nodiscard]] bool is_targeted_coin_carrier(const Message& m) const;

 private:
  DelayModel& inner_;
  LinkFaultConfig link_;
  CoinAttackConfig coin_attack_;
  const std::vector<double>* speed_ = nullptr;  ///< per-proc skew factors
};

}  // namespace hyco
