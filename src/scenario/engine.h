// ScenarioEngine — one run's live fault-injection machinery.
//
// Built by run_consensus() from RunConfig::scenario: takes ownership of the
// run's base DelayModel, wraps it in a FaultyChannel (loss, duplication,
// bounded reordering, the coin attack), resolves the partition schedule and
// crash-recovery plan against the run's layout, and hands SimNetwork the
// two queries it needs on the send path (release_time, draw_copies). The
// engine is plain per-run state: every draw comes from the run's seeded
// Rng, so scenario runs keep the executor's thread-count-independence.
#pragma once

#include <memory>
#include <vector>

#include "core/cluster_layout.h"
#include "core/types.h"
#include "net/delay_model.h"
#include "scenario/faulty_channel.h"
#include "scenario/partition.h"
#include "scenario/scenario.h"

namespace hyco {

class ScenarioEngine {
 public:
  /// One resolved crash-recovery instruction (cluster specs are expanded to
  /// their members).
  struct Rejoin {
    ProcId proc = 0;
    SimTime down_at = 0;
    SimTime up_at = kSimTimeNever;  ///< kSimTimeNever = stays down
  };

  /// Takes ownership of the run's base delay model. Throws
  /// ContractViolation when the config names ids out of range for `layout`.
  ScenarioEngine(const ScenarioConfig& cfg, const ClusterLayout& layout,
                 std::unique_ptr<DelayModel> base_delays);

  // Not movable either: channel_ holds a pointer into speed_ (a
  // self-reference a move would dangle).
  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;
  ScenarioEngine(ScenarioEngine&&) = delete;
  ScenarioEngine& operator=(ScenarioEngine&&) = delete;

  /// The faulty channel the network should draw delays from.
  [[nodiscard]] DelayModel& channel() { return channel_; }

  /// Partition query — see PartitionSchedule::release_time.
  [[nodiscard]] SimTime release_time(ProcId from, ProcId to,
                                     SimTime now) const {
    return partitions_.release_time(from, to, now);
  }

  /// Loss/duplication draw for one send: 0 (lost), 1, or 2 copies.
  [[nodiscard]] int draw_copies(const Message& m, Rng& rng) const {
    return channel_.copies(m, rng);
  }

  [[nodiscard]] const std::vector<Rejoin>& rejoins() const {
    return rejoins_;
  }

  /// Step-speed multiplier of process p (clock skew; 1.0 = nominal). The
  /// runner scales p's propose() start time by this; the channel scales the
  /// latency of every delivery to p (see SkewSpec).
  [[nodiscard]] double speed_factor(ProcId p) const {
    return speed_.empty() ? 1.0 : speed_[static_cast<std::size_t>(p)];
  }

 private:
  std::unique_ptr<DelayModel> base_;
  std::vector<double> speed_;  ///< per-proc skew; empty = no skew anywhere
  FaultyChannel channel_;
  PartitionSchedule partitions_;
  std::vector<Rejoin> rejoins_;
};

/// Resolves skew specs against a layout (cluster specs expand to their
/// members; the last spec naming a process wins) into a per-process factor
/// vector — or an empty vector when no spec is given. Throws
/// ContractViolation on out-of-range ids or non-positive factors.
std::vector<double> resolve_skews(const std::vector<SkewSpec>& specs,
                                  const ClusterLayout& layout);

/// Resolves recovery specs against a layout (cluster specs expand to their
/// members) and validates them: ids in range, and windows for the same
/// process disjoint in spec order. Throws ContractViolation otherwise.
std::vector<ScenarioEngine::Rejoin> resolve_recoveries(
    const std::vector<RecoverySpec>& specs, const ClusterLayout& layout);

/// Validates a full scenario against a layout without running anything —
/// the same checks the per-run engine performs, surfaced early so CLIs can
/// reject bad flags on the main thread (a ContractViolation thrown inside
/// a ParallelExecutor worker would terminate the process instead).
void validate_scenario(const ScenarioConfig& cfg, const ClusterLayout& layout);

}  // namespace hyco
