// Adversarial scenario configuration — the declarative vocabulary for the
// fault-injection layer (src/scenario/) that sits between the runners and
// SimNetwork/CrashTracker.
//
// The paper's model assumes asynchronous-but-reliable channels and
// crash-stop failures. A ScenarioConfig deliberately steps outside that
// model so experiments can probe which guarantees survive:
//  * partitions  — scheduled network cuts (whole clusters, arbitrary proc
//    sets, or one cluster split in half). A cut with a finite heal time
//    HOLDS crossing messages until it heals (the channel stays reliable,
//    transit is just adversarially long — still inside the paper's
//    asynchrony); a cut that never heals DROPS them.
//  * link faults — per-link message loss, duplication, and bounded
//    reordering (FaultyChannel), which break the reliable-channel
//    assumption: termination may fail, safety must not.
//  * recoveries  — crash-recovery: a process halts and later rejoins with
//    its in-memory/SHM state intact but every message delivered during the
//    down window lost (the cluster-redundancy story: its cluster peers
//    carried the weight meanwhile).
//  * coin attack — an adversarial scheduler hook that slows the messages
//    carrying coin-derived estimates (round >= 2, phase 1) for one side,
//    the classic attack randomized consensus must survive.
//
// Everything here is plain copyable data; ScenarioEngine (engine.h) turns a
// config into live machinery for one run. All fault draws come from the
// run's seeded Rng, so scenario runs stay byte-identical at any --threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace hyco {

/// One scheduled network cut. Declarative: ids are resolved against the
/// run's ClusterLayout when the engine is built, so one spec can ride an
/// experiment grid whose (n, m) vary.
struct PartitionSpec {
  enum class Kind : std::uint8_t {
    Clusters,      ///< side A = union of the listed clusters
    Procs,         ///< side A = the listed processes (arbitrary cut)
    SplitCluster,  ///< side A = first half of one cluster's members
                   ///< (intra-cluster cut: SHM keeps working across it)
  };

  Kind kind = Kind::Clusters;
  std::vector<std::int32_t> ids;  ///< cluster ids / proc ids / {cluster id}
  SimTime start = 0;
  SimTime heal = kSimTimeNever;  ///< kSimTimeNever = permanent (drops).
                                 ///< For flapping cuts: end of the whole
                                 ///< schedule (never = flap forever).

  /// Flapping (square-wave) cut: starting at `start`, the cut is closed for
  /// `flap` then open for `period - flap`, repeating every `period` until
  /// `heal`. Each pulse heals, so crossing messages are held (asynchrony),
  /// never dropped — the ROADMAP livelock probe. flap = 0 disables
  /// (one-shot cut, the default); otherwise period > flap is required.
  SimTime flap = 0;
  SimTime period = 0;

  [[nodiscard]] bool flapping() const { return flap > 0; }

  [[nodiscard]] std::string to_string() const;
};

/// Per-link channel faults, applied to every message independently.
struct LinkFaultConfig {
  double loss = 0.0;        ///< P(message silently lost)
  double dup = 0.0;         ///< P(message delivered twice)
  SimTime reorder_max = 0;  ///< extra uniform delay in [0, reorder_max]
                            ///< per copy — bounded reordering

  [[nodiscard]] bool any() const {
    return loss > 0.0 || dup > 0.0 || reorder_max > 0;
  }
};

/// One crash-recovery instruction: the target halts at `down_at` and — if
/// `up_at` is finite — rejoins at `up_at` with its state intact.
struct RecoverySpec {
  bool whole_cluster = false;  ///< id is a ClusterId (every member cycles)
  std::int32_t id = 0;         ///< ProcId or ClusterId
  SimTime down_at = 0;
  SimTime up_at = kSimTimeNever;  ///< kSimTimeNever = stays down

  [[nodiscard]] std::string to_string() const;
};

/// One step-speed multiplier: clock skew / slow processes. The paper's
/// asynchrony lets every process run at its own speed; a skew of x4 makes
/// the target's processing steps take 4x longer, modeled as scaling the
/// delivery latency of every message *to* it (its handling of each event
/// completes that much later) and its propose() start time. Factors below
/// 1 model fast processes. Safety must be unaffected; termination must
/// survive any finite skew (a liveness probe rides the test suite).
struct SkewSpec {
  bool whole_cluster = false;  ///< id is a ClusterId (every member slows)
  std::int32_t id = 0;         ///< ProcId or ClusterId
  double factor = 1.0;         ///< step-speed multiplier, > 0

  [[nodiscard]] std::string to_string() const;
};

/// Adversarial scheduler hook targeting coin-carrying messages: PHASE
/// messages of rounds >= 2 in phase 1 carry the previous round's
/// coin-derived estimates; the attack delays the ones championing `bit` by
/// `boost`, trying to starve one side of the coin outcome.
struct CoinAttackConfig {
  bool enabled = false;
  int bit = 0;        ///< which estimate's carriers are slowed
  SimTime boost = 0;  ///< extra transit time added to each of them

  [[nodiscard]] std::string to_string() const;
};

/// A full adversarial scenario. Default-constructed = no faults (runs are
/// byte-identical to pre-scenario builds).
struct ScenarioConfig {
  std::vector<PartitionSpec> partitions;
  LinkFaultConfig link;
  std::vector<RecoverySpec> recoveries;
  CoinAttackConfig coin_attack;
  std::vector<SkewSpec> skews;

  [[nodiscard]] bool empty() const {
    return partitions.empty() && !link.any() && recoveries.empty() &&
           !coin_attack.enabled && skews.empty();
  }

  /// Compact single-token label ("loss=0.05,part=cluster:0-1@5ms..20ms");
  /// "none" when empty. Used in cell labels, tables, CSV and JSON.
  [[nodiscard]] std::string label() const;
};

/// Parses a duration with an optional unit suffix: "100" / "100ns" /
/// "20us" / "5ms" / "2s" (SimTime is abstract nanoseconds). Throws
/// ContractViolation on malformed or negative input.
SimTime parse_sim_time(const std::string& text);

/// Parses "KIND:IDS[:flap=DUR:period=DUR][@START..HEAL]" where KIND is
/// cluster | procs | split, IDS is dash-separated (e.g. "0-1"), and HEAL
/// may be "never". The window is required for one-shot cuts and optional
/// for flapping ones (default 0..never). Examples:
///   "cluster:0-1@5ms..20ms"            one-shot cut, heals at 20ms
///   "procs:0-3-7@0..never"             permanent cut (drops)
///   "cluster:0:flap=2ms:period=4ms"    square wave: 2ms cut / 2ms healed
///   "split:1:flap=1ms:period=3ms@5ms..50ms"  flapping inside a window
PartitionSpec parse_partition_spec(const std::string& text);

/// Parses "PID@DOWN..UP" or "cluster:X@DOWN..UP"; UP may be "never".
/// Examples: "3@2ms..8ms", "cluster:0@100..5000".
RecoverySpec parse_recovery_spec(const std::string& text);

/// Parses "proc:ID:xFACTOR" or "cluster:ID:xFACTOR" (FACTOR a positive
/// decimal, "x" required). Examples: "proc:3:x4", "cluster:0:x2.5",
/// "proc:1:x0.5" (a fast process). Throws ContractViolation on malformed
/// input or a factor outside (0, 1024].
SkewSpec parse_skew_spec(const std::string& text);

}  // namespace hyco
