#include "scenario/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/assert.h"

namespace hyco {

std::vector<ScenarioEngine::Rejoin> resolve_recoveries(
    const std::vector<RecoverySpec>& specs, const ClusterLayout& layout) {
  std::vector<ScenarioEngine::Rejoin> rejoins;
  for (const RecoverySpec& spec : specs) {
    if (spec.whole_cluster) {
      HYCO_CHECK_MSG(spec.id >= 0 && spec.id < layout.m(),
                     "recovery " << spec.to_string() << ": cluster "
                                 << spec.id << " out of range (m="
                                 << layout.m() << ')');
      for (const ProcId p : layout.members(static_cast<ClusterId>(spec.id))) {
        rejoins.push_back({p, spec.down_at, spec.up_at});
      }
    } else {
      HYCO_CHECK_MSG(spec.id >= 0 && spec.id < layout.n(),
                     "recovery " << spec.to_string() << ": process "
                                 << spec.id << " out of range (n="
                                 << layout.n() << ')');
      rejoins.push_back(
          {static_cast<ProcId>(spec.id), spec.down_at, spec.up_at});
    }
  }

  // Windows for one process must be disjoint and in order: a second crash
  // inside a live window would make the later recover() fire on a live
  // process mid-run (a contract violation inside the simulation).
  std::map<ProcId, SimTime> frontier;  // earliest allowed next down_at
  for (const auto& rj : rejoins) {
    const auto it = frontier.find(rj.proc);
    if (it != frontier.end()) {
      HYCO_CHECK_MSG(it->second != kSimTimeNever && rj.down_at >= it->second,
                     "recovery windows for p" << rj.proc
                         << " overlap (a process must be recovered before"
                            " it can crash again)");
    }
    frontier[rj.proc] = rj.up_at;
  }
  return rejoins;
}

std::vector<double> resolve_skews(const std::vector<SkewSpec>& specs,
                                  const ClusterLayout& layout) {
  if (specs.empty()) return {};
  std::vector<double> speed(static_cast<std::size_t>(layout.n()), 1.0);
  for (const SkewSpec& spec : specs) {
    HYCO_CHECK_MSG(std::isfinite(spec.factor) && spec.factor > 0.0,
                   "skew " << spec.to_string()
                           << ": factor must be positive and finite");
    if (spec.whole_cluster) {
      HYCO_CHECK_MSG(spec.id >= 0 && spec.id < layout.m(),
                     "skew " << spec.to_string() << ": cluster " << spec.id
                             << " out of range (m=" << layout.m() << ')');
      for (const ProcId p : layout.members(static_cast<ClusterId>(spec.id))) {
        speed[static_cast<std::size_t>(p)] = spec.factor;
      }
    } else {
      HYCO_CHECK_MSG(spec.id >= 0 && spec.id < layout.n(),
                     "skew " << spec.to_string() << ": process " << spec.id
                             << " out of range (n=" << layout.n() << ')');
      speed[static_cast<std::size_t>(spec.id)] = spec.factor;
    }
  }
  return speed;
}

void validate_scenario(const ScenarioConfig& cfg,
                       const ClusterLayout& layout) {
  ConstantDelay probe(0);
  FaultyChannel channel(probe, cfg.link, cfg.coin_attack);
  PartitionSchedule partitions(cfg.partitions, layout);
  resolve_recoveries(cfg.recoveries, layout);
  resolve_skews(cfg.skews, layout);
}

namespace {

std::unique_ptr<DelayModel> checked(std::unique_ptr<DelayModel> m) {
  HYCO_CHECK_MSG(m != nullptr, "scenario engine needs a delay model");
  return m;
}

}  // namespace

ScenarioEngine::ScenarioEngine(const ScenarioConfig& cfg,
                               const ClusterLayout& layout,
                               std::unique_ptr<DelayModel> base_delays)
    : base_(checked(std::move(base_delays))),
      speed_(resolve_skews(cfg.skews, layout)),
      channel_(*base_, cfg.link, cfg.coin_attack),
      partitions_(cfg.partitions, layout),
      rejoins_(resolve_recoveries(cfg.recoveries, layout)) {
  if (!speed_.empty()) channel_.set_speed_factors(&speed_);
}

}  // namespace hyco
