#include "scenario/faulty_channel.h"

#include <cmath>

#include "util/assert.h"

namespace hyco {

FaultyChannel::FaultyChannel(DelayModel& inner, const LinkFaultConfig& link,
                             const CoinAttackConfig& coin_attack)
    : inner_(inner), link_(link), coin_attack_(coin_attack) {
  HYCO_CHECK_MSG(link.loss >= 0.0 && link.loss <= 1.0,
                 "loss probability must be in [0, 1], got " << link.loss);
  HYCO_CHECK_MSG(link.dup >= 0.0 && link.dup <= 1.0,
                 "dup probability must be in [0, 1], got " << link.dup);
  HYCO_CHECK_MSG(link.reorder_max >= 0,
                 "reorder bound must be >= 0, got " << link.reorder_max);
  HYCO_CHECK_MSG(coin_attack.boost >= 0,
                 "coin-attack boost must be >= 0, got " << coin_attack.boost);
  HYCO_CHECK_MSG(!coin_attack.enabled ||
                     (coin_attack.bit == 0 || coin_attack.bit == 1),
                 "coin-attack bit must be 0 or 1, got " << coin_attack.bit);
}

bool FaultyChannel::is_targeted_coin_carrier(const Message& m) const {
  return coin_attack_.enabled && m.kind == MsgKind::Phase && m.round >= 2 &&
         m.phase == Phase::One && is_binary(m.est) &&
         estimate_to_bit(m.est) == coin_attack_.bit;
}

SimTime FaultyChannel::delay(ProcId from, ProcId to, const Message& m,
                             SimTime now, Rng& rng) {
  SimTime d = inner_.delay(from, to, m, now, rng);
  if (link_.reorder_max > 0) {
    d += rng.uniform(0, link_.reorder_max);
  }
  if (is_targeted_coin_carrier(m)) {
    d += coin_attack_.boost;
  }
  if (speed_ != nullptr) {
    const double f = (*speed_)[static_cast<std::size_t>(to)];
    // f == 1.0 must leave the delay bit-identical (no float round-trip).
    if (f != 1.0) {
      d = static_cast<SimTime>(std::llround(static_cast<double>(d) * f));
    }
  }
  return d;
}

int FaultyChannel::copies(const Message&, Rng& rng) const {
  if (link_.loss > 0.0 && rng.bernoulli(link_.loss)) return 0;
  if (link_.dup > 0.0 && rng.bernoulli(link_.dup)) return 2;
  return 1;
}

}  // namespace hyco
