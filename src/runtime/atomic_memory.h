// Lock-free cluster memory for the threaded runtime: consensus objects built
// directly on std::atomic compare_exchange — the real-hardware counterpart
// of the simulator's CasConsensus. This is where the paper's assumption
// "MEM_x is enriched with compare&swap" meets actual silicon.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/types.h"
#include "shm/consensus_object.h"

namespace hyco {

/// Wait-free one-shot consensus on std::atomic<int8_t>. The empty state (-1)
/// is distinct from ⊥ (Estimate::Bot == 2), which is a proposable value.
class AtomicConsensus final : public IConsensusObject {
 public:
  AtomicConsensus() : state_(kEmpty) {}

  Estimate propose(ProcId /*proposer*/, Estimate v) override {
    proposals_.fetch_add(1, std::memory_order_relaxed);
    std::int8_t expected = kEmpty;
    state_.compare_exchange_strong(expected,
                                   static_cast<std::int8_t>(v),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
    // Either our CAS installed v, or `expected` now holds the winner.
    const std::int8_t w = state_.load(std::memory_order_acquire);
    return static_cast<Estimate>(w);
  }

  [[nodiscard]] std::optional<Estimate> decided() const override {
    const std::int8_t w = state_.load(std::memory_order_acquire);
    if (w == kEmpty) return std::nullopt;
    return static_cast<Estimate>(w);
  }

  [[nodiscard]] std::uint64_t proposals() const {
    return proposals_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::int8_t kEmpty = -1;
  std::atomic<std::int8_t> state_;
  std::atomic<std::uint64_t> proposals_{0};
};

/// Thread-safe MEM_x: lazily materializes CONS_x[r, ph] objects. The lookup
/// map is mutex-protected; the consensus objects themselves are lock-free.
class ThreadClusterMemory {
 public:
  explicit ThreadClusterMemory(ClusterId cluster) : cluster_(cluster) {}

  ThreadClusterMemory(const ThreadClusterMemory&) = delete;
  ThreadClusterMemory& operator=(const ThreadClusterMemory&) = delete;

  AtomicConsensus& cons(Round r, Phase ph) {
    const auto key = std::make_pair(r, static_cast<int>(ph));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      it = objects_.emplace(key, std::make_unique<AtomicConsensus>()).first;
    }
    return *it->second;
  }

  AtomicConsensus& cons(Round r) { return cons(r, Phase::One); }

  [[nodiscard]] ClusterId cluster() const { return cluster_; }

  [[nodiscard]] std::uint64_t objects_created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.size();
  }

 private:
  ClusterId cluster_;
  mutable std::mutex mu_;
  std::map<std::pair<Round, int>, std::unique_ptr<AtomicConsensus>> objects_;
};

}  // namespace hyco
