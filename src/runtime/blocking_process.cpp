#include "runtime/blocking_process.h"

#include <algorithm>
#include <numeric>

#include "util/assert.h"

namespace hyco {

BlockingProcessBase::BlockingProcessBase(ProcId self,
                                         const ClusterLayout& layout,
                                         ThreadNetwork& net,
                                         ThreadClusterMemory& memory,
                                         ThreadCrashSpec crash,
                                         Round max_rounds,
                                         std::uint64_t rng_seed)
    : self_(self),
      layout_(layout),
      net_(net),
      memory_(memory),
      crash_(crash),
      max_rounds_(max_rounds),
      rng_(rng_seed) {
  HYCO_CHECK_MSG(memory.cluster() == layout.cluster_of(self),
                 "p" << self << " wired to the wrong cluster memory");
}

BlockingProcessBase::Supporters& BlockingProcessBase::supporters(Round r,
                                                                 Phase ph) {
  const auto key = std::make_pair(r, static_cast<int>(ph));
  auto it = tally_.find(key);
  if (it == tally_.end()) {
    Supporters s;
    for (auto& c : s.clusters) {
      c = DynamicBitset(static_cast<std::size_t>(layout_.m()));
    }
    it = tally_.emplace(key, std::move(s)).first;
  }
  return it->second;
}

const BlockingProcessBase::Supporters* BlockingProcessBase::find_supporters(
    Round r, Phase ph) const {
  const auto it = tally_.find(std::make_pair(r, static_cast<int>(ph)));
  return it == tally_.end() ? nullptr : &it->second;
}

void BlockingProcessBase::credit(ProcId from, const Message& m) {
  Supporters& s = supporters(m.round, m.phase);
  const ClusterId x = layout_.cluster_of(from);
  s.clusters[estimate_index(m.est)].set(static_cast<std::size_t>(x));
}

bool BlockingProcessBase::satisfied(Round r, Phase ph) const {
  const Supporters* s = find_supporters(r, ph);
  if (s == nullptr) return false;
  DynamicBitset u = s->clusters[0] | s->clusters[1];
  if (ph == Phase::Two) u |= s->clusters[2];
  ProcId covered = 0;
  for (const auto x : u.to_indices()) {
    covered += layout_.cluster_size(static_cast<ClusterId>(x));
  }
  return 2 * covered > layout_.n();
}

ProcId BlockingProcessBase::support(Round r, Phase ph, Estimate v) const {
  const Supporters* s = find_supporters(r, ph);
  if (s == nullptr) return 0;
  ProcId covered = 0;
  for (const auto x : s->clusters[estimate_index(v)].to_indices()) {
    covered += layout_.cluster_size(static_cast<ClusterId>(x));
  }
  return covered;
}

std::vector<Estimate> BlockingProcessBase::values_received(Round r,
                                                           Phase ph) const {
  std::vector<Estimate> vals;
  const Supporters* s = find_supporters(r, ph);
  if (s == nullptr) return vals;
  for (const Estimate e : kAllEstimates) {
    if (s->clusters[estimate_index(e)].any()) vals.push_back(e);
  }
  return vals;
}

bool BlockingProcessBase::msg_exchange(Round r, Phase ph, Estimate est) {
  net_.broadcast(self_, Message::phase_msg(r, ph, est));
  Mailbox& mb = net_.mailbox(self_);
  while (!satisfied(r, ph)) {
    Envelope e;
    if (mb.pop(e) == Mailbox::PopResult::Closed) {
      outcome_.shutdown = true;
      return false;
    }
    if (e.msg.kind == MsgKind::Decide) {
      gossip_decide(e.msg.est);
      return false;
    }
    credit(e.from, e.msg);
  }
  return true;
}

bool BlockingProcessBase::scripted_crash(Round r, Phase ph, Estimate est) {
  if (crash_.at_round != r) return false;
  if (crash_.partial >= 0) {
    // Die mid-broadcast: serve a random subset of the destinations first.
    std::vector<ProcId> order(static_cast<std::size_t>(layout_.n()));
    std::iota(order.begin(), order.end(), 0);
    rng_.shuffle(order);
    order.resize(static_cast<std::size_t>(
        std::min<ProcId>(crash_.partial, layout_.n())));
    net_.broadcast_subset(self_, Message::phase_msg(r, ph, est), order);
  }
  net_.mark_crashed(self_);
  outcome_.crashed = true;
  return true;
}

void BlockingProcessBase::gossip_decide(Estimate v) {
  net_.broadcast(self_, Message::decide_msg(v));
  outcome_.decision = v;
}

BlockingLocalCoin::BlockingLocalCoin(ProcId self, const ClusterLayout& layout,
                                     ThreadNetwork& net,
                                     ThreadClusterMemory& memory,
                                     ThreadCrashSpec crash, Round max_rounds,
                                     std::uint64_t coin_seed)
    : BlockingProcessBase(self, layout, net, memory, crash, max_rounds,
                          coin_seed) {}

BlockingOutcome BlockingLocalCoin::propose(Estimate v) {
  HYCO_CHECK_MSG(is_binary(v), "proposals must be binary");
  Estimate est1 = v;
  for (Round r = 1; r <= max_rounds_; ++r) {
    outcome_.rounds = r;

    // Phase 1 (lines 4-7). The scripted crash fires AFTER the cluster
    // consensus: a crashing process may die mid-broadcast, but it can only
    // ever broadcast the value its cluster agreed on (otherwise it would be
    // Byzantine, not crash-faulty).
    est1 = memory_.cons(r, Phase::One).propose(self_, est1);
    if (scripted_crash(r, Phase::One, est1)) return outcome_;
    if (!msg_exchange(r, Phase::One, est1)) return outcome_;
    Estimate est2 = Estimate::Bot;
    for (const Estimate cand : {Estimate::Zero, Estimate::One}) {
      if (2 * support(r, Phase::One, cand) > layout_.n()) {
        est2 = cand;
        break;
      }
    }

    // Phase 2 (lines 8-15).
    est2 = memory_.cons(r, Phase::Two).propose(self_, est2);
    if (!msg_exchange(r, Phase::Two, est2)) return outcome_;
    const auto rec = values_received(r, Phase::Two);
    const bool has_bot =
        std::find(rec.begin(), rec.end(), Estimate::Bot) != rec.end();
    Estimate seen = Estimate::Bot;
    for (const Estimate e : rec) {
      if (is_binary(e)) {
        seen = e;
        break;
      }
    }
    if (is_binary(seen) && !has_bot) {
      gossip_decide(seen);  // line 12
      return outcome_;
    }
    if (is_binary(seen)) {
      est1 = seen;  // line 13
    } else {
      est1 = estimate_from_bit(rng_.coin());  // line 14: local_coin()
    }
  }
  outcome_.capped = true;
  return outcome_;
}

BlockingCommonCoin::BlockingCommonCoin(ProcId self,
                                       const ClusterLayout& layout,
                                       ThreadNetwork& net,
                                       ThreadClusterMemory& memory,
                                       ICommonCoin& coin,
                                       ThreadCrashSpec crash,
                                       Round max_rounds,
                                       std::uint64_t rng_seed)
    : BlockingProcessBase(self, layout, net, memory, crash, max_rounds,
                          rng_seed),
      coin_(coin) {}

BlockingOutcome BlockingCommonCoin::propose(Estimate v) {
  HYCO_CHECK_MSG(is_binary(v), "proposals must be binary");
  Estimate est = v;
  for (Round r = 1; r <= max_rounds_; ++r) {
    outcome_.rounds = r;

    est = memory_.cons(r).propose(self_, est);         // line 4
    // Crash only after the cluster consensus (see BlockingLocalCoin note).
    if (scripted_crash(r, Phase::One, est)) return outcome_;
    if (!msg_exchange(r, Phase::One, est)) return outcome_;
    const int s = coin_.bit(r);                        // line 6

    Estimate supported = Estimate::Bot;                // line 7
    for (const Estimate cand : {Estimate::Zero, Estimate::One}) {
      if (2 * support(r, Phase::One, cand) > layout_.n()) {
        supported = cand;
        break;
      }
    }
    if (is_binary(supported)) {
      est = supported;                                 // line 8
      if (estimate_to_bit(supported) == s) {
        gossip_decide(supported);                      // line 9
        return outcome_;
      }
    } else {
      est = estimate_from_bit(s);                      // line 10
    }
  }
  outcome_.capped = true;
  return outcome_;
}

}  // namespace hyco
