// Blocking (thread-per-process) implementations of Algorithms 2 and 3 that
// mirror the paper's pseudocode line by line: propose() runs in the calling
// thread, msg_exchange really blocks on the mailbox, and cluster consensus
// is a lock-free std::atomic CAS. This is the "manual concurrency plumbing"
// substrate; the discrete-event versions in src/core are the reproducible
// experiment substrate.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "coin/coin.h"
#include "core/cluster_layout.h"
#include "core/types.h"
#include "runtime/atomic_memory.h"
#include "runtime/thread_network.h"
#include "util/bitset.h"

namespace hyco {

/// Scripted cooperative crash for threaded runs.
struct ThreadCrashSpec {
  Round at_round = -1;       ///< crash when entering this round (-1 = never)
  std::int32_t partial = -1; ///< if >= 0: before dying, deliver the round's
                             ///< first broadcast to only `partial` peers
};

/// Outcome of a blocking propose() call.
struct BlockingOutcome {
  std::optional<Estimate> decision;  ///< nullopt: crashed / capped / shutdown
  Round rounds = 0;
  bool crashed = false;   ///< scripted crash fired
  bool capped = false;    ///< hit max_rounds
  bool shutdown = false;  ///< mailbox closed by the runner
};

/// Shared plumbing of the two blocking algorithms: supporter bookkeeping
/// with cluster closure, the blocking msg_exchange wait, DECIDE handling.
class BlockingProcessBase {
 public:
  BlockingProcessBase(ProcId self, const ClusterLayout& layout,
                      ThreadNetwork& net, ThreadClusterMemory& memory,
                      ThreadCrashSpec crash, Round max_rounds,
                      std::uint64_t rng_seed);
  virtual ~BlockingProcessBase() = default;

 protected:
  /// The paper's msg_exchange(r, ph, est): broadcast, then block until the
  /// credited clusters cover a majority. Returns false when the wait must
  /// abort (DECIDE received — outcome_.decision set — or shutdown).
  bool msg_exchange(Round r, Phase ph, Estimate est);

  /// |supporters[v]| under cluster closure for (r, ph).
  [[nodiscard]] ProcId support(Round r, Phase ph, Estimate v) const;

  /// Distinct values with non-empty supporters for (r, ph).
  [[nodiscard]] std::vector<Estimate> values_received(Round r, Phase ph) const;

  /// True if the scripted crash fires at round r; performs the partial
  /// broadcast side effect and marks the process crashed.
  bool scripted_crash(Round r, Phase ph, Estimate est);

  void gossip_decide(Estimate v);

  ProcId self_;
  const ClusterLayout& layout_;
  ThreadNetwork& net_;
  ThreadClusterMemory& memory_;
  ThreadCrashSpec crash_;
  Round max_rounds_;
  Rng rng_;
  BlockingOutcome outcome_;

 private:
  struct Supporters {
    std::array<DynamicBitset, 3> clusters;
  };
  Supporters& supporters(Round r, Phase ph);
  [[nodiscard]] const Supporters* find_supporters(Round r, Phase ph) const;
  [[nodiscard]] bool satisfied(Round r, Phase ph) const;
  void credit(ProcId from, const Message& m);

  std::map<std::pair<Round, int>, Supporters> tally_;
};

/// Algorithm 2, blocking form.
class BlockingLocalCoin final : public BlockingProcessBase {
 public:
  BlockingLocalCoin(ProcId self, const ClusterLayout& layout,
                    ThreadNetwork& net, ThreadClusterMemory& memory,
                    ThreadCrashSpec crash, Round max_rounds,
                    std::uint64_t coin_seed);

  /// Runs to decision (or crash/cap/shutdown) in the calling thread.
  BlockingOutcome propose(Estimate v);
};

/// Algorithm 3, blocking form.
class BlockingCommonCoin final : public BlockingProcessBase {
 public:
  BlockingCommonCoin(ProcId self, const ClusterLayout& layout,
                     ThreadNetwork& net, ThreadClusterMemory& memory,
                     ICommonCoin& coin, ThreadCrashSpec crash,
                     Round max_rounds, std::uint64_t rng_seed);

  BlockingOutcome propose(Estimate v);

 private:
  ICommonCoin& coin_;
};

}  // namespace hyco
