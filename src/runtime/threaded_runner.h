// Thread-per-process runner for the blocking algorithm variants: spawns one
// thread per process, waits for all live processes to finish (with a
// wall-clock deadline), then shuts the network down and joins.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "core/types.h"
#include "runtime/blocking_process.h"

namespace hyco {

/// Which blocking algorithm to run.
enum class ThreadAlgorithm { LocalCoin, CommonCoin };

/// Description of one threaded run.
struct ThreadRunConfig {
  explicit ThreadRunConfig(ClusterLayout l) : layout(std::move(l)) {}

  ClusterLayout layout;
  ThreadAlgorithm alg = ThreadAlgorithm::CommonCoin;
  std::vector<Estimate> inputs;  ///< empty = split inputs
  std::uint64_t seed = 1;
  Round max_rounds = 2000;
  std::vector<ThreadCrashSpec> crashes;  ///< empty = nobody crashes
  std::chrono::milliseconds deadline{10'000};
};

/// Aggregated outcome of a threaded run.
struct ThreadRunResult {
  std::vector<BlockingOutcome> outcomes;  ///< per process
  std::optional<Estimate> decided_value;
  bool all_correct_decided = false;  ///< every non-crash-scripted process
  bool agreement_ok = true;
  bool validity_ok = true;
  bool deadline_hit = false;
  Round max_decision_round = 0;
  std::uint64_t messages_sent = 0;

  [[nodiscard]] bool success() const {
    return all_correct_decided && agreement_ok && validity_ok &&
           !deadline_hit;
  }
};

/// Runs one threaded consensus instance.
ThreadRunResult run_threaded(const ThreadRunConfig& cfg);

}  // namespace hyco
