// Blocking multi-producer single-consumer mailbox: the per-process inbox of
// the threaded runtime. Reliable-channel semantics: push never drops (until
// close), pop blocks until a message or closure.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "core/types.h"
#include "net/message.h"

namespace hyco {

/// One delivered message with its sender.
struct Envelope {
  ProcId from = -1;
  Message msg;
};

/// Thread-safe blocking queue of envelopes.
class Mailbox {
 public:
  enum class PopResult { Ok, Closed };

  /// Enqueues unless closed (closed mailboxes drop silently — the receiver
  /// has terminated).
  void push(Envelope e);

  /// Blocks until a message arrives or the mailbox is closed and drained.
  PopResult pop(Envelope& out);

  /// Unblocks all waiting consumers; subsequent pushes are dropped.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> q_;
  bool closed_ = false;
};

}  // namespace hyco
