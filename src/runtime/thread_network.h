// Message passing between real threads: one mailbox per process, crash
// flags, and the (unreliable-under-crash) broadcast macro. Implements the
// same INetwork interface as the simulator network, so shared components
// (e.g. MsgExchange) would work on either substrate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "net/network.h"
#include "runtime/mailbox.h"

namespace hyco {

/// Thread-safe n-process network over mailboxes.
class ThreadNetwork final : public INetwork {
 public:
  explicit ThreadNetwork(ProcId n);

  void send(ProcId from, ProcId to, const Message& m) override;
  void broadcast(ProcId from, const Message& m) override;
  [[nodiscard]] ProcId n() const override { return n_; }

  /// Partial broadcast used by scripted mid-broadcast crashes: delivers only
  /// to `dests`, then the caller marks itself crashed.
  void broadcast_subset(ProcId from, const Message& m,
                        const std::vector<ProcId>& dests);

  /// Marks p crashed: its future sends are suppressed (it should also stop
  /// running; the blocking processes check this cooperatively).
  void mark_crashed(ProcId p);
  [[nodiscard]] bool is_crashed(ProcId p) const;

  Mailbox& mailbox(ProcId p) { return *mailboxes_[static_cast<std::size_t>(p)]; }

  /// Closes every mailbox (shutdown path of the threaded runner).
  void close_all();

  [[nodiscard]] std::uint64_t messages_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }

 private:
  ProcId n_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::atomic<bool>> crashed_;
  std::atomic<std::uint64_t> sent_{0};
};

}  // namespace hyco
