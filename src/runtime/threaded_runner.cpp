#include "runtime/threaded_runner.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "core/runner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

ThreadRunResult run_threaded(const ThreadRunConfig& cfg) {
  const ProcId n = cfg.layout.n();
  const std::vector<Estimate> inputs =
      cfg.inputs.empty() ? split_inputs(n) : cfg.inputs;
  HYCO_CHECK_MSG(inputs.size() == static_cast<std::size_t>(n),
                 "inputs size mismatch");
  std::vector<ThreadCrashSpec> crashes = cfg.crashes;
  if (crashes.empty()) crashes.assign(static_cast<std::size_t>(n), {});
  HYCO_CHECK_MSG(crashes.size() == static_cast<std::size_t>(n),
                 "crash spec size mismatch");

  ThreadNetwork net(n);
  std::vector<std::unique_ptr<ThreadClusterMemory>> memories;
  memories.reserve(static_cast<std::size_t>(cfg.layout.m()));
  for (ClusterId x = 0; x < cfg.layout.m(); ++x) {
    memories.push_back(std::make_unique<ThreadClusterMemory>(x));
  }
  CommonCoin coin(mix64(cfg.seed, 0xC01C01));

  ThreadRunResult result;
  result.outcomes.assign(static_cast<std::size_t>(n), {});

  std::mutex done_mu;
  std::condition_variable done_cv;
  ProcId done_count = 0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      const auto idx = static_cast<std::size_t>(p);
      auto& mem = *memories[static_cast<std::size_t>(
          cfg.layout.cluster_of(p))];
      const std::uint64_t s = mix64(cfg.seed, 0x7EAD + static_cast<std::uint64_t>(p));
      BlockingOutcome out;
      if (cfg.alg == ThreadAlgorithm::LocalCoin) {
        BlockingLocalCoin proc(p, cfg.layout, net, mem, crashes[idx],
                               cfg.max_rounds, s);
        out = proc.propose(inputs[idx]);
      } else {
        BlockingCommonCoin proc(p, cfg.layout, net, mem, coin, crashes[idx],
                                cfg.max_rounds, s);
        out = proc.propose(inputs[idx]);
      }
      {
        std::lock_guard<std::mutex> lock(done_mu);
        result.outcomes[idx] = out;
        ++done_count;
      }
      done_cv.notify_one();
    });
  }

  {
    std::unique_lock<std::mutex> lock(done_mu);
    const bool finished = done_cv.wait_for(
        lock, cfg.deadline, [&] { return done_count == n; });
    result.deadline_hit = !finished;
  }
  // Unblock any stragglers (timeout path) and let everyone exit.
  net.close_all();
  for (auto& t : threads) t.join();

  // Harvest.
  bool all_correct_decided = true;
  for (ProcId p = 0; p < n; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    const BlockingOutcome& out = result.outcomes[idx];
    result.max_decision_round = std::max(result.max_decision_round, out.rounds);
    if (out.decision.has_value()) {
      if (!result.decided_value.has_value()) {
        result.decided_value = out.decision;
      } else if (*result.decided_value != *out.decision) {
        result.agreement_ok = false;
      }
    } else if (crashes[idx].at_round < 0) {
      all_correct_decided = false;  // correct process failed to decide
    }
  }
  result.all_correct_decided = all_correct_decided;
  if (result.decided_value.has_value()) {
    result.validity_ok = std::find(inputs.begin(), inputs.end(),
                                   *result.decided_value) != inputs.end();
  }
  result.messages_sent = net.messages_sent();
  return result;
}

}  // namespace hyco
