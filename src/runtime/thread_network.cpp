#include "runtime/thread_network.h"

#include "util/assert.h"

namespace hyco {

ThreadNetwork::ThreadNetwork(ProcId n) : n_(n), crashed_(static_cast<std::size_t>(n)) {
  HYCO_CHECK_MSG(n > 0, "network needs at least one process");
  mailboxes_.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
}

void ThreadNetwork::send(ProcId from, ProcId to, const Message& m) {
  HYCO_CHECK_MSG(from >= 0 && from < n_ && to >= 0 && to < n_,
                 "send with out-of-range process id");
  if (is_crashed(from)) return;
  sent_.fetch_add(1, std::memory_order_relaxed);
  mailboxes_[static_cast<std::size_t>(to)]->push(Envelope{from, m});
}

void ThreadNetwork::broadcast(ProcId from, const Message& m) {
  for (ProcId to = 0; to < n_; ++to) send(from, to, m);
}

void ThreadNetwork::broadcast_subset(ProcId from, const Message& m,
                                     const std::vector<ProcId>& dests) {
  for (const ProcId to : dests) send(from, to, m);
}

void ThreadNetwork::mark_crashed(ProcId p) {
  crashed_[static_cast<std::size_t>(p)].store(true, std::memory_order_release);
}

bool ThreadNetwork::is_crashed(ProcId p) const {
  return crashed_[static_cast<std::size_t>(p)].load(std::memory_order_acquire);
}

void ThreadNetwork::close_all() {
  for (auto& mb : mailboxes_) mb->close();
}

}  // namespace hyco
