#include "runtime/mailbox.h"

namespace hyco {

void Mailbox::push(Envelope e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    q_.push_back(std::move(e));
  }
  cv_.notify_one();
}

Mailbox::PopResult Mailbox::pop(Envelope& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !q_.empty() || closed_; });
  if (q_.empty()) return PopResult::Closed;
  out = std::move(q_.front());
  q_.pop_front();
  return PopResult::Ok;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

}  // namespace hyco
