// The m&m ("messages and memories") shared-memory domain of Aguilera et al.
// (PODC 2018), as summarized in Section III-C and the appendix of the paper.
//
// In the uniform m&m model the memories are defined by an undirected graph
// G = (V, E): S_i = {p_i} ∪ neighbors(p_i), and there is one "p_i-centered"
// memory per process, shared by exactly the processes of S_i. Contrast with
// the paper's cluster model: m&m has n memories and a process touches
// α_i + 1 of them per phase (α_i = its degree), while the hybrid model has
// m memories and a process touches exactly 1.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "util/bitset.h"

namespace hyco {

/// Uniform m&m shared-memory domain built from an undirected graph.
class MmDomain {
 public:
  /// `n` vertices, `edges` as unordered pairs. Self-loops and duplicate
  /// edges are rejected.
  MmDomain(ProcId n, const std::vector<std::pair<ProcId, ProcId>>& edges);

  /// The 5-process example of the paper's Figure 2:
  /// edges {p1p2, p2p3, p3p4, p3p5, p4p5} (1-based), giving
  /// S1={p1,p2}, S2={p1,p2,p3}, S3={p2,p3,p4,p5}, S4={p3,p4,p5},
  /// S5={p3,p4,p5}. 0-based internally.
  static MmDomain fig2();

  [[nodiscard]] ProcId n() const { return n_; }

  /// Degree α_i of process i in G.
  [[nodiscard]] ProcId degree(ProcId i) const;

  /// Neighbors of i, ascending.
  [[nodiscard]] const std::vector<ProcId>& neighbors(ProcId i) const;

  /// S_i = {i} ∪ N(i): the processes sharing p_i's memory.
  [[nodiscard]] std::vector<ProcId> domain_of(ProcId i) const;

  /// S_i as a bitset.
  [[nodiscard]] DynamicBitset domain_set(ProcId i) const;

  /// True iff (i, j) ∈ E.
  [[nodiscard]] bool adjacent(ProcId i, ProcId j) const;

  /// "S0={0,1} S1={0,1,2} ..." — matches the appendix's presentation.
  [[nodiscard]] std::string to_string() const;

 private:
  ProcId n_;
  std::vector<std::vector<ProcId>> adj_;
};

}  // namespace hyco
