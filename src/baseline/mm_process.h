// m&m-style randomized binary consensus — the comparator of Section III-C.
//
// This is a faithful-to-the-comparison analog of Algorithm 2 running on the
// m&m memory layout instead of clusters (it is NOT a line-by-line
// reimplementation of the PODC'18 algorithms; see DESIGN.md):
//   * per phase, process p_i proposes its estimate to the consensus object
//     of EVERY memory it can touch — its own plus its α_i neighbors'
//     (α_i + 1 invocations, the count the paper contrasts with the hybrid
//     model's single invocation);
//   * it adopts the winner of its OWN p_i-centered memory;
//   * the message exchange then counts distinct senders, like Ben-Or —
//     the m&m model has no cluster closure, so "one for all" is
//     unavailable: a crashed neighbor's support is simply lost.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "baseline/mm_domain.h"
#include "coin/coin.h"
#include "core/consensus_process.h"
#include "core/types.h"
#include "net/network.h"
#include "shm/cluster_memory.h"
#include "util/bitset.h"

namespace hyco {

/// The n per-process memories of an m&m domain. Memory i is the
/// "p_i-centered" memory shared by S_i = {i} ∪ N(i).
class MmMemories {
 public:
  MmMemories(const MmDomain& domain, ConsensusImpl impl = ConsensusImpl::Cas);

  /// The consensus object CONS_i[r, ph] of p_i's memory.
  IConsensusObject& cons(ProcId owner, Round r, Phase ph);

  [[nodiscard]] const ShmOpCounts& counts(ProcId owner) const;
  [[nodiscard]] ShmOpCounts total() const;
  [[nodiscard]] std::uint64_t memories_touched_in_phase() const {
    return memories_.size();  // all n, by construction
  }

 private:
  std::vector<std::unique_ptr<ClusterMemory>> memories_;
};

/// One m&m consensus process (local-coin variant).
class MmProcess final : public IConsensusProcess {
 public:
  MmProcess(ProcId self, const MmDomain& domain, MmMemories& memories,
            INetwork& net, std::uint64_t coin_seed, Round max_rounds);

  void start(Estimate proposal) override;
  void on_message(ProcId from, const Message& m) override;

  [[nodiscard]] bool decided() const override {
    return decision_.has_value();
  }
  [[nodiscard]] std::optional<Estimate> decision() const override {
    return decision_;
  }
  [[nodiscard]] Round decision_round() const override {
    return decision_round_;
  }
  [[nodiscard]] Round current_round() const override { return round_; }
  [[nodiscard]] bool parked() const override { return parked_; }
  [[nodiscard]] const ProcessStats& stats() const override { return stats_; }

 private:
  struct Tally {
    explicit Tally(ProcId n) : senders(static_cast<std::size_t>(n)) {}
    DynamicBitset senders;
    std::array<ProcId, 3> counts{0, 0, 0};
    [[nodiscard]] ProcId distinct() const {
      return static_cast<ProcId>(senders.count());
    }
  };

  Tally& tally(Round r, Phase ph);
  /// Proposes `v` to all α_i + 1 reachable memories; returns own winner.
  Estimate propose_to_domain(Round r, Phase ph, Estimate v);
  void enter_round();
  void progress();
  void complete_phase1();
  void complete_phase2();
  void decide(Estimate v);
  bool majority(ProcId k) const { return 2 * k > n_; }

  ProcId self_;
  ProcId n_;
  const MmDomain& domain_;
  MmMemories& memories_;
  INetwork& net_;
  LocalCoin coin_;
  Round max_rounds_;

  Round round_ = 0;
  Phase phase_ = Phase::One;
  Estimate est1_ = Estimate::Bot;
  Estimate est2_ = Estimate::Bot;
  bool started_ = false;
  bool parked_ = false;
  std::optional<Estimate> decision_;
  Round decision_round_ = 0;
  ProcessStats stats_;
  std::map<std::pair<Round, int>, Tally> tallies_;
};

}  // namespace hyco
