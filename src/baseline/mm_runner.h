// Simulation driver for the m&m comparator, mirroring core/runner.h for the
// graph-defined memory domain (experiments FIG2 and T-INV).
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/mm_domain.h"
#include "core/runner.h"
#include "net/delay_model.h"
#include "sim/crash.h"

namespace hyco {

/// Plain-data description of one m&m simulation run.
struct MmRunConfig {
  explicit MmRunConfig(MmDomain d) : domain(std::move(d)) {}

  MmDomain domain;
  std::vector<Estimate> inputs;  ///< empty = split inputs
  std::uint64_t seed = 1;
  DelayConfig delays = DelayConfig::uniform(50, 150);
  CrashPlan crashes;
  Round max_rounds = 5000;
  std::uint64_t max_events = 200'000'000;
  ConsensusImpl shm_impl = ConsensusImpl::Cas;
};

/// Runs one m&m consensus simulation. The returned RunResult's
/// invariants_ok covers agreement/validity only (WA1/WA2 are cluster-model
/// notions).
RunResult run_mm(const MmRunConfig& cfg);

}  // namespace hyco
