#include "baseline/mm_domain.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace hyco {

MmDomain::MmDomain(ProcId n,
                   const std::vector<std::pair<ProcId, ProcId>>& edges)
    : n_(n), adj_(static_cast<std::size_t>(n)) {
  HYCO_CHECK_MSG(n >= 1, "domain needs at least one process");
  for (const auto& [a, b] : edges) {
    HYCO_CHECK_MSG(a >= 0 && a < n && b >= 0 && b < n,
                   "edge (" << a << ',' << b << ") out of range");
    HYCO_CHECK_MSG(a != b, "self-loop at " << a);
    HYCO_CHECK_MSG(!adjacent(a, b), "duplicate edge (" << a << ',' << b << ')');
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nb : adj_) std::sort(nb.begin(), nb.end());
}

MmDomain MmDomain::fig2() {
  // 1-based paper edges {12, 23, 34, 35, 45} -> 0-based.
  return MmDomain(5, {{0, 1}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
}

ProcId MmDomain::degree(ProcId i) const {
  return static_cast<ProcId>(neighbors(i).size());
}

const std::vector<ProcId>& MmDomain::neighbors(ProcId i) const {
  HYCO_CHECK_MSG(i >= 0 && i < n_, "process " << i << " out of range");
  return adj_[static_cast<std::size_t>(i)];
}

std::vector<ProcId> MmDomain::domain_of(ProcId i) const {
  std::vector<ProcId> s = neighbors(i);
  s.push_back(i);
  std::sort(s.begin(), s.end());
  return s;
}

DynamicBitset MmDomain::domain_set(ProcId i) const {
  DynamicBitset set(static_cast<std::size_t>(n_));
  for (const ProcId p : domain_of(i)) set.set(static_cast<std::size_t>(p));
  return set;
}

bool MmDomain::adjacent(ProcId i, ProcId j) const {
  const auto& nb = neighbors(i);
  return std::find(nb.begin(), nb.end(), j) != nb.end();
}

std::string MmDomain::to_string() const {
  std::ostringstream os;
  for (ProcId i = 0; i < n_; ++i) {
    if (i) os << ' ';
    os << 'S' << i << "={";
    const auto s = domain_of(i);
    for (std::size_t k = 0; k < s.size(); ++k) {
      if (k) os << ',';
      os << s[k];
    }
    os << '}';
  }
  return os.str();
}

}  // namespace hyco
