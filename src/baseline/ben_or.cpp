#include "baseline/ben_or.h"

#include "util/assert.h"

namespace hyco {

BenOrProcess::BenOrProcess(ProcId self, ProcId n, INetwork& net,
                           std::uint64_t coin_seed, Round max_rounds)
    : self_(self), n_(n), net_(net), coin_(coin_seed),
      max_rounds_(max_rounds) {
  HYCO_CHECK_MSG(self >= 0 && self < n, "bad process id " << self);
  HYCO_CHECK_MSG(max_rounds >= 1, "max_rounds must be >= 1");
}

BenOrProcess::Tally& BenOrProcess::tally(Round r, Phase ph) {
  const auto key = std::make_pair(r, static_cast<int>(ph));
  auto it = tallies_.find(key);
  if (it == tallies_.end()) it = tallies_.emplace(key, Tally(n_)).first;
  return it->second;
}

void BenOrProcess::start(Estimate proposal) {
  HYCO_CHECK_MSG(!started_, "start() called twice");
  HYCO_CHECK_MSG(is_binary(proposal), "proposals must be binary");
  started_ = true;
  est1_ = proposal;
  enter_round();
  progress();
}

void BenOrProcess::enter_round() {
  if (round_ >= max_rounds_) {
    parked_ = true;
    return;
  }
  ++round_;
  ++stats_.rounds_entered;
  phase_ = Phase::One;
  net_.broadcast(self_, Message::phase_msg(round_, Phase::One, est1_));
}

void BenOrProcess::on_message(ProcId from, const Message& m) {
  if (decided()) {
    // Decision-gossip reply for scenario runs (see ProcessBase::on_message).
    if (assist_ && m.kind != MsgKind::Decide) {
      net_.send(self_, from, Message::decide_msg(*decision_));
    }
    return;
  }
  if (m.kind == MsgKind::Decide) {
    decide(m.est);
    return;
  }
  Tally& t = tally(m.round, m.phase);
  const auto idx = static_cast<std::size_t>(from);
  if (t.senders.test(idx)) return;  // defensive: count each sender once
  t.senders.set(idx);
  ++t.counts[estimate_index(m.est)];
  ++stats_.phase_msgs_handled;
  progress();
}

void BenOrProcess::on_recover() {
  if (!started_ || parked_) return;
  if (decided()) {
    net_.broadcast(self_, Message::decide_msg(*decision_));
    return;
  }
  // Retransmit this (round, phase)'s value — identical to the original
  // broadcast, and peers count each sender once.
  const Estimate est = phase_ == Phase::One ? est1_ : est2_;
  net_.broadcast(self_, Message::phase_msg(round_, phase_, est));
}

void BenOrProcess::progress() {
  while (!decided() && !parked_) {
    const Tally& t = tally(round_, phase_);
    if (!majority(t.distinct())) return;  // wait for > n/2 senders
    if (phase_ == Phase::One) {
      complete_phase1();
    } else {
      complete_phase2();
    }
  }
}

void BenOrProcess::complete_phase1() {
  const Tally& t = tally(round_, Phase::One);
  est2_ = Estimate::Bot;
  for (const Estimate v : {Estimate::Zero, Estimate::One}) {
    if (majority(t.counts[estimate_index(v)])) {
      est2_ = v;
      break;
    }
  }
  phase_ = Phase::Two;
  net_.broadcast(self_, Message::phase_msg(round_, Phase::Two, est2_));
}

void BenOrProcess::complete_phase2() {
  const Tally& t = tally(round_, Phase::Two);
  const bool has0 = t.counts[estimate_index(Estimate::Zero)] > 0;
  const bool has1 = t.counts[estimate_index(Estimate::One)] > 0;
  const bool has_bot = t.counts[estimate_index(Estimate::Bot)] > 0;
  // Two distinct phase-2 values are impossible (each comes from a majority
  // of phase-1 senders, and majorities intersect); guard anyway so a bug
  // here can never decide unsafely.
  HYCO_CHECK_MSG(!(has0 && has1),
                 "Ben-Or saw both 0 and 1 in phase 2 of round " << round_);
  const Estimate v = has0 ? Estimate::Zero
                          : (has1 ? Estimate::One : Estimate::Bot);

  if (is_binary(v) && !has_bot) {
    decide(v);
  } else if (is_binary(v) && has_bot) {
    est1_ = v;
    enter_round();
  } else {
    ++stats_.coin_flips;
    est1_ = estimate_from_bit(coin_.flip_counted());
    enter_round();
  }
}

void BenOrProcess::decide(Estimate v) {
  if (decided()) return;
  HYCO_CHECK_MSG(is_binary(v), "cannot decide ⊥");
  net_.broadcast(self_, Message::decide_msg(v));
  decision_ = v;
  decision_round_ = round_;
}

}  // namespace hyco
