#include "baseline/mm_process.h"

#include "util/assert.h"

namespace hyco {

MmMemories::MmMemories(const MmDomain& domain, ConsensusImpl impl) {
  memories_.reserve(static_cast<std::size_t>(domain.n()));
  for (ProcId i = 0; i < domain.n(); ++i) {
    // Reuse ClusterMemory as the lazily-grown consensus array; the "cluster"
    // id doubles as the owner id of the p_i-centered memory.
    memories_.push_back(
        std::make_unique<ClusterMemory>(i, domain.n(), impl));
  }
}

IConsensusObject& MmMemories::cons(ProcId owner, Round r, Phase ph) {
  return memories_.at(static_cast<std::size_t>(owner))->cons(r, ph);
}

const ShmOpCounts& MmMemories::counts(ProcId owner) const {
  return memories_.at(static_cast<std::size_t>(owner))->counts();
}

ShmOpCounts MmMemories::total() const {
  ShmOpCounts t;
  for (const auto& m : memories_) t += m->counts();
  return t;
}

MmProcess::MmProcess(ProcId self, const MmDomain& domain,
                     MmMemories& memories, INetwork& net,
                     std::uint64_t coin_seed, Round max_rounds)
    : self_(self),
      n_(domain.n()),
      domain_(domain),
      memories_(memories),
      net_(net),
      coin_(coin_seed),
      max_rounds_(max_rounds) {
  HYCO_CHECK_MSG(self >= 0 && self < n_, "bad process id " << self);
}

MmProcess::Tally& MmProcess::tally(Round r, Phase ph) {
  const auto key = std::make_pair(r, static_cast<int>(ph));
  auto it = tallies_.find(key);
  if (it == tallies_.end()) it = tallies_.emplace(key, Tally(n_)).first;
  return it->second;
}

Estimate MmProcess::propose_to_domain(Round r, Phase ph, Estimate v) {
  // α_i + 1 consensus-object invocations: own memory first, then each
  // neighbor's p_j-centered memory.
  ++stats_.cons_invocations;
  const Estimate own = memories_.cons(self_, r, ph).propose(self_, v);
  for (const ProcId j : domain_.neighbors(self_)) {
    ++stats_.cons_invocations;
    memories_.cons(j, r, ph).propose(self_, v);
  }
  return own;  // adopt the winner of our own memory
}

void MmProcess::start(Estimate proposal) {
  HYCO_CHECK_MSG(!started_, "start() called twice");
  HYCO_CHECK_MSG(is_binary(proposal), "proposals must be binary");
  started_ = true;
  est1_ = proposal;
  enter_round();
  progress();
}

void MmProcess::enter_round() {
  if (round_ >= max_rounds_) {
    parked_ = true;
    return;
  }
  ++round_;
  ++stats_.rounds_entered;
  phase_ = Phase::One;
  est1_ = propose_to_domain(round_, Phase::One, est1_);
  net_.broadcast(self_, Message::phase_msg(round_, Phase::One, est1_));
}

void MmProcess::on_message(ProcId from, const Message& m) {
  if (decided()) return;
  if (m.kind == MsgKind::Decide) {
    decide(m.est);
    return;
  }
  Tally& t = tally(m.round, m.phase);
  const auto idx = static_cast<std::size_t>(from);
  if (t.senders.test(idx)) return;
  t.senders.set(idx);
  ++t.counts[estimate_index(m.est)];
  ++stats_.phase_msgs_handled;
  progress();
}

void MmProcess::progress() {
  while (!decided() && !parked_) {
    const Tally& t = tally(round_, phase_);
    if (!majority(t.distinct())) return;
    if (phase_ == Phase::One) {
      complete_phase1();
    } else {
      complete_phase2();
    }
  }
}

void MmProcess::complete_phase1() {
  const Tally& t = tally(round_, Phase::One);
  Estimate championed = Estimate::Bot;
  for (const Estimate v : {Estimate::Zero, Estimate::One}) {
    if (majority(t.counts[estimate_index(v)])) {
      championed = v;
      break;
    }
  }
  phase_ = Phase::Two;
  est2_ = propose_to_domain(round_, Phase::Two, championed);
  net_.broadcast(self_, Message::phase_msg(round_, Phase::Two, est2_));
}

void MmProcess::complete_phase2() {
  const Tally& t = tally(round_, Phase::Two);
  const bool has0 = t.counts[estimate_index(Estimate::Zero)] > 0;
  const bool has1 = t.counts[estimate_index(Estimate::One)] > 0;
  const bool has_bot = t.counts[estimate_index(Estimate::Bot)] > 0;

  if ((has0 || has1) && !(has0 && has1) && !has_bot) {
    decide(has0 ? Estimate::Zero : Estimate::One);
  } else if (has0 || has1) {
    // {v, ⊥} (or the memory-mixed {0,1,...} corner): adopt a binary value.
    est1_ = has0 ? Estimate::Zero : Estimate::One;
    enter_round();
  } else {
    ++stats_.coin_flips;
    est1_ = estimate_from_bit(coin_.flip_counted());
    enter_round();
  }
}

void MmProcess::decide(Estimate v) {
  if (decided()) return;
  HYCO_CHECK_MSG(is_binary(v), "cannot decide ⊥");
  net_.broadcast(self_, Message::decide_msg(v));
  decision_ = v;
  decision_round_ = round_;
}

}  // namespace hyco
