#include "baseline/mm_runner.h"

#include <algorithm>
#include <sstream>

#include "baseline/mm_process.h"
#include "util/assert.h"

namespace hyco {

RunResult run_mm(const MmRunConfig& cfg) {
  const ProcId n = cfg.domain.n();
  const std::vector<Estimate> inputs =
      cfg.inputs.empty() ? split_inputs(n) : cfg.inputs;
  HYCO_CHECK_MSG(inputs.size() == static_cast<std::size_t>(n),
                 "inputs size mismatch");

  Simulator sim(cfg.seed);
  sim.reserve_all_to_all(n);
  CrashPlan plan = cfg.crashes;
  if (plan.specs.empty()) plan = CrashPlan::none(static_cast<std::size_t>(n));
  CrashTracker tracker(static_cast<std::size_t>(n));
  auto delays = make_delay_model(cfg.delays);
  SimNetwork net(sim, *delays, tracker, n, &plan, nullptr);

  MmMemories memories(cfg.domain, cfg.shm_impl);

  std::vector<std::unique_ptr<MmProcess>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<MmProcess>(
        p, cfg.domain, memories, net,
        mix64(cfg.seed, 0x33A7 + static_cast<std::uint64_t>(p)),
        cfg.max_rounds));
  }

  RunResult result;
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  result.decision_rounds.assign(static_cast<std::size_t>(n), 0);

  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    auto& proc = *procs[static_cast<std::size_t>(to)];
    const bool was_decided = proc.decided();
    proc.on_message(from, m);
    if (!was_decided && proc.decided()) {
      result.last_decision_time = sim.now();
    }
  });

  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      if (spec.time <= 0) {
        tracker.crash(p, 0);
      } else {
        sim.schedule_at(spec.time, [&tracker, p, t = spec.time] {
          tracker.crash(p, t);
        });
      }
    }
  }
  Rng start_rng(mix64(cfg.seed, 0x57A7));
  for (ProcId p = 0; p < n; ++p) {
    sim.schedule_at(start_rng.uniform(0, 50), [&, p] {
      if (tracker.is_crashed(p)) return;
      procs[static_cast<std::size_t>(p)]->start(
          inputs[static_cast<std::size_t>(p)]);
    });
  }

  result.stop = sim.run(cfg.max_events);
  result.end_time = sim.now();
  result.events = sim.events_executed();
  result.crashed = tracker.crashed_count();

  bool all_correct_decided = true;
  for (ProcId p = 0; p < n; ++p) {
    const auto& proc = *procs[static_cast<std::size_t>(p)];
    const auto idx = static_cast<std::size_t>(p);
    result.proc_stats.push_back(proc.stats());
    result.max_round = std::max(result.max_round, proc.current_round());
    if (proc.decided()) {
      result.decisions[idx] = proc.decision();
      result.decision_rounds[idx] = proc.decision_round();
      result.max_decision_round =
          std::max(result.max_decision_round, proc.decision_round());
      if (!result.decided_value.has_value()) {
        result.decided_value = proc.decision();
      } else if (*result.decided_value != *proc.decision()) {
        result.agreement_ok = false;
        result.violations.push_back("AGREEMENT violated in m&m run");
      }
    } else if (!tracker.is_crashed(p)) {
      all_correct_decided = false;
    }
  }
  result.all_correct_decided = all_correct_decided;

  if (result.decided_value.has_value()) {
    const bool proposed = std::find(inputs.begin(), inputs.end(),
                                    *result.decided_value) != inputs.end();
    if (!proposed) {
      result.validity_ok = false;
      result.violations.push_back("VALIDITY violated in m&m run");
    }
  }

  result.shm = memories.total();
  result.net = net.stats();
  return result;
}

}  // namespace hyco
