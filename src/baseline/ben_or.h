// Pure message-passing Ben-Or randomized binary consensus (PODC 1983) —
// the baseline the paper extends.
//
// This is an INDEPENDENT implementation (no cluster machinery, plain
// counting of distinct senders), as the paper describes for the m = n
// degenerate case of Algorithm 2: "the communication pattern can be
// simplified by replacing the sets supporters_i[a], supporters_i[b] by a
// simple counting of each value received during a phase". The test suite
// cross-validates hybrid(m = n) against this implementation; the T-FT
// experiment uses it to show that pure message passing cannot survive a
// majority of crashes while the hybrid model can.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "coin/coin.h"
#include "core/consensus_process.h"
#include "core/types.h"
#include "net/network.h"
#include "util/bitset.h"

namespace hyco {

/// One Ben-Or process. Tolerates f < n/2 crashes; blocks otherwise
/// (expected, and exercised by the fault-tolerance experiment).
class BenOrProcess final : public IConsensusProcess {
 public:
  BenOrProcess(ProcId self, ProcId n, INetwork& net, std::uint64_t coin_seed,
               Round max_rounds);

  void start(Estimate proposal) override;
  void on_message(ProcId from, const Message& m) override;

  /// Crash-recovery rejoin: retransmits the current (round, phase) message
  /// (peers dedup by sender) or re-gossips DECIDE. Scenario assist covers
  /// decide replies only — Ben-Or keeps no per-round sent history, so a
  /// rejoiner relies on a surviving majority deciding without it.
  void on_recover() override;

  void set_scenario_assist(bool on) override { assist_ = on; }

  [[nodiscard]] bool decided() const override {
    return decision_.has_value();
  }
  [[nodiscard]] std::optional<Estimate> decision() const override {
    return decision_;
  }
  [[nodiscard]] Round decision_round() const override {
    return decision_round_;
  }
  [[nodiscard]] Round current_round() const override { return round_; }
  [[nodiscard]] bool parked() const override { return parked_; }
  [[nodiscard]] const ProcessStats& stats() const override { return stats_; }

  [[nodiscard]] Estimate est1() const { return est1_; }

 private:
  /// Tally of one (round, phase): which senders were heard, per-value counts.
  struct Tally {
    explicit Tally(ProcId n) : senders(static_cast<std::size_t>(n)) {}
    DynamicBitset senders;
    std::array<ProcId, 3> counts{0, 0, 0};
    [[nodiscard]] ProcId distinct() const {
      return static_cast<ProcId>(senders.count());
    }
  };

  Tally& tally(Round r, Phase ph);
  void enter_round();
  void progress();
  void complete_phase1();
  void complete_phase2();
  void decide(Estimate v);
  bool majority(ProcId k) const { return 2 * k > n_; }

  ProcId self_;
  ProcId n_;
  INetwork& net_;
  LocalCoin coin_;
  Round max_rounds_;

  Round round_ = 0;
  Phase phase_ = Phase::One;
  Estimate est1_ = Estimate::Bot;
  Estimate est2_ = Estimate::Bot;
  bool started_ = false;
  bool parked_ = false;
  bool assist_ = false;
  std::optional<Estimate> decision_;
  Round decision_round_ = 0;
  ProcessStats stats_;

  std::map<std::pair<Round, int>, Tally> tallies_;
};

}  // namespace hyco
