// Live health/progress snapshot for a distributed sweep coordinator.
//
// The coordinator assembles a HealthSnapshot from its work ledger and
// connection table on demand; render_health_json turns it into a stable
// "hyco-health/2" JSON document served over a read-only HTTP endpoint so an
// operator (or CI) can poll progress mid-sweep without touching the worker
// protocol. Rendering is a free function so tests can exercise the schema
// without sockets. Schema /2 added the "recovery" object (lease expiries,
// re-queued chunks, worker reconnects, checkpoint flush age) and per-worker
// reconnect/lease-age fields on top of /1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyco::obs {

/// One connected worker as seen by the coordinator.
struct WorkerHealth {
  std::uint64_t id = 0;
  bool welcomed = false;
  std::int64_t connected_ms = 0;  ///< ms since the worker connected
  std::int64_t last_seen_ms = 0;  ///< ms since the last frame from it
  std::uint64_t active_leases = 0;
  std::uint64_t folded_chunks = 0;
  std::uint64_t folded_runs = 0;
  std::uint64_t reconnects = 0;      ///< re-hello count this connection came with
  std::int64_t oldest_lease_ms = 0;  ///< age of its oldest live lease (0 = none)
};

/// Point-in-time progress of the whole sweep.
struct HealthSnapshot {
  std::int64_t elapsed_ms = 0;  ///< ms since serve() started
  std::uint64_t runs_total = 0;
  std::uint64_t runs_folded = 0;
  std::uint64_t runs_resumed = 0;  ///< runs credited from a checkpoint
  std::size_t cells_total = 0;
  std::size_t cells_completed = 0;
  std::size_t chunks_total = 0;
  std::size_t chunks_pending = 0;
  std::size_t chunks_leased = 0;
  std::size_t chunks_folded = 0;
  double fold_rate_per_sec = 0.0;  ///< runs folded per second since start
  double eta_sec = 0.0;            ///< 0 when unknown (no fold rate yet)
  // Recovery counters (the self-healing paths, cumulative this serve()):
  std::uint64_t lease_expiries = 0;   ///< leases re-queued by TTL expiry
  std::uint64_t requeued_chunks = 0;  ///< chunks re-queued (expiry + disconnect)
  std::uint64_t worker_reconnects = 0;  ///< welcomed re-hellos
  /// ms since the last checkpoint block flushed; -1 = no checkpoint wired.
  std::int64_t checkpoint_flush_ms = -1;
  std::vector<WorkerHealth> workers;
};

/// Renders the snapshot as a single "hyco-health/2" JSON object.
std::string render_health_json(const HealthSnapshot& snap);

/// Wraps a JSON body in a minimal HTTP/1.0 200 response (close-delimited).
std::string render_http_response(const std::string& json_body);

}  // namespace hyco::obs
