// Run-observer interface: the hook surface consensus processes report
// through when observability is on. Observers are strictly passive — they
// read the simulation (typically just its clock) and never touch the seeded
// RNG, the network, or process state, so installing one cannot change a
// run's outcome by construction.
#pragma once

#include "core/types.h"

namespace hyco::obs {

/// Phase-level consensus events, reported by ProcessBase. BenOr (the pure
/// message-passing baseline) does not route through ProcessBase and reports
/// nothing — its phase metrics stay zero.
class IRunObserver {
 public:
  virtual ~IRunObserver() = default;

  /// Process `p` begins the exchange of (round `r`, phase `ph`).
  virtual void on_phase_begin(ProcId p, Round r, Phase ph) = 0;

  /// Process `p` decides in round `r`.
  virtual void on_decide(ProcId p, Round r) = 0;
};

}  // namespace hyco::obs
