// Run-observer interface: the hook surface consensus processes report
// through when observability is on. Observers are strictly passive — they
// read the simulation (typically just its clock) and never touch the seeded
// RNG, the network, or process state, so installing one cannot change a
// run's outcome by construction.
#pragma once

#include "core/types.h"

namespace hyco::obs {

/// Phase-level consensus events, reported by ProcessBase. BenOr (the pure
/// message-passing baseline) does not route through ProcessBase and reports
/// nothing — its phase metrics stay zero.
class IRunObserver {
 public:
  virtual ~IRunObserver() = default;

  /// Process `p` begins the exchange of (round `r`, phase `ph`).
  virtual void on_phase_begin(ProcId p, Round r, Phase ph) = 0;

  /// Process `p` decides in round `r`.
  virtual void on_decide(ProcId p, Round r) = 0;

  /// Process `p`'s message exchange for (round `r`, phase `ph`) just
  /// crossed its quorum threshold (credited clusters cover a majority).
  /// Default no-op so existing observers keep compiling unchanged.
  virtual void on_quorum_satisfied(ProcId p, Round r, Phase ph) {
    (void)p;
    (void)r;
    (void)ph;
  }
};

/// Fans observer events out to up to two downstream observers, so phase
/// timing and trace recording can both be installed on one process (each
/// process holds a single observer pointer).
class ObserverFanout final : public IRunObserver {
 public:
  ObserverFanout(IRunObserver* a, IRunObserver* b) : a_(a), b_(b) {}

  void on_phase_begin(ProcId p, Round r, Phase ph) override {
    if (a_ != nullptr) a_->on_phase_begin(p, r, ph);
    if (b_ != nullptr) b_->on_phase_begin(p, r, ph);
  }
  void on_decide(ProcId p, Round r) override {
    if (a_ != nullptr) a_->on_decide(p, r);
    if (b_ != nullptr) b_->on_decide(p, r);
  }
  void on_quorum_satisfied(ProcId p, Round r, Phase ph) override {
    if (a_ != nullptr) a_->on_quorum_satisfied(p, r, ph);
    if (b_ != nullptr) b_->on_quorum_satisfied(p, r, ph);
  }

 private:
  IRunObserver* a_;
  IRunObserver* b_;
};

}  // namespace hyco::obs
