#include "obs/health.h"

#include <cstdio>

namespace hyco::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string render_health_json(const HealthSnapshot& snap) {
  std::string out;
  out.reserve(640 + snap.workers.size() * 200);
  out += "{\"schema\":\"hyco-health/2\"";
  out += ",\"elapsed_ms\":" + std::to_string(snap.elapsed_ms);
  out += ",\"runs\":{\"total\":" + std::to_string(snap.runs_total);
  out += ",\"folded\":" + std::to_string(snap.runs_folded);
  out += ",\"resumed\":" + std::to_string(snap.runs_resumed) + "}";
  out += ",\"cells\":{\"total\":" + std::to_string(snap.cells_total);
  out += ",\"completed\":" + std::to_string(snap.cells_completed) + "}";
  out += ",\"chunks\":{\"total\":" + std::to_string(snap.chunks_total);
  out += ",\"pending\":" + std::to_string(snap.chunks_pending);
  out += ",\"leased\":" + std::to_string(snap.chunks_leased);
  out += ",\"folded\":" + std::to_string(snap.chunks_folded) + "}";
  out += ",\"fold_rate_per_sec\":";
  append_double(out, snap.fold_rate_per_sec);
  out += ",\"eta_sec\":";
  append_double(out, snap.eta_sec);
  out += ",\"recovery\":{\"lease_expiries\":" +
         std::to_string(snap.lease_expiries);
  out += ",\"requeued_chunks\":" + std::to_string(snap.requeued_chunks);
  out += ",\"worker_reconnects\":" + std::to_string(snap.worker_reconnects);
  out += ",\"checkpoint_flush_ms\":" +
         std::to_string(snap.checkpoint_flush_ms) + "}";
  out += ",\"workers\":[";
  bool first = true;
  for (const WorkerHealth& w : snap.workers) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(w.id);
    out += ",\"welcomed\":";
    out += w.welcomed ? "true" : "false";
    out += ",\"connected_ms\":" + std::to_string(w.connected_ms);
    out += ",\"last_seen_ms\":" + std::to_string(w.last_seen_ms);
    out += ",\"active_leases\":" + std::to_string(w.active_leases);
    out += ",\"folded_chunks\":" + std::to_string(w.folded_chunks);
    out += ",\"folded_runs\":" + std::to_string(w.folded_runs);
    out += ",\"reconnects\":" + std::to_string(w.reconnects);
    out += ",\"oldest_lease_ms\":" + std::to_string(w.oldest_lease_ms);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string render_http_response(const std::string& json_body) {
  std::string out;
  out.reserve(json_body.size() + 128);
  out += "HTTP/1.0 200 OK\r\n";
  out += "Content-Type: application/json\r\n";
  out += "Content-Length: " + std::to_string(json_body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += json_body;
  return out;
}

}  // namespace hyco::obs
