// Per-phase latency instrumentation: an IRunObserver that converts phase
// begin/decide events into sim-time spans. Each process has at most one
// open phase; the next phase-begin (or its decision) closes it and credits
// the elapsed sim-time to that phase's bucket. Time comes from an injected
// clock callback (the runner passes the simulator's now()), so the observer
// itself is simulation-agnostic and unit-testable with a fake clock.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"
#include "obs/metrics.h"
#include "obs/observer.h"

namespace hyco::obs {

class PhaseTimings final : public IRunObserver {
 public:
  PhaseTimings(ProcId n, std::function<SimTime()> now);

  void on_phase_begin(ProcId p, Round r, Phase ph) override;
  void on_decide(ProcId p, Round r) override;
  void on_quorum_satisfied(ProcId p, Round r, Phase ph) override;

  /// Writes the latency metrics into `s`: total closed phase-1/phase-2
  /// span ns (summed over processes and rounds), the spread between the
  /// first and last decision, and the total phase-begin-to-quorum wait. A
  /// phase still open at the end of the run (crashed or parked process) is
  /// discarded — only completed phases carry a defined duration.
  void fill(ObsSample& s) const;

  [[nodiscard]] std::uint64_t phase1_ns() const { return phase_ns_[0]; }
  [[nodiscard]] std::uint64_t phase2_ns() const { return phase_ns_[1]; }
  [[nodiscard]] std::uint64_t quorum_wait_ns() const {
    return quorum_wait_ns_;
  }
  [[nodiscard]] std::uint64_t decided_count() const { return decided_; }

 private:
  void close_open(ProcId p);

  struct Open {
    Phase phase = Phase::One;
    SimTime since = 0;
    bool active = false;
  };

  std::function<SimTime()> now_;
  std::vector<Open> open_;
  std::uint64_t phase_ns_[2] = {0, 0};  ///< [Phase::One, Phase::Two]
  std::uint64_t quorum_wait_ns_ = 0;    ///< phase begin -> quorum, summed
  SimTime first_decide_ = kSimTimeNever;
  SimTime last_decide_ = kSimTimeNever;
  std::uint64_t decided_ = 0;
};

}  // namespace hyco::obs
