// Metrics registry for the observability layer: a fixed set of per-run
// counters and latency metrics keyed by stable ids, plus the mergeable
// accumulator that aggregates them per cell.
//
// Two invariants carry everything downstream:
//  * *Out-of-band*: samples are filled from instrumentation that never
//    touches the seeded RNG, so collecting them cannot change a run — a
//    metrics-on sweep emits byte-identical core artifacts to a metrics-off
//    one.
//  * *Merge-order-invariant*: aggregation state is exact integer sums
//    (ExactMoments) and elementwise-added histogram buckets, so merging
//    chunk accumulators in any order or grouping — one thread, sixty-four,
//    or a fleet of TCP workers — yields bit-identical metric values.
#pragma once

#include <array>
#include <cstdint>

#include "util/stats.h"

namespace hyco::obs {

/// Stable metric ids. The enumerator order is the serialization order of
/// checkpoint/wire "o" lines and of report columns — append only.
enum class ObsId : std::uint8_t {
  // Message-class counters (filled from NetStats / ProcessStats on every
  // run — free, they are already counted):
  kDelivered = 0,
  kDroppedPartitioned,
  kDroppedLost,
  kDuplicated,
  kHeldPartitioned,
  kCoinFlips,
  // Per-run latency metrics in sim-time ns (filled only when
  // RunConfig::collect_obs installs the phase-timing observer):
  kPhase1Ns,
  kPhase2Ns,
  kDecideSpreadNs,
  // Appended per the serialization contract (old checkpoints still load —
  // the "o" reader is name-keyed and skips unknown ids):
  kRounds,        ///< max decision round of the run (always filled)
  kQuorumWaitNs,  ///< sim-time from phase begin to quorum satisfaction,
                  ///< summed over processes and rounds (collect_obs only)
};

inline constexpr std::size_t kObsIdCount = 11;
inline constexpr std::size_t kObsLatencyCount = 5;  ///< trailing latency ids

/// Stable string id ("delivered", "phase1_ns", ...) — the registry key used
/// in checkpoint lines, report columns, and JSON.
const char* obs_id_name(ObsId id);

/// True for the latency-class ids, which additionally aggregate into a
/// log-bucket histogram (counters only need exact sums).
[[nodiscard]] constexpr bool obs_id_is_latency(ObsId id) {
  return static_cast<std::size_t>(id) >= kObsIdCount - kObsLatencyCount;
}

/// One run's metric values, indexed by ObsId. Plain array of u64 — cheap to
/// fill, copy, and carry through RunResult/RunRecord.
struct ObsSample {
  std::array<std::uint64_t, kObsIdCount> v{};

  std::uint64_t& operator[](ObsId id) {
    return v[static_cast<std::size_t>(id)];
  }
  std::uint64_t operator[](ObsId id) const {
    return v[static_cast<std::size_t>(id)];
  }
};

/// Power-of-two-bucket histogram over u64 values: bucket 0 counts zeros,
/// bucket i counts values with bit width i (i.e. [2^(i-1), 2^i)). Merging is
/// elementwise addition — a pure function of the sample multiset — and
/// quantiles interpolate inside a bucket deterministically, so single-machine
/// and distributed aggregation report identical percentiles without shipping
/// raw samples.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  ///< zeros + bit widths 1..64

  void add(std::uint64_t x);
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i];
  }
  /// Interpolated quantile, q in [0, 100]. 0 when empty.
  [[nodiscard]] double percentile(double q) const;

  static LogHistogram from_counts(
      const std::array<std::uint64_t, kBuckets>& counts);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Per-cell aggregation of ObsSamples: exact moments for every id, plus a
/// log histogram per latency id. All runs of the cell contribute (counters
/// are meaningful whether or not the run terminated).
class ObsAccumulator {
 public:
  void add(const ObsSample& s);
  void merge(const ObsAccumulator& other);

  [[nodiscard]] const ExactMoments& moments(ObsId id) const {
    return moments_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] ExactMoments& moments(ObsId id) {
    return moments_[static_cast<std::size_t>(id)];
  }
  /// Histogram of a latency id (obs_id_is_latency(id) must hold).
  [[nodiscard]] const LogHistogram& histogram(ObsId id) const;
  [[nodiscard]] LogHistogram& histogram(ObsId id);

  /// Exact sum over all added samples (counter semantics).
  [[nodiscard]] std::uint64_t sum(ObsId id) const {
    return static_cast<std::uint64_t>(moments(id).raw_sum());
  }

 private:
  std::array<ExactMoments, kObsIdCount> moments_{};
  std::array<LogHistogram, kObsLatencyCount> hists_{};
};

}  // namespace hyco::obs
