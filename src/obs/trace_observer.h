// IRunObserver that mirrors consensus phase structure into the trace ring:
// phase begins, quorum satisfactions, and decides become PhaseStart/Quorum/
// Decide records with structured "r=<round> ph=<phase>" details. Records
// inherit the trace's causal context (the delivery being dispatched), so a
// Decide chains back to the message whose arrival triggered it. Strictly
// passive — reads the clock, writes the trace, touches nothing else.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "core/types.h"
#include "obs/observer.h"
#include "sim/trace.h"

namespace hyco::obs {

class TraceObserver final : public IRunObserver {
 public:
  TraceObserver(Trace& trace, std::function<SimTime()> now)
      : trace_(trace), now_(std::move(now)) {}

  void on_phase_begin(ProcId p, Round r, Phase ph) override {
    trace_.record(now_(), TraceKind::PhaseStart, p, detail(r, ph));
  }

  void on_decide(ProcId p, Round r) override {
    trace_.record(now_(), TraceKind::Decide, p, "r=" + std::to_string(r));
  }

  void on_quorum_satisfied(ProcId p, Round r, Phase ph) override {
    trace_.record(now_(), TraceKind::Quorum, p, detail(r, ph));
  }

 private:
  static std::string detail(Round r, Phase ph) {
    return "r=" + std::to_string(r) +
           " ph=" + (ph == Phase::One ? "1" : "2");
  }

  Trace& trace_;
  std::function<SimTime()> now_;
};

}  // namespace hyco::obs
