// Structured trace export: promotes the human-readable trace ring to a
// schema'd, machine-parseable artifact so a failing seed's full event
// timeline feeds replay tooling instead of grep.
//
// Two formats, same logical schema ("hyco-trace/2"):
//  * JSONL — a header line {"schema":"hyco-trace/2","cell":..,"run":..,
//    "seed":..,"label":"..","recorded":..,"truncated":..} followed by one
//    record object per line {"at":..,"kind":"send","proc":..,"mid":..,
//    "parent":..,"detail":".."};
//  * compact binary — a magic tag, the same header fields, then
//    length-prefixed records (host-endian; a local replay format, not a
//    portable archive).
// v2 adds the causal ids (mid/parent, see sim/trace.h) and honest ring
// accounting: `recorded` is the total number of records the run produced and
// `truncated` flags that the ring wrapped, so the file holds only the
// trailing window. Both formats round-trip exactly through the readers
// below, which only accept what the writers emit.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace hyco::obs {

/// Identity of the traced run, stamped into the export header so a trace
/// file is self-describing (which cell, which run index, which seed).
struct TraceMeta {
  std::uint64_t cell = 0;
  std::uint64_t run = 0;
  std::uint64_t seed = 0;
  std::string label;
  /// Total records the run produced (Trace::recorded()); the writers stamp
  /// it so a wrapped ring is detectable from the file alone.
  std::uint64_t recorded = 0;
  /// True when the ring dropped its oldest records (recorded > held).
  bool truncated = false;
};

void write_trace_jsonl(std::ostream& out, const TraceMeta& meta,
                       const Trace& trace);
void write_trace_binary(std::ostream& out, const TraceMeta& meta,
                        const Trace& trace);

/// Parse a JSONL/binary trace written by the writers above. Returns false
/// on any malformed header or record. `records` is replaced, oldest first.
bool read_trace_jsonl(std::istream& in, TraceMeta& meta,
                      std::vector<TraceRecord>& records);
bool read_trace_binary(std::istream& in, TraceMeta& meta,
                       std::vector<TraceRecord>& records);

/// Inverse of to_cstring(TraceKind); false for unknown names.
bool trace_kind_from_name(const std::string& name, TraceKind& out);

}  // namespace hyco::obs
