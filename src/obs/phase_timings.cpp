#include "obs/phase_timings.h"

#include <utility>

#include "util/assert.h"

namespace hyco::obs {

PhaseTimings::PhaseTimings(ProcId n, std::function<SimTime()> now)
    : now_(std::move(now)), open_(static_cast<std::size_t>(n)) {
  HYCO_CHECK_MSG(n > 0, "phase timings need at least one process");
  HYCO_CHECK_MSG(static_cast<bool>(now_), "phase timings need a clock");
}

void PhaseTimings::close_open(ProcId p) {
  Open& o = open_[static_cast<std::size_t>(p)];
  if (!o.active) return;
  const SimTime t = now_();
  if (t > o.since) {
    phase_ns_[o.phase == Phase::One ? 0 : 1] +=
        static_cast<std::uint64_t>(t - o.since);
  }
  o.active = false;
}

void PhaseTimings::on_phase_begin(ProcId p, Round /*r*/, Phase ph) {
  close_open(p);
  Open& o = open_[static_cast<std::size_t>(p)];
  o.phase = ph;
  o.since = now_();
  o.active = true;
}

void PhaseTimings::on_quorum_satisfied(ProcId p, Round /*r*/, Phase /*ph*/) {
  // Credit the wait from the open phase's begin to now. The phase stays
  // open — quorum satisfaction is a milestone inside the span, not its end.
  const Open& o = open_[static_cast<std::size_t>(p)];
  if (!o.active) return;
  const SimTime t = now_();
  if (t > o.since) quorum_wait_ns_ += static_cast<std::uint64_t>(t - o.since);
}

void PhaseTimings::on_decide(ProcId p, Round /*r*/) {
  close_open(p);
  const SimTime t = now_();
  if (first_decide_ == kSimTimeNever || t < first_decide_) first_decide_ = t;
  if (last_decide_ == kSimTimeNever || t > last_decide_) last_decide_ = t;
  ++decided_;
}

void PhaseTimings::fill(ObsSample& s) const {
  s[ObsId::kPhase1Ns] = phase_ns_[0];
  s[ObsId::kPhase2Ns] = phase_ns_[1];
  s[ObsId::kDecideSpreadNs] =
      decided_ > 0 ? static_cast<std::uint64_t>(last_decide_ - first_decide_)
                   : 0;
  s[ObsId::kQuorumWaitNs] = quorum_wait_ns_;
}

}  // namespace hyco::obs
