#include "obs/causal.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/assert.h"

namespace hyco::obs {

namespace {

/// Parses a decimal integer starting at `s[i]`; advances `i` past it.
bool scan_int(const std::string& s, std::size_t& i, long long& out) {
  const char* start = s.c_str() + i;
  char* end = nullptr;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start) return false;
  i += static_cast<std::size_t>(end - start);
  out = v;
  return true;
}

/// Parses an estimate token ("0", "1", "bot") at `s[i]`.
bool scan_est(const std::string& s, std::size_t i, int& out) {
  if (s.compare(i, 3, "bot") == 0) {
    out = -1;
    return true;
  }
  if (i < s.size() && (s[i] == '0' || s[i] == '1')) {
    out = s[i] - '0';
    return true;
  }
  return false;
}

}  // namespace

RecordInfo parse_record_detail(const TraceRecord& r) {
  RecordInfo out;
  const std::string& d = r.detail;

  // Milestone records from the trace observer: "r=<round> ph=<1|2>" and
  // Decide's "r=<round>".
  if (r.kind == TraceKind::PhaseStart || r.kind == TraceKind::Quorum ||
      r.kind == TraceKind::Decide) {
    std::size_t i = d.find("r=");
    long long v = 0;
    if (i != std::string::npos) {
      i += 2;
      if (scan_int(d, i, v)) out.round = static_cast<Round>(v);
    }
    i = d.find("ph=");
    if (i != std::string::npos) {
      i += 3;
      if (scan_int(d, i, v) && (v == 1 || v == 2)) {
        out.phase = static_cast<int>(v);
      }
    }
    return out;
  }

  // Message-bearing records (Send/Deliver/Drop): the detail embeds
  // Message::to_string(), possibly prefixed ("lost; ", "partitioned; ",
  // "receiver crashed; ") and suffixed (" -> pN" / " from pN").
  std::size_t at = d.find("PHASE(r=");
  if (at != std::string::npos) {
    out.is_phase_msg = true;
    std::size_t i = at + 8;
    long long v = 0;
    if (scan_int(d, i, v)) out.round = static_cast<Round>(v);
    const std::size_t ph = d.find(",ph", at);
    if (ph != std::string::npos && ph + 3 < d.size() &&
        (d[ph + 3] == '1' || d[ph + 3] == '2')) {
      out.phase = d[ph + 3] - '0';
    }
    const std::size_t est = d.find(",est=", at);
    if (est != std::string::npos) scan_est(d, est + 5, out.est);
  } else if ((at = d.find("DECIDE(")) != std::string::npos) {
    out.is_decide_msg = true;
    scan_est(d, at + 7, out.est);
  }

  // Peer: the trailing " -> pN" (Send/Drop) or " from pN" (Deliver).
  std::size_t p = d.rfind(" -> p");
  std::size_t skip = 5;
  if (p == std::string::npos) {
    p = d.rfind(" from p");
    skip = 7;
  }
  if (p != std::string::npos) {
    std::size_t i = p + skip;
    long long v = 0;
    if (scan_int(d, i, v)) out.peer = static_cast<ProcId>(v);
  }
  return out;
}

CausalGraph CausalGraph::build(TraceMeta meta,
                               std::vector<TraceRecord> records) {
  CausalGraph g;
  g.meta_ = std::move(meta);
  g.records_ = std::move(records);
  g.info_.reserve(g.records_.size());
  for (std::size_t i = 0; i < g.records_.size(); ++i) {
    const TraceRecord& r = g.records_[i];
    g.info_.push_back(parse_record_detail(r));
    if (r.mid == 0) continue;
    if (r.kind == TraceKind::Send) {
      g.mid_send_.emplace(r.mid, i);
    } else if (r.kind == TraceKind::Deliver || r.kind == TraceKind::Drop) {
      g.mid_consume_.emplace(r.mid, i);
    }
  }
  return g;
}

std::size_t CausalGraph::send_of(std::uint64_t mid) const {
  const auto it = mid_send_.find(mid);
  return it == mid_send_.end() ? npos : it->second;
}

std::size_t CausalGraph::consume_of(std::uint64_t mid) const {
  const auto it = mid_consume_.find(mid);
  return it == mid_consume_.end() ? npos : it->second;
}

std::vector<std::size_t> CausalGraph::causes(std::size_t i) const {
  std::vector<std::size_t> out;
  const TraceRecord& r = records_[i];
  if (r.parent != 0) {
    const std::size_t d = consume_of(r.parent);
    if (d != npos && d != i) out.push_back(d);
  }
  if ((r.kind == TraceKind::Deliver || r.kind == TraceKind::Drop) &&
      r.mid != 0) {
    const std::size_t s = send_of(r.mid);
    if (s != npos) out.push_back(s);
  }
  return out;
}

std::vector<std::size_t> CausalGraph::backward_slice(std::size_t i) const {
  HYCO_CHECK_MSG(i < records_.size(), "slice root out of range");
  std::vector<char> seen(records_.size(), 0);
  std::vector<std::size_t> stack{i};
  seen[i] = 1;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    for (const std::size_t c : causes(cur)) {
      if (seen[c] != 0) continue;
      seen[c] = 1;
      stack.push_back(c);
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < seen.size(); ++k) {
    if (seen[k] != 0) out.push_back(k);
  }
  return out;
}

std::vector<std::size_t> CausalGraph::critical_path(std::size_t i) const {
  HYCO_CHECK_MSG(i < records_.size(), "path root out of range");
  std::vector<std::size_t> rev;
  std::vector<char> seen(records_.size(), 0);
  std::size_t cur = i;
  while (cur != npos && seen[cur] == 0) {
    seen[cur] = 1;
    rev.push_back(cur);
    const TraceRecord& r = records_[cur];
    std::size_t next = npos;
    if ((r.kind == TraceKind::Deliver || r.kind == TraceKind::Drop) &&
        r.mid != 0) {
      next = send_of(r.mid);
    }
    if (next == npos && r.parent != 0) next = consume_of(r.parent);
    cur = next;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::vector<std::size_t> CausalGraph::decides() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].kind == TraceKind::Decide) out.push_back(i);
  }
  return out;
}

std::vector<CausalGraph::QuorumWait> CausalGraph::quorum_waits() const {
  std::vector<QuorumWait> out;
  // Open window per process: index into `out` or npos.
  std::unordered_map<ProcId, std::size_t> open;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& r = records_[i];
    const RecordInfo& fi = info_[i];
    switch (r.kind) {
      case TraceKind::PhaseStart: {
        open.erase(r.proc);
        QuorumWait w;
        w.proc = r.proc;
        w.round = fi.round;
        w.phase = fi.phase;
        w.begin = r.at;
        open[r.proc] = out.size();
        out.push_back(w);
        break;
      }
      case TraceKind::Quorum: {
        const auto it = open.find(r.proc);
        if (it == open.end()) break;
        QuorumWait& w = out[it->second];
        if (!w.satisfied && fi.round == w.round && fi.phase == w.phase) {
          w.satisfied = true;
          w.quorum = r.at;
          w.arrivals_at_quorum = w.arrivals_total;
        }
        break;
      }
      case TraceKind::Deliver: {
        const auto it = open.find(r.proc);
        if (it == open.end()) break;
        QuorumWait& w = out[it->second];
        if (fi.is_phase_msg && fi.round == w.round && fi.phase == w.phase) {
          ++w.arrivals_total;
          w.last_arrival = r.at;
        }
        break;
      }
      case TraceKind::Decide:
        open.erase(r.proc);
        break;
      default:
        break;
    }
  }
  // Windows still open at the end of the trace never reached a quorum or a
  // decision — stalled phases.
  for (const auto& [proc, idx] : open) {
    if (!out[idx].satisfied) out[idx].stalled = true;
  }
  return out;
}

CausalGraph::Provenance CausalGraph::provenance(
    std::size_t decide_index) const {
  HYCO_CHECK_MSG(decide_index < records_.size(), "decide index out of range");
  const TraceRecord& dec = records_[decide_index];
  HYCO_CHECK_MSG(dec.kind == TraceKind::Decide,
                 "provenance root must be a Decide record");
  Provenance p;
  p.decide_index = decide_index;
  p.proc = dec.proc;
  p.round = info_[decide_index].round;
  p.at = dec.at;
  p.slice = backward_slice(decide_index);

  for (const std::size_t i : p.slice) {
    const TraceRecord& r = records_[i];
    const RecordInfo& fi = info_[i];
    if (r.kind != TraceKind::Deliver) continue;
    p.support.push_back(i);
    if (fi.is_phase_msg && fi.phase == 1 && fi.round == p.round &&
        fi.peer >= 0) {
      if (std::find(p.phase1_senders.begin(), p.phase1_senders.end(),
                    fi.peer) == p.phase1_senders.end()) {
        p.phase1_senders.push_back(fi.peer);
      }
    }
  }
  std::sort(p.phase1_senders.begin(), p.phase1_senders.end());

  // Decided value: the DECIDE delivery that triggered this decide (parent
  // edge), or failing that, the DECIDE broadcast the decide itself emits
  // (Send records at the same proc whose parent is the decide's parent,
  // scanning forward from the decide).
  if (dec.parent != 0) {
    const std::size_t trigger = consume_of(dec.parent);
    if (trigger != npos && info_[trigger].is_decide_msg &&
        info_[trigger].est >= 0) {
      p.decided_est = info_[trigger].est;
    }
  }
  if (!p.decided_est.has_value()) {
    for (std::size_t i = decide_index + 1; i < records_.size(); ++i) {
      const TraceRecord& r = records_[i];
      if (r.at != dec.at) break;  // the broadcast happens at decide time
      if (r.kind == TraceKind::Send && r.proc == dec.proc &&
          info_[i].is_decide_msg && info_[i].est >= 0) {
        p.decided_est = info_[i].est;
        break;
      }
    }
  }

  // Consistency: binary phase-2 estimates of the deciding round inside the
  // slice must match the decided value — a mismatch means the slice carried
  // support for the other value, which a correct run cannot produce.
  if (p.decided_est.has_value()) {
    for (const std::size_t i : p.support) {
      const RecordInfo& fi = info_[i];
      if (fi.is_phase_msg && fi.phase == 2 && fi.round == p.round &&
          fi.est >= 0 && fi.est != *p.decided_est) {
        p.est_consistent = false;
        break;
      }
    }
  }
  return p;
}

}  // namespace hyco::obs
