#include "obs/metrics.h"

#include <bit>

#include "util/assert.h"

namespace hyco::obs {

const char* obs_id_name(ObsId id) {
  switch (id) {
    case ObsId::kDelivered: return "delivered";
    case ObsId::kDroppedPartitioned: return "dropped_partitioned";
    case ObsId::kDroppedLost: return "dropped_lost";
    case ObsId::kDuplicated: return "duplicated";
    case ObsId::kHeldPartitioned: return "held_partitioned";
    case ObsId::kCoinFlips: return "coin_flips";
    case ObsId::kPhase1Ns: return "phase1_ns";
    case ObsId::kPhase2Ns: return "phase2_ns";
    case ObsId::kDecideSpreadNs: return "decide_spread_ns";
    case ObsId::kRounds: return "decision_rounds";
    case ObsId::kQuorumWaitNs: return "quorum_wait_ns";
  }
  return "?";
}

void LogHistogram::add(std::uint64_t x) {
  ++counts_[x == 0 ? 0 : static_cast<std::size_t>(std::bit_width(x))];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double LogHistogram::percentile(double q) const {
  HYCO_CHECK_MSG(q >= 0.0 && q <= 100.0, "percentile " << q << " out of range");
  if (total_ == 0) return 0.0;
  // Rank of the requested quantile over the total count; walk buckets and
  // linearly interpolate inside the first bucket whose cumulative count
  // covers it. Bucket i > 0 spans [2^(i-1), 2^i); bucket 0 is exactly 0.
  const double rank = q / 100.0 * static_cast<double>(total_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += counts_[i];
    if (rank >= static_cast<double>(seen)) continue;
    if (i == 0) return 0.0;
    const double lo = i == 1 ? 1.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
    const double hi = i >= 64 ? 1.8446744073709552e19
                              : static_cast<double>(std::uint64_t{1} << i);
    const double span = static_cast<double>(counts_[i]);
    const double frac = (rank - lo_rank) / span;
    return lo + (hi - lo) * frac;
  }
  // rank == total - 1 fell off the loop via floating rounding; return the
  // top of the highest occupied bucket's lower edge.
  for (std::size_t i = kBuckets; i-- > 0;) {
    if (counts_[i] == 0) continue;
    if (i == 0) return 0.0;
    return i == 1 ? 1.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
  }
  return 0.0;
}

LogHistogram LogHistogram::from_counts(
    const std::array<std::uint64_t, kBuckets>& counts) {
  LogHistogram h;
  h.counts_ = counts;
  h.total_ = 0;
  for (const std::uint64_t c : counts) h.total_ += c;
  return h;
}

void ObsAccumulator::add(const ObsSample& s) {
  for (std::size_t i = 0; i < kObsIdCount; ++i) {
    moments_[i].add(s.v[i]);
    const auto id = static_cast<ObsId>(i);
    if (obs_id_is_latency(id)) histogram(id).add(s.v[i]);
  }
}

void ObsAccumulator::merge(const ObsAccumulator& other) {
  for (std::size_t i = 0; i < kObsIdCount; ++i) {
    moments_[i].merge(other.moments_[i]);
  }
  for (std::size_t i = 0; i < kObsLatencyCount; ++i) {
    hists_[i].merge(other.hists_[i]);
  }
}

const LogHistogram& ObsAccumulator::histogram(ObsId id) const {
  HYCO_CHECK_MSG(obs_id_is_latency(id),
                 "metric \"" << obs_id_name(id) << "\" has no histogram");
  return hists_[static_cast<std::size_t>(id) - (kObsIdCount - kObsLatencyCount)];
}

LogHistogram& ObsAccumulator::histogram(ObsId id) {
  HYCO_CHECK_MSG(obs_id_is_latency(id),
                 "metric \"" << obs_id_name(id) << "\" has no histogram");
  return hists_[static_cast<std::size_t>(id) - (kObsIdCount - kObsLatencyCount)];
}

}  // namespace hyco::obs
