// Causal forensics over an exported trace ("hyco-trace/2"): rebuilds the
// happens-before DAG from the mid/parent ids sim/trace.h stamps on every
// record, and answers the questions a failing or slow seed raises —
//
//  * quorum_waits(): per (process, round, phase), how long from phase begin
//    to the k-th arrival that satisfied the quorum vs to the last arrival —
//    the gap is slack the algorithm never waited for;
//  * critical_path(): the latest-cause chain ending at a decision — the
//    alternating Deliver <- Send <- Deliver ... spine whose delays bound the
//    run's latency;
//  * provenance(): the backward slice from a Decide to the minimal message
//    set that supported it — which deliveries actually carried the decision
//    and which processes sent the phase-1 support.
//
// The graph is layout-agnostic: it works on records + meta alone, so both
// the JSONL and the binary reader feed it identically (pinned by test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/trace_export.h"
#include "sim/trace.h"

namespace hyco::obs {

/// Structured fields recovered from a record's detail string. Every field is
/// optional — a Note or a service record simply parses to "nothing".
struct RecordInfo {
  bool is_phase_msg = false;   ///< detail carries a PHASE(...) message
  bool is_decide_msg = false;  ///< detail carries a DECIDE(...) message
  Round round = -1;            ///< message/phase round; -1 = n/a
  int phase = 0;               ///< 1 or 2; 0 = n/a
  int est = -2;                ///< 0/1, -1 = bot; -2 = n/a
  ProcId peer = -1;            ///< "-> pN" target or "from pN" source; -1 = n/a
};

/// Parses the writer-side detail formats (net/network.cpp message records,
/// obs/trace_observer.h "r=<round> ph=<phase>" milestones).
RecordInfo parse_record_detail(const TraceRecord& r);

class CausalGraph {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  static CausalGraph build(TraceMeta meta, std::vector<TraceRecord> records);

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const RecordInfo& info(std::size_t i) const {
    return info_[i];
  }

  /// Record index of the Send / consuming Deliver-or-Drop carrying `mid`.
  [[nodiscard]] std::size_t send_of(std::uint64_t mid) const;
  [[nodiscard]] std::size_t consume_of(std::uint64_t mid) const;

  /// Immediate causes of record `i`: the Deliver of its parent context, and
  /// (for a Deliver/Drop) the Send sharing its mid. Missing ends of edges
  /// (ring truncation) are silently absent.
  [[nodiscard]] std::vector<std::size_t> causes(std::size_t i) const;

  /// Transitive causes of `i`, including `i` itself, ascending by index.
  [[nodiscard]] std::vector<std::size_t> backward_slice(std::size_t i) const;

  /// The latest-cause spine ending at `i`, oldest record first: from a
  /// Deliver step to its Send, from anything else to its parent Deliver.
  /// Because the parent context of a quorum-crossing event is exactly the
  /// arrival that completed the quorum, this chain is the run's critical
  /// path into `i`.
  [[nodiscard]] std::vector<std::size_t> critical_path(std::size_t i) const;

  /// Indices of all Decide records, in trace order.
  [[nodiscard]] std::vector<std::size_t> decides() const;

  /// Per-(process, round, phase) quorum-wait breakdown, in phase-begin
  /// order. A window opens at PhaseStart and closes at the process's next
  /// PhaseStart or Decide (or the end of the trace).
  struct QuorumWait {
    ProcId proc = -1;
    Round round = -1;
    int phase = 0;
    SimTime begin = 0;
    SimTime quorum = -1;        ///< Quorum record time; -1 = never satisfied
    SimTime last_arrival = -1;  ///< last matching PHASE delivery; -1 = none
    std::uint64_t arrivals_at_quorum = 0;  ///< deliveries up to the quorum
    std::uint64_t arrivals_total = 0;      ///< deliveries in the window
    bool satisfied = false;
    /// True when the window ran to the end of the trace without quorum or
    /// decision — a stalled phase (crashed peers, partition, or round cap).
    bool stalled = false;
  };
  [[nodiscard]] std::vector<QuorumWait> quorum_waits() const;

  /// Decision provenance: the backward slice from one Decide.
  struct Provenance {
    std::size_t decide_index = npos;
    ProcId proc = -1;
    Round round = -1;
    SimTime at = 0;
    std::vector<std::size_t> slice;    ///< full backward slice, ascending
    std::vector<std::size_t> support;  ///< Deliver records within the slice
    /// Senders of phase-1 PHASE deliveries of the deciding round found in
    /// the slice — the processes whose phase-1 broadcast this decision
    /// actually consumed.
    std::vector<ProcId> phase1_senders;
    /// Decided value recovered from the DECIDE traffic adjacent to the
    /// decide (the delivery that triggered it, or the broadcast it emits).
    std::optional<int> decided_est;
    /// False if a binary phase-2 estimate of the deciding round inside the
    /// slice contradicts decided_est.
    bool est_consistent = true;
  };
  [[nodiscard]] Provenance provenance(std::size_t decide_index) const;

 private:
  TraceMeta meta_;
  std::vector<TraceRecord> records_;
  std::vector<RecordInfo> info_;
  std::unordered_map<std::uint64_t, std::size_t> mid_send_;
  std::unordered_map<std::uint64_t, std::size_t> mid_consume_;
};

}  // namespace hyco::obs
