#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace hyco::obs {

namespace {

constexpr const char* kSchema = "hyco-trace/2";
constexpr char kBinaryMagic[8] = {'H', 'Y', 'T', 'R', 'C', 'B', '2', '\n'};

// Local JSON string escape/unescape: the exporter must not depend on the
// report layer, and the reader only needs to invert this exact writer.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
          const char c = s[i + 1 + static_cast<std::size_t>(k)];
          v <<= 4;
          if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
          else return false;
        }
        if (v > 0xFF) return false;  // the writer only escapes control bytes
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

/// Extracts the value of `"key":` from a single-line JSON object written by
/// this file's writers (flat objects, known key order not required).
bool find_raw_value(const std::string& line, const char* key,
                    std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    // String value: scan to the closing unescaped quote.
    std::size_t j = i + 1;
    while (j < line.size()) {
      if (line[j] == '\\') {
        j += 2;
        continue;
      }
      if (line[j] == '"') break;
      ++j;
    }
    if (j >= line.size()) return false;
    out = line.substr(i + 1, j - i - 1);
    return true;
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  out = line.substr(i, j - i);
  return !out.empty();
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

template <typename T>
void put_raw(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get_raw(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return in.gcount() == static_cast<std::streamsize>(sizeof(v));
}

constexpr std::uint32_t kMaxStringBytes = 1u << 20;

bool get_string(std::istream& in, std::string& s) {
  std::uint32_t len = 0;
  if (!get_raw(in, len) || len > kMaxStringBytes) return false;
  s.resize(len);
  if (len == 0) return true;
  in.read(s.data(), static_cast<std::streamsize>(len));
  return in.gcount() == static_cast<std::streamsize>(len);
}

}  // namespace

bool trace_kind_from_name(const std::string& name, TraceKind& out) {
  for (int k = 0; k <= static_cast<int>(kTraceKindLast); ++k) {
    const auto kind = static_cast<TraceKind>(k);
    if (name == to_cstring(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

void write_trace_jsonl(std::ostream& out, const TraceMeta& meta,
                       const Trace& trace) {
  // Ring accounting is stamped from the trace itself, so the header is
  // honest regardless of what the caller left in `meta`.
  const std::uint64_t recorded = trace.recorded();
  const bool truncated = recorded > trace.size();
  out << "{\"schema\":\"" << kSchema << "\",\"cell\":" << meta.cell
      << ",\"run\":" << meta.run << ",\"seed\":" << meta.seed
      << ",\"label\":\"" << escape(meta.label)
      << "\",\"records\":" << trace.size() << ",\"recorded\":" << recorded
      << ",\"truncated\":" << (truncated ? "true" : "false") << "}\n";
  trace.for_each([&](const TraceRecord& r) {
    out << "{\"at\":" << r.at << ",\"kind\":\"" << to_cstring(r.kind)
        << "\",\"proc\":" << r.proc << ",\"mid\":" << r.mid
        << ",\"parent\":" << r.parent << ",\"detail\":\"" << escape(r.detail)
        << "\"}\n";
  });
}

bool read_trace_jsonl(std::istream& in, TraceMeta& meta,
                      std::vector<TraceRecord>& records) {
  records.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  std::string schema, v;
  if (!find_raw_value(line, "schema", schema) || schema != kSchema) {
    return false;
  }
  std::uint64_t count = 0;
  if (!(find_raw_value(line, "cell", v) && parse_u64(v, meta.cell))) return false;
  if (!(find_raw_value(line, "run", v) && parse_u64(v, meta.run))) return false;
  if (!(find_raw_value(line, "seed", v) && parse_u64(v, meta.seed))) return false;
  if (!(find_raw_value(line, "records", v) && parse_u64(v, count))) return false;
  if (!(find_raw_value(line, "recorded", v) && parse_u64(v, meta.recorded))) {
    return false;
  }
  if (!find_raw_value(line, "truncated", v) ||
      (v != "true" && v != "false")) {
    return false;
  }
  meta.truncated = v == "true";
  if (!find_raw_value(line, "label", v) || !unescape(v, meta.label)) {
    return false;
  }
  // Cap the pre-reservation: `count` is attacker-controlled input in the
  // fuzzing sense, and the vector grows on demand anyway.
  records.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      count, kMaxStringBytes)));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRecord r;
    std::int64_t at = 0;
    if (!(find_raw_value(line, "at", v) && parse_i64(v, at))) return false;
    r.at = at;
    if (!find_raw_value(line, "kind", v) || !trace_kind_from_name(v, r.kind)) {
      return false;
    }
    std::int64_t proc = 0;
    if (!(find_raw_value(line, "proc", v) && parse_i64(v, proc))) return false;
    r.proc = static_cast<ProcId>(proc);
    if (!(find_raw_value(line, "mid", v) && parse_u64(v, r.mid))) return false;
    if (!(find_raw_value(line, "parent", v) && parse_u64(v, r.parent))) {
      return false;
    }
    if (!find_raw_value(line, "detail", v) || !unescape(v, r.detail)) {
      return false;
    }
    records.push_back(std::move(r));
  }
  return records.size() == count;
}

void write_trace_binary(std::ostream& out, const TraceMeta& meta,
                        const Trace& trace) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  put_raw(out, meta.cell);
  put_raw(out, meta.run);
  put_raw(out, meta.seed);
  put_raw(out, static_cast<std::uint32_t>(meta.label.size()));
  out.write(meta.label.data(),
            static_cast<std::streamsize>(meta.label.size()));
  const std::uint64_t recorded = trace.recorded();
  put_raw(out, recorded);
  put_raw(out, static_cast<std::uint8_t>(recorded > trace.size() ? 1 : 0));
  put_raw(out, static_cast<std::uint64_t>(trace.size()));
  trace.for_each([&](const TraceRecord& r) {
    put_raw(out, static_cast<std::int64_t>(r.at));
    put_raw(out, static_cast<std::uint8_t>(r.kind));
    put_raw(out, static_cast<std::int32_t>(r.proc));
    put_raw(out, r.mid);
    put_raw(out, r.parent);
    put_raw(out, static_cast<std::uint32_t>(r.detail.size()));
    out.write(r.detail.data(),
              static_cast<std::streamsize>(r.detail.size()));
  });
}

bool read_trace_binary(std::istream& in, TraceMeta& meta,
                       std::vector<TraceRecord>& records) {
  records.clear();
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return false;
  }
  if (!get_raw(in, meta.cell) || !get_raw(in, meta.run) ||
      !get_raw(in, meta.seed) || !get_string(in, meta.label)) {
    return false;
  }
  std::uint8_t truncated = 0;
  if (!get_raw(in, meta.recorded) || !get_raw(in, truncated) ||
      truncated > 1) {
    return false;
  }
  meta.truncated = truncated != 0;
  std::uint64_t count = 0;
  if (!get_raw(in, count)) return false;
  records.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      count, kMaxStringBytes)));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    std::int64_t at = 0;
    std::uint8_t kind = 0;
    std::int32_t proc = 0;
    if (!get_raw(in, at) || !get_raw(in, kind) || !get_raw(in, proc) ||
        kind > static_cast<std::uint8_t>(kTraceKindLast) ||
        !get_raw(in, r.mid) || !get_raw(in, r.parent) ||
        !get_string(in, r.detail)) {
      return false;
    }
    r.at = at;
    r.kind = static_cast<TraceKind>(kind);
    r.proc = proc;
    records.push_back(std::move(r));
  }
  return true;
}

}  // namespace hyco::obs
