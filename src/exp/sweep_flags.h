// The sweep binary's flag registry: every --flag it accepts, with a
// one-line summary. Single source of truth consumed by three places:
// bench/sweep.cpp rejects flags outside the registry, tests assert every
// registered flag is documented in docs/cli.md, and CI cross-checks the
// registry against the doc so neither can drift silently.
#pragma once

#include <string>
#include <vector>

namespace hyco {

struct SweepFlag {
  const char* name;     ///< flag name without the leading "--"
  const char* summary;  ///< one-line description
};

/// Every flag the sweep binary accepts, in registration order.
[[nodiscard]] const std::vector<SweepFlag>& sweep_flag_registry();

/// True when `name` (no leading "--") is a registered sweep flag.
[[nodiscard]] bool is_sweep_flag(const std::string& name);

}  // namespace hyco
