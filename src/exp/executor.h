// Multi-threaded grid execution.
//
// Each run of each cell is an independent, single-threaded, seed-determined
// run_consensus() call, so the executor fans (cell × run) tasks across
// worker threads with an atomic-counter work queue. Per-run metrics land in
// a slot preallocated by global task index, and aggregation folds those
// slots serially in task order afterwards — so the aggregate (and any
// report rendered from it) is bit-identical whether the grid ran on 1
// thread or 64.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/runner.h"
#include "exp/spec.h"
#include "util/stats.h"

namespace hyco {

/// Compact per-run metrics extracted from a RunResult (a full RunResult per
/// run would hold O(n) vectors; large grids only need these scalars).
struct RunRecord {
  int run = 0;                ///< run index within the cell
  std::uint64_t seed = 0;
  bool terminated = false;    ///< RunResult::all_correct_decided
  bool safe_ok = true;        ///< RunResult::safe()
  bool success = false;       ///< RunResult::success()
  Round rounds = 0;           ///< deepest deciding round
  SimTime decision_time = kSimTimeNever;
  std::uint64_t msgs = 0;     ///< unicasts scheduled
  std::uint64_t shm_proposals = 0;
  std::uint64_t consensus_objects = 0;
  std::uint64_t events = 0;
  std::size_t crashed = 0;
};

RunRecord extract_record(int run, std::uint64_t seed, const RunResult& r);

/// Aggregated outcome of one cell. Summaries cover terminated runs only
/// (matching how the paper's tables report cost conditioned on deciding).
struct CellResult {
  explicit CellResult(ExperimentCell c) : cell(std::move(c)) {}

  ExperimentCell cell;
  int runs = 0;
  int terminated = 0;
  int violations = 0;  ///< runs where safety did not hold

  Summary rounds;
  Summary msgs;
  Summary shm_proposals;
  Summary objects;
  Summary decision_time;
  Histogram round_hist{0.0, 64.0, 16};  ///< decision-round distribution

  /// Non-success() runs, in run order — the replay hook's work list.
  std::vector<RunRecord> failures;

  void add(const RunRecord& r);
  [[nodiscard]] double termination_rate() const;
};

/// Fans a grid across worker threads; see file comment for the determinism
/// contract.
class ParallelExecutor {
 public:
  struct Options {
    /// Worker count; 0 = std::thread::hardware_concurrency() (min 1).
    /// Negative values are rejected (ContractViolation) when running.
    std::int64_t threads = 0;
    /// Optional progress callback, invoked from worker threads after each
    /// completed run with (done, total). Must be thread-safe.
    std::function<void(std::size_t done, std::size_t total)> progress;
  };

  ParallelExecutor() = default;
  explicit ParallelExecutor(Options opts) : opts_(std::move(opts)) {}

  /// Runs every (cell × run) task and returns per-cell aggregates in cell
  /// order. Deterministic for a fixed spec regardless of thread count.
  [[nodiscard]] std::vector<CellResult> run(const ExperimentSpec& spec) const;

  /// Same, over an already-expanded grid.
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<ExperimentCell>& cells) const;

  /// Effective worker count for a task list of the given size.
  [[nodiscard]] unsigned worker_count(std::size_t total_tasks) const;

 private:
  Options opts_;
};

}  // namespace hyco
