// Multi-threaded grid execution over a streaming sink.
//
// Each run of each cell is an independent, single-threaded, seed-determined
// run_consensus() call. The executor divides every cell's 64-bit run index
// range into fixed chunks and lets worker threads pull chunks from an
// atomic cursor (work stealing without materializing per-run task lists —
// the work queue is index arithmetic over prefix sums, O(cells) state for
// grids of any run count). A worker folds its chunk into a fresh
// CellAccumulator and hands it to the RunSink; because every accumulator
// component is merge-order-invariant (see exp/sink.h), the per-cell
// statistics — and any report rendered from them — are bit-identical
// whether the grid ran on 1 thread or 64, streamed or batched.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/sink.h"
#include "exp/spec.h"

namespace hyco {

/// Fans a grid across worker threads; see file comment for the determinism
/// contract.
class ParallelExecutor {
 public:
  struct Options {
    /// Worker count; 0 = std::thread::hardware_concurrency() (min 1).
    /// Negative values are rejected (ContractViolation) when running.
    std::int64_t threads = 0;
    /// Maximum runs per work unit. Chunks never span cells; the last chunk
    /// of a cell may be short; and the executor shrinks the grain so small
    /// grids still produce at least ~4 chunks per worker (a 300-run cell
    /// must not serialize onto one thread). Chunking affects scheduling
    /// only — the merge-order-invariant accumulators emit identical bytes
    /// at any grain. Must be >= 1.
    std::uint64_t chunk_size = 1024;
    /// Quantile reservoir capacity per metric (exp/sink.h). Percentiles
    /// are exact while a cell's terminated-run count stays within it.
    std::size_t reservoir_capacity = MetricStats::kDefaultReservoir;
    /// Worst-failing-seed ring size per cell.
    std::size_t failure_capacity = CellAccumulator::kDefaultFailureCap;
    /// Optional progress callback, invoked from worker threads after each
    /// completed *chunk* with (runs done, total runs). Must be thread-safe.
    std::function<void(std::uint64_t done, std::uint64_t total)> progress;
    /// Optional throughput callback, invoked alongside `progress` with the
    /// chunk's decided service ops (zero for consensus cells). Lets the
    /// sweep CLI report ops/sec for service workloads whose per-run cost
    /// dwarfs the run count. Must be thread-safe.
    std::function<void(std::uint64_t ops)> ops_progress;
    /// Measure per-chunk wall/CPU time and feed RunSink::absorb_profile.
    /// Host-side timing only — simulation results are unaffected.
    bool profile = false;
    /// Independent runs interleaved per worker thread (consensus cells
    /// only; service cells always run one at a time). Lanes > 1 advance a
    /// cohort of simulators round-robin, tick by tick, to overlap the
    /// memory latency a single deep event queue exposes. Results are
    /// byte-identical at any lane count: each run's simulator is
    /// self-contained and cohort results fold in run-index order. Must be
    /// >= 1.
    std::uint64_t lanes = 1;
  };

  ParallelExecutor() = default;
  explicit ParallelExecutor(Options opts) : opts_(std::move(opts)) {}

  /// Streaming core: runs every (cell × run) task, folding chunks into
  /// `sink`. Cells may have heterogeneous run counts. Memory stays
  /// O(cells + threads × chunk accumulators) regardless of total runs.
  void run(const std::vector<ExperimentCell>& cells, RunSink& sink) const;

  /// Partial-grid core: executes only the listed run spans (chunks never
  /// cross a span). Spans must be non-empty, within their cell's run range,
  /// and — per cell — disjoint; a cell "completes" when all of *its spans*
  /// have been absorbed. This is the mid-cell resume path: the complement
  /// of a chunk checkpoint's folded ranges runs here and, because the
  /// accumulators are merge-order-invariant, merging the result with the
  /// checkpointed chunks is byte-identical to an uninterrupted run.
  void run(const std::vector<ExperimentCell>& cells,
           const std::vector<RunSpan>& spans, RunSink& sink) const;

  /// Batch convenience: executes through a record-retaining CollectingSink
  /// and returns per-cell aggregates in cell order. Deterministic for a
  /// fixed spec regardless of thread count.
  [[nodiscard]] std::vector<CellResult> run(const ExperimentSpec& spec) const;
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<ExperimentCell>& cells) const;

  /// Effective worker count for a task list of the given size.
  [[nodiscard]] unsigned worker_count(std::uint64_t total_tasks) const;

 private:
  Options opts_;
};

}  // namespace hyco
