#include "exp/replay.h"

namespace hyco {

std::vector<ReplayReport> replay_failures(
    const std::vector<CellResult>& results, std::size_t max_replays) {
  std::vector<ReplayReport> reports;
  for (const auto& res : results) {
    // Service runs have no consensus trace to replay; their failure
    // diagnostics live in the safety-checker violations already recorded.
    if (res.cell.service.enabled) continue;
    for (const auto& fail : res.failures()) {
      if (reports.size() >= max_replays) return reports;
      RunConfig cfg = res.cell.run_config(fail.run);
      cfg.enable_trace = true;
      const RunResult r = run_consensus(cfg);

      ReplayReport rep;
      rep.cell_index = res.cell.index;
      rep.cell_label = res.cell.label();
      rep.run = fail.run;
      rep.seed = cfg.seed;
      rep.terminated = r.all_correct_decided;
      rep.safe_ok = r.safe();
      rep.violations = r.violations;
      rep.trace = r.trace_dump;
      reports.push_back(std::move(rep));
    }
  }
  return reports;
}

void dump_replays(std::ostream& out,
                  const std::vector<ReplayReport>& reports) {
  for (const auto& rep : reports) {
    out << "=== replay: cell " << rep.cell_index << " [" << rep.cell_label
        << "] run " << rep.run << " seed " << rep.seed << " ===\n"
        << "terminated=" << (rep.terminated ? "yes" : "no")
        << " safe=" << (rep.safe_ok ? "yes" : "no") << '\n';
    for (const auto& v : rep.violations) out << "violation: " << v << '\n';
    out << rep.trace;
    if (!rep.trace.empty() && rep.trace.back() != '\n') out << '\n';
  }
}

}  // namespace hyco
