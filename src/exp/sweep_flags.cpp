#include "exp/sweep_flags.h"

namespace hyco {

const std::vector<SweepFlag>& sweep_flag_registry() {
  static const std::vector<SweepFlag> kFlags = {
      // Grid axes and execution.
      {"alg", "consensus algorithms: local_coin | common_coin | ben_or"},
      {"n", "process counts (comma list)"},
      {"m", "cluster counts (comma list; cells with m > n skip)"},
      {"runs", "seeds per cell"},
      {"threads", "local worker threads; 0 = hardware concurrency"},
      {"lanes", "independent runs interleaved per worker, tick by tick"
                " (consensus cells; byte-identical at any count)"},
      {"seed", "base seed"},
      {"eps", "common-coin corruption probabilities (comma list)"},
      {"inputs", "proposal assignment: split | all0 | all1"},
      {"delay", "message delay: uniform:LO:HI | constant:T | exp:MEAN"},
      {"crash", "crash patterns: none | minority | covering-dead |"
                " mid-broadcast (comma list)"},
      {"max-rounds", "per-run round cap"},
      // Artifacts.
      {"json", "write the JSON report to PATH (- for stdout)"},
      {"csv", "write the CSV report to PATH (- for stdout)"},
      {"csv-shard", "shard the CSV into PATH.000, PATH.001, ... N cells each"},
      {"replay", "re-run up to N failing seeds with tracing on"},
      {"quiet", "suppress the ASCII table"},
      // Streaming pipeline.
      {"stream", "drop per-run records; memory stays O(cells)"},
      {"max-records", "retain at most N records per cell (batch mode)"},
      {"chunk", "max runs per local work unit"},
      {"checkpoint", "append completed chunk/cell accumulator state to PATH"},
      {"resume", "load the checkpoint first and skip its completed work"},
      {"progress", "1 Hz stderr line: runs & cells done, runs/s, ETA"},
      // Distributed sweeps.
      {"serve", "coordinate: listen on PORT and lease run ranges to workers"},
      {"connect", "work for a coordinator at HOST:PORT (same grid flags)"},
      {"workers", "with --connect: parallel worker sessions"},
      {"reconnect", "with --connect: mid-sweep reconnect budget"},
      {"lease", "with --serve: runs per lease chunk"},
      {"lease-floor", "with --serve: adaptive-tail minimum lease size"},
      {"lease-ttl", "with --serve: seconds before an unfolded lease re-queues"},
      {"health", "with --serve: read-only HTTP progress endpoint port"},
      // Adversarial scenarios.
      {"loss", "per-link message loss probability"},
      {"dup", "per-link duplication probability"},
      {"reorder", "bounded-reordering jitter (ns/us/ms)"},
      {"partition", "scheduled cuts: KIND:IDS[:flap=D:period=D][@START..HEAL]"},
      {"recover", "crash-recovery cycles: PID@DOWN..UP or cluster:X@DOWN..UP"},
      {"coin-attack", "BIT:BOOST - delay round>=2 phase-1 carriers of BIT"},
      {"skew", "step-speed multipliers: proc:ID:xF or cluster:ID:xF"},
      // Observability.
      {"log-level", "trace | debug | info | warn | error"},
      {"net-stats", "append per-cell message-class counter columns"},
      {"phase-metrics", "collect per-phase latency timings and their columns"},
      {"profile", "append executor wall/cpu/msgs-per-sec columns (local only)"},
      {"trace-out", "re-run one (cell, run) traced and export its timeline"},
      {"trace-cell", "cell index to trace"},
      {"trace-run", "run index within the cell to trace"},
      {"trace-format", "trace export format: jsonl | binary"},
      {"trace-cap", "trace ring capacity in records (default 65536)"},
      // Replicated service workload.
      {"service", "run the replicated-state-machine workload over the"
                  " sequenced consensus core"},
      {"clients", "with --service: simulated closed-loop clients"},
      {"ops-per-client", "with --service: ops each client submits"},
      {"batch", "with --service: max ops per proposed batch (axis)"},
      {"batch-delay", "with --service: ns a partial batch waits to flush"},
      {"svc-load", "with --service: offered load in ops/sec; 0 = no think"
                   " time (axis)"},
  };
  return kFlags;
}

bool is_sweep_flag(const std::string& name) {
  for (const SweepFlag& f : sweep_flag_registry()) {
    if (name == f.name) return true;
  }
  return false;
}

}  // namespace hyco
