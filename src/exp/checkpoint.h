// Checkpoint/resume for interrupted sweeps.
//
// A checkpoint file is an append-only text log: a header binding it to one
// specific grid (a fingerprint over every cell's label, run count, seeds,
// and the accumulator capacities), followed by one self-delimited block per
// *completed* cell holding the cell's full CellAccumulator state — exact
// 128-bit moment sums, reservoir entries, histogram counts, and the failure
// ring. Because the accumulator is exact integer state, a resumed sweep
// reconstructs completed cells bit-for-bit and its final CSV/JSON artifacts
// are byte-identical to an uninterrupted run.
//
// Resume granularity is a cell: a cell interrupted mid-flight is re-run
// from scratch (its block was never appended). The loader ignores trailing
// partial blocks — a process killed mid-append loses at most one cell.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "exp/sink.h"
#include "exp/spec.h"

namespace hyco {

/// Identity of a grid execution: any change to the cell list, run counts,
/// seeds, inputs, or accumulator capacities changes the fingerprint, and
/// load_checkpoint refuses to resume across it.
[[nodiscard]] std::uint64_t grid_fingerprint(
    const std::vector<ExperimentCell>& cells, std::size_t reservoir_capacity,
    std::size_t failure_capacity);

/// Writes the one-line header; call once on a fresh checkpoint stream.
void write_checkpoint_header(std::ostream& out, std::uint64_t fingerprint);

/// Appends one completed cell's block (call with the cell's finalized
/// accumulator). Flushes so a kill loses at most the block in flight.
void append_checkpoint_cell(std::ostream& out, std::uint64_t cell_index,
                            const CellAccumulator& acc);

/// Parses a checkpoint stream, returning completed cells keyed by their
/// spec-expansion index. Throws ContractViolation when the header is
/// missing or the fingerprint does not match `expected_fingerprint`;
/// silently drops malformed or truncated trailing blocks.
[[nodiscard]] std::map<std::uint64_t, CellAccumulator> load_checkpoint(
    std::istream& in, std::uint64_t expected_fingerprint);

}  // namespace hyco
