// Checkpoint/resume for interrupted sweeps.
//
// A checkpoint file is an append-only text log: a header binding it to one
// specific grid (a fingerprint over every cell's label, run count, seeds,
// and the accumulator capacities), followed by self-delimited blocks. Two
// block kinds exist:
//  * a *cell* block holds the full, final CellAccumulator of one completed
//    cell;
//  * a *chunk* block holds the accumulator of one executed run range
//    [begin, end) of a cell still in flight — the chunk-granular trail that
//    lets a single monster cell resume mid-cell instead of from zero.
// Both carry exact 128-bit moment sums, reservoir entries, histogram
// counts, and the failure ring. Because the accumulator is exact integer
// state and merge-order-invariant, a resumed sweep reconstructs completed
// cells bit-for-bit, re-runs only the uncovered ranges of partial cells,
// and its final CSV/JSON artifacts are byte-identical to an uninterrupted
// run.
//
// The loader ignores trailing partial blocks — a process killed mid-append
// loses at most one cell (or, with chunk blocks, one chunk). Chunk blocks
// of a cell that also has a cell block are redundant and dropped on load.
//
// The same accumulator-state encoding doubles as the wire format of the
// distributed sweep protocol (src/dist/proto.h): workers ship chunk
// accumulators to the coordinator as exactly these lines.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "exp/sink.h"
#include "exp/spec.h"

namespace hyco {

/// Identity of a grid execution: any change to the cell list, run counts,
/// seeds, inputs, or accumulator capacities changes the fingerprint, and
/// load_checkpoint refuses to resume across it.
[[nodiscard]] std::uint64_t grid_fingerprint(
    const std::vector<ExperimentCell>& cells, std::size_t reservoir_capacity,
    std::size_t failure_capacity);

/// Serializes an accumulator's statistical state (metric moments +
/// reservoirs, histogram, failure ring — everything except the run counts,
/// which block headers carry). Shared by cell blocks, chunk blocks, and the
/// distributed wire protocol.
void write_accumulator_state(std::ostream& out, const CellAccumulator& acc);

/// Parses the lines written by write_accumulator_state into `out`
/// (reconstructing reservoir/failure capacities from the stream; the caller
/// sets runs/terminated/violations from its own header). Returns true on
/// success; on failure returns false and, when `stop_line` is non-null,
/// stores the offending line (empty at end of stream) so block loaders can
/// resync on a following block header. Never throws on malformed input.
bool read_accumulator_state(std::istream& in, CellAccumulator& out,
                            std::string* stop_line = nullptr);

/// Writes the one-line header; call once on a fresh checkpoint stream.
void write_checkpoint_header(std::ostream& out, std::uint64_t fingerprint);

/// Appends one completed cell's block (call with the cell's finalized
/// accumulator). Flushes so a kill loses at most the block in flight.
void append_checkpoint_cell(std::ostream& out, std::uint64_t cell_index,
                            const CellAccumulator& acc);

/// Appends one executed chunk's block: the accumulator of runs
/// [begin, end) of cell `cell_index`. Flushed like cell blocks.
void append_checkpoint_chunk(std::ostream& out, std::uint64_t cell_index,
                             std::uint64_t begin, std::uint64_t end,
                             const CellAccumulator& acc);

/// One folded run range of a partially-completed cell.
struct ChunkCheckpoint {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  CellAccumulator acc;
};

/// Everything a checkpoint stream holds: completed cells keyed by their
/// spec-expansion index, plus — for cells with no cell block — the folded
/// chunk ranges, sorted by begin, overlap-free (later conflicting blocks
/// are dropped).
struct CheckpointData {
  std::map<std::uint64_t, CellAccumulator> cells;
  std::map<std::uint64_t, std::vector<ChunkCheckpoint>> chunks;
};

/// Rewrites loaded checkpoint data as its minimal equivalent stream: the
/// header, one cell block per completed cell, then one chunk block per
/// *maximal contiguous chunk chain* — accumulator merge-order invariance
/// makes the merged block exactly equal to folding its originals, so a
/// resume from the compacted file is byte-identical to one from the full
/// trail. Used on --resume to keep the append-only trail from growing
/// without bound across repeated crash/restart cycles; write to a
/// temporary and rename over the original so a kill mid-rewrite cannot
/// lose the old file.
void write_compacted_checkpoint(std::ostream& out, std::uint64_t fingerprint,
                                const CheckpointData& data);

/// Parses a checkpoint stream, cell and chunk blocks both. Throws
/// ContractViolation when the header is missing or the fingerprint does not
/// match `expected_fingerprint`; silently drops malformed or truncated
/// trailing blocks.
[[nodiscard]] CheckpointData load_checkpoint_data(
    std::istream& in, std::uint64_t expected_fingerprint);

/// Cell-granular view of load_checkpoint_data (chunk blocks are parsed but
/// not returned) — the pre-chunk-checkpoint interface, kept for callers
/// that resume at cell granularity only.
[[nodiscard]] std::map<std::uint64_t, CellAccumulator> load_checkpoint(
    std::istream& in, std::uint64_t expected_fingerprint);

}  // namespace hyco
