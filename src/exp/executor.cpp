#include "exp/executor.h"

#include <atomic>
#include <thread>
#include <utility>

#include "util/assert.h"

namespace hyco {

RunRecord extract_record(int run, std::uint64_t seed, const RunResult& r) {
  RunRecord rec;
  rec.run = run;
  rec.seed = seed;
  rec.terminated = r.all_correct_decided;
  rec.safe_ok = r.safe();
  rec.success = r.success();
  rec.rounds = r.max_decision_round;
  rec.decision_time = r.last_decision_time;
  rec.msgs = r.net.unicasts_sent;
  rec.shm_proposals = r.shm.consensus_proposals;
  rec.consensus_objects = r.consensus_objects;
  rec.events = r.events;
  rec.crashed = r.crashed;
  return rec;
}

void CellResult::add(const RunRecord& r) {
  ++runs;
  if (r.terminated) {
    ++terminated;
    rounds.add(static_cast<double>(r.rounds));
    msgs.add(static_cast<double>(r.msgs));
    shm_proposals.add(static_cast<double>(r.shm_proposals));
    objects.add(static_cast<double>(r.consensus_objects));
    decision_time.add(static_cast<double>(r.decision_time));
    round_hist.add(static_cast<double>(r.rounds));
  }
  if (!r.safe_ok) ++violations;
  if (!r.success) failures.push_back(r);
}

double CellResult::termination_rate() const {
  return runs == 0 ? 0.0
                   : static_cast<double>(terminated) / static_cast<double>(runs);
}

unsigned ParallelExecutor::worker_count(std::size_t total_tasks) const {
  HYCO_CHECK_MSG(opts_.threads >= 0,
                 "thread count must be >= 0, got " << opts_.threads);
  auto t = static_cast<unsigned>(opts_.threads);
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (static_cast<std::size_t>(t) > total_tasks) {
    t = static_cast<unsigned>(total_tasks);
  }
  return t == 0 ? 1 : t;
}

std::vector<CellResult> ParallelExecutor::run(
    const ExperimentSpec& spec) const {
  return run(spec.expand());
}

std::vector<CellResult> ParallelExecutor::run(
    const std::vector<ExperimentCell>& cells) const {
  if (cells.empty()) return {};
  const std::size_t runs = static_cast<std::size_t>(cells.front().runs);
  for (const auto& c : cells) {
    HYCO_CHECK_MSG(static_cast<std::size_t>(c.runs) == runs,
                   "all cells of one execution must share runs_per_cell");
  }
  const std::size_t total = cells.size() * runs;

  // Slot per (cell, run) task, indexed globally: records[cell * runs + run].
  std::vector<RunRecord> records(total);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      const ExperimentCell& cell = cells[i / runs];
      const int run = static_cast<int>(i % runs);
      const RunConfig cfg = cell.run_config(run);
      records[i] = extract_record(run, cfg.seed, run_consensus(cfg));
      const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts_.progress) opts_.progress(d, total);
    }
  };

  const unsigned n_threads = worker_count(total);
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  // Serial fold in task order: the aggregate is independent of which worker
  // produced which record.
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult res(cells[c]);
    for (std::size_t k = 0; k < runs; ++k) res.add(records[c * runs + k]);
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace hyco
