#include "exp/executor.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "util/assert.h"

namespace hyco {

unsigned ParallelExecutor::worker_count(std::uint64_t total_tasks) const {
  HYCO_CHECK_MSG(opts_.threads >= 0,
                 "thread count must be >= 0, got " << opts_.threads);
  auto t = static_cast<unsigned>(opts_.threads);
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (static_cast<std::uint64_t>(t) > total_tasks) {
    t = static_cast<unsigned>(total_tasks);
  }
  return t == 0 ? 1 : t;
}

void ParallelExecutor::run(const std::vector<ExperimentCell>& cells,
                           RunSink& sink) const {
  if (cells.empty()) return;
  HYCO_CHECK_MSG(opts_.chunk_size >= 1, "chunk_size must be >= 1");

  const std::size_t n_cells = cells.size();
  std::uint64_t total_runs = 0;
  for (std::size_t c = 0; c < n_cells; ++c) {
    const std::uint64_t runs = cells[c].runs;
    HYCO_CHECK_MSG(runs >= 1, "cell " << cells[c].index << " has zero runs");
    HYCO_CHECK_MSG(total_runs <=
                       std::numeric_limits<std::uint64_t>::max() - runs,
                   "grid run count overflows 64 bits");
    total_runs += runs;
  }

  // Effective grain: the configured chunk size, shrunk so the pool sized
  // below always has >= ~4 chunks per worker to steal (small grids would
  // otherwise serialize — worker_count(total_runs) workers always spawn).
  const unsigned pool = worker_count(total_runs);
  const std::uint64_t target_chunks = static_cast<std::uint64_t>(pool) * 4;
  const std::uint64_t chunk = std::min(
      opts_.chunk_size,
      std::max<std::uint64_t>(1, total_runs / target_chunks));

  // Prefix sums over per-cell chunk counts: a global chunk index maps to
  // (cell, run range) by binary search — no per-run or per-chunk task
  // list exists, so the index space may hold billions of runs.
  std::vector<std::uint64_t> chunks_before(n_cells + 1, 0);
  for (std::size_t c = 0; c < n_cells; ++c) {
    // (runs - 1) / chunk + 1 is ceil-divide without the runs + chunk
    // overflow (chunk may be huge relative to runs).
    chunks_before[c + 1] = chunks_before[c] + (cells[c].runs - 1) / chunk + 1;
  }
  const std::uint64_t total_chunks = chunks_before[n_cells];

  // Per-cell countdown of unabsorbed runs; the worker that drops a cell's
  // count to zero reports its completion.
  auto remaining = std::make_unique<std::atomic<std::uint64_t>[]>(n_cells);
  for (std::size_t c = 0; c < n_cells; ++c) {
    remaining[c].store(cells[c].runs, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> done_runs{0};
  const bool keep_records = sink.wants_records();

  const auto worker = [&] {
    for (;;) {
      const std::uint64_t g = next.fetch_add(1, std::memory_order_relaxed);
      if (g >= total_chunks) return;
      // Cell owning global chunk g: the last c with chunks_before[c] <= g.
      const std::size_t cell_pos = static_cast<std::size_t>(
          std::upper_bound(chunks_before.begin(), chunks_before.end(), g) -
          chunks_before.begin() - 1);
      const ExperimentCell& cell = cells[cell_pos];
      const std::uint64_t begin = (g - chunks_before[cell_pos]) * chunk;
      const std::uint64_t end = std::min(begin + chunk, cell.runs);

      CellAccumulator acc(opts_.reservoir_capacity, opts_.failure_capacity);
      std::vector<RunRecord> records;
      if (keep_records) records.reserve(static_cast<std::size_t>(end - begin));
      for (std::uint64_t k = begin; k < end; ++k) {
        const RunConfig cfg = cell.run_config(k);
        const RunRecord rec = extract_record(k, cfg.seed, run_consensus(cfg));
        acc.add(rec);
        if (keep_records) records.push_back(rec);
      }
      sink.absorb(cell_pos, std::move(acc), std::move(records));
      const std::uint64_t left = remaining[cell_pos].fetch_sub(
          end - begin, std::memory_order_acq_rel);
      if (left == end - begin) sink.on_cell_complete(cell_pos);
      if (opts_.progress) {
        const std::uint64_t d =
            done_runs.fetch_add(end - begin, std::memory_order_relaxed) +
            (end - begin);
        opts_.progress(d, total_runs);
      }
    }
  };

  // total_chunks >= min(total_runs, 4 * pool) >= pool, so the pool is
  // never starved of work units.
  const unsigned n_threads = pool;
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
}

std::vector<CellResult> ParallelExecutor::run(
    const ExperimentSpec& spec) const {
  return run(spec.expand());
}

std::vector<CellResult> ParallelExecutor::run(
    const std::vector<ExperimentCell>& cells) const {
  CollectingSink::Options sink_opts;
  sink_opts.retain_records = true;
  CollectingSink sink(cells, std::move(sink_opts));
  run(cells, sink);
  return sink.take_results();
}

}  // namespace hyco
