#include "exp/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "core/runner.h"
#include "service/service_runner.h"
#include "util/assert.h"

namespace hyco {

namespace {

/// This worker thread's CPU time in ns (0 where unsupported).
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace

unsigned ParallelExecutor::worker_count(std::uint64_t total_tasks) const {
  HYCO_CHECK_MSG(opts_.threads >= 0,
                 "thread count must be >= 0, got " << opts_.threads);
  auto t = static_cast<unsigned>(opts_.threads);
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (static_cast<std::uint64_t>(t) > total_tasks) {
    t = static_cast<unsigned>(total_tasks);
  }
  return t == 0 ? 1 : t;
}

void ParallelExecutor::run(const std::vector<ExperimentCell>& cells,
                           RunSink& sink) const {
  std::vector<RunSpan> spans;
  spans.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    HYCO_CHECK_MSG(cells[c].runs >= 1,
                   "cell " << cells[c].index << " has zero runs");
    spans.push_back({c, 0, cells[c].runs});
  }
  run(cells, spans, sink);
}

void ParallelExecutor::run(const std::vector<ExperimentCell>& cells,
                           const std::vector<RunSpan>& spans,
                           RunSink& sink) const {
  if (cells.empty() || spans.empty()) return;
  HYCO_CHECK_MSG(opts_.chunk_size >= 1, "chunk_size must be >= 1");
  HYCO_CHECK_MSG(opts_.lanes >= 1, "lanes must be >= 1");

  const std::size_t n_cells = cells.size();
  const std::size_t n_spans = spans.size();
  std::uint64_t total_runs = 0;
  for (const RunSpan& s : spans) {
    HYCO_CHECK_MSG(s.cell_pos < n_cells,
                   "span cell position " << s.cell_pos << " out of range");
    HYCO_CHECK_MSG(s.begin < s.end && s.end <= cells[s.cell_pos].runs,
                   "span [" << s.begin << ", " << s.end
                            << ") invalid for cell "
                            << cells[s.cell_pos].index << " ("
                            << cells[s.cell_pos].runs << " runs)");
    HYCO_CHECK_MSG(total_runs <=
                       std::numeric_limits<std::uint64_t>::max() - s.length(),
                   "grid run count overflows 64 bits");
    total_runs += s.length();
  }

  // Effective grain: the configured chunk size, shrunk so the pool sized
  // below always has >= ~4 chunks per worker to steal (small grids would
  // otherwise serialize — worker_count(total_runs) workers always spawn).
  const unsigned pool = worker_count(total_runs);
  const std::uint64_t target_chunks = static_cast<std::uint64_t>(pool) * 4;
  const std::uint64_t chunk = std::min(
      opts_.chunk_size,
      std::max<std::uint64_t>(1, total_runs / target_chunks));

  // Prefix sums over per-span chunk counts: a global chunk index maps to
  // (span, run range) by binary search — no per-run or per-chunk task
  // list exists, so the index space may hold billions of runs.
  std::vector<std::uint64_t> chunks_before(n_spans + 1, 0);
  for (std::size_t s = 0; s < n_spans; ++s) {
    // (length - 1) / chunk + 1 is ceil-divide without the length + chunk
    // overflow (chunk may be huge relative to the span).
    chunks_before[s + 1] =
        chunks_before[s] + (spans[s].length() - 1) / chunk + 1;
  }
  const std::uint64_t total_chunks = chunks_before[n_spans];

  // Per-cell countdown of unabsorbed runs; the worker that drops a cell's
  // count to zero reports its completion. Cells with no spans never
  // complete here (their runs live in a checkpoint, not this execution).
  auto remaining = std::make_unique<std::atomic<std::uint64_t>[]>(n_cells);
  for (std::size_t c = 0; c < n_cells; ++c) {
    remaining[c].store(0, std::memory_order_relaxed);
  }
  for (const RunSpan& s : spans) {
    remaining[s.cell_pos].fetch_add(s.length(), std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> done_runs{0};
  const bool keep_records = sink.wants_records();

  const auto worker = [&] {
    for (;;) {
      const std::uint64_t g = next.fetch_add(1, std::memory_order_relaxed);
      if (g >= total_chunks) return;
      // Span owning global chunk g: the last s with chunks_before[s] <= g.
      const std::size_t span_pos = static_cast<std::size_t>(
          std::upper_bound(chunks_before.begin(), chunks_before.end(), g) -
          chunks_before.begin() - 1);
      const RunSpan& span = spans[span_pos];
      const std::size_t cell_pos = static_cast<std::size_t>(span.cell_pos);
      const ExperimentCell& cell = cells[cell_pos];
      const std::uint64_t begin =
          span.begin + (g - chunks_before[span_pos]) * chunk;
      const std::uint64_t end = std::min(begin + chunk, span.end);

      CellAccumulator acc(opts_.reservoir_capacity, opts_.failure_capacity);
      std::vector<RunRecord> records;
      if (keep_records) records.reserve(static_cast<std::size_t>(end - begin));
      ChunkProfile prof;
      std::uint64_t chunk_ops = 0;
      const auto wall_start = std::chrono::steady_clock::now();
      const std::uint64_t cpu_start = opts_.profile ? thread_cpu_ns() : 0;
      const auto fold = [&](const RunRecord& rec) {
        if (opts_.profile) {
          prof.msgs += rec.msgs;
          prof.events += rec.events;
        }
        chunk_ops += rec.service.ops;
        acc.add(rec);
        if (keep_records) records.push_back(rec);
      };
      if (cell.service.enabled) {
        for (std::uint64_t k = begin; k < end; ++k) {
          const ServiceRunConfig cfg = cell.service_run_config(k);
          fold(extract_service_record(k, cfg.seed, run_service(cfg)));
        }
      } else if (opts_.lanes <= 1) {
        for (std::uint64_t k = begin; k < end; ++k) {
          const RunConfig cfg = cell.run_config(k);
          fold(extract_record(k, cfg.seed, run_consensus(cfg)));
        }
      } else {
        // Multi-lane mode: a cohort of independent runs advances
        // round-robin, one virtual-time tick per turn, so a cache miss in
        // one simulator's queue overlaps another's work. Each run is
        // self-contained and results fold in run-index order, so the
        // artifacts are byte-identical to the sequential loop above.
        for (std::uint64_t k = begin; k < end;) {
          const std::size_t width = static_cast<std::size_t>(
              std::min<std::uint64_t>(opts_.lanes, end - k));
          std::vector<std::unique_ptr<ConsensusRun>> cohort;
          cohort.reserve(width);
          for (std::size_t l = 0; l < width; ++l) {
            cohort.push_back(std::make_unique<ConsensusRun>(
                cell.run_config(k + static_cast<std::uint64_t>(l))));
          }
          std::vector<char> stopped(width, 0);
          std::size_t live = width;
          while (live > 0) {
            for (std::size_t l = 0; l < width; ++l) {
              if (stopped[l] == 0 && cohort[l]->tick()) {
                stopped[l] = 1;
                --live;
              }
            }
          }
          for (std::size_t l = 0; l < width; ++l) {
            const std::uint64_t run = k + static_cast<std::uint64_t>(l);
            const RunConfig cfg = cell.run_config(run);
            fold(extract_record(run, cfg.seed, cohort[l]->finish()));
          }
          k += width;
        }
      }
      if (opts_.profile) {
        prof.wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count());
        const std::uint64_t cpu_end = thread_cpu_ns();
        prof.cpu_ns = cpu_end > cpu_start ? cpu_end - cpu_start : 0;
        prof.runs = end - begin;
        prof.chunks = 1;
      }
      sink.absorb(cell_pos, begin, end, std::move(acc), std::move(records));
      if (opts_.profile) sink.absorb_profile(cell_pos, prof);
      const std::uint64_t left = remaining[cell_pos].fetch_sub(
          end - begin, std::memory_order_acq_rel);
      if (left == end - begin) sink.on_cell_complete(cell_pos);
      if (opts_.ops_progress && chunk_ops > 0) opts_.ops_progress(chunk_ops);
      if (opts_.progress) {
        const std::uint64_t d =
            done_runs.fetch_add(end - begin, std::memory_order_relaxed) +
            (end - begin);
        opts_.progress(d, total_runs);
      }
    }
  };

  // total_chunks >= min(total_runs, 4 * pool) >= pool, so the pool is
  // never starved of work units.
  const unsigned n_threads = pool;
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
}

std::vector<CellResult> ParallelExecutor::run(
    const ExperimentSpec& spec) const {
  return run(spec.expand());
}

std::vector<CellResult> ParallelExecutor::run(
    const std::vector<ExperimentCell>& cells) const {
  CollectingSink::Options sink_opts;
  sink_opts.retain_records = true;
  CollectingSink sink(cells, std::move(sink_opts));
  run(cells, sink);
  return sink.take_results();
}

}  // namespace hyco
